/**
 * @file
 * Regenerates Table 2: decompression wall-clock time and throughput
 * for the TCgen baseline and the two bytesort configurations, plus the
 * share contributed by the byte-level codec stage.
 *
 * The paper decompressed 22 traces of 100M addresses on a 2004
 * Pentium 4; we time scaled traces on the host. The reproducible
 * claims are relative: bytesort decompresses faster than TCgen, and
 * the byte-level codec dominates decompression time (~50% for TCgen,
 * ~65% for bytesort).
 */

#include <chrono>

#include "bench_common.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    const size_t len = scaledLen(500'000);
    tcg::TcgenConfig tcfg;
    tcfg.log2_lines = 18;

    // A cross-class subset keeps the run affordable; scale up with
    // ATC_BENCH_SCALE for the full-suite measurement.
    const std::vector<std::string> names = {
        "410.bwaves", "429.mcf", "403.gcc",    "453.povray",
        "456.hmmer",  "470.lbm", "483.xalancbmk",
    };

    double total[3] = {};       // decompression seconds per method
    double codec_share[3] = {}; // byte-codec-only seconds per method
    uint64_t addresses = 0;

    for (const std::string &name : names) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(name), len, 1);
        addresses += trace.size();

        // --- TCgen ---
        auto tc = tcg::tcgenCompress(trace, tcfg);
        auto t0 = Clock::now();
        {
            util::MemorySource code_src(tc.code_bytes);
            util::MemorySource data_src(tc.data_bytes);
            tcg::TcgenDecoder dec(tcfg, code_src, data_src);
            uint64_t v;
            while (dec.decode(&v))
                ;
        }
        auto t1 = Clock::now();
        // Codec-only share: decompress the two byte streams alone.
        {
            const auto &codec = comp::codecByName("bwc");
            comp::decompressAll(codec, tc.code_bytes.data(),
                                tc.code_bytes.size());
            comp::decompressAll(codec, tc.data_bytes.data(),
                                tc.data_bytes.size());
        }
        auto t2 = Clock::now();
        total[0] += seconds(t0, t1);
        codec_share[0] += seconds(t1, t2);

        // --- bytesort small (len/100) and big (len/10) ---
        const size_t buffers[2] = {len / 100, len / 10};
        for (int b = 0; b < 2; ++b) {
            std::vector<uint8_t> compressed;
            util::VectorSink sink(compressed);
            core::LosslessParams params;
            params.buffer_addrs = buffers[b];
            core::LosslessWriter writer(params, sink);
            for (uint64_t a : trace)
                writer.code(a);
            writer.finish();

            auto s0 = Clock::now();
            {
                util::MemorySource src(compressed);
                core::LosslessReader reader(params, src);
                uint64_t v;
                while (reader.decode(&v))
                    ;
            }
            auto s1 = Clock::now();
            {
                comp::decompressAll(comp::codecByName("bwc"),
                                    compressed.data(), compressed.size());
            }
            auto s2 = Clock::now();
            total[1 + b] += seconds(s0, s1);
            codec_share[1 + b] += seconds(s1, s2);
        }
        std::printf("  [%s done]\n", name.c_str());
        std::fflush(stdout);
    }

    std::printf("\nTable 2 — decompression of %llu addresses "
                "(paper: 2.2G addresses on a 3 GHz Pentium 4)\n",
                static_cast<unsigned long long>(addresses));
    std::printf("%-22s %12s %12s %12s\n", "", "TCgen", "bytesort-sm",
                "bytesort-big");
    std::printf("%-22s %12.2f %12.2f %12.2f   (paper: 1202 / 856 / 948)\n",
                "total time (sec)", total[0], total[1], total[2]);
    std::printf("%-22s %12.2f %12.2f %12.2f   (paper: 589 / 545 / 615)\n",
                "codec contrib. (sec)", codec_share[0], codec_share[1],
                codec_share[2]);
    std::printf("%-22s %12.2f %12.2f %12.2f   (paper: 1.83 / 2.57 / "
                "2.32)\n",
                "addr/second (x1e6)", addresses / total[0] / 1e6,
                addresses / total[1] / 1e6, addresses / total[2] / 1e6);
    std::printf("\nShape check: bytesort decompresses faster than TCgen; "
                "the byte-level codec dominates the time.\n");
    return 0;
}
