/**
 * @file
 * Regenerates Table 2: decompression wall-clock time and throughput
 * for the TCgen baseline and the two bytesort configurations, plus the
 * share contributed by the byte-level codec stage.
 *
 * The paper decompressed 22 traces of 100M addresses on a 2004
 * Pentium 4; we time scaled traces on the host. The reproducible
 * claims are relative: bytesort decompresses faster than TCgen, and
 * the byte-level codec dominates decompression time (~50% for TCgen,
 * ~65% for bytesort).
 *
 * Additionally times the batch read(out, n) hot path against the
 * value-at-a-time decode() wrapper on the bytesort configurations, to
 * quantify the win of span-based decompression.
 */

#include "bench_common.hpp"

// Monotonic timing comes from bench_common (bench::Clock,
// bench::seconds) so every harness measures the same way.
using atc::bench::Clock;
using atc::bench::seconds;

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    const size_t len = scaledLen(500'000);
    tcg::TcgenConfig tcfg;
    tcfg.log2_lines = 18;

    // A cross-class subset keeps the run affordable; scale up with
    // ATC_BENCH_SCALE for the full-suite measurement.
    const std::vector<std::string> names = {
        "410.bwaves", "429.mcf", "403.gcc",    "453.povray",
        "456.hmmer",  "470.lbm", "483.xalancbmk",
    };

    double total[3] = {};       // decompression seconds per method
    double codec_share[3] = {}; // byte-codec-only seconds per method
    double batch_total[2] = {}; // bytesort decode via batch read()
    uint64_t addresses = 0;

    for (const std::string &name : names) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(name), len, 1);
        addresses += trace.size();

        // --- TCgen ---
        auto tc = tcg::tcgenCompress(trace, tcfg);
        auto t0 = Clock::now();
        {
            util::MemorySource code_src(tc.code_bytes);
            util::MemorySource data_src(tc.data_bytes);
            tcg::TcgenDecoder dec(tcfg, code_src, data_src);
            uint64_t v;
            while (dec.decode(&v))
                ;
        }
        auto t1 = Clock::now();
        // Codec-only share: decompress the two byte streams alone.
        {
            const auto &codec = comp::codecByName("bwc");
            comp::decompressAll(codec, tc.code_bytes.data(),
                                tc.code_bytes.size());
            comp::decompressAll(codec, tc.data_bytes.data(),
                                tc.data_bytes.size());
        }
        auto t2 = Clock::now();
        total[0] += seconds(t0, t1);
        codec_share[0] += seconds(t1, t2);

        // --- bytesort small (len/100) and big (len/10) ---
        const size_t buffers[2] = {len / 100, len / 10};
        for (int b = 0; b < 2; ++b) {
            std::vector<uint8_t> compressed;
            util::VectorSink sink(compressed);
            core::LosslessParams params;
            params.buffer_addrs = buffers[b];
            core::LosslessWriter writer(params, sink);
            writer.write(trace.data(), trace.size());
            writer.finish();

            auto s0 = Clock::now();
            {
                // Value-at-a-time decode(), the original hot path.
                util::MemorySource src(compressed);
                core::LosslessReader reader(params, src);
                uint64_t v;
                while (reader.decode(&v))
                    ;
            }
            auto s1 = Clock::now();
            {
                // The stream was written by LosslessWriter, so it uses
                // the params' (v3/seekable) framing, not the legacy
                // default.
                comp::decompressAll(comp::codecByName("bwc"),
                                    compressed.data(), compressed.size(),
                                    params.frame_format);
            }
            auto s2 = Clock::now();
            {
                // Batch read(), the new primary entry point.
                util::MemorySource src(compressed);
                core::LosslessReader reader(params, src);
                std::vector<uint64_t> buf(1 << 16);
                while (reader.read(buf.data(), buf.size()) != 0)
                    ;
            }
            auto s3 = Clock::now();
            total[1 + b] += seconds(s0, s1);
            codec_share[1 + b] += seconds(s1, s2);
            batch_total[b] += seconds(s2, s3);
        }
        std::printf("  [%s done]\n", name.c_str());
        std::fflush(stdout);
    }

    std::printf("\nTable 2 — decompression of %llu addresses "
                "(paper: 2.2G addresses on a 3 GHz Pentium 4)\n",
                static_cast<unsigned long long>(addresses));
    std::printf("%-22s %12s %12s %12s\n", "", "TCgen", "bytesort-sm",
                "bytesort-big");
    std::printf("%-22s %12.2f %12.2f %12.2f   (paper: 1202 / 856 / 948)\n",
                "total time (sec)", total[0], total[1], total[2]);
    std::printf("%-22s %12.2f %12.2f %12.2f   (paper: 589 / 545 / 615)\n",
                "codec contrib. (sec)", codec_share[0], codec_share[1],
                codec_share[2]);
    std::printf("%-22s %12.2f %12.2f %12.2f   (paper: 1.83 / 2.57 / "
                "2.32)\n",
                "addr/second (x1e6)", addresses / total[0] / 1e6,
                addresses / total[1] / 1e6, addresses / total[2] / 1e6);
    // --- lossy regeneration: per-value vs batch -------------------
    // Figure 8's scenario: random values, every interval imitates the
    // first chunk, so regeneration is translation + copy — the regime
    // where the per-value call overhead, not the codec, is the cost.
    double lossy_single = 0, lossy_batch = 0;
    size_t lossy_n = scaledLen(4'000'000);
    {
        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossy;
        opt.lossy.interval_len = lossy_n / 10;
        opt.pipeline.buffer_addrs = lossy_n / 100;
        util::Rng rng(2009);
        core::AtcWriter writer(store, opt);
        std::vector<uint64_t> fill(1 << 16);
        for (size_t done = 0; done < lossy_n;) {
            size_t take = std::min(fill.size(), lossy_n - done);
            for (size_t i = 0; i < take; ++i)
                fill[i] = rng.next();
            writer.write(fill.data(), take);
            done += take;
        }
        writer.close();

        auto u0 = Clock::now();
        {
            core::AtcReader reader(store);
            uint64_t v;
            while (reader.decode(&v))
                ;
        }
        auto u1 = Clock::now();
        {
            core::AtcReader reader(store);
            std::vector<uint64_t> buf(1 << 16);
            while (reader.read(buf.data(), buf.size()) != 0)
                ;
        }
        auto u2 = Clock::now();
        lossy_single = seconds(u0, u1);
        lossy_batch = seconds(u1, u2);
    }

    std::printf("\nBatch-API decode (bytesort rows, read() in 64k "
                "spans):\n");
    std::printf("%-22s %12s %12.2f %12.2f\n", "total time (sec)", "-",
                batch_total[0], batch_total[1]);
    std::printf("%-22s %12s %12.2f %12.2f   speedup %.2fx / %.2fx\n",
                "addr/second (x1e6)", "-",
                addresses / batch_total[0] / 1e6,
                addresses / batch_total[1] / 1e6,
                total[1] / batch_total[0], total[2] / batch_total[1]);
    std::printf("\nLossy regeneration of %zu random addresses (Figure 8 "
                "scenario):\n",
                lossy_n);
    std::printf("%-22s %12.2f %12.2f   speedup %.2fx\n",
                "single/batch (Maddr/s)", lossy_n / lossy_single / 1e6,
                lossy_n / lossy_batch / 1e6, lossy_single / lossy_batch);
    std::printf("\nShape check: bytesort decompresses faster than TCgen; "
                "the byte-level codec dominates the time; batch read() "
                "beats per-value decode().\n");
    return 0;
}
