/**
 * @file
 * Regenerates Figure 8: lossy compression of a pure random 64-bit
 * value stream. The paper compresses 100M random values into one chunk
 * (10M values, bytesorted) plus an INFO file, a ratio of ~10; the
 * decompressed stream has exactly the original length.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    const size_t n = scaledLen(10'000'000);

    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossy;
    opt.lossy.interval_len = n / 10;
    opt.pipeline.buffer_addrs = n / 100;

    util::Rng rng(2009);
    {
        core::AtcWriter writer(store, opt);
        std::vector<uint64_t> batch(1 << 16);
        size_t produced = 0;
        while (produced < n) {
            size_t take = std::min(batch.size(), n - produced);
            for (size_t i = 0; i < take; ++i)
                batch[i] = rng.next();
            writer.write(batch.data(), take);
            produced += take;
        }
        writer.close();
    }

    std::printf("Figure 8 — %zu random 64-bit values, lossy mode "
                "(paper: 100M values)\n",
                n);
    std::printf("  chunks stored: %zu (paper: 1)\n", store.chunkCount());
    std::printf("  chunk bytes:   %zu\n",
                store.chunkBytes(0).size());
    std::printf("  INFO bytes:    %zu (paper: 853)\n",
                store.infoBytes().size());
    double ratio = 8.0 * n / store.totalBytes();
    std::printf("  compression ratio: %.2fx (paper: ~10x)\n", ratio);

    size_t count = 0;
    {
        core::AtcReader reader(store);
        std::vector<uint64_t> buf(1 << 16);
        size_t got;
        while ((got = reader.read(buf.data(), buf.size())) != 0)
            count += got;
    }
    std::printf("  regenerated values: %zu (%s; paper: exact count "
                "preserved)\n",
                count, count == n ? "OK" : "MISMATCH");
    return count == n ? 0 : 1;
}
