/**
 * @file
 * Parallel compression/decompression throughput sweep, plus the
 * random-access sweep over the same container.
 *
 * Compresses one synthetic-generator corpus with the parallel drivers
 * at increasing thread counts and reports wall-clock throughput plus
 * speedup over one thread, as JSON (for the CI perf-trajectory
 * artifact) and as a human-readable table on stderr. Containers are
 * byte-identical across thread counts — the sweep asserts it.
 *
 * The random-access rows exercise the AtcIndex/AtcCursor API on the
 * lossless v3 container: `random_seek` measures seek + short-read
 * latency at scattered offsets (reported as records/s over the reads;
 * first-touch cost is the containing-frame decode, repeats hit the
 * index's shared decoded-block cache), `seek_hot` revisits a small
 * cache-resident working set (steady state decodes nothing — the
 * shared-cache headline), and `ranged_decode` measures readRange()
 * throughput over scattered 5% slices with the frame decodes fanned
 * out on the pool (this one should scale).
 *
 * `serve_latency` drives the whole serving stack: a TraceServer with
 * the sweep's thread count as its worker pool, flooded by
 * ATC_BENCH_SERVE_CLIENTS (default 64) concurrent TCP clients that
 * alternate SEEK and READ_RANGE requests of 1000 records. The row
 * reports aggregate served records/s plus per-request p50/p99 latency
 * (extra JSON fields), and every served payload is audited
 * byte-identical against a direct AtcCursor::readRange.
 *
 * Usage: parallel_throughput [addresses] [threads-csv] [json-path]
 *   addresses   corpus length (default 2000000, scaled by
 *               ATC_BENCH_SCALE)
 *   threads-csv thread counts to sweep (default "1,2,4,8")
 *   json-path   output file (default parallel_throughput.json)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "atc/index.hpp"
#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_atc.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "study/sample_plan.hpp"
#include "study/sample_study.hpp"
#include "trace/pipeline.hpp"
#include "util/rng.hpp"

namespace {

// Monotonic timing comes from bench_common (bench::Clock,
// bench::seconds) so every harness measures the same way.
using atc::bench::Clock;
using atc::bench::seconds;

std::vector<size_t>
parseThreadList(const char *csv)
{
    std::vector<size_t> out;
    const char *p = csv;
    while (*p) {
        char *end = nullptr;
        size_t v = std::strtoull(p, &end, 10);
        if (end == p)
            break;
        if (v > 0)
            out.push_back(v);
        p = (*end == ',') ? end + 1 : end;
    }
    if (out.empty())
        out = {1, 2, 4, 8};
    return out;
}

/**
 * Per-stage CPU-time breakdown of one timed section, from the delta of
 * two obs registry snapshots. Values are summed across worker threads
 * (CPU-seconds, not wall-clock), so a 4-thread row's codec_s may
 * exceed its seconds — the ratio is the stage's effective parallelism.
 */
struct Stages
{
    bool present = false; ///< false when observability is off
    double transform_s = 0;   ///< bytesort/delta transform compute
    double codec_s = 0;       ///< BWT + MTF/RLE + entropy stages
    double io_s = 0;          ///< FileSource/FileSink transfer time
    double queue_wait_s = 0;  ///< channel + pool queue waits
    double worker_busy_s = 0; ///< pool task execution time
};

Stages
stageDelta(const atc::obs::Snapshot &before,
           const atc::obs::Snapshot &after)
{
    auto cd = [&](const char *key) {
        return double(after.value(key) - before.value(key)) / 1e6;
    };
    auto hd = [&](const char *key) {
        return double(after.histSum(key) - before.histSum(key)) / 1e6;
    };
    Stages s;
    s.present = atc::obs::enabled();
    if (!s.present)
        return s;
    s.transform_s =
        cd("atc.transform.encode_us") + cd("atc.transform.decode_us");
    s.codec_s = cd("codec.encode.bwt_us") +
                cd("codec.encode.mtf_rle_us") +
                cd("codec.encode.entropy_us") +
                cd("codec.decode.bwt_us") +
                cd("codec.decode.mtf_rle_us") +
                cd("codec.decode.entropy_us") +
                cd("lossy.chunk_compress_us") +
                cd("lossy.chunk_decode_us");
    s.io_s = cd("io.read_us") + cd("io.write_us");
    s.queue_wait_s = hd("channel.push_wait_us") +
                     hd("channel.pop_wait_us") +
                     hd("pool.queue_wait_us");
    s.worker_busy_s = cd("pool.worker_busy_us");
    return s;
}

struct Row
{
    std::string mode;
    size_t threads;
    double secs;
    double maddrs;
    double speedup;
    /** serve_latency only: per-request latency percentiles. */
    double p50_ms = 0;
    double p99_ms = 0;
    /** compress/decompress rows: per-stage time breakdown. */
    Stages stages;
    /** obs_overhead only: metrics-off throughput and the relative
     *  cost of leaving metrics on (positive = slowdown). */
    double off_maddrs = 0;
    double overhead_pct = 0;
    bool has_overhead = false;
    /** sample_study only: decoded bytes of the sampled run over the
     *  full reference pass (-1 when observability is off) and the
     *  worst absolute sampled-vs-reference miss-ratio error. */
    double decoded_frac = -1;
    double miss_ratio_error = 0;
    bool has_sample = false;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                        : bench::scaledLen(2'000'000);
    std::vector<size_t> threads =
        parseThreadList(argc > 2 ? argv[2] : "1,2,4,8");
    std::string json_path =
        argc > 3 ? argv[3] : "parallel_throughput.json";

    // Synthetic generator corpus (no cache filter: the sweep measures
    // the compressor, not the workload model).
    const trace::SyntheticBenchmark &bm =
        trace::benchmarkByName("429.mcf");
    std::vector<uint64_t> corpus;
    corpus.reserve(n);
    {
        trace::GeneratorPtr gen = bm.makeData(1);
        trace::GeneratorSource src(*gen, n);
        trace::VectorTraceSink sink(corpus);
        trace::pump(src, sink);
    }
    std::fprintf(stderr,
                 "corpus: %zu addresses (%s), sweeping threads:", n,
                 bm.name.c_str());
    for (size_t t : threads)
        std::fprintf(stderr, " %zu", t);
    std::fprintf(stderr, "\n");

    core::AtcOptions lossy_opt;
    lossy_opt.mode = core::Mode::Lossy;
    lossy_opt.lossy.interval_len = n / 32 + 1;
    lossy_opt.lossy.epsilon = 0.0; // all chunks: maximum codec work
    lossy_opt.pipeline.buffer_addrs = n / 64 + 1;

    core::AtcOptions lossless_opt;
    lossless_opt.mode = core::Mode::Lossless;
    lossless_opt.pipeline.buffer_addrs = n / 16 + 1;
    lossless_opt.pipeline.codec_block = 256 * 1024;

    std::vector<Row> rows;
    double base_lossy = 0, base_lossless = 0, base_read = 0;
    double base_lossless_read = 0, base_seek = 0, base_hot = 0;
    double base_ranged = 0, base_serve = 0;
    core::MemoryStore reference; // first thread count's lossy container
    core::MemoryStore lossless_ref; // ... and its lossless sibling

    for (size_t t : threads) {
        parallel::ParallelOptions popt;
        popt.threads = t;

        auto &registry = obs::Registry::global();

        // Lossy compression sweep.
        core::MemoryStore lossy_store;
        auto snap0 = registry.snapshot();
        auto t0 = Clock::now();
        {
            parallel::ParallelAtcWriter w(lossy_store, lossy_opt, popt);
            w.write(corpus.data(), corpus.size());
            w.close();
        }
        double s = seconds(t0, Clock::now());
        if (base_lossy == 0)
            base_lossy = s;
        rows.push_back({"lossy_compress", t, s,
                        static_cast<double>(n) / s / 1e6,
                        base_lossy / s});
        rows.back().stages = stageDelta(snap0, registry.snapshot());

        // Byte identity across thread counts, checked in passing.
        if (t == threads.front()) {
            reference = std::move(lossy_store);
        } else {
            bool same =
                reference.chunkCount() == lossy_store.chunkCount() &&
                reference.infoBytes() == lossy_store.infoBytes();
            for (size_t id = 0; same && id < reference.chunkCount();
                 ++id)
                same = reference.chunkBytes(static_cast<uint32_t>(id)) ==
                       lossy_store.chunkBytes(static_cast<uint32_t>(id));
            if (!same) {
                std::fprintf(stderr,
                             "FATAL: container differs at %zu threads\n",
                             t);
                return 1;
            }
        }

        // Lossless compression sweep.
        core::MemoryStore lossless_store;
        snap0 = registry.snapshot();
        t0 = Clock::now();
        {
            parallel::ParallelAtcWriter w(lossless_store, lossless_opt,
                                          popt);
            w.write(corpus.data(), corpus.size());
            w.close();
        }
        s = seconds(t0, Clock::now());
        if (base_lossless == 0)
            base_lossless = s;
        rows.push_back({"lossless_compress", t, s,
                        static_cast<double>(n) / s / 1e6,
                        base_lossless / s});
        rows.back().stages = stageDelta(snap0, registry.snapshot());
        if (t == threads.front())
            lossless_ref = std::move(lossless_store);

        // Lossy decompression sweep (prefetching reader).
        snap0 = registry.snapshot();
        t0 = Clock::now();
        {
            parallel::ParallelAtcReader r(reference, popt);
            uint64_t buf[65536];
            while (r.read(buf, 65536) != 0) {
            }
        }
        s = seconds(t0, Clock::now());
        if (base_read == 0)
            base_read = s;
        rows.push_back({"lossy_decompress", t, s,
                        static_cast<double>(n) / s / 1e6,
                        base_read / s});
        rows.back().stages = stageDelta(snap0, registry.snapshot());

        // Lossless decompression sweep: container v3's seekable frames
        // let the reader decode blocks in the pool, so this is where
        // decode throughput must scale with the thread count.
        snap0 = registry.snapshot();
        t0 = Clock::now();
        {
            parallel::ParallelAtcReader r(lossless_ref, popt);
            uint64_t buf[65536];
            while (r.read(buf, 65536) != 0) {
            }
        }
        s = seconds(t0, Clock::now());
        if (base_lossless_read == 0)
            base_lossless_read = s;
        rows.push_back({"lossless_decompress", t, s,
                        static_cast<double>(n) / s / 1e6,
                        base_lossless_read / s});
        rows.back().stages = stageDelta(snap0, registry.snapshot());

        // Random-access sweep over the lossless v3 container, via the
        // shared index + cursor API (no streaming reader in the way).
        auto index = core::AtcIndex::openOrThrow(lossless_ref);
        parallel::ThreadPool pool(t);
        core::CursorOptions copt;
        copt.pool = &pool;
        auto cursor = index->cursor(copt);

        // Seek latency: scattered seeks, 1000-record read each.
        constexpr size_t kSeeks = 48;
        constexpr size_t kSeekRead = 1000;
        util::Rng rng(4242);
        std::vector<uint64_t> buf(kSeekRead);
        t0 = Clock::now();
        for (size_t i = 0; i < kSeeks; ++i) {
            uint64_t off = rng.below(n - kSeekRead);
            if (!cursor->seek(off).ok() ||
                cursor->read(buf.data(), kSeekRead) != kSeekRead) {
                std::fprintf(stderr, "FATAL: seek sweep failed\n");
                return 1;
            }
        }
        s = seconds(t0, Clock::now());
        if (base_seek == 0)
            base_seek = s;
        rows.push_back({"random_seek", t, s,
                        static_cast<double>(kSeeks * kSeekRead) / s / 1e6,
                        base_seek / s});

        // Hot-seek latency: revisit a small working set of offsets
        // whose covering frames fit the index's shared decoded-block
        // cache — after the first round every seek should decode
        // nothing (asserted by test via the decode-counting codec) and
        // the number reflects pure locate+copy cost.
        constexpr size_t kHotOffsets = 8;
        constexpr size_t kHotRounds = 12;
        uint64_t hot[kHotOffsets];
        for (size_t i = 0; i < kHotOffsets; ++i)
            hot[i] = rng.below(n - kSeekRead);
        t0 = Clock::now();
        for (size_t round = 0; round < kHotRounds; ++round) {
            for (size_t i = 0; i < kHotOffsets; ++i) {
                if (!cursor->seek(hot[i]).ok() ||
                    cursor->read(buf.data(), kSeekRead) != kSeekRead) {
                    std::fprintf(stderr, "FATAL: hot-seek sweep failed\n");
                    return 1;
                }
            }
        }
        s = seconds(t0, Clock::now());
        if (base_hot == 0)
            base_hot = s;
        rows.push_back(
            {"seek_hot", t, s,
             static_cast<double>(kHotRounds * kHotOffsets * kSeekRead) /
                 s / 1e6,
             base_hot / s});

        // Ranged decode: scattered 5% slices through readRange().
        constexpr size_t kRanges = 8;
        uint64_t slice = n / 20;
        std::vector<uint64_t> out;
        uint64_t ranged_total = 0;
        t0 = Clock::now();
        for (size_t k = 0; k < kRanges; ++k) {
            uint64_t begin = (2 * k + 1) * (n - slice) / (2 * kRanges);
            auto status = cursor->readRange(begin, begin + slice, out);
            if (!status.ok() || out.size() != slice) {
                std::fprintf(stderr, "FATAL: ranged sweep failed: %s\n",
                             status.message().c_str());
                return 1;
            }
            ranged_total += out.size();
        }
        s = seconds(t0, Clock::now());
        if (base_ranged == 0)
            base_ranged = s;
        rows.push_back({"ranged_decode", t, s,
                        static_cast<double>(ranged_total) / s / 1e6,
                        base_ranged / s});

        // Served random access: a TraceServer with t workers over the
        // same lossless container, flooded by concurrent TCP clients
        // alternating SEEK and READ_RANGE requests. Reported as
        // aggregate records/s plus per-request p50/p99 latency; every
        // served payload is then verified byte-identical to a direct
        // AtcCursor::readRange (after the clock stops).
        const char *env_clients = std::getenv("ATC_BENCH_SERVE_CLIENTS");
        const size_t kClients =
            env_clients ? std::strtoull(env_clients, nullptr, 10) : 64;
        constexpr size_t kReqPerClient = 24;
        constexpr uint64_t kReqRecords = 1000;

        serve::ServeOptions sopt;
        sopt.threads = t;
        serve::TraceServer server(sopt);
        if (!server.addContainer("bench", lossless_ref).ok() ||
            !server.start().ok()) {
            std::fprintf(stderr, "FATAL: serve sweep: server start\n");
            return 1;
        }

        struct ClientResult
        {
            std::vector<double> lat_ms;
            std::vector<std::pair<uint64_t, std::vector<uint64_t>>>
                payloads; // begin -> served records
            bool ok = false;
        };
        std::vector<ClientResult> results(kClients);
        std::vector<std::thread> client_threads;
        client_threads.reserve(kClients);
        t0 = Clock::now();
        for (size_t c = 0; c < kClients; ++c) {
            client_threads.emplace_back([&, c] {
                ClientResult &res = results[c];
                auto conn = serve::ServeClient::connect("127.0.0.1",
                                                        server.port());
                if (!conn.ok())
                    return;
                serve::ServeClient client = conn.take();
                auto remote = client.open("bench");
                if (!remote.ok())
                    return;
                uint32_t handle = remote.value().handle;
                for (size_t i = 0; i < kReqPerClient; ++i) {
                    uint64_t begin = (c * 7919 + i * 104729) %
                                     (n - kReqRecords);
                    std::vector<uint64_t> got;
                    auto q0 = Clock::now();
                    util::Status st =
                        (i & 1) ? client.seekRead(handle, begin,
                                                  uint32_t(kReqRecords),
                                                  got)
                                : client.readRange(handle, begin,
                                                   begin + kReqRecords,
                                                   got);
                    auto q1 = Clock::now();
                    if (!st.ok() || got.size() != kReqRecords)
                        return;
                    res.lat_ms.push_back(
                        std::chrono::duration<double, std::milli>(q1 -
                                                                  q0)
                            .count());
                    res.payloads.emplace_back(begin, std::move(got));
                }
                res.ok = true;
            });
        }
        for (auto &th : client_threads)
            th.join();
        s = seconds(t0, Clock::now());
        server.stop();

        std::vector<double> lat;
        for (const ClientResult &res : results) {
            if (!res.ok) {
                std::fprintf(stderr, "FATAL: serve sweep: a client "
                                     "failed\n");
                return 1;
            }
            lat.insert(lat.end(), res.lat_ms.begin(), res.lat_ms.end());
        }
        // Byte-parity audit, off the clock: lossless seeks are exact,
        // so both request flavours must equal the direct range read.
        {
            auto audit = index->cursor();
            for (const ClientResult &res : results) {
                for (const auto &[begin, got] : res.payloads) {
                    std::vector<uint64_t> want;
                    if (!audit->readRange(begin, begin + kReqRecords,
                                          want)
                             .ok() ||
                        want != got) {
                        std::fprintf(stderr,
                                     "FATAL: served records diverge "
                                     "from direct read at %llu\n",
                                     static_cast<unsigned long long>(
                                         begin));
                        return 1;
                    }
                }
            }
        }
        std::sort(lat.begin(), lat.end());
        if (base_serve == 0)
            base_serve = s;
        Row serve_row{"serve_latency", t, s,
                      static_cast<double>(kClients * kReqPerClient *
                                          kReqRecords) /
                          s / 1e6,
                      base_serve / s};
        serve_row.p50_ms = lat[lat.size() / 2];
        serve_row.p99_ms = lat[(lat.size() * 99) / 100];
        rows.push_back(serve_row);

        std::fprintf(stderr,
                     "  %zu thread(s): lossy %.2fs, lossless %.2fs, "
                     "decode %.2fs, lossless decode %.2fs, "
                     "seek %.2fs, hot seek %.2fs, ranged %.2fs, "
                     "serve %.2fs (p50 %.2fms, p99 %.2fms, "
                     "%zu clients)\n",
                     t, rows[rows.size() - 8].secs,
                     rows[rows.size() - 7].secs,
                     rows[rows.size() - 6].secs,
                     rows[rows.size() - 5].secs,
                     rows[rows.size() - 4].secs,
                     rows[rows.size() - 3].secs,
                     rows[rows.size() - 2].secs,
                     rows[rows.size() - 1].secs,
                     rows[rows.size() - 1].p50_ms,
                     rows[rows.size() - 1].p99_ms, kClients);
    }

    // obs_overhead: prove the metrics layer is affordable. One-thread
    // lossless decode — the gated hot path, with per-frame and
    // per-buffer record sites live — best of 3 runs with metrics on vs
    // runtime-disabled. overhead_pct is the slowdown of leaving
    // metrics on; check_regression.py gates it at 3%.
    {
        auto decodeOnce = [&]() {
            parallel::ParallelOptions popt1;
            popt1.threads = 1;
            auto d0 = Clock::now();
            parallel::ParallelAtcReader r(lossless_ref, popt1);
            uint64_t buf[65536];
            while (r.read(buf, 65536) != 0) {
            }
            return seconds(d0, Clock::now());
        };
        decodeOnce(); // warm up (page cache, pool, registry handles)
        // Interleave the on/off runs so clock-frequency drift hits
        // both sides equally; best-of-3 each discards outliers.
        double on_s = 1e100, off_s = 1e100;
        for (int i = 0; i < 3; ++i) {
            obs::setEnabled(true);
            on_s = std::min(on_s, decodeOnce());
            obs::setEnabled(false);
            off_s = std::min(off_s, decodeOnce());
        }
        obs::setEnabled(true);

        double on_maddrs = static_cast<double>(n) / on_s / 1e6;
        double off_maddrs = static_cast<double>(n) / off_s / 1e6;
        Row overhead{"obs_overhead", 1, on_s, on_maddrs, 1.0};
        overhead.off_maddrs = off_maddrs;
        overhead.overhead_pct = (off_maddrs / on_maddrs - 1.0) * 100.0;
        overhead.has_overhead = true;
        rows.push_back(overhead);
        std::fprintf(stderr,
                     "  obs_overhead: metrics on %.3f Maddrs/s, off "
                     "%.3f Maddrs/s (%.2f%% overhead)\n",
                     on_maddrs, off_maddrs, overhead.overhead_pct);
    }

    // sample_study: the sampling engine end-to-end — scattered windows
    // over a dedicated small-frame container (4k-record transform
    // buffers and 32k codec blocks: the transform buffer is the
    // lossless random-access decode granule, so it must stay near the
    // window length or every window decodes far more than it
    // measures), merged estimate vs the full-trace reference. Gated on
    // throughput ratio like every mode, plus two absolute gates:
    // decoded_frac (sampling must decode a small fraction of what the
    // full pass decodes) and miss_ratio_error (the estimate must stay
    // honest). Runs at the sweep's top thread count.
    {
        size_t t = threads.back();
        core::AtcOptions sample_copt;
        sample_copt.mode = core::Mode::Lossless;
        sample_copt.pipeline.buffer_addrs = 4096;
        sample_copt.pipeline.codec_block = 32 * 1024;
        core::MemoryStore sample_store;
        {
            parallel::ParallelOptions popt;
            popt.threads = t;
            parallel::ParallelAtcWriter w(sample_store, sample_copt,
                                          popt);
            w.write(corpus.data(), corpus.size());
            w.close();
        }
        // No decoded-block cache: the byte counters must reflect what
        // each pass truly decodes, not what the other left behind.
        core::IndexOptions iopt;
        iopt.cache_bytes = 0;
        auto index = core::AtcIndex::openOrThrow(sample_store, iopt);

        char plan_spec[128];
        std::snprintf(plan_spec, sizeof plan_spec,
                      "systematic:windows=8,len=%zu,warmup=%zu",
                      n / 1000, n / 4000);
        auto plan = study::SamplePlan::build(plan_spec, index->size());
        if (!plan.ok()) {
            std::fprintf(stderr, "FATAL: sample plan: %s\n",
                         plan.status().message().c_str());
            return 1;
        }
        study::StudyOptions sopt2;
        sopt2.sets = {64, 1024};
        sopt2.threads = t;
        auto sampled = study::runSampleStudy(index, plan.value(), sopt2);
        auto reference = study::runFullReference(index, sopt2);
        if (!sampled.ok() || !reference.ok()) {
            std::fprintf(stderr, "FATAL: sample study failed: %s\n",
                         (!sampled.ok() ? sampled.status()
                                        : reference.status())
                             .message()
                             .c_str());
            return 1;
        }
        const study::StudyResult &sr = sampled.value();
        const study::ReferenceResult &rr = reference.value();

        Row srow{"sample_study", t, sr.seconds,
                 static_cast<double>(sr.fetched_records) / sr.seconds /
                     1e6,
                 sr.seconds > 0 ? rr.seconds / sr.seconds : 0.0};
        if (sr.decoded_bytes >= 0 && rr.decoded_bytes > 0)
            srow.decoded_frac = static_cast<double>(sr.decoded_bytes) /
                                static_cast<double>(rr.decoded_bytes);
        srow.miss_ratio_error = study::worstAbsError(sr, rr);
        srow.has_sample = true;
        rows.push_back(srow);
        std::fprintf(stderr,
                     "  sample_study: %zu windows (%s), %.3fs vs "
                     "reference %.3fs (%.1fx), decoded frac %.4f, "
                     "worst miss-ratio error %.5f\n",
                     sr.windows.size(), sr.plan.c_str(), sr.seconds,
                     rr.seconds, srow.speedup, srow.decoded_frac,
                     srow.miss_ratio_error);
    }

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"parallel_throughput\",\n"
                 "  \"corpus\": \"%s\",\n  \"addresses\": %zu,\n"
                 "  \"codec\": \"bwc\",\n  \"container_version\": %d,\n"
                 "  \"cores\": %u,\n"
                 "  \"results\": [\n",
                 bm.name.c_str(), n,
                 static_cast<int>(core::kContainerVersion),
                 std::thread::hardware_concurrency());
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(json,
                     "    {\"mode\": \"%s\", \"threads\": %zu, "
                     "\"seconds\": %.4f, \"maddrs_per_s\": %.3f, "
                     "\"speedup\": %.3f",
                     r.mode.c_str(), r.threads, r.secs, r.maddrs,
                     r.speedup);
        if (r.mode == "serve_latency")
            std::fprintf(json,
                         ", \"p50_ms\": %.3f, \"p99_ms\": %.3f",
                         r.p50_ms, r.p99_ms);
        if (r.stages.present)
            std::fprintf(json,
                         ", \"stages\": {\"transform_s\": %.4f, "
                         "\"codec_s\": %.4f, \"io_s\": %.4f, "
                         "\"queue_wait_s\": %.4f, "
                         "\"worker_busy_s\": %.4f}",
                         r.stages.transform_s, r.stages.codec_s,
                         r.stages.io_s, r.stages.queue_wait_s,
                         r.stages.worker_busy_s);
        if (r.has_overhead)
            std::fprintf(json,
                         ", \"off_maddrs_per_s\": %.3f, "
                         "\"overhead_pct\": %.2f",
                         r.off_maddrs, r.overhead_pct);
        if (r.has_sample)
            std::fprintf(json,
                         ", \"decoded_frac\": %.4f, "
                         "\"miss_ratio_error\": %.5f",
                         r.decoded_frac, r.miss_ratio_error);
        std::fprintf(json, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());

    // Full registry snapshot next to the bench JSON — the CI perf job
    // uploads both, so stage-level drift is diagnosable from the
    // artifact alone (see docs/metrics.md).
    std::string metrics_path = json_path + ".metrics.json";
    if (!obs::writeMetricsJson(metrics_path)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
    return 0;
}
