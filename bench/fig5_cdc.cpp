/**
 * @file
 * Regenerates Figure 5: C/DC address-predictor outcomes (non-predicted
 * / correct / mispredicted percentages) on exact vs lossy traces for
 * all 22 benchmarks.
 *
 * Predictor configuration per the paper: 64 KB CZones, 256-entry index
 * table, 256-entry GHB, 2-delta correlation key.
 */

#include "bench_common.hpp"

#include <algorithm>

#include "predict/cdc.hpp"

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    // NOTE: the histogram distance carries sampling noise ~256/sqrt(L);
    // the paper's eps = 0.1 was tuned for L = 10M where that noise is
    // ~0.005. Scaled-down runs must keep L >= ~50k or spurious byte
    // translations fire on statistically-identical intervals and
    // scramble intra-region deltas (see EXPERIMENTS.md).
    const size_t len = scaledLen(1'000'000);
    const uint64_t interval = len / 20;

    std::printf("Figure 5 — C/DC predictor outcomes, exact vs lossy "
                "(%zu-address traces)\n",
                len);
    std::printf("%-16s | %28s | %28s | %s\n", "trace",
                "exact nonp/corr/misp (%)", "lossy nonp/corr/misp (%)",
                "max delta");

    double worst = 0;
    for (const auto &bench_ref : table1Reference()) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(bench_ref.name), len, 1);
        core::MemoryStore store;
        lossyCompress(trace, store, interval);
        auto approx = regenerate(store);

        pred::CdcPredictor exact_pred, lossy_pred;
        for (uint64_t a : trace)
            exact_pred.access(a);
        for (uint64_t a : approx)
            lossy_pred.access(a);

        auto pct = [](uint64_t part, uint64_t total) {
            return 100.0 * static_cast<double>(part) /
                   static_cast<double>(total);
        };
        const auto &e = exact_pred.stats();
        const auto &l = lossy_pred.stats();
        double en = pct(e.non_predicted, e.total());
        double ec = pct(e.correct, e.total());
        double em = pct(e.mispredicted, e.total());
        double ln = pct(l.non_predicted, l.total());
        double lc = pct(l.correct, l.total());
        double lm = pct(l.mispredicted, l.total());
        double delta = std::max({std::abs(en - ln), std::abs(ec - lc),
                                 std::abs(em - lm)});
        worst = std::max(worst, delta);
        std::printf("%-16s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | "
                    "%6.1f\n",
                    bench_ref.name, en, ec, em, ln, lc, lm, delta);
        std::fflush(stdout);
    }
    std::printf("\nShape check: the lossy bars 'look like' the exact "
                "ones (paper reports only small distortions, e.g. on "
                "433). Worst category delta: %.1f%%.\n",
                worst);
    return 0;
}
