/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Every binary regenerates one table or figure of the paper, printing
 * the paper's reference numbers next to the measured ones. Trace
 * lengths are scaled down from the paper's 100M/1G addresses (the
 * algorithms are length-scale-free); set ATC_BENCH_SCALE to grow or
 * shrink all experiments (default 1.0).
 */

#ifndef ATC_BENCH_BENCH_COMMON_HPP_
#define ATC_BENCH_BENCH_COMMON_HPP_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "atc/atc.hpp"
#include "tcgen/tcgen.hpp"
#include "trace/suite.hpp"

namespace atc::bench {

/**
 * The one clock every harness times with: steady_clock is monotonic,
 * so cells are immune to NTP slews and wall-clock jumps mid-run
 * (system_clock is not — do not "fix" this back).
 */
using Clock = std::chrono::steady_clock;

/** @return seconds elapsed from @p a to @p b. */
inline double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Best-of-k timing with a discarded warm-up run: run @p fn once
 * untimed (first-touch page faults, pool spin-up, branch history),
 * then @p k timed runs, keeping the minimum. Short cells — exactly
 * what a small-N matrix sweep produces — are otherwise dominated by
 * first-touch noise; the minimum is the standard robust estimator for
 * "how fast can this go" (same policy as the obs_overhead gate).
 *
 * @param k  timed repetitions (>= 1)
 * @param fn nullary callable; invoked k+1 times total
 * @return best wall-clock seconds over the k timed runs
 */
template <typename Fn>
inline double
bestOfK(int k, Fn &&fn)
{
    fn(); // warm-up, untimed
    double best = 1e100;
    for (int i = 0; i < (k < 1 ? 1 : k); ++i) {
        auto t0 = Clock::now();
        fn();
        best = std::min(best, seconds(t0, Clock::now()));
    }
    return best;
}

/** @return environment scale factor for all experiment sizes. */
inline double
benchScale()
{
    const char *env = std::getenv("ATC_BENCH_SCALE");
    if (!env)
        return 1.0;
    double scale = std::atof(env);
    return scale > 0 ? scale : 1.0;
}

/** @return @p base scaled by ATC_BENCH_SCALE, at least @p floor. */
inline size_t
scaledLen(size_t base, size_t floor = 65536)
{
    auto len = static_cast<size_t>(static_cast<double>(base) *
                                   benchScale());
    return len < floor ? floor : len;
}

/** Bits per address of a transform+BWC pipeline over @p trace. */
inline double
transformBpa(const std::vector<uint64_t> &trace, core::Transform transform,
             size_t buffer_addrs)
{
    util::CountingSink sink;
    core::LosslessParams params;
    params.transform = transform;
    params.buffer_addrs = buffer_addrs;
    core::LosslessWriter writer(params, sink);
    writer.write(trace.data(), trace.size());
    writer.finish();
    return 8.0 * static_cast<double>(sink.count()) /
           static_cast<double>(trace.size());
}

/** Bits per address of the TCgen baseline over @p trace. */
inline double
tcgenBpa(const std::vector<uint64_t> &trace, const tcg::TcgenConfig &cfg)
{
    auto result = tcg::tcgenCompress(trace, cfg);
    return 8.0 * static_cast<double>(result.totalBytes()) /
           static_cast<double>(trace.size());
}

/** Result of a lossy compression pass. */
struct LossyRun
{
    double bpa = 0.0;
    core::LossyStats stats;
};

/** Lossy-compress @p trace into @p store with paper proportions. */
inline LossyRun
lossyCompress(const std::vector<uint64_t> &trace, core::MemoryStore &store,
              uint64_t interval_len, bool translate = true)
{
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossy;
    opt.lossy.interval_len = interval_len;
    opt.lossy.translate = translate;
    opt.pipeline.buffer_addrs =
        std::max<uint64_t>(interval_len / 10, 4096);
    core::AtcWriter writer(store, opt);
    writer.write(trace.data(), trace.size());
    writer.close();
    LossyRun run;
    run.bpa = 8.0 * static_cast<double>(store.totalBytes()) /
              static_cast<double>(trace.size());
    run.stats = writer.lossyStats();
    return run;
}

/** Regenerate the full address stream of a store written by AtcWriter. */
inline std::vector<uint64_t>
regenerate(core::MemoryStore &store)
{
    core::AtcReader reader(store);
    std::vector<uint64_t> out(reader.count());
    size_t got = 0;
    while (got < out.size()) {
        size_t n = reader.read(out.data() + got, out.size() - got);
        if (n == 0)
            break;
        got += n;
    }
    out.resize(got);
    return out;
}

/** Paper Table 1 reference rows (bits per address). */
struct Table1Ref
{
    const char *name;
    double bz2, us, tcg, bs1, bs10;
};

inline const std::vector<Table1Ref> &
table1Reference()
{
    static const std::vector<Table1Ref> ref = {
        {"400.perlbench", 3.95, 4.41, 3.09, 3.06, 2.61},
        {"401.bzip2", 12.08, 11.50, 7.89, 11.22, 8.71},
        {"403.gcc", 5.42, 4.22, 3.39, 2.38, 2.07},
        {"410.bwaves", 13.01, 1.57, 4.56, 0.20, 0.17},
        {"429.mcf", 15.56, 10.68, 3.17, 7.81, 5.07},
        {"433.milc", 9.77, 1.45, 5.86, 0.15, 0.13},
        {"434.zeusmp", 9.18, 3.34, 2.13, 0.91, 0.84},
        {"435.gromacs", 7.61, 7.94, 5.06, 8.23, 5.94},
        {"444.namd", 6.77, 11.80, 7.37, 5.97, 5.71},
        {"445.gobmk", 7.01, 8.57, 5.35, 5.20, 4.44},
        {"447.dealII", 3.88, 2.20, 1.57, 1.29, 1.18},
        {"450.soplex", 10.08, 4.81, 3.14, 2.33, 1.87},
        {"453.povray", 0.29, 0.14, 0.06, 0.10, 0.06},
        {"456.hmmer", 7.30, 5.10, 1.68, 1.30, 1.19},
        {"458.sjeng", 8.09, 14.11, 8.03, 8.73, 8.24},
        {"462.libquantum", 4.72, 0.45, 0.64, 0.06, 0.05},
        {"464.h264ref", 10.31, 3.82, 2.10, 2.15, 1.66},
        {"470.lbm", 12.69, 1.00, 0.01, 0.58, 0.43},
        {"471.omnetpp", 8.35, 3.05, 1.45, 0.90, 0.47},
        {"473.astar", 10.82, 8.53, 7.54, 4.22, 4.11},
        {"482.sphinx3", 16.02, 5.01, 2.33, 2.48, 1.69},
        {"483.xalancbmk", 6.91, 3.76, 2.01, 2.67, 1.67},
    };
    return ref;
}

/** Paper Table 3 reference rows (lossless vs lossy BPA, 1G traces). */
struct Table3Ref
{
    const char *name;
    double lossless, lossy;
};

inline const std::vector<Table3Ref> &
table3Reference()
{
    static const std::vector<Table3Ref> ref = {
        {"400.perlbench", 5.08, 0.70}, {"401.bzip2", 11.37, 0.81},
        {"403.gcc", 1.39, 1.09},       {"410.bwaves", 0.19, 0.04},
        {"429.mcf", 5.57, 1.02},       {"433.milc", 0.16, 0.06},
        {"434.zeusmp", 0.98, 0.34},    {"435.gromacs", 8.27, 1.41},
        {"444.namd", 6.14, 2.26},      {"445.gobmk", 5.18, 2.17},
        {"447.dealII", 1.51, 1.30},    {"450.soplex", 4.20, 0.97},
        {"453.povray", 0.22, 0.02},    {"456.hmmer", 1.52, 0.08},
        {"458.sjeng", 9.45, 1.08},     {"462.libquantum", 0.03, 0.004},
        {"464.h264ref", 2.17, 0.26},   {"470.lbm", 0.64, 0.01},
        {"471.omnetpp", 1.08, 0.37},   {"473.astar", 3.70, 0.86},
        {"482.sphinx3", 2.54, 0.08},   {"483.xalancbmk", 3.07, 0.97},
    };
    return ref;
}

} // namespace atc::bench

#endif // ATC_BENCH_BENCH_COMMON_HPP_
