#!/usr/bin/env python3
"""CI regression gate for bench/parallel_throughput JSON output.

Compares a fresh bench run against the committed bench/baseline.json
and fails (exit 1) when decode throughput regresses by more than the
threshold. Compression modes are reported but not gated: CI runners
vary enough that only the decode hot path — the paper's headline
claim — is held to a hard bound.

The obs_overhead mode carries its own absolute gate: the bench decodes
once with metrics recording on and once with it runtime-disabled, and
the run fails when leaving metrics on costs more than
--obs-overhead-max percent (default 3).

Usage:
    check_regression.py <bench.json> <baseline.json>
        [--threshold 0.15] [--obs-overhead-max 3.0]
        [--summary <markdown-file>]

The threshold can also be set via ATC_BENCH_REGRESSION_THRESHOLD, the
overhead bound via ATC_OBS_OVERHEAD_MAX.
The --summary file receives a GitHub-flavoured markdown table (append
mode, so pointing it at $GITHUB_STEP_SUMMARY stacks a row per job and
the perf trajectory stays visible across PRs).
"""

import argparse
import json
import os
import sys

GATED_MODES = ("lossy_decompress", "lossless_decompress", "seek_hot",
               "serve_latency", "obs_overhead")


def best_throughput(results, mode):
    """Peak Maddrs/s over the thread sweep for one mode."""
    rows = [r for r in results if r["mode"] == mode]
    if not rows:
        return None
    return max(r["maddrs_per_s"] for r in rows)


def max_thread_speedup(results, mode):
    rows = [r for r in results if r["mode"] == mode]
    if not rows:
        return None
    return max(rows, key=lambda r: r["threads"])["speedup"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("baseline_json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("ATC_BENCH_REGRESSION_THRESHOLD",
                                     "0.15")),
        help="maximum tolerated decode-throughput regression "
             "(fraction, default 0.15)")
    parser.add_argument(
        "--obs-overhead-max",
        type=float,
        default=float(os.environ.get("ATC_OBS_OVERHEAD_MAX", "3.0")),
        help="maximum tolerated metrics-on decode overhead "
             "(percent, default 3.0)")
    parser.add_argument("--summary", help="markdown file to append to")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        bench = json.load(f)
    with open(args.baseline_json) as f:
        baseline = json.load(f)

    lines = []
    lines.append("### Perf trajectory — `%s` (%s addresses, container v%s)"
                 % (bench.get("benchmark", "?"), bench.get("addresses", "?"),
                    bench.get("container_version", "?")))
    lines.append("")
    lines.append("| mode | best Maddrs/s | baseline | ratio | speedup "
                 "@max threads | gate |")
    lines.append("|---|---|---|---|---|---|")

    failures = []
    modes = []
    for row in bench["results"]:
        if row["mode"] not in modes:
            modes.append(row["mode"])
    for mode in modes:
        new = best_throughput(bench["results"], mode)
        old = best_throughput(baseline.get("results", []), mode)
        speedup = max_thread_speedup(bench["results"], mode)
        gated = mode in GATED_MODES
        if old is None or old == 0:
            ratio_txt, verdict = "n/a (new mode)", "–"
        else:
            ratio = new / old
            ratio_txt = "%.2f" % ratio
            if gated and ratio < 1.0 - args.threshold:
                verdict = "FAIL"
                failures.append(
                    "%s: %.3f Maddrs/s vs baseline %.3f (ratio %.2f < "
                    "%.2f)" % (mode, new, old, ratio,
                               1.0 - args.threshold))
            else:
                verdict = "ok" if gated else "info"
        lines.append("| %s | %.3f | %s | %s | %.2fx | %s |"
                     % (mode, new,
                        "%.3f" % old if old else "–",
                        ratio_txt, speedup, verdict))

    # A gated mode that the baseline knows but the fresh run lacks means
    # the bench crashed or silently dropped the mode — that must fail
    # the gate, not print "n/a" and pass.
    baseline_modes = {r["mode"] for r in baseline.get("results", [])}
    for mode in GATED_MODES:
        if mode in baseline_modes and mode not in modes:
            failures.append(
                "%s: gated mode present in baseline but absent from the "
                "fresh bench run (bench crashed or dropped the mode?)"
                % mode)
            lines.append("| %s | MISSING | %.3f | – | – | FAIL |"
                         % (mode,
                            best_throughput(baseline["results"], mode)))

    # Absolute gate on the cost of the observability layer itself:
    # obs_overhead rows carry overhead_pct, the slowdown of decoding
    # with metrics recording on versus runtime-disabled.
    overhead_rows = [r for r in bench["results"]
                     if "overhead_pct" in r]
    for row in overhead_rows:
        pct = row["overhead_pct"]
        if pct > args.obs_overhead_max:
            failures.append(
                "obs_overhead: metrics-on decode is %.2f%% slower than "
                "metrics-off (bound %.2f%%)"
                % (pct, args.obs_overhead_max))
        lines.append("")
        lines.append("Observability overhead: %.2f%% (metrics on "
                     "%.3f Maddrs/s, off %.3f Maddrs/s, bound %.1f%%)."
                     % (pct, row["maddrs_per_s"],
                        row.get("off_maddrs_per_s", 0),
                        args.obs_overhead_max))

    lines.append("")
    if failures:
        lines.append("**Decode-throughput regression beyond %d%%:**"
                     % round(args.threshold * 100))
        lines.extend("- " + f for f in failures)
    else:
        lines.append("Decode throughput within %d%% of baseline."
                     % round(args.threshold * 100))
    report = "\n".join(lines) + "\n"

    print(report)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(report + "\n")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
