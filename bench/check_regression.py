#!/usr/bin/env python3
"""CI regression gate for the bench JSON artifacts.

Two independent gates, each optional so CI jobs can run just the one
they produce evidence for:

* Thread-sweep gate (positional ``bench.json baseline.json``): compares
  a fresh bench/parallel_throughput run against the committed
  bench/baseline.json and fails (exit 1) when decode throughput
  regresses by more than the threshold. Compression modes are reported
  but not gated: CI runners vary enough that only the decode hot path —
  the paper's headline claim — is held to a hard bound. The
  obs_overhead mode carries its own absolute gate: the run fails when
  leaving metrics on costs more than --obs-overhead-max percent.
  The sample_study mode carries two more absolute gates: the sampled
  cache study must decode at most --sample-decoded-frac-max of the
  bytes a full-trace pass decodes (that fraction IS the speedup claim,
  so regressing it silently would gut the subsystem), and its merged
  miss-ratio estimate must stay within --sample-miss-error-max of the
  full-reference ratio. The decoded-fraction gate is skipped when the
  bench reports decoded_frac < 0 (observability compiled out — no
  evidence either way); the error gate always applies.

* Matrix gate (``--matrix fresh.json [--matrix-baseline base.json]``):
  compares a fresh bench/matrix sweep against the committed
  bench/matrix_baseline.json, cell by cell, against the gates listed in
  the manifest. A gated cell missing from the fresh run fails, as does
  an addresses mismatch between the two sweeps (ratios would be
  meaningless).

Which modes and cells are gated, and the default thresholds, live in
the bench/gates.json manifest (override with --gates). Gate kinds:

    min_ratio  fresh/baseline >= value  (throughput floors)
    max_ratio  fresh/baseline <= value  (size/latency ceilings)
    max_abs    fresh <= value           (absolute bounds, no baseline)

The manifest may also carry ``speedup_gates``: absolute floors on the
parallel speedup of one mode at one thread count (e.g.
``compress_speedup_4t``), applied against the fresh sweep alone — no
baseline involved. Each gate is guarded on the runner's core count as
reported by the bench JSON's ``cores`` field: on a machine with fewer
cores than the gate's ``min_cores`` the gate is reported but not
enforced (a 1-core container cannot demonstrate a 4-thread speedup,
and failing there would gate on the runner, not the code).

Usage:
    check_regression.py [bench.json baseline.json]
        [--matrix fresh.json] [--matrix-baseline base.json]
        [--gates gates.json] [--threshold 0.15]
        [--obs-overhead-max 3.0]
        [--sample-decoded-frac-max 0.10] [--sample-miss-error-max 0.08]
        [--summary <markdown-file>]

Threshold precedence: CLI flag > environment variable
(ATC_BENCH_REGRESSION_THRESHOLD / ATC_OBS_OVERHEAD_MAX /
ATC_SAMPLE_DECODED_FRAC_MAX / ATC_SAMPLE_MISS_ERROR_MAX) >
gates.json > built-in default. The --summary file receives a GitHub-flavoured
markdown table (append mode, so pointing it at $GITHUB_STEP_SUMMARY
stacks a row per job and the perf trajectory stays visible across PRs).
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_GATES = os.path.join(HERE, "gates.json")
DEFAULT_MATRIX_BASELINE = os.path.join(HERE, "matrix_baseline.json")

DEFAULT_THRESHOLD = 0.15
DEFAULT_OBS_OVERHEAD_MAX = 3.0
DEFAULT_SAMPLE_DECODED_FRAC_MAX = 0.10
DEFAULT_SAMPLE_MISS_ERROR_MAX = 0.08

GATE_KINDS = ("min_ratio", "max_ratio", "max_abs")


class GatesError(ValueError):
    """The gates manifest is malformed."""


def load_gates(path):
    """Parse and validate a gates manifest.

    Returns a dict with keys ``gated_modes`` (list of str),
    ``matrix_cells`` (list of gate dicts), and optional numeric
    ``threshold`` / ``obs_overhead_max_pct``. Raises GatesError on any
    structural problem — a manifest typo must fail CI loudly, not
    silently gate nothing.
    """
    with open(path) as f:
        gates = json.load(f)
    if not isinstance(gates, dict):
        raise GatesError("gates manifest must be a JSON object")

    modes = gates.get("gated_modes", [])
    if (not isinstance(modes, list)
            or not all(isinstance(m, str) and m for m in modes)):
        raise GatesError("gated_modes must be a list of mode names")

    for key in ("threshold", "obs_overhead_max_pct",
                "sample_decoded_frac_max", "sample_miss_error_max"):
        if key in gates and not isinstance(gates[key], (int, float)):
            raise GatesError("%s must be a number" % key)
    if "threshold" in gates and not 0 < gates["threshold"] < 1:
        raise GatesError("threshold must be a fraction in (0, 1)")

    speedups = gates.get("speedup_gates", [])
    if not isinstance(speedups, list):
        raise GatesError("speedup_gates must be a list")
    for gate in speedups:
        if not isinstance(gate, dict):
            raise GatesError("speedup_gates entries must be objects")
        for key in ("name", "mode", "threads", "min_speedup"):
            if key not in gate:
                raise GatesError(
                    "speedup gate missing required key '%s': %r"
                    % (key, gate))
        for key in ("name", "mode"):
            if not isinstance(gate[key], str) or not gate[key]:
                raise GatesError(
                    "speedup gate '%s' must be a non-empty string" % key)
        for key in ("threads", "min_cores"):
            if key in gate and (not isinstance(gate[key], int)
                                or gate[key] < 1):
                raise GatesError(
                    "speedup gate '%s' must be a positive integer" % key)
        if (not isinstance(gate["min_speedup"], (int, float))
                or gate["min_speedup"] <= 0):
            raise GatesError("speedup gate 'min_speedup' must be positive")

    cells = gates.get("matrix_cells", [])
    if not isinstance(cells, list):
        raise GatesError("matrix_cells must be a list")
    for gate in cells:
        if not isinstance(gate, dict):
            raise GatesError("matrix_cells entries must be objects")
        for key in ("cell", "metric", "kind", "value"):
            if key not in gate:
                raise GatesError(
                    "matrix gate missing required key '%s': %r"
                    % (key, gate))
        if not isinstance(gate["cell"], str) or not gate["cell"]:
            raise GatesError("matrix gate 'cell' must be a cell id")
        if not isinstance(gate["metric"], str) or not gate["metric"]:
            raise GatesError("matrix gate 'metric' must be a field name")
        if gate["kind"] not in GATE_KINDS:
            raise GatesError(
                "matrix gate kind '%s' not one of %s"
                % (gate["kind"], "/".join(GATE_KINDS)))
        if (not isinstance(gate["value"], (int, float))
                or gate["value"] <= 0):
            raise GatesError("matrix gate 'value' must be positive")

    return {
        "gated_modes": modes,
        "matrix_cells": cells,
        "speedup_gates": speedups,
        "threshold": gates.get("threshold"),
        "obs_overhead_max_pct": gates.get("obs_overhead_max_pct"),
        "sample_decoded_frac_max": gates.get("sample_decoded_frac_max"),
        "sample_miss_error_max": gates.get("sample_miss_error_max"),
    }


def resolve(cli_value, env_name, gates_value, default):
    """CLI > environment > gates.json > built-in default."""
    if cli_value is not None:
        return cli_value
    env = os.environ.get(env_name)
    if env is not None:
        return float(env)
    if gates_value is not None:
        return gates_value
    return default


def best_throughput(results, mode):
    """Peak Maddrs/s over the thread sweep for one mode."""
    rows = [r for r in results if r["mode"] == mode]
    if not rows:
        return None
    return max(r["maddrs_per_s"] for r in rows)


def max_thread_speedup(results, mode):
    rows = [r for r in results if r["mode"] == mode]
    if not rows:
        return None
    return max(rows, key=lambda r: r["threads"])["speedup"]


def find_row(results, mode, threads):
    for r in results:
        if r["mode"] == mode and r["threads"] == threads:
            return r
    return None


def check_speedups(bench, speedup_gates):
    """Absolute parallel-speedup floors, guarded on runner cores.

    Returns (markdown lines, failure strings). Gates whose min_cores
    exceeds the bench's reported core count are listed as skipped: a
    small runner is not evidence of a scaling regression.
    """
    lines = []
    failures = []
    cores = bench.get("cores", 0)
    for gate in speedup_gates:
        name = gate["name"]
        mode, threads = gate["mode"], gate["threads"]
        floor = gate["min_speedup"]
        min_cores = gate.get("min_cores", threads)
        if cores < min_cores:
            lines.append(
                "Speedup gate `%s`: skipped (runner has %s cores, "
                "gate needs >= %d)." % (name, cores or "unknown",
                                        min_cores))
            continue
        row = find_row(bench.get("results", []), mode, threads)
        if row is None:
            failures.append(
                "%s: no %s row at %d threads in the fresh sweep on a "
                "%d-core runner (bench crashed or the thread list "
                "dropped %d?)" % (name, mode, threads, cores, threads))
            lines.append("Speedup gate `%s`: FAIL (row missing)." % name)
            continue
        speedup = row["speedup"]
        ok = speedup >= floor
        if not ok:
            failures.append(
                "%s: %s speedup %.2fx at %d threads below floor %.2fx "
                "(%d-core runner)" % (name, mode, speedup, threads,
                                      floor, cores))
        lines.append(
            "Speedup gate `%s`: %s at %d threads is %.2fx (floor "
            "%.2fx, %d cores) — %s." % (name, mode, threads, speedup,
                                        floor, cores,
                                        "ok" if ok else "FAIL"))
    return lines, failures


def check_sweep(bench, baseline, gated_modes, threshold,
                obs_overhead_max, sample_decoded_frac_max=None,
                sample_miss_error_max=None, speedup_gates=()):
    """Thread-sweep gate. Returns (markdown lines, failure strings)."""
    if sample_decoded_frac_max is None:
        sample_decoded_frac_max = DEFAULT_SAMPLE_DECODED_FRAC_MAX
    if sample_miss_error_max is None:
        sample_miss_error_max = DEFAULT_SAMPLE_MISS_ERROR_MAX
    lines = []
    lines.append("### Perf trajectory — `%s` (%s addresses, container v%s)"
                 % (bench.get("benchmark", "?"), bench.get("addresses", "?"),
                    bench.get("container_version", "?")))
    lines.append("")
    lines.append("| mode | best Maddrs/s | baseline | ratio | speedup "
                 "@max threads | gate |")
    lines.append("|---|---|---|---|---|---|")

    failures = []
    modes = []
    for row in bench["results"]:
        if row["mode"] not in modes:
            modes.append(row["mode"])
    for mode in modes:
        new = best_throughput(bench["results"], mode)
        old = best_throughput(baseline.get("results", []), mode)
        speedup = max_thread_speedup(bench["results"], mode)
        gated = mode in gated_modes
        if old is None or old == 0:
            ratio_txt, verdict = "n/a (new mode)", "–"
        else:
            ratio = new / old
            ratio_txt = "%.2f" % ratio
            if gated and ratio < 1.0 - threshold:
                verdict = "FAIL"
                failures.append(
                    "%s: %.3f Maddrs/s vs baseline %.3f (ratio %.2f < "
                    "%.2f)" % (mode, new, old, ratio, 1.0 - threshold))
            else:
                verdict = "ok" if gated else "info"
        lines.append("| %s | %.3f | %s | %s | %.2fx | %s |"
                     % (mode, new,
                        "%.3f" % old if old else "–",
                        ratio_txt, speedup, verdict))

    # A gated mode that the baseline knows but the fresh run lacks means
    # the bench crashed or silently dropped the mode — that must fail
    # the gate, not print "n/a" and pass.
    baseline_modes = {r["mode"] for r in baseline.get("results", [])}
    for mode in gated_modes:
        if mode in baseline_modes and mode not in modes:
            failures.append(
                "%s: gated mode present in baseline but absent from the "
                "fresh bench run (bench crashed or dropped the mode?)"
                % mode)
            lines.append("| %s | MISSING | %.3f | – | – | FAIL |"
                         % (mode,
                            best_throughput(baseline["results"], mode)))

    # Absolute gate on the cost of the observability layer itself:
    # obs_overhead rows carry overhead_pct, the slowdown of decoding
    # with metrics recording on versus runtime-disabled.
    overhead_rows = [r for r in bench["results"]
                     if "overhead_pct" in r]
    for row in overhead_rows:
        pct = row["overhead_pct"]
        if pct > obs_overhead_max:
            failures.append(
                "obs_overhead: metrics-on decode is %.2f%% slower than "
                "metrics-off (bound %.2f%%)" % (pct, obs_overhead_max))
        lines.append("")
        lines.append("Observability overhead: %.2f%% (metrics on "
                     "%.3f Maddrs/s, off %.3f Maddrs/s, bound %.1f%%)."
                     % (pct, row["maddrs_per_s"],
                        row.get("off_maddrs_per_s", 0),
                        obs_overhead_max))

    # Absolute gates on the sampling study: the decoded fraction is the
    # subsystem's reason to exist and the miss-ratio error is its
    # fidelity contract, so both are bounded directly rather than as a
    # ratio against baseline drift.
    sample_rows = [r for r in bench["results"]
                   if "miss_ratio_error" in r]
    for row in sample_rows:
        frac = row.get("decoded_frac", -1.0)
        err = row["miss_ratio_error"]
        if frac >= 0 and frac > sample_decoded_frac_max:
            failures.append(
                "sample_study: sampled run decoded %.1f%% of the bytes "
                "a full pass decodes (bound %.1f%%) — scattered windows "
                "are no longer cheap" % (frac * 100,
                                         sample_decoded_frac_max * 100))
        if err > sample_miss_error_max:
            failures.append(
                "sample_study: worst miss-ratio error %.4f vs the "
                "full-trace reference (bound %.4f)"
                % (err, sample_miss_error_max))
        lines.append("")
        lines.append("Sampling study: decoded fraction %s (bound "
                     "%.1f%%), worst miss-ratio error %.4f (bound "
                     "%.4f), %.2fx faster than the full pass."
                     % ("%.2f%%" % (frac * 100) if frac >= 0
                        else "n/a (obs off)",
                        sample_decoded_frac_max * 100, err,
                        sample_miss_error_max, row.get("speedup", 0)))

    if speedup_gates:
        speedup_lines, speedup_failures = check_speedups(bench,
                                                         speedup_gates)
        lines.append("")
        lines.extend(speedup_lines)
        failures.extend(speedup_failures)

    lines.append("")
    if failures:
        lines.append("**Decode-throughput regression beyond %d%%:**"
                     % round(threshold * 100))
        lines.extend("- " + f for f in failures)
    else:
        lines.append("Decode throughput within %d%% of baseline."
                     % round(threshold * 100))
    return lines, failures


def check_matrix(fresh, baseline, gates):
    """Matrix gate. Returns (markdown lines, failure strings)."""
    lines = []
    failures = []
    lines.append("### Matrix gate — `%s` (%s addresses, %d cells)"
                 % (fresh.get("benchmark", "?"),
                    fresh.get("addresses", "?"),
                    len(fresh.get("cells", []))))
    lines.append("")

    # Ratios against a baseline measured at a different trace length
    # are meaningless — bpa and miss-ratio error are length-dependent.
    if fresh.get("addresses") != baseline.get("addresses"):
        failures.append(
            "matrix: fresh run used %s addresses but baseline has %s — "
            "regenerate the baseline (refresh-baseline workflow) or fix "
            "the job's --addresses" % (fresh.get("addresses"),
                                       baseline.get("addresses")))
        lines.append("**FAIL**: addresses mismatch (fresh %s vs "
                     "baseline %s)." % (fresh.get("addresses"),
                                        baseline.get("addresses")))
        return lines, failures

    fresh_cells = {c["cell"]: c for c in fresh.get("cells", [])}
    base_cells = {c["cell"]: c for c in baseline.get("cells", [])}

    lines.append("| cell | metric | fresh | baseline | gate | verdict |")
    lines.append("|---|---|---|---|---|---|")
    for gate in gates:
        cell_id, metric = gate["cell"], gate["metric"]
        kind, bound = gate["kind"], gate["value"]
        fresh_cell = fresh_cells.get(cell_id)
        base_cell = base_cells.get(cell_id)

        if fresh_cell is None or metric not in fresh_cell:
            failures.append(
                "matrix %s: gated metric '%s' absent from the fresh "
                "sweep (bench crashed or dropped the cell?)"
                % (cell_id, metric))
            lines.append("| `%s` | %s | MISSING | – | %s %.3g | FAIL |"
                         % (cell_id, metric, kind, bound))
            continue
        new = fresh_cell[metric]

        if kind == "max_abs":
            ok = new <= bound
            if not ok:
                failures.append(
                    "matrix %s: %s = %.4f exceeds absolute bound %.4f"
                    % (cell_id, metric, new, bound))
            lines.append("| `%s` | %s | %.4f | – | %s %.3g | %s |"
                         % (cell_id, metric, new, kind, bound,
                            "ok" if ok else "FAIL"))
            continue

        if (base_cell is None or metric not in base_cell
                or base_cell[metric] == 0):
            # Ratio gates need a baseline; a brand-new gate reports
            # info until refresh-baseline lands a value for it.
            lines.append("| `%s` | %s | %.4f | n/a (new gate) | %s %.3g "
                         "| – |" % (cell_id, metric, new, kind, bound))
            continue
        old = base_cell[metric]
        ratio = new / old
        if kind == "min_ratio":
            ok = ratio >= bound
            if not ok:
                failures.append(
                    "matrix %s: %s = %.4f vs baseline %.4f (ratio %.2f "
                    "< %.2f)" % (cell_id, metric, new, old, ratio,
                                 bound))
        else:  # max_ratio
            ok = ratio <= bound
            if not ok:
                failures.append(
                    "matrix %s: %s = %.4f vs baseline %.4f (ratio %.2f "
                    "> %.2f)" % (cell_id, metric, new, old, ratio,
                                 bound))
        lines.append("| `%s` | %s | %.4f | %.4f | %s %.3g | %s |"
                     % (cell_id, metric, new, old, kind, bound,
                        "ok" if ok else "FAIL"))

    lines.append("")
    if failures:
        lines.append("**Matrix cells outside their gates:**")
        lines.extend("- " + f for f in failures)
    else:
        lines.append("All %d gated matrix cells within bounds."
                     % len(gates))
    return lines, failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("bench_json", nargs="?",
                        help="fresh parallel_throughput JSON")
    parser.add_argument("baseline_json", nargs="?",
                        help="committed thread-sweep baseline")
    parser.add_argument("--matrix",
                        help="fresh bench/matrix sweep JSON")
    parser.add_argument("--matrix-baseline",
                        default=DEFAULT_MATRIX_BASELINE,
                        help="committed matrix baseline "
                             "(default: bench/matrix_baseline.json)")
    parser.add_argument("--gates", default=DEFAULT_GATES,
                        help="gates manifest (default: bench/gates.json)")
    parser.add_argument(
        "--threshold", type=float, default=None,
        help="maximum tolerated decode-throughput regression "
             "(fraction; overrides env and gates.json)")
    parser.add_argument(
        "--obs-overhead-max", type=float, default=None,
        help="maximum tolerated metrics-on decode overhead "
             "(percent; overrides env and gates.json)")
    parser.add_argument(
        "--sample-decoded-frac-max", type=float, default=None,
        help="maximum fraction of full-pass decoded bytes a sampled "
             "study may decode (overrides env and gates.json)")
    parser.add_argument(
        "--sample-miss-error-max", type=float, default=None,
        help="maximum worst-case sampled-vs-reference miss-ratio "
             "error (overrides env and gates.json)")
    parser.add_argument("--summary", help="markdown file to append to")
    args = parser.parse_args(argv)

    if bool(args.bench_json) != bool(args.baseline_json):
        parser.error("bench_json and baseline_json go together")
    if not args.bench_json and not args.matrix:
        parser.error("nothing to check: pass bench_json baseline_json "
                     "and/or --matrix")

    try:
        gates = load_gates(args.gates)
    except (GatesError, OSError, json.JSONDecodeError) as e:
        print("gates manifest %s: %s" % (args.gates, e), file=sys.stderr)
        return 2

    threshold = resolve(args.threshold, "ATC_BENCH_REGRESSION_THRESHOLD",
                        gates["threshold"], DEFAULT_THRESHOLD)
    obs_max = resolve(args.obs_overhead_max, "ATC_OBS_OVERHEAD_MAX",
                      gates["obs_overhead_max_pct"],
                      DEFAULT_OBS_OVERHEAD_MAX)
    frac_max = resolve(args.sample_decoded_frac_max,
                       "ATC_SAMPLE_DECODED_FRAC_MAX",
                       gates["sample_decoded_frac_max"],
                       DEFAULT_SAMPLE_DECODED_FRAC_MAX)
    err_max = resolve(args.sample_miss_error_max,
                      "ATC_SAMPLE_MISS_ERROR_MAX",
                      gates["sample_miss_error_max"],
                      DEFAULT_SAMPLE_MISS_ERROR_MAX)

    lines = []
    failures = []

    if args.bench_json:
        with open(args.bench_json) as f:
            bench = json.load(f)
        with open(args.baseline_json) as f:
            baseline = json.load(f)
        sweep_lines, sweep_failures = check_sweep(
            bench, baseline, gates["gated_modes"], threshold, obs_max,
            frac_max, err_max, gates["speedup_gates"])
        lines.extend(sweep_lines)
        failures.extend(sweep_failures)

    if args.matrix:
        with open(args.matrix) as f:
            fresh = json.load(f)
        with open(args.matrix_baseline) as f:
            matrix_baseline = json.load(f)
        if lines:
            lines.append("")
        matrix_lines, matrix_failures = check_matrix(
            fresh, matrix_baseline, gates["matrix_cells"])
        lines.extend(matrix_lines)
        failures.extend(matrix_failures)

    report = "\n".join(lines) + "\n"
    print(report)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(report + "\n")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
