/**
 * @file
 * Regenerates Table 1: bits per address for five lossless pipelines on
 * the 22-benchmark suite.
 *
 * Columns (as in the paper):
 *   bz2   raw bytes through the BWC byte compressor (bzip2 stand-in)
 *   us    byte-unshuffling + BWC
 *   tcg   TCgen/VPC-style predictor compressor (DFCM3[2], FCM3[3],
 *         FCM2[3], FCM1[3]), BWC back end
 *   bs1   bytesort with a "small" buffer (len/100, paper: 1M of 100M)
 *   bs10  bytesort with a "big" buffer (len/10, paper: 10M of 100M)
 *
 * Paper values are printed alongside. Traces are scaled to 1M
 * addresses by default (ATC_BENCH_SCALE multiplies).
 */

#include "bench_common.hpp"

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    const size_t len = scaledLen(1'000'000);
    tcg::TcgenConfig tcfg;
    tcfg.log2_lines = 18;

    std::printf("Table 1 — bits per address, lossless pipelines "
                "(%zu-address traces; paper used 100M)\n",
                len);
    std::printf("%-16s | %25s | %25s | %25s | %25s | %25s\n", "trace",
                "bz2 (meas/paper)", "us (meas/paper)", "tcg (meas/paper)",
                "bs1 (meas/paper)", "bs10 (meas/paper)");

    double sum[5] = {};
    double psum[5] = {};
    int n = 0;
    for (const Table1Ref &ref : table1Reference()) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(ref.name), len, 1);
        double bz2 = transformBpa(trace, core::Transform::None, len / 10);
        double us =
            transformBpa(trace, core::Transform::Unshuffle, len / 10);
        double tcg_bpa = tcgenBpa(trace, tcfg);
        double bs1 =
            transformBpa(trace, core::Transform::Bytesort, len / 100);
        double bs10 =
            transformBpa(trace, core::Transform::Bytesort, len / 10);

        std::printf("%-16s | %12.2f /%10.2f | %12.2f /%10.2f | "
                    "%12.2f /%10.2f | %12.2f /%10.2f | %12.2f /%10.2f\n",
                    ref.name, bz2, ref.bz2, us, ref.us, tcg_bpa, ref.tcg,
                    bs1, ref.bs1, bs10, ref.bs10);
        std::fflush(stdout);

        double meas[5] = {bz2, us, tcg_bpa, bs1, bs10};
        double paper[5] = {ref.bz2, ref.us, ref.tcg, ref.bs1, ref.bs10};
        for (int i = 0; i < 5; ++i) {
            sum[i] += meas[i];
            psum[i] += paper[i];
        }
        ++n;
    }
    std::printf("%-16s | %12.2f /%10.2f | %12.2f /%10.2f | %12.2f "
                "/%10.2f | %12.2f /%10.2f | %12.2f /%10.2f\n",
                "arith. mean", sum[0] / n, psum[0] / n, sum[1] / n,
                psum[1] / n, sum[2] / n, psum[2] / n, sum[3] / n,
                psum[3] / n, sum[4] / n, psum[4] / n);
    std::printf("\nShape check: bz2 worst, bytesort best on average, "
                "big buffer >= small buffer, and unshuffle can *hurt* "
                "on random-dominated traces (429/458/473), as in the "
                "paper's 444/458.\n");
    return 0;
}
