/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  A. bytesort buffer size B — the paper's "bigger buffer exposes
 *     long-term regularity" claim (§4.2), swept quantitatively.
 *  B. transform choice — raw / unshuffle / Mache-style delta /
 *     bytesort, on traces of different classes.
 *  C. lossy threshold epsilon — compression ratio vs accuracy
 *     trade-off behind the paper's epsilon = 0.1 choice (§5.2).
 *  D. histogram-table capacity — chunk reuse under phase cycling.
 *  E. interval length L — the myopic-interval and sampling-noise
 *     regimes (§5 and EXPERIMENTS.md).
 */

#include "bench_common.hpp"

#include "cache/stack_sim.hpp"

namespace {

using namespace atc;
using namespace atc::bench;

double
missRatioError(const std::vector<uint64_t> &exact,
               const std::vector<uint64_t> &approx, uint32_t sets)
{
    cache::StackSimulator e(sets, 16), a(sets, 16);
    for (uint64_t x : exact)
        e.access(x);
    for (uint64_t x : approx)
        a.access(x);
    double worst = 0;
    for (uint32_t w : {1u, 2u, 4u, 8u, 16u})
        worst = std::max(worst, std::abs(e.missRatio(w) - a.missRatio(w)));
    return worst;
}

} // namespace

int
main()
{
    const size_t len = scaledLen(500'000);

    // ---- A: buffer-size sweep ------------------------------------
    std::printf("A. bytesort buffer sweep (403.gcc, %zu addresses)\n",
                len);
    auto gcc = trace::collectFilteredTrace(
        trace::benchmarkByName("403.gcc"), len, 1);
    std::printf("%12s %10s\n", "buffer B", "BPA");
    for (size_t b : {size_t(1024), size_t(4096), size_t(16384),
                     size_t(65536), len / 4, len}) {
        std::printf("%12zu %10.3f\n", b,
                    transformBpa(gcc, core::Transform::Bytesort, b));
    }

    // ---- B: transform comparison ---------------------------------
    std::printf("\nB. transform comparison (BPA)\n");
    std::printf("%-16s %8s %8s %8s %8s\n", "trace", "none", "unshuf",
                "delta", "bytesort");
    for (const char *name : {"410.bwaves", "429.mcf", "456.hmmer",
                             "483.xalancbmk"}) {
        auto t = trace::collectFilteredTrace(trace::benchmarkByName(name),
                                             len, 1);
        std::printf("%-16s %8.2f %8.2f %8.2f %8.2f\n", name,
                    transformBpa(t, core::Transform::None, len / 10),
                    transformBpa(t, core::Transform::Unshuffle, len / 10),
                    transformBpa(t, core::Transform::Delta, len / 10),
                    transformBpa(t, core::Transform::Bytesort, len / 10));
        std::fflush(stdout);
    }

    // ---- C: epsilon sweep ----------------------------------------
    std::printf("\nC. lossy epsilon sweep (429.mcf, L = len/10): "
                "ratio vs accuracy\n");
    auto mcf = trace::collectFilteredTrace(
        trace::benchmarkByName("429.mcf"), len, 1);
    std::printf("%8s %8s %10s %14s\n", "epsilon", "chunks", "BPA",
                "worst dMiss");
    for (double eps : {0.01, 0.05, 0.1, 0.2, 0.5}) {
        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossy;
        opt.lossy.interval_len = len / 10;
        opt.lossy.epsilon = eps;
        opt.pipeline.buffer_addrs = len / 100;
        core::AtcWriter w(store, opt);
        w.write(mcf.data(), mcf.size());
        w.close();
        auto approx = regenerate(store);
        std::printf("%8.2f %8llu %10.3f %14.3f\n", eps,
                    static_cast<unsigned long long>(
                        w.lossyStats().chunks_created),
                    8.0 * store.totalBytes() / mcf.size(),
                    missRatioError(mcf, approx, 1024));
        std::fflush(stdout);
    }

    // ---- D: chunk-table capacity sweep ---------------------------
    std::printf("\nD. histogram-table capacity (phased 483.xalancbmk)\n");
    auto xal = trace::collectFilteredTrace(
        trace::benchmarkByName("483.xalancbmk"), len, 1);
    std::printf("%10s %8s %10s\n", "capacity", "chunks", "BPA");
    for (size_t cap : {size_t(1), size_t(2), size_t(8), size_t(64),
                       size_t(256)}) {
        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossy;
        opt.lossy.interval_len = len / 50;
        opt.lossy.chunk_table = cap;
        opt.pipeline.buffer_addrs = len / 100;
        core::AtcWriter w(store, opt);
        w.write(xal.data(), xal.size());
        w.close();
        std::printf("%10zu %8llu %10.3f\n", cap,
                    static_cast<unsigned long long>(
                        w.lossyStats().chunks_created),
                    8.0 * store.totalBytes() / xal.size());
    }

    // ---- E: interval-length sweep --------------------------------
    std::printf("\nE. interval length L (429.mcf): myopia vs noise\n");
    std::printf("%10s %8s %10s %14s\n", "L", "chunks", "BPA",
                "worst dMiss");
    for (uint64_t L : {len / 200, len / 50, len / 10, len / 4}) {
        core::MemoryStore store;
        LossyRun run = lossyCompress(mcf, store, L);
        auto approx = regenerate(store);
        std::printf("%10llu %8llu %10.3f %14.3f\n",
                    static_cast<unsigned long long>(L),
                    static_cast<unsigned long long>(
                        run.stats.chunks_created),
                    run.bpa, missRatioError(mcf, approx, 1024));
        std::fflush(stdout);
    }
    std::printf("\nReadings: (A) bigger B lowers BPA monotonically; "
                "(B) bytesort dominates, delta helps only on "
                "near-sequential traces; (C) small eps -> many chunks "
                "and low error, eps past ~0.2 trades accuracy for "
                "little extra ratio; (D) a few table entries suffice "
                "for phase cycling; (E) short L is cheap but myopic.\n");
    return 0;
}
