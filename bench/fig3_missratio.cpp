/**
 * @file
 * Regenerates Figure 3: LRU miss ratio as a function of associativity
 * (1..32) for several set counts, on the exact trace vs the
 * lossy-compressed ("approx") trace, for the 15 benchmarks the paper
 * plots.
 *
 * Paper setting: 1G-address traces, 2k..512k sets. We scale to 1M
 * addresses and 64..16k sets (same ratio of trace footprint to cache
 * reach). The claim being reproduced: the approx curves track the
 * exact curves closely, and curve *shapes* survive even where there
 * is distortion.
 */

#include "bench_common.hpp"

#include "cache/stack_sim.hpp"

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    // Interval sizing mirrors the paper's regime: L = 10M covered each
    // SPEC footprint several times per interval (avoiding the myopic
    // interval problem) and kept histogram sampling noise (~256/sqrt(L))
    // far below eps = 0.1. Scaled down, that means L >= the largest
    // benchmark footprint in misses (~200k blocks): len/10 of a 2M
    // trace. See EXPERIMENTS.md.
    const size_t len = scaledLen(2'000'000);
    const uint64_t interval = len / 10;
    const uint32_t assocs[] = {1, 2, 4, 8, 16, 32};
    const uint32_t set_counts[] = {64, 256, 1024, 4096, 16384};

    const std::vector<std::string> names = {
        "400.perlbench", "401.bzip2",  "410.bwaves",     "429.mcf",
        "435.gromacs",   "450.soplex", "453.povray",     "456.hmmer",
        "458.sjeng",     "462.libquantum", "464.h264ref", "470.lbm",
        "473.astar",     "482.sphinx3",    "483.xalancbmk",
    };

    std::printf("Figure 3 — LRU miss ratio vs associativity, exact vs "
                "approx (%zu-address traces; paper: 1G, 2k-512k sets)\n",
                len);

    double worst_delta = 0;
    for (const std::string &name : names) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(name), len, 1);
        core::MemoryStore store;
        lossyCompress(trace, store, interval);
        auto approx = regenerate(store);

        std::printf("\ntrace %s\n", name.c_str());
        std::printf("%6s |", "sets");
        for (uint32_t a : assocs)
            std::printf("   a=%-2u exact approx |", a);
        std::printf("\n");
        for (uint32_t sets : set_counts) {
            cache::StackSimulator exact(sets, 32), lossy(sets, 32);
            for (uint64_t a : trace)
                exact.access(a);
            for (uint64_t a : approx)
                lossy.access(a);
            std::printf("%6u |", sets);
            for (uint32_t a : assocs) {
                double e = exact.missRatio(a);
                double l = lossy.missRatio(a);
                worst_delta = std::max(worst_delta, std::abs(e - l));
                std::printf("        %5.3f %6.3f |", e, l);
            }
            std::printf("\n");
        }
        std::fflush(stdout);
    }
    std::printf("\nShape check: approx tracks exact across the grid "
                "(worst absolute miss-ratio delta observed: %.3f).\n",
                worst_delta);
    return 0;
}
