/**
 * @file
 * Microbenchmarks for the computational kernels: SA-IS/BWT, MTF, RLE,
 * the byte-plane histograms behind lossy signatures, bytesort, the
 * cache filter and the stack simulator. These are the knobs behind
 * Table 2's throughput numbers and the targets of the hot-loop tuning.
 *
 * Self-contained: timed with bench_common's bestOfK (steady clock,
 * best of 3 after an untimed warm-up) and emitted in the shared JSON
 * shape so the CI perf-trajectory job archives kernel throughput next
 * to parallel_throughput.json.
 *
 * Usage: micro_kernels [json-path]
 *   json-path  output file (default micro_kernels.json)
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "atc/bytesort.hpp"
#include "atc/histogram.hpp"
#include "atc/lossy.hpp"
#include "bench_common.hpp"
#include "cache/filter.hpp"
#include "cache/stack_sim.hpp"
#include "compress/bwt.hpp"
#include "compress/codec.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "compress/stream.hpp"
#include "util/rng.hpp"

namespace {

using namespace atc;

std::vector<uint8_t>
textLike(size_t n)
{
    util::Rng rng(1);
    std::vector<uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<uint8_t>('a' + rng.below(26));
    return data;
}

std::vector<uint64_t>
addressLike(size_t n)
{
    util::Rng rng(2);
    std::vector<uint64_t> addrs(n);
    uint64_t base = 0x10000000;
    for (auto &a : addrs) {
        if (rng.below(8) == 0)
            base = 0x10000000 + (rng.below(16) << 26);
        a = base + rng.below(1 << 18);
    }
    return addrs;
}

struct Row
{
    std::string kernel;
    size_t n;       ///< items processed per run (bytes or addresses)
    double secs;    ///< best-of-k wall-clock seconds for one run
    double m_per_s; ///< items per second, in millions
};

/** Time @p fn (best of 3) over @p n items and record one row. */
template <typename Fn>
void
runKernel(std::vector<Row> &rows, const char *name, size_t n, Fn &&fn)
{
    double secs = bench::bestOfK(3, fn);
    rows.push_back(
        {name, n, secs, static_cast<double>(n) / secs / 1e6});
    std::fprintf(stderr, "  %-22s %8.4fs  %9.3f M/s\n", name, secs,
                 rows.back().m_per_s);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = argc > 1 ? argv[1] : "micro_kernels.json";

    const size_t kBytes = bench::scaledLen(1 << 20);
    const size_t kAddrs = bench::scaledLen(1'000'000);
    auto text = textLike(kBytes);
    auto addrs = addressLike(kAddrs);
    std::fprintf(stderr, "kernels: %zu bytes text, %zu addresses\n",
                 kBytes, kAddrs);

    std::vector<Row> rows;

    // BWT round trip (SA-IS construction dominates the forward pass).
    auto bwt = comp::bwtForward(text.data(), text.size());
    runKernel(rows, "bwt_forward", kBytes, [&] {
        auto r = comp::bwtForward(text.data(), text.size());
        if (r.data.size() != text.size())
            std::abort();
    });
    runKernel(rows, "bwt_inverse", kBytes, [&] {
        auto inv =
            comp::bwtInverse(bwt.data.data(), bwt.data.size(), bwt.primary);
        if (inv.size() != text.size())
            std::abort();
    });

    // MTF + RLE over the BWT output — the shape they see in the codec.
    auto mtf = comp::mtfEncode(bwt.data.data(), bwt.data.size());
    runKernel(rows, "mtf_encode", kBytes, [&] {
        auto enc = comp::mtfEncode(bwt.data.data(), bwt.data.size());
        if (enc.size() != bwt.data.size())
            std::abort();
    });
    runKernel(rows, "mtf_decode", kBytes, [&] {
        auto dec = comp::mtfDecode(mtf.data(), mtf.size());
        if (dec.size() != mtf.size())
            std::abort();
    });
    auto rle = comp::rleEncode(mtf.data(), mtf.size());
    runKernel(rows, "rle_encode", kBytes, [&] {
        auto enc = comp::rleEncode(mtf.data(), mtf.size());
        if (enc.size() != rle.size())
            std::abort();
    });
    runKernel(rows, "rle_decode", kBytes, [&] {
        auto dec = comp::rleDecode(rle);
        if (dec.size() != mtf.size())
            std::abort();
    });

    // Lossy-path address kernels: the per-interval byte histograms and
    // the full signature (histograms + per-plane sort).
    runKernel(rows, "histogram", kAddrs, [&] {
        auto h = core::computeHistograms(addrs.data(), addrs.size());
        if (h.len != addrs.size())
            std::abort();
    });
    runKernel(rows, "lossy_signature", kAddrs, [&] {
        auto sig =
            core::LossyEncoder::signatureOf(addrs.data(), addrs.size());
        if (sig.hist.len != addrs.size())
            std::abort();
    });

    // Bytesort transform round trip.
    auto planes = core::bytesortForward(addrs.data(), addrs.size());
    runKernel(rows, "bytesort_forward", kAddrs, [&] {
        auto p = core::bytesortForward(addrs.data(), addrs.size());
        if (p.size() != planes.size())
            std::abort();
    });
    runKernel(rows, "bytesort_inverse", kAddrs, [&] {
        auto back = core::bytesortInverse(planes.data(), addrs.size());
        if (back.size() != addrs.size())
            std::abort();
    });

    // Cache-side kernels.
    runKernel(rows, "cache_filter", kAddrs, [&] {
        cache::CacheFilter filter;
        uint64_t emitted = 0;
        for (uint64_t a : addrs)
            emitted += filter.access(a, false).has_value();
        if (emitted == 0)
            std::abort();
    });
    runKernel(rows, "stack_sim", kAddrs, [&] {
        cache::StackSimulator sim(1024, 32);
        for (uint64_t a : addrs)
            sim.access(a >> 6);
        if (sim.missCount(8) == 0)
            std::abort();
    });

    // End-to-end codec reference points.
    const auto &codec = comp::codecByName("bwc");
    auto compressed = comp::compressAll(codec, text.data(), text.size());
    runKernel(rows, "bwc_compress", kBytes, [&] {
        auto c = comp::compressAll(codec, text.data(), text.size());
        if (c.size() != compressed.size())
            std::abort();
    });
    runKernel(rows, "bwc_decompress", kBytes, [&] {
        auto d =
            comp::decompressAll(codec, compressed.data(), compressed.size());
        if (d.size() != text.size())
            std::abort();
    });

    std::FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json,
                 "{\n  \"benchmark\": \"micro_kernels\",\n"
                 "  \"cores\": %u,\n  \"results\": [\n",
                 std::thread::hardware_concurrency());
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(json,
                     "    {\"kernel\": \"%s\", \"items\": %zu, "
                     "\"seconds\": %.5f, \"mitems_per_s\": %.3f}%s\n",
                     r.kernel.c_str(), r.n, r.secs, r.m_per_s,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
    return 0;
}
