/**
 * @file
 * google-benchmark microbenchmarks for the computational kernels:
 * SA-IS/BWT, MTF, Huffman, bytesort, the cache filter and the stack
 * simulator. These are the knobs behind Table 2's throughput numbers.
 */

#include <benchmark/benchmark.h>

#include "atc/bytesort.hpp"
#include "atc/lossless.hpp"
#include "cache/filter.hpp"
#include "cache/stack_sim.hpp"
#include "compress/bwt.hpp"
#include "compress/huffman.hpp"
#include "compress/mtf.hpp"
#include "compress/stream.hpp"
#include "util/rng.hpp"

namespace {

using namespace atc;

std::vector<uint8_t>
textLike(size_t n)
{
    util::Rng rng(1);
    std::vector<uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<uint8_t>('a' + rng.below(26));
    return data;
}

std::vector<uint64_t>
addressLike(size_t n)
{
    util::Rng rng(2);
    std::vector<uint64_t> addrs(n);
    uint64_t base = 0x10000000;
    for (auto &a : addrs) {
        if (rng.below(8) == 0)
            base = 0x10000000 + (rng.below(16) << 26);
        a = base + rng.below(1 << 18);
    }
    return addrs;
}

void
BM_BwtForward(benchmark::State &state)
{
    auto data = textLike(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto r = comp::bwtForward(data.data(), data.size());
        benchmark::DoNotOptimize(r.data.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BwtForward)->Arg(64 << 10)->Arg(1 << 20);

void
BM_BwtInverse(benchmark::State &state)
{
    auto data = textLike(static_cast<size_t>(state.range(0)));
    auto r = comp::bwtForward(data.data(), data.size());
    for (auto _ : state) {
        auto inv = comp::bwtInverse(r.data.data(), r.data.size(),
                                    r.primary);
        benchmark::DoNotOptimize(inv.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BwtInverse)->Arg(64 << 10)->Arg(1 << 20);

void
BM_MtfEncode(benchmark::State &state)
{
    auto data = textLike(1 << 20);
    for (auto _ : state) {
        auto enc = comp::mtfEncode(data.data(), data.size());
        benchmark::DoNotOptimize(enc.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_MtfEncode);

void
BM_BwcCompress(benchmark::State &state)
{
    auto data = textLike(1 << 20);
    const auto &codec = comp::codecByName("bwc");
    for (auto _ : state) {
        auto c = comp::compressAll(codec, data.data(), data.size());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BwcCompress);

void
BM_BwcDecompress(benchmark::State &state)
{
    auto data = textLike(1 << 20);
    const auto &codec = comp::codecByName("bwc");
    auto c = comp::compressAll(codec, data.data(), data.size());
    for (auto _ : state) {
        auto d = comp::decompressAll(codec, c.data(), c.size());
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BwcDecompress);

void
BM_LzhCompress(benchmark::State &state)
{
    auto data = textLike(1 << 20);
    const auto &codec = comp::codecByName("lzh");
    for (auto _ : state) {
        auto c = comp::compressAll(codec, data.data(), data.size());
        benchmark::DoNotOptimize(c.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_LzhCompress);

void
BM_BytesortForward(benchmark::State &state)
{
    auto addrs = addressLike(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto planes = core::bytesortForward(addrs.data(), addrs.size());
        benchmark::DoNotOptimize(planes.data());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_BytesortForward)->Arg(100'000)->Arg(1'000'000);

void
BM_BytesortInverse(benchmark::State &state)
{
    auto addrs = addressLike(static_cast<size_t>(state.range(0)));
    auto planes = core::bytesortForward(addrs.data(), addrs.size());
    for (auto _ : state) {
        auto back = core::bytesortInverse(planes.data(), addrs.size());
        benchmark::DoNotOptimize(back.data());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_BytesortInverse)->Arg(100'000)->Arg(1'000'000);

std::vector<uint8_t>
losslessCompressed(const std::vector<uint64_t> &addrs)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    core::LosslessParams params;
    params.buffer_addrs = addrs.size() / 8 + 1;
    core::LosslessWriter writer(params, sink);
    writer.write(addrs.data(), addrs.size());
    writer.finish();
    return out;
}

void
BM_LosslessDecodeSingle(benchmark::State &state)
{
    auto addrs = addressLike(1 << 20);
    auto compressed = losslessCompressed(addrs);
    core::LosslessParams params;
    params.buffer_addrs = addrs.size() / 8 + 1;
    for (auto _ : state) {
        util::MemorySource src(compressed);
        core::LosslessReader reader(params, src);
        uint64_t v, sum = 0;
        while (reader.decode(&v))
            sum += v;
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_LosslessDecodeSingle);

void
BM_LosslessDecodeBatch(benchmark::State &state)
{
    auto addrs = addressLike(1 << 20);
    auto compressed = losslessCompressed(addrs);
    core::LosslessParams params;
    params.buffer_addrs = addrs.size() / 8 + 1;
    std::vector<uint64_t> buf(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        util::MemorySource src(compressed);
        core::LosslessReader reader(params, src);
        uint64_t sum = 0;
        size_t got;
        while ((got = reader.read(buf.data(), buf.size())) != 0)
            sum += buf[got - 1];
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_LosslessDecodeBatch)->Arg(1 << 10)->Arg(1 << 16);

void
BM_LosslessEncodeBatch(benchmark::State &state)
{
    auto addrs = addressLike(1 << 20);
    for (auto _ : state) {
        util::CountingSink sink;
        core::LosslessParams params;
        params.buffer_addrs = addrs.size() / 8 + 1;
        core::LosslessWriter writer(params, sink);
        writer.write(addrs.data(), addrs.size());
        writer.finish();
        benchmark::DoNotOptimize(sink.count());
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_LosslessEncodeBatch);

void
BM_CacheFilter(benchmark::State &state)
{
    auto addrs = addressLike(1 << 20);
    for (auto _ : state) {
        cache::CacheFilter filter;
        uint64_t emitted = 0;
        for (uint64_t a : addrs)
            emitted += filter.access(a, false).has_value();
        benchmark::DoNotOptimize(emitted);
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_CacheFilter);

void
BM_StackSimulator(benchmark::State &state)
{
    auto addrs = addressLike(1 << 20);
    for (auto _ : state) {
        cache::StackSimulator sim(1024, 32);
        for (uint64_t a : addrs)
            sim.access(a >> 6);
        benchmark::DoNotOptimize(sim.missCount(8));
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_StackSimulator);

} // namespace

BENCHMARK_MAIN();
