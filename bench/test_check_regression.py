#!/usr/bin/env python3
"""Unit tests for the check_regression gate script.

Covers the gates-manifest loader (valid manifests parse, structural
typos raise instead of silently gating nothing), the matrix cell gate
(a clean run passes, an artificially regressed run fails, a missing
gated cell fails, an addresses mismatch fails), and the threshold
precedence chain. Run directly or via ctest (check_regression_test).
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_regression as cr  # noqa: E402

GOOD_GATES = {
    "threshold": 0.15,
    "obs_overhead_max_pct": 3.0,
    "gated_modes": ["lossless_decompress"],
    "matrix_cells": [
        {"cell": "multicore|lossless-bwc|65536",
         "metric": "decompress_maddrs", "kind": "min_ratio",
         "value": 0.5},
        {"cell": "ptrchase|lossless-bwc|65536", "metric": "bpa",
         "kind": "max_ratio", "value": 1.05},
        {"cell": "multicore|lossy-bwc|65536",
         "metric": "miss_ratio_error", "kind": "max_abs",
         "value": 0.05},
    ],
}

MATRIX = {
    "benchmark": "matrix",
    "addresses": 150000,
    "cells": [
        {"cell": "multicore|lossless-bwc|65536",
         "decompress_maddrs": 5.0, "bpa": 3.9},
        {"cell": "ptrchase|lossless-bwc|65536",
         "decompress_maddrs": 3.5, "bpa": 20.3},
        {"cell": "multicore|lossy-bwc|65536",
         "decompress_maddrs": 6.9, "bpa": 7.0,
         "miss_ratio_error": 0.002},
    ],
}


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump(payload, f)
    return path


class LoadGatesTest(unittest.TestCase):
    def load(self, payload):
        with tempfile.TemporaryDirectory() as tmp:
            return cr.load_gates(write_json(tmp, "gates.json", payload))

    def test_valid_manifest_parses(self):
        gates = self.load(GOOD_GATES)
        self.assertEqual(gates["gated_modes"], ["lossless_decompress"])
        self.assertEqual(len(gates["matrix_cells"]), 3)
        self.assertEqual(gates["threshold"], 0.15)
        self.assertEqual(gates["obs_overhead_max_pct"], 3.0)

    def test_missing_sections_default_empty(self):
        gates = self.load({})
        self.assertEqual(gates["gated_modes"], [])
        self.assertEqual(gates["matrix_cells"], [])
        self.assertIsNone(gates["threshold"])

    def test_rejects_non_object_manifest(self):
        with self.assertRaises(cr.GatesError):
            self.load(["not", "an", "object"])

    def test_rejects_non_list_gated_modes(self):
        with self.assertRaises(cr.GatesError):
            self.load({"gated_modes": "lossless_decompress"})

    def test_rejects_unknown_gate_kind(self):
        bad = copy.deepcopy(GOOD_GATES)
        bad["matrix_cells"][0]["kind"] = "at_least"
        with self.assertRaises(cr.GatesError):
            self.load(bad)

    def test_rejects_gate_missing_value(self):
        bad = copy.deepcopy(GOOD_GATES)
        del bad["matrix_cells"][0]["value"]
        with self.assertRaises(cr.GatesError):
            self.load(bad)

    def test_rejects_non_positive_value(self):
        bad = copy.deepcopy(GOOD_GATES)
        bad["matrix_cells"][0]["value"] = 0
        with self.assertRaises(cr.GatesError):
            self.load(bad)

    def test_rejects_out_of_range_threshold(self):
        with self.assertRaises(cr.GatesError):
            self.load({"threshold": 1.5})


class MatrixGateTest(unittest.TestCase):
    """End-to-end main() runs over temp files: exit 0 clean, 1 on a
    regressed/missing cell — the property CI depends on."""

    def run_main(self, fresh, baseline, gates=GOOD_GATES, extra=()):
        with tempfile.TemporaryDirectory() as tmp:
            argv = [
                "--matrix", write_json(tmp, "fresh.json", fresh),
                "--matrix-baseline",
                write_json(tmp, "baseline.json", baseline),
                "--gates", write_json(tmp, "gates.json", gates),
            ]
            argv.extend(extra)
            return cr.main(argv)

    def test_identical_run_passes(self):
        self.assertEqual(self.run_main(MATRIX, MATRIX), 0)

    def test_regressed_throughput_fails(self):
        slow = copy.deepcopy(MATRIX)
        slow["cells"][0]["decompress_maddrs"] = 2.0  # ratio 0.4 < 0.5
        self.assertEqual(self.run_main(slow, MATRIX), 1)

    def test_regressed_bpa_fails(self):
        fat = copy.deepcopy(MATRIX)
        fat["cells"][1]["bpa"] = 25.0  # ratio 1.23 > 1.05
        self.assertEqual(self.run_main(fat, MATRIX), 1)

    def test_absolute_fidelity_bound_fails(self):
        drifted = copy.deepcopy(MATRIX)
        drifted["cells"][2]["miss_ratio_error"] = 0.2  # > 0.05 bound
        self.assertEqual(self.run_main(drifted, MATRIX), 1)

    def test_missing_gated_cell_fails(self):
        partial = copy.deepcopy(MATRIX)
        del partial["cells"][0]
        self.assertEqual(self.run_main(partial, MATRIX), 1)

    def test_addresses_mismatch_fails(self):
        short = copy.deepcopy(MATRIX)
        short["addresses"] = 20000
        self.assertEqual(self.run_main(short, MATRIX), 1)

    def test_new_ratio_gate_without_baseline_reports_info(self):
        # A freshly added gate has no baseline value yet: the run must
        # not fail before refresh-baseline lands one.
        bare = copy.deepcopy(MATRIX)
        baseline = copy.deepcopy(MATRIX)
        del baseline["cells"][0]
        self.assertEqual(self.run_main(bare, baseline), 0)

    def test_malformed_gates_manifest_exits_2(self):
        bad = {"matrix_cells": [{"cell": "x", "metric": "bpa",
                                 "kind": "bogus", "value": 1}]}
        self.assertEqual(self.run_main(MATRIX, MATRIX, gates=bad), 2)

    def test_nothing_to_check_is_an_error(self):
        with self.assertRaises(SystemExit):
            cr.main([])


class SampleGateTest(unittest.TestCase):
    """Absolute gates on the sample_study row: the decoded-bytes
    fraction and the miss-ratio error are bounded directly."""

    @staticmethod
    def bench(frac, err):
        row = {"mode": "sample_study", "threads": 4, "seconds": 0.05,
               "maddrs_per_s": 12.0, "speedup": 9.0,
               "decoded_frac": frac, "miss_ratio_error": err}
        return {"benchmark": "parallel_throughput", "addresses": 2000000,
                "results": [row]}

    def sweep(self, frac, err, frac_max=0.10, err_max=0.08):
        bench = self.bench(frac, err)
        _, failures = cr.check_sweep(
            bench, bench, ["sample_study"], 0.15, 3.0, frac_max,
            err_max)
        return failures

    def test_within_bounds_passes(self):
        self.assertEqual(self.sweep(0.05, 0.01), [])

    def test_decoded_fraction_over_bound_fails(self):
        failures = self.sweep(0.25, 0.01)
        self.assertEqual(len(failures), 1)
        self.assertIn("decoded", failures[0])

    def test_miss_ratio_error_over_bound_fails(self):
        failures = self.sweep(0.05, 0.2)
        self.assertEqual(len(failures), 1)
        self.assertIn("miss-ratio error", failures[0])

    def test_obs_disabled_skips_fraction_gate_only(self):
        # decoded_frac -1 means observability was compiled out: no
        # decode evidence either way, but the error gate still applies.
        self.assertEqual(self.sweep(-1.0, 0.01), [])
        self.assertEqual(len(self.sweep(-1.0, 0.2)), 1)

    def test_custom_bounds_respected(self):
        self.assertEqual(self.sweep(0.25, 0.2, frac_max=0.3,
                                    err_max=0.25), [])

    def test_committed_gates_carry_sample_bounds(self):
        gates = cr.load_gates(cr.DEFAULT_GATES)
        self.assertIsNotNone(gates["sample_decoded_frac_max"])
        self.assertIsNotNone(gates["sample_miss_error_max"])
        self.assertIn("sample_study", gates["gated_modes"])


class SpeedupGateTest(unittest.TestCase):
    """Absolute speedup floors, guarded on the runner's core count."""

    GATES = [{"name": "compress_speedup_4t", "mode": "lossless_compress",
              "threads": 4, "min_speedup": 2.0, "min_cores": 4}]

    @staticmethod
    def bench(cores, speedup, threads=4):
        rows = [{"mode": "lossless_compress", "threads": 1,
                 "seconds": 1.0, "maddrs_per_s": 2.0, "speedup": 1.0},
                {"mode": "lossless_compress", "threads": threads,
                 "seconds": 1.0 / speedup,
                 "maddrs_per_s": 2.0 * speedup, "speedup": speedup}]
        return {"benchmark": "parallel_throughput",
                "addresses": 2000000, "cores": cores, "results": rows}

    def test_fast_run_on_big_runner_passes(self):
        _, failures = cr.check_speedups(self.bench(8, 3.1), self.GATES)
        self.assertEqual(failures, [])

    def test_flat_curve_on_big_runner_fails(self):
        _, failures = cr.check_speedups(self.bench(8, 1.04), self.GATES)
        self.assertEqual(len(failures), 1)
        self.assertIn("compress_speedup_4t", failures[0])

    def test_small_runner_skips_the_gate(self):
        # A 1-core container cannot demonstrate a 4-thread speedup;
        # the gate must report itself skipped, not fail.
        lines, failures = cr.check_speedups(self.bench(1, 0.9),
                                            self.GATES)
        self.assertEqual(failures, [])
        self.assertTrue(any("skipped" in line for line in lines))

    def test_missing_cores_field_skips_the_gate(self):
        bench = self.bench(8, 0.9)
        del bench["cores"]
        _, failures = cr.check_speedups(bench, self.GATES)
        self.assertEqual(failures, [])

    def test_missing_gated_row_on_big_runner_fails(self):
        bench = self.bench(8, 3.0, threads=2)  # no 4-thread row
        _, failures = cr.check_speedups(bench, self.GATES)
        self.assertEqual(len(failures), 1)
        self.assertIn("row", failures[0] + "row")

    def test_check_sweep_threads_gates_through(self):
        bench = self.bench(8, 1.01)
        _, failures = cr.check_sweep(bench, bench, [], 0.15, 3.0,
                                     speedup_gates=self.GATES)
        self.assertEqual(len(failures), 1)

    def test_loader_validates_speedup_gates(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = {"speedup_gates": self.GATES}
            path = write_json(tmp, "gates.json", good)
            self.assertEqual(len(cr.load_gates(path)["speedup_gates"]),
                             1)
            bad = {"speedup_gates": [{"name": "x", "mode": "m",
                                      "threads": 4}]}  # no min_speedup
            path = write_json(tmp, "bad.json", bad)
            with self.assertRaises(cr.GatesError):
                cr.load_gates(path)

    def test_committed_gates_carry_speedup_floors(self):
        gates = cr.load_gates(cr.DEFAULT_GATES)
        names = {g["name"] for g in gates["speedup_gates"]}
        self.assertIn("compress_speedup_4t", names)
        self.assertIn("decompress_speedup_4t", names)


class ThresholdPrecedenceTest(unittest.TestCase):
    def test_cli_beats_env_beats_gates_beats_default(self):
        env = "ATC_BENCH_REGRESSION_THRESHOLD"
        saved = os.environ.pop(env, None)
        try:
            self.assertEqual(cr.resolve(None, env, None, 0.15), 0.15)
            self.assertEqual(cr.resolve(None, env, 0.2, 0.15), 0.2)
            os.environ[env] = "0.3"
            self.assertEqual(cr.resolve(None, env, 0.2, 0.15), 0.3)
            self.assertEqual(cr.resolve(0.4, env, 0.2, 0.15), 0.4)
        finally:
            if saved is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = saved


class RepoManifestTest(unittest.TestCase):
    def test_committed_gates_manifest_is_valid(self):
        gates = cr.load_gates(cr.DEFAULT_GATES)
        # The issue's two promoted cells must stay gated.
        gated = {(g["cell"], g["metric"]) for g in gates["matrix_cells"]}
        self.assertIn(("multicore|lossless-bwc|65536",
                       "decompress_maddrs"), gated)
        self.assertIn(("ptrchase|lossless-bwc|65536", "bpa"), gated)
        self.assertGreaterEqual(len(gates["gated_modes"]), 1)

    def test_committed_matrix_baseline_matches_gates(self):
        with open(cr.DEFAULT_MATRIX_BASELINE) as f:
            baseline = json.load(f)
        cells = {c["cell"] for c in baseline["cells"]}
        gates = cr.load_gates(cr.DEFAULT_GATES)
        for gate in gates["matrix_cells"]:
            self.assertIn(gate["cell"], cells)


if __name__ == "__main__":
    unittest.main()
