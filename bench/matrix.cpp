/**
 * @file
 * Codec-evaluation matrix: sweep codec configuration x block size x
 * corpus generator and emit one evidence row per cell.
 *
 * The paper evaluates ATC on SPEC-like miss traces only; this driver
 * measures how each codec configuration behaves on the adversarial
 * corpus (tcgen/corpus.hpp) the paper never tested — pointer chasing,
 * GC-like phase shifts, streaming scans, and interleaved multicore
 * merges. Per cell it reports:
 *
 *   - bpa                : bits per access of the container
 *                          (deterministic given generator + seed)
 *   - compress_maddrs    : compression throughput, Maddrs/s
 *   - decompress_maddrs  : full-decode throughput, Maddrs/s
 *   - seek_us            : mean seek + 256-record read latency over
 *                          scattered offsets via AtcIndex/AtcCursor
 *   - miss_ratio_error   : lossy cells only — worst absolute LRU
 *                          miss-ratio drift between the original and
 *                          regenerated trace across 1..8 ways at 64
 *                          sets (cache::missRatioError)
 *
 * All timings are best-of-k with a discarded warm-up run
 * (bench::bestOfK), so short CI-sized cells are not dominated by
 * first-touch noise. Lossless cells are round-trip-audited off the
 * clock; a mismatch is fatal.
 *
 * Output: one JSON document (--json) with a "cells" array — the CI
 * matrix-evidence artifact, gated by bench/check_regression.py against
 * bench/matrix_baseline.json via the bench/gates.json manifest — plus
 * a GitHub-flavoured markdown table (--md and stdout).
 *
 * Usage: matrix [--addresses N] [--json PATH] [--md PATH] [--seed S]
 *               [--best-of K] [--generators "spec;spec;..."]
 *               [--codecs "mode:spec;..."] [--blocks "64k,256k"]
 *   defaults: the 4-family corpus catalog x {lossless:bwc,
 *             lossless:store, lossy:bwc} x {64k, 256k} = 24 cells,
 *             150000 addresses, seed 1, best-of 2.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "atc/index.hpp"
#include "bench_common.hpp"
#include "cache/stack_sim.hpp"
#include "tcgen/corpus.hpp"
#include "util/rng.hpp"

namespace {

using namespace atc;

struct CodecConfig
{
    std::string mode;  // "lossless" | "lossy"
    std::string codec; // codec spec, e.g. "bwc"
};

struct Cell
{
    std::string id;
    std::string generator; // canonical spec
    std::string family;
    CodecConfig config;
    size_t block = 0;
    double bpa = 0;
    double compress_maddrs = 0;
    double decompress_maddrs = 0;
    double seek_us = 0;
    double miss_ratio_error = -1; // < 0: not applicable (lossless)
};

std::vector<std::string>
splitList(const std::string &csv, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t end = csv.find(sep, start);
        if (end == std::string::npos)
            end = csv.size();
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

size_t
parseSize(const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    size_t mult = 1;
    if (end && *end) {
        switch (*end) {
          case 'k': case 'K': mult = 1ull << 10; break;
          case 'm': case 'M': mult = 1ull << 20; break;
          case 'g': case 'G': mult = 1ull << 30; break;
          default:
            std::fprintf(stderr, "bad size '%s'\n", text.c_str());
            std::exit(2);
        }
        if (end[1] != '\0') {
            std::fprintf(stderr, "bad size '%s'\n", text.c_str());
            std::exit(2);
        }
    }
    if (v == 0) {
        std::fprintf(stderr, "size must be nonzero: '%s'\n", text.c_str());
        std::exit(2);
    }
    return static_cast<size_t>(v * mult);
}

std::string
familyOf(const std::string &spec)
{
    size_t colon = spec.find(':');
    return colon == std::string::npos ? spec : spec.substr(0, colon);
}

core::AtcOptions
cellOptions(const Cell &cell, size_t n)
{
    core::AtcOptions opt;
    opt.pipeline.codec = cell.config.codec;
    opt.pipeline.codec_block = cell.block;
    if (cell.config.mode == "lossy") {
        opt.mode = core::Mode::Lossy;
        opt.lossy.interval_len = n / 32 + 1;
        opt.lossy.epsilon = 0.1;
        opt.pipeline.buffer_addrs = n / 64 + 1;
    } else {
        opt.mode = core::Mode::Lossless;
        opt.pipeline.buffer_addrs = n / 8 + 1;
    }
    return opt;
}

std::vector<uint64_t>
blockAddrs(const std::vector<uint64_t> &trace)
{
    std::vector<uint64_t> blocks;
    blocks.reserve(trace.size());
    for (uint64_t a : trace)
        blocks.push_back(a >> 6);
    return blocks;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t n = 150'000;
    uint64_t seed = 1;
    int best_of = 2;
    std::string json_path, md_path;
    std::vector<std::string> generators = tcg::corpusCatalog();
    std::vector<CodecConfig> configs = {
        {"lossless", "bwc"}, {"lossless", "store"}, {"lossy", "bwc"}};
    std::vector<size_t> blocks = {64 * 1024, 256 * 1024};

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--addresses") == 0) {
            n = parseSize(need("--addresses"));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json_path = need("--json");
        } else if (std::strcmp(argv[i], "--md") == 0) {
            md_path = need("--md");
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            seed = std::strtoull(need("--seed"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--best-of") == 0) {
            best_of = std::atoi(need("--best-of"));
            if (best_of < 1)
                best_of = 1;
        } else if (std::strcmp(argv[i], "--generators") == 0) {
            generators = splitList(need("--generators"), ';');
        } else if (std::strcmp(argv[i], "--blocks") == 0) {
            blocks.clear();
            for (const std::string &b : splitList(need("--blocks"), ','))
                blocks.push_back(parseSize(b));
        } else if (std::strcmp(argv[i], "--codecs") == 0) {
            configs.clear();
            for (const std::string &c : splitList(need("--codecs"), ';')) {
                size_t colon = c.find(':');
                if (colon == std::string::npos) {
                    std::fprintf(stderr,
                                 "--codecs entries are mode:spec, got "
                                 "'%s'\n", c.c_str());
                    return 2;
                }
                configs.push_back(
                    {c.substr(0, colon), c.substr(colon + 1)});
            }
        } else {
            std::fprintf(stderr,
                         "usage: matrix [--addresses N] [--json PATH] "
                         "[--md PATH] [--seed S] [--best-of K] "
                         "[--generators \"spec;...\"] "
                         "[--codecs \"mode:spec;...\"] "
                         "[--blocks \"64k,256k\"]\n");
            return 2;
        }
    }
    if (n < 4096) {
        std::fprintf(stderr, "need at least 4096 addresses\n");
        return 2;
    }

    std::vector<Cell> cells;
    for (const std::string &gen_spec : generators) {
        // One trace per generator, shared by every codec cell.
        auto src = tcg::makeCorpusSource(gen_spec, n, seed);
        if (!src.ok()) {
            std::fprintf(stderr, "generator '%s': %s\n", gen_spec.c_str(),
                         src.status().message().c_str());
            return 2;
        }
        std::string canonical = src.value()->describe();
        std::vector<uint64_t> trace;
        trace.reserve(n);
        {
            uint64_t buf[65536];
            size_t got;
            while ((got = src.value()->read(buf, 65536)) != 0)
                trace.insert(trace.end(), buf, buf + got);
        }
        std::fprintf(stderr, "generator %s: %zu addresses\n",
                     canonical.c_str(), trace.size());

        for (const CodecConfig &config : configs) {
            for (size_t block : blocks) {
                Cell cell;
                cell.generator = canonical;
                cell.family = familyOf(canonical);
                cell.config = config;
                cell.block = block;
                cell.id = cell.family + "|" + config.mode + "-" +
                          config.codec + "|" + std::to_string(block);
                core::AtcOptions opt = cellOptions(cell, n);

                // Compression: fresh store per run; keep the last one.
                core::MemoryStore store;
                double comp_s = bench::bestOfK(best_of, [&] {
                    core::MemoryStore fresh;
                    core::AtcWriter writer(fresh, opt);
                    writer.write(trace.data(), trace.size());
                    writer.close();
                    store = std::move(fresh);
                });
                cell.bpa = 8.0 * double(store.totalBytes()) /
                           double(trace.size());
                cell.compress_maddrs = double(n) / comp_s / 1e6;

                // Full decode; audited against the input off the clock.
                std::vector<uint64_t> back(trace.size() + 1);
                size_t got = 0;
                double dec_s = bench::bestOfK(best_of, [&] {
                    core::AtcReader reader(store);
                    got = 0;
                    size_t r;
                    while ((r = reader.read(back.data() + got,
                                            back.size() - got)) != 0)
                        got += r;
                });
                cell.decompress_maddrs = double(n) / dec_s / 1e6;
                back.resize(got);
                if (got != trace.size() ||
                    (config.mode == "lossless" && back != trace)) {
                    std::fprintf(stderr,
                                 "FATAL: %s round trip diverged "
                                 "(%zu of %zu records)\n",
                                 cell.id.c_str(), got, trace.size());
                    return 1;
                }

                // Seek latency: scattered seek + short read pairs.
                constexpr size_t kSeeks = 32;
                constexpr size_t kSeekRead = 256;
                auto index = core::AtcIndex::openOrThrow(store);
                double seek_s = bench::bestOfK(best_of, [&] {
                    auto cursor = index->cursor();
                    util::Rng rng(seed ^ 0x5eed5eedull);
                    uint64_t buf[kSeekRead];
                    for (size_t i = 0; i < kSeeks; ++i) {
                        uint64_t off = rng.below(n - kSeekRead);
                        if (!cursor->seek(off).ok() ||
                            cursor->read(buf, kSeekRead) != kSeekRead) {
                            std::fprintf(stderr,
                                         "FATAL: %s seek sweep failed\n",
                                         cell.id.c_str());
                            std::exit(1);
                        }
                    }
                });
                cell.seek_us = seek_s / double(kSeeks) * 1e6;

                // Lossy fidelity: worst LRU miss-ratio drift between
                // the original and the regenerated trace.
                if (config.mode == "lossy")
                    cell.miss_ratio_error = cache::missRatioError(
                        blockAddrs(trace), blockAddrs(back), 64, 8);

                std::fprintf(stderr,
                             "  %-34s bpa %7.3f  comp %7.2f  dec %7.2f "
                             " seek %8.1fus  mrerr %s\n",
                             cell.id.c_str(), cell.bpa,
                             cell.compress_maddrs, cell.decompress_maddrs,
                             cell.seek_us,
                             cell.miss_ratio_error < 0
                                 ? "–"
                                 : std::to_string(cell.miss_ratio_error)
                                       .c_str());
                cells.push_back(std::move(cell));
            }
        }
    }

    // Markdown summary table (stdout, and --md for $GITHUB_STEP_SUMMARY).
    std::string md;
    md += "### Codec-evaluation matrix (" + std::to_string(n) +
          " addresses, best-of-" + std::to_string(best_of) + ")\n\n";
    md += "| cell | bpa | compress Maddrs/s | decompress Maddrs/s | "
          "seek µs | miss-ratio err |\n";
    md += "|---|---|---|---|---|---|\n";
    char line[512];
    for (const Cell &c : cells) {
        std::string err = "–";
        if (c.miss_ratio_error >= 0) {
            std::snprintf(line, sizeof line, "%.4f", c.miss_ratio_error);
            err = line;
        }
        std::snprintf(line, sizeof line,
                      "| `%s` | %.3f | %.2f | %.2f | %.1f | %s |\n",
                      c.id.c_str(), c.bpa, c.compress_maddrs,
                      c.decompress_maddrs, c.seek_us, err.c_str());
        md += line;
    }
    std::fputs(md.c_str(), stdout);
    if (!md_path.empty()) {
        std::FILE *f = std::fopen(md_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", md_path.c_str());
            return 1;
        }
        std::fputs(md.c_str(), f);
        std::fclose(f);
    }

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"benchmark\": \"matrix\",\n"
                     "  \"addresses\": %zu,\n  \"seed\": %llu,\n"
                     "  \"best_of\": %d,\n  \"cells\": [\n",
                     n, static_cast<unsigned long long>(seed), best_of);
        for (size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            std::fprintf(f,
                         "    {\"cell\": \"%s\", \"generator\": \"%s\", "
                         "\"family\": \"%s\", \"mode\": \"%s\", "
                         "\"codec\": \"%s\", \"block\": %zu, "
                         "\"bpa\": %.6f, \"compress_maddrs\": %.3f, "
                         "\"decompress_maddrs\": %.3f, "
                         "\"seek_us\": %.2f",
                         c.id.c_str(), c.generator.c_str(),
                         c.family.c_str(), c.config.mode.c_str(),
                         c.config.codec.c_str(), c.block, c.bpa,
                         c.compress_maddrs, c.decompress_maddrs,
                         c.seek_us);
            if (c.miss_ratio_error >= 0)
                std::fprintf(f, ", \"miss_ratio_error\": %.6f",
                             c.miss_ratio_error);
            std::fprintf(f, "}%s\n", i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "wrote %s (%zu cells)\n", json_path.c_str(),
                     cells.size());
    }
    return 0;
}
