/**
 * @file
 * Regenerates Table 3: bits per address for lossless (bytesort) vs
 * lossy compression on longer traces.
 *
 * Paper setting: 1G-address traces, interval L = 10M (100 intervals
 * per trace), epsilon = 0.1, chunks compressed with bytesort B = 1M.
 * We keep the proportions: trace length 2M by default, L = len/100.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    const size_t len = scaledLen(2'000'000);
    const uint64_t interval = len / 100;

    std::printf("Table 3 — lossless vs lossy BPA "
                "(%zu-address traces, L = %llu, eps = 0.1; paper: 1G "
                "traces, L = 10M)\n",
                len, static_cast<unsigned long long>(interval));
    std::printf("%-16s | %22s | %22s | %s\n", "trace",
                "lossless (meas/paper)", "lossy (meas/paper)",
                "chunks/intervals");

    double sum_lossless = 0, sum_lossy = 0;
    double psum_lossless = 0, psum_lossy = 0;
    int n = 0;
    for (const Table3Ref &ref : table3Reference()) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(ref.name), len, 1);
        double lossless =
            transformBpa(trace, core::Transform::Bytesort, interval);

        core::MemoryStore store;
        LossyRun lossy = lossyCompress(trace, store, interval);

        std::printf("%-16s | %10.3f /%9.2f | %10.3f /%9.2f | %llu/%llu\n",
                    ref.name, lossless, ref.lossless, lossy.bpa,
                    ref.lossy,
                    static_cast<unsigned long long>(
                        lossy.stats.chunks_created),
                    static_cast<unsigned long long>(lossy.stats.intervals));
        std::fflush(stdout);
        sum_lossless += lossless;
        sum_lossy += lossy.bpa;
        psum_lossless += ref.lossless;
        psum_lossy += ref.lossy;
        ++n;
    }
    std::printf("%-16s | %10.3f /%9.2f | %10.3f /%9.2f |\n", "arith. mean",
                sum_lossless / n, psum_lossless / n, sum_lossy / n,
                psum_lossy / n);
    std::printf("\nShape check: lossy wins broadly; the gain is small on "
                "unstable traces (403.gcc, 447.dealII) and large on "
                "stationary random traces (429/458), as in the paper.\n");
    std::printf("(§6 whole-run claim: with longer traces the ratio keeps "
                "improving as chunks are reused; rerun with "
                "ATC_BENCH_SCALE=4 to observe the trend.)\n");
    return 0;
}
