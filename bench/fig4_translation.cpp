/**
 * @file
 * Regenerates Figure 4: the impact of disabling byte translation on
 * trace 470 (lbm-like streaming), at a large set count.
 *
 * Paper setting: 256k sets, associativity sweep. Without translations
 * every imitated interval replays the *same* addresses as its source
 * chunk, so the apparent footprint collapses and "the cache size that
 * is necessary to remove capacity misses looks twice smaller than it
 * is in reality".
 */

#include "bench_common.hpp"

#include <algorithm>

#include "cache/stack_sim.hpp"

int
main()
{
    using namespace atc;
    using namespace atc::bench;

    const size_t len = scaledLen(2'000'000);
    const uint64_t interval = len / 100;
    const uint32_t sets = 4096; // scaled from the paper's 256k
    const uint32_t assocs[] = {1, 2, 4, 8, 16, 32};

    auto trace = trace::collectFilteredTrace(
        trace::benchmarkByName("470.lbm"), len, 1);

    core::MemoryStore with_store, without_store;
    lossyCompress(trace, with_store, interval, /*translate=*/true);
    lossyCompress(trace, without_store, interval, /*translate=*/false);
    auto with_trans = regenerate(with_store);
    auto without_trans = regenerate(without_store);

    cache::StackSimulator exact(sets, 32), with_sim(sets, 32),
        without_sim(sets, 32);
    for (uint64_t a : trace)
        exact.access(a);
    for (uint64_t a : with_trans)
        with_sim.access(a);
    for (uint64_t a : without_trans)
        without_sim.access(a);

    std::printf("Figure 4 — trace 470, %u sets (paper: 256k sets, 1G "
                "trace): miss ratio vs associativity\n",
                sets);
    std::printf("%6s %10s %14s %16s\n", "assoc", "exact", "translation",
                "no translation");
    for (uint32_t a : assocs) {
        std::printf("%6u %10.4f %14.4f %16.4f\n", a, exact.missRatio(a),
                    with_sim.missRatio(a), without_sim.missRatio(a));
    }

    // Footprint collapse diagnostic (the mechanism behind the figure).
    auto unique_count = [](const std::vector<uint64_t> &t) {
        std::vector<uint64_t> s(t);
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
        return s.size();
    };
    std::printf("\nunique blocks: exact %zu, with translation %zu, "
                "without translation %zu\n",
                unique_count(trace), unique_count(with_trans),
                unique_count(without_trans));
    std::printf("Shape check: without translation the working set "
                "collapses, so its miss curve drops to zero at a much "
                "smaller cache than the exact trace's.\n");
    return 0;
}
