/**
 * @file
 * Tests for the Belady/MIN optimal-replacement simulator.
 */

#include <gtest/gtest.h>

#include "cache/cache_model.hpp"
#include "cache/opt_sim.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace atc {
namespace {

TEST(OptSim, EmptyTrace)
{
    auto r = cache::simulateOpt({}, 16, 4);
    EXPECT_EQ(r.accesses, 0u);
    EXPECT_EQ(r.misses, 0u);
    EXPECT_DOUBLE_EQ(r.missRatio(), 0.0);
}

TEST(OptSim, ColdMissesOnly)
{
    // Working set fits: only first touches miss.
    std::vector<uint64_t> trace;
    for (int round = 0; round < 5; ++round)
        for (uint64_t b = 0; b < 32; ++b)
            trace.push_back(b);
    auto r = cache::simulateOpt(trace, 16, 2);
    EXPECT_EQ(r.misses, 32u);
    EXPECT_EQ(r.cold_misses, 32u);
}

TEST(OptSim, RejectsBadGeometry)
{
    EXPECT_THROW(cache::simulateOpt({1}, 12, 4), util::Error);
    EXPECT_THROW(cache::simulateOpt({1}, 16, 0), util::Error);
}

TEST(OptSim, TextbookBeladyExample)
{
    // Fully-associative (1 set), 3 ways; classic reference string.
    // OPT on 7,0,1,2,0,3,0,4,2,3,0,3,2,1,2,0,1,7,0,1 -> 9 misses.
    std::vector<uint64_t> trace{7, 0, 1, 2, 0, 3, 0, 4, 2, 3,
                                0, 3, 2, 1, 2, 0, 1, 7, 0, 1};
    auto r = cache::simulateOpt(trace, 1, 3);
    EXPECT_EQ(r.misses, 9u);
}

TEST(OptSim, SingleWayIsTrivial)
{
    // Direct-mapped OPT == direct-mapped LRU (no choice of victim).
    util::Rng rng(1);
    std::vector<uint64_t> trace(20000);
    for (auto &b : trace)
        b = rng.below(512);
    auto opt = cache::simulateOpt(trace, 64, 1);
    cache::CacheModel lru({64, 1, 64, cache::ReplPolicy::LRU});
    for (uint64_t b : trace)
        lru.accessBlock(b);
    EXPECT_EQ(opt.misses, lru.stats().misses);
}

class OptNeverWorseThanLru : public testing::TestWithParam<int>
{
};

TEST_P(OptNeverWorseThanLru, OnVariedWorkloads)
{
    // The defining property of MIN: no replacement policy (per set)
    // has fewer misses.
    util::Rng rng(GetParam());
    std::vector<uint64_t> trace;
    trace::LoopNest loop(0, 1 << 18, 1 << 13, 2, 64);
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng.below(4) == 0 ? 0x40000 + rng.below(1 << 16)
                                          : loop.next();
        trace.push_back(addr >> 6);
    }
    for (uint32_t sets : {4u, 32u}) {
        for (uint32_t ways : {2u, 4u, 8u}) {
            auto opt = cache::simulateOpt(trace, sets, ways);
            cache::CacheModel lru(
                {sets, ways, 64, cache::ReplPolicy::LRU});
            cache::CacheModel fifo(
                {sets, ways, 64, cache::ReplPolicy::FIFO});
            for (uint64_t b : trace) {
                lru.accessBlock(b);
                fifo.accessBlock(b);
            }
            EXPECT_LE(opt.misses, lru.stats().misses)
                << sets << "x" << ways;
            EXPECT_LE(opt.misses, fifo.stats().misses)
                << sets << "x" << ways;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptNeverWorseThanLru,
                         testing::Values(1, 2, 3));

TEST(OptSim, BeladyAnomalyFreeMonotoneInWays)
{
    // OPT miss counts are monotone non-increasing in associativity
    // for a fixed set count (stack property of MIN).
    util::Rng rng(9);
    std::vector<uint64_t> trace(30000);
    for (auto &b : trace)
        b = rng.below(2048);
    uint64_t prev = ~0ull;
    for (uint32_t ways : {1u, 2u, 4u, 8u, 16u}) {
        auto r = cache::simulateOpt(trace, 16, ways);
        EXPECT_LE(r.misses, prev);
        prev = r.misses;
    }
}

TEST(OptSim, StreamingGetsNoBenefit)
{
    // No reuse at all: OPT == cold misses.
    std::vector<uint64_t> trace(10000);
    for (size_t i = 0; i < trace.size(); ++i)
        trace[i] = i;
    auto r = cache::simulateOpt(trace, 64, 8);
    EXPECT_EQ(r.misses, trace.size());
}

} // namespace
} // namespace atc
