/**
 * @file
 * End-to-end tests of the ATC container: AtcWriter/AtcReader in both
 * modes, the directory layout, and INFO integrity.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "atc/atc.hpp"
#include "trace/suite.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

namespace fs = std::filesystem;

core::AtcOptions
losslessOptions()
{
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossless;
    opt.pipeline.buffer_addrs = 1000;
    opt.pipeline.codec_block = 64 * 1024;
    return opt;
}

core::AtcOptions
lossyOptions(uint64_t interval_len)
{
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossy;
    opt.lossy.interval_len = interval_len;
    opt.pipeline.buffer_addrs = std::max<uint64_t>(interval_len / 4, 16);
    opt.pipeline.codec_block = 64 * 1024;
    return opt;
}

std::vector<uint64_t>
roundTrip(core::ChunkStore &store, const core::AtcOptions &opt,
          const std::vector<uint64_t> &trace)
{
    core::AtcWriter writer(store, opt);
    for (uint64_t a : trace)
        writer.code(a);
    writer.close();

    core::AtcReader reader(store);
    std::vector<uint64_t> out;
    uint64_t v;
    while (reader.decode(&v))
        out.push_back(v);
    EXPECT_EQ(reader.count(), trace.size());
    return out;
}

TEST(AtcContainer, LosslessRoundTripMemory)
{
    util::Rng rng(1);
    std::vector<uint64_t> trace(12345);
    for (auto &v : trace)
        v = rng.next() >> 6;
    core::MemoryStore store;
    EXPECT_EQ(roundTrip(store, losslessOptions(), trace), trace);
}

TEST(AtcContainer, EmptyTraceBothModes)
{
    for (auto opt : {losslessOptions(), lossyOptions(100)}) {
        core::MemoryStore store;
        EXPECT_TRUE(roundTrip(store, opt, {}).empty());
    }
}

TEST(AtcContainer, ModeAutoDetected)
{
    std::vector<uint64_t> trace(500, 7);
    {
        core::MemoryStore store;
        core::AtcWriter w(store, losslessOptions());
        for (auto a : trace)
            w.code(a);
        w.close();
        core::AtcReader r(store);
        EXPECT_EQ(r.mode(), core::Mode::Lossless);
    }
    {
        core::MemoryStore store;
        core::AtcWriter w(store, lossyOptions(100));
        for (auto a : trace)
            w.code(a);
        w.close();
        core::AtcReader r(store);
        EXPECT_EQ(r.mode(), core::Mode::Lossy);
    }
}

TEST(AtcContainer, DirectoryLayoutMatchesOriginalTool)
{
    // Figure 8: chunks named <n>.<suffix> from 1, plus INFO.<suffix>.
    std::string dir = testing::TempDir() + "/atc_dir_test";
    fs::remove_all(dir);

    util::Rng rng(2);
    std::vector<uint64_t> trace(4000);
    for (auto &v : trace)
        v = rng.next();

    {
        core::AtcWriter writer(dir, lossyOptions(1000));
        for (uint64_t a : trace)
            writer.code(a);
        writer.close();
    }
    EXPECT_TRUE(fs::exists(dir + "/1.bwc"));
    EXPECT_TRUE(fs::exists(dir + "/INFO.bwc"));

    core::AtcReader reader(dir);
    std::vector<uint64_t> out;
    uint64_t v;
    while (reader.decode(&v))
        out.push_back(v);
    EXPECT_EQ(out.size(), trace.size());
    fs::remove_all(dir);
}

TEST(AtcContainer, LosslessDirectoryRoundTrip)
{
    std::string dir = testing::TempDir() + "/atc_dir_lossless";
    fs::remove_all(dir);
    auto trace = trace::collectFilteredTrace(
        trace::benchmarkByName("453.povray"), 20000, 3);
    {
        core::AtcWriter writer(dir, losslessOptions());
        for (uint64_t a : trace)
            writer.code(a);
        writer.close();
    }
    core::AtcReader reader(dir);
    std::vector<uint64_t> out;
    uint64_t v;
    while (reader.decode(&v))
        out.push_back(v);
    EXPECT_EQ(out, trace);
    fs::remove_all(dir);
}

TEST(AtcContainer, Figure8RandomValuesScenario)
{
    // 1M random values, lossy: one chunk, ratio ~10, exact length.
    util::Rng rng(4);
    const size_t n = 1'000'000;
    core::MemoryStore store;
    auto opt = lossyOptions(n / 10);
    opt.pipeline.buffer_addrs = n / 100;
    core::AtcWriter writer(store, opt);
    for (size_t i = 0; i < n; ++i)
        writer.code(rng.next());
    writer.close();

    EXPECT_EQ(store.chunkCount(), 1u);
    double ratio = 8.0 * n / store.totalBytes();
    EXPECT_NEAR(ratio, 10.0, 0.5);

    core::AtcReader reader(store);
    size_t count = 0;
    uint64_t v;
    while (reader.decode(&v))
        ++count;
    EXPECT_EQ(count, n);
}

TEST(AtcContainer, LosslessModeIsExactOnEveryBenchmarkClass)
{
    for (const char *name : {"410.bwaves", "429.mcf", "403.gcc",
                             "453.povray", "483.xalancbmk"}) {
        auto trace = trace::collectFilteredTrace(
            trace::benchmarkByName(name), 30000, 5);
        core::MemoryStore store;
        EXPECT_EQ(roundTrip(store, losslessOptions(), trace), trace)
            << name;
    }
}

TEST(AtcContainer, AlternativeCodecSuffix)
{
    std::string dir = testing::TempDir() + "/atc_dir_lzh";
    fs::remove_all(dir);
    auto opt = losslessOptions();
    opt.pipeline.codec = "lzh";
    std::vector<uint64_t> trace(3000);
    util::Rng rng(6);
    for (auto &v : trace)
        v = rng.next() >> 30;
    {
        core::AtcWriter writer(dir, opt);
        for (uint64_t a : trace)
            writer.code(a);
        writer.close();
    }
    EXPECT_TRUE(fs::exists(dir + "/1.lzh"));
    EXPECT_TRUE(fs::exists(dir + "/INFO.lzh"));
    core::AtcReader reader(dir, "lzh");
    std::vector<uint64_t> out;
    uint64_t v;
    while (reader.decode(&v))
        out.push_back(v);
    EXPECT_EQ(out, trace);

    // The suffix is also auto-detected when not passed.
    core::AtcReader auto_reader(dir);
    std::vector<uint64_t> auto_out(trace.size());
    EXPECT_EQ(auto_reader.read(auto_out.data(), auto_out.size()),
              trace.size());
    EXPECT_EQ(auto_out, trace);
    fs::remove_all(dir);
}

TEST(AtcContainer, CorruptInfoRejected)
{
    core::MemoryStore store;
    {
        core::AtcWriter w(store, losslessOptions());
        w.code(1);
        w.close();
    }
    // Clobber the INFO magic.
    auto info = store.infoBytes();
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        info[0] ^= 0xFF;
        sink->write(info.data(), info.size());
    }
    EXPECT_THROW(core::AtcReader reader(bad), util::Error);
}

TEST(AtcContainer, MissingInfoRejected)
{
    std::string dir = testing::TempDir() + "/atc_dir_empty";
    fs::remove_all(dir);
    fs::create_directories(dir);
    EXPECT_THROW(core::AtcReader reader(dir), util::Error);
    fs::remove_all(dir);
}

TEST(AtcContainer, TaggedAddressesSurviveLossless)
{
    // Paper §2: the 6 null MSBs may carry tags (demand vs write-back).
    std::vector<uint64_t> trace;
    util::Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        uint64_t block = rng.next() >> 6;
        uint64_t tag = rng.below(2) ? (1ull << 63) : 0;
        trace.push_back(block | tag);
    }
    core::MemoryStore store;
    EXPECT_EQ(roundTrip(store, losslessOptions(), trace), trace);
}

TEST(AtcContainer, WriterCountsValues)
{
    core::MemoryStore store;
    core::AtcWriter w(store, losslessOptions());
    for (int i = 0; i < 777; ++i)
        w.code(i);
    EXPECT_EQ(w.count(), 777u);
    w.close();
}

TEST(AtcContainer, LossyStatsExposed)
{
    core::MemoryStore store;
    core::AtcWriter w(store, lossyOptions(100));
    util::Rng rng(8);
    for (int i = 0; i < 1000; ++i)
        w.code(rng.next());
    w.close();
    EXPECT_EQ(w.lossyStats().intervals, 10u);
    EXPECT_EQ(w.lossyStats().addresses, 1000u);
}

TEST(AtcContainer, LossyStatsRequireLossyMode)
{
    core::MemoryStore store;
    core::AtcWriter w(store, losslessOptions());
    EXPECT_THROW(w.lossyStats(), util::Error);
    w.code(1);
    w.close();
}

} // namespace
} // namespace atc
