/**
 * @file
 * Parallel subsystem tests: channel/pool primitives, parallel-vs-serial
 * byte identity of containers (v2 and v3 framing), round trips across
 * thread counts and container versions, mid-stream cancellation
 * without deadlock, v3 seekable-framing corruption probes (mismatched
 * compressed lengths, truncated/corrupt frame index), a structural
 * proof that v3 lossless decode overlaps frame decodes, and the
 * integrity satellites (CRC trailer verification, empty/truncated
 * chunk files).
 */

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "atc/atc.hpp"
#include "cache/filter.hpp"
#include "parallel/channel.hpp"
#include "parallel/parallel_atc.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/pipeline.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

// ---------------------------------------------------------------- channel

TEST(Channel, FifoOrderAndDrainAfterClose)
{
    parallel::Channel<int> ch(4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_TRUE(ch.push(3));
    ch.close();
    EXPECT_FALSE(ch.push(4)); // rejected after close...
    int v = 0;
    EXPECT_TRUE(ch.pop(v));   // ...but the queue still drains
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ch.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(ch.pop(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(ch.pop(v));
}

TEST(Channel, BlockedProducerUnblocksOnClose)
{
    parallel::Channel<int> ch(1);
    ASSERT_TRUE(ch.push(0));
    std::atomic<bool> returned{false};
    std::thread producer([&] {
        ch.push(1); // blocks: channel full
        returned = true;
    });
    ch.close();
    producer.join(); // deadlock here = test timeout
    EXPECT_TRUE(returned);
}

TEST(Channel, ManyProducersManyConsumers)
{
    parallel::Channel<int> ch(8);
    constexpr int kPerProducer = 500;
    std::atomic<long> sum{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 3; ++p) {
        threads.emplace_back([&ch, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ch.push(p * kPerProducer + i);
        });
    }
    for (int c = 0; c < 3; ++c) {
        threads.emplace_back([&ch, &sum] {
            int v;
            while (ch.pop(v))
                sum += v;
        });
    }
    threads[0].join();
    threads[1].join();
    threads[2].join();
    ch.close();
    threads[3].join();
    threads[4].join();
    threads[5].join();
    long n = 3L * kPerProducer;
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, AsyncResultsAndExceptions)
{
    parallel::ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    auto ok = pool.async([] { return 6 * 7; });
    auto bad = pool.async([]() -> int { util::raise("worker failure"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(bad.get(), util::Error);
}

TEST(ThreadPool, ShutdownRunsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        parallel::ThreadPool pool(2, 64);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 32);
}

// --------------------------------------------------------- test fixtures

/** Addresses with enough self-similarity that lossy mode imitates. */
std::vector<uint64_t>
makeTrace(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> addrs;
    addrs.reserve(n);
    uint64_t base = 0x10000000;
    for (size_t i = 0; i < n; ++i) {
        base += rng.below(512);
        addrs.push_back(base & 0x3FFFFFFF);
    }
    return addrs;
}

core::AtcOptions
makeOptions(core::Mode mode, size_t n, const std::string &codec = "bwc")
{
    core::AtcOptions opt;
    opt.mode = mode;
    opt.pipeline.codec = codec;
    opt.pipeline.codec_block = 16 * 1024;
    opt.pipeline.buffer_addrs = n / 16 + 1;
    opt.lossy.interval_len = n / 8 + 1;
    return opt;
}

core::MemoryStore
writeSerial(const std::vector<uint64_t> &addrs,
            const core::AtcOptions &opt)
{
    core::MemoryStore store;
    core::AtcWriter writer(store, opt);
    writer.write(addrs.data(), addrs.size());
    writer.close();
    return store;
}

core::MemoryStore
writeParallel(const std::vector<uint64_t> &addrs,
              const core::AtcOptions &opt, size_t threads)
{
    core::MemoryStore store;
    parallel::ParallelOptions popt;
    popt.threads = threads;
    parallel::ParallelAtcWriter writer(store, opt, popt);
    // Feed in many odd-sized batches to exercise dispatch boundaries.
    size_t pos = 0;
    while (pos < addrs.size()) {
        size_t take =
            std::min<size_t>(4096 + pos % 513, addrs.size() - pos);
        writer.write(addrs.data() + pos, take);
        pos += take;
    }
    writer.close();
    return store;
}

void
expectStoresIdentical(const core::MemoryStore &a,
                      const core::MemoryStore &b)
{
    ASSERT_EQ(a.chunkCount(), b.chunkCount());
    EXPECT_EQ(a.infoBytes(), b.infoBytes());
    for (size_t id = 0; id < a.chunkCount(); ++id)
        EXPECT_EQ(a.chunkBytes(static_cast<uint32_t>(id)),
                  b.chunkBytes(static_cast<uint32_t>(id)))
            << "chunk " << id;
}

class ThreadSweep : public testing::TestWithParam<size_t>
{
};

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         testing::Values(size_t(1), size_t(2),
                                         size_t(8)));

// ------------------------------------------- parallel-vs-serial identity

TEST_P(ThreadSweep, LosslessContainerByteIdentical)
{
    auto addrs = makeTrace(60'000, 21);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size());
    auto serial = writeSerial(addrs, opt);
    auto par = writeParallel(addrs, opt, GetParam());
    expectStoresIdentical(serial, par);
}

TEST_P(ThreadSweep, LossyContainerByteIdentical)
{
    auto addrs = makeTrace(80'000, 22);
    auto opt = makeOptions(core::Mode::Lossy, addrs.size());
    opt.lossy.epsilon = 0.0; // every interval becomes a chunk
    auto serial = writeSerial(addrs, opt);
    auto par = writeParallel(addrs, opt, GetParam());
    ASSERT_GT(serial.chunkCount(), 1u); // the sweep must shard work
    expectStoresIdentical(serial, par);
}

TEST_P(ThreadSweep, LossyImitationByteIdentical)
{
    auto addrs = makeTrace(80'000, 24);
    auto opt = makeOptions(core::Mode::Lossy, addrs.size());
    opt.lossy.epsilon = 100.0; // every later interval imitates
    auto serial = writeSerial(addrs, opt);
    auto par = writeParallel(addrs, opt, GetParam());
    expectStoresIdentical(serial, par);
}

TEST(ParallelAtc, ParameterizedCodecSpecByteIdentical)
{
    // A registry spec with parameters must parallelize unchanged.
    auto addrs = makeTrace(40'000, 23);
    auto opt =
        makeOptions(core::Mode::Lossy, addrs.size(), "bwc:block=32k");
    auto serial = writeSerial(addrs, opt);
    auto par = writeParallel(addrs, opt, 4);
    expectStoresIdentical(serial, par);
}

// ------------------------------------------------------------ round trip

TEST_P(ThreadSweep, LosslessRoundTripThroughParallelReader)
{
    auto addrs = makeTrace(50'000, 31);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size());
    auto store = writeParallel(addrs, opt, GetParam());

    parallel::ParallelOptions popt;
    popt.threads = GetParam();
    parallel::ParallelAtcReader reader(store, popt);
    EXPECT_EQ(reader.mode(), core::Mode::Lossless);
    EXPECT_EQ(reader.count(), addrs.size());
    std::vector<uint64_t> back = trace::collect(reader);
    EXPECT_EQ(back, addrs);
}

TEST_P(ThreadSweep, LossyRoundTripMatchesSerialReader)
{
    auto addrs = makeTrace(80'000, 32);
    auto opt = makeOptions(core::Mode::Lossy, addrs.size());
    auto store = writeParallel(addrs, opt, GetParam());

    // Lossy regeneration is not the input, but serial and parallel
    // readers must regenerate the identical stream.
    core::AtcReader serial(store);
    std::vector<uint64_t> expect = trace::collect(serial);
    EXPECT_EQ(expect.size(), addrs.size());

    parallel::ParallelOptions popt;
    popt.threads = GetParam();
    parallel::ParallelAtcReader reader(store, popt);
    std::vector<uint64_t> got = trace::collect(reader);
    EXPECT_EQ(got, expect);
}

// ----------------------------------------------------------- cancelation

TEST(ParallelAtc, AbandonedWriterDoesNotDeadlock)
{
    auto addrs = makeTrace(60'000, 41);
    for (int round = 0; round < 3; ++round) {
        core::MemoryStore store;
        parallel::ParallelOptions popt;
        popt.threads = 4;
        popt.lookahead = 2;
        auto opt = makeOptions(core::Mode::Lossy, addrs.size());
        parallel::ParallelAtcWriter writer(store, opt, popt);
        writer.write(addrs.data(), addrs.size() / 2);
        // No close(): destruction must drain the pool and return.
    }
    SUCCEED();
}

TEST(ParallelAtc, AbandonedReaderDoesNotDeadlock)
{
    auto addrs = makeTrace(60'000, 42);
    auto lossless = writeSerial(
        addrs, makeOptions(core::Mode::Lossless, addrs.size()));
    auto lossy = writeSerial(
        addrs, makeOptions(core::Mode::Lossy, addrs.size()));
    for (int round = 0; round < 3; ++round) {
        for (core::MemoryStore *store : {&lossless, &lossy}) {
            parallel::ParallelOptions popt;
            popt.threads = 4;
            popt.lookahead = 1; // keep the prefetch worker blocked
            parallel::ParallelAtcReader reader(*store, popt);
            uint64_t buf[256];
            ASSERT_GT(reader.read(buf, 256), 0u);
            // Abandon mid-stream: destruction must unblock the
            // prefetch worker and join without deadlock.
        }
    }
    SUCCEED();
}

// ------------------------------------------------- integrity satellites

TEST(Integrity, StoreCodecCorruptionIsLoud)
{
    // "store" has no per-block CRC; before the stream trailer, a flip
    // in the payload came back as silently corrupt data.
    auto addrs = makeTrace(20'000, 51);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "store");
    auto store = writeSerial(addrs, opt);

    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(store.infoBytes().data(), store.infoBytes().size());
        auto chunk = store.chunkBytes(0);
        chunk[chunk.size() / 2] ^= 0x01; // middle of the payload
        auto csink = bad.createChunk(0);
        csink->write(chunk.data(), chunk.size());
    }
    core::AtcReader reader(bad);
    std::vector<uint64_t> out(addrs.size() + 1);
    size_t got = 0;
    util::Status failure;
    for (;;) {
        auto r = reader.tryRead(out.data() + got, out.size() - got);
        if (!r.ok()) {
            failure = r.status();
            break;
        }
        if (r.value() == 0)
            break;
        got += r.value();
    }
    ASSERT_FALSE(failure.ok());
    EXPECT_NE(failure.message().find("CRC"), std::string::npos)
        << failure.message();
}

TEST(Integrity, MissingCrcTrailerRejected)
{
    auto addrs = makeTrace(10'000, 52);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "store");
    auto store = writeSerial(addrs, opt);

    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(store.infoBytes().data(), store.infoBytes().size());
        auto chunk = store.chunkBytes(0);
        chunk.resize(chunk.size() - 4); // drop the trailer
        auto csink = bad.createChunk(0);
        csink->write(chunk.data(), chunk.size());
    }
    EXPECT_THROW(
        {
            core::AtcReader reader(bad);
            uint64_t v;
            while (reader.decode(&v)) {
            }
        },
        util::Error);
}

TEST(Integrity, EmptyChunkInMemoryStoreRejected)
{
    auto addrs = makeTrace(20'000, 53);
    auto store = writeSerial(
        addrs, makeOptions(core::Mode::Lossy, addrs.size()));
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(store.infoBytes().data(), store.infoBytes().size());
        for (size_t id = 0; id < store.chunkCount(); ++id) {
            auto csink = bad.createChunk(static_cast<uint32_t>(id));
            if (id != 0) {
                const auto &bytes =
                    store.chunkBytes(static_cast<uint32_t>(id));
                csink->write(bytes.data(), bytes.size());
            }
            // chunk 0 stays zero-length
        }
    }
    // The index scan at open touches every chunk, so the empty file is
    // rejected before the first read (older layouts surfaced it on the
    // read path) — either way it must be loud and name the problem.
    auto reader = core::AtcReader::open(bad);
    util::Status failure;
    if (!reader.ok()) {
        failure = reader.status();
    } else {
        uint64_t buf[1024];
        auto r = reader.value()->tryRead(buf, 1024);
        ASSERT_FALSE(r.ok());
        failure = r.status();
    }
    ASSERT_FALSE(failure.ok());
    EXPECT_NE(failure.message().find("empty"), std::string::npos)
        << failure.message();
}

TEST(Integrity, ZeroLengthChunkFileRejected)
{
    namespace fs = std::filesystem;
    std::string dir = testing::TempDir() + "/atc_zero_chunk";
    fs::remove_all(dir);

    auto addrs = makeTrace(20'000, 54);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size());
    {
        core::AtcWriter writer(dir, opt);
        writer.write(addrs.data(), addrs.size());
        writer.close();
    }
    // Truncate the single chunk file to zero bytes, as a partially
    // written directory would leave it.
    { std::ofstream trunc(dir + "/1.bwc", std::ios::trunc); }

    auto reader = core::AtcReader::open(dir);
    ASSERT_FALSE(reader.ok());
    EXPECT_NE(reader.status().message().find("empty"), std::string::npos)
        << reader.status().message();
    fs::remove_all(dir);
}

TEST(Integrity, TruncatedContainerReportsCount)
{
    // INFO records more values than the chunks can deliver: the reader
    // must say so rather than end cleanly short. Build it by pairing a
    // long trace's INFO with a short trace's chunk.
    auto short_trace = makeTrace(10'000, 55);
    auto long_trace = makeTrace(30'000, 55);
    auto opt = makeOptions(core::Mode::Lossless, long_trace.size());
    auto short_store = writeSerial(short_trace, opt);
    auto long_store = writeSerial(long_trace, opt);

    core::MemoryStore frankenstein;
    {
        auto sink = frankenstein.createInfo();
        sink->write(long_store.infoBytes().data(),
                    long_store.infoBytes().size());
        auto csink = frankenstein.createChunk(0);
        csink->write(short_store.chunkBytes(0).data(),
                     short_store.chunkBytes(0).size());
    }
    // The index cross-checks the scanned chunk layout against the
    // INFO count at open, so the mismatch is rejected before any
    // decode; a v1/v2 container would surface it at end of stream.
    auto reader = core::AtcReader::open(frankenstein);
    util::Status failure;
    if (!reader.ok()) {
        failure = reader.status();
    } else {
        std::vector<uint64_t> buf(4096);
        for (;;) {
            auto r = reader.value()->tryRead(buf.data(), buf.size());
            if (!r.ok()) {
                failure = r.status();
                break;
            }
            if (r.value() == 0)
                break;
        }
    }
    ASSERT_FALSE(failure.ok());
    EXPECT_NE(failure.message().find("truncated"), std::string::npos)
        << failure.message();
}

// ------------------------------------------------- container versions

TEST(ContainerVersions, AllVersionsRoundTripBothModesBothReaders)
{
    auto addrs = makeTrace(30'000, 71);
    for (uint8_t version : {uint8_t(1), uint8_t(2), uint8_t(3)}) {
        for (core::Mode mode :
             {core::Mode::Lossless, core::Mode::Lossy}) {
            auto opt = makeOptions(mode, addrs.size());
            opt.container_version = version;
            auto store = writeSerial(addrs, opt);

            core::AtcReader serial(store);
            EXPECT_EQ(serial.containerVersion(), version);
            std::vector<uint64_t> expect = trace::collect(serial);
            if (mode == core::Mode::Lossless)
                EXPECT_EQ(expect, addrs);
            else
                EXPECT_EQ(expect.size(), addrs.size());

            parallel::ParallelOptions popt;
            popt.threads = 4;
            parallel::ParallelAtcReader par(store, popt);
            EXPECT_EQ(par.containerVersion(), version);
            EXPECT_EQ(trace::collect(par), expect)
                << "version " << int(version) << " mode " << int(mode);
        }
    }
}

TEST_P(ThreadSweep, DowngradeContainersByteIdentical)
{
    // Downgrade-compatible output: the parallel writer must reproduce
    // the v1 (no CRC trailer) and v2 (legacy framing + trailer)
    // layouts byte-for-byte too; v3 is covered by the default-version
    // identity test above.
    auto addrs = makeTrace(50'000, 72);
    for (uint8_t version : {uint8_t(1), uint8_t(2)}) {
        auto opt = makeOptions(core::Mode::Lossless, addrs.size());
        opt.container_version = version;
        auto serial = writeSerial(addrs, opt);
        auto par = writeParallel(addrs, opt, GetParam());
        SCOPED_TRACE("container v" + std::to_string(version));
        expectStoresIdentical(serial, par);
    }
}

TEST(ContainerVersions, V3FramingIsSelfDescribing)
{
    // v2 and v3 containers of one trace differ only in framing, and
    // both readers pick the layout from INFO without caller hints.
    auto addrs = makeTrace(30'000, 73);
    auto v2_opt = makeOptions(core::Mode::Lossless, addrs.size());
    v2_opt.container_version = 2;
    auto v3_opt = makeOptions(core::Mode::Lossless, addrs.size());
    v3_opt.container_version = 3;
    auto v2 = writeSerial(addrs, v2_opt);
    auto v3 = writeSerial(addrs, v3_opt);
    EXPECT_NE(v2.chunkBytes(0), v3.chunkBytes(0));
    core::AtcReader r2(v2), r3(v3);
    EXPECT_EQ(trace::collect(r2), addrs);
    EXPECT_EQ(trace::collect(r3), addrs);
}

// ------------------------------------------- v3 corruption detection

/** Drain @p store through the serial reader; return the failure. */
util::Status
drainExpectFailure(core::MemoryStore &store)
{
    auto reader = core::AtcReader::open(store);
    if (!reader.ok())
        return reader.status();
    std::vector<uint64_t> buf(4096);
    for (;;) {
        auto r = reader.value()->tryRead(buf.data(), buf.size());
        if (!r.ok())
            return r.status();
        if (r.value() == 0)
            return util::Status();
    }
}

/** Copy @p store with chunk 0 replaced by @p chunk. */
core::MemoryStore
withChunk0(const core::MemoryStore &store, std::vector<uint8_t> chunk)
{
    core::MemoryStore out;
    {
        auto sink = out.createInfo();
        sink->write(store.infoBytes().data(), store.infoBytes().size());
        auto csink = out.createChunk(0);
        csink->write(chunk.data(), chunk.size());
    }
    return out;
}

/** Decode one LEB128 varint of @p bytes at @p pos; advances pos. */
uint64_t
varintAt(const std::vector<uint8_t> &bytes, size_t &pos)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t b = bytes.at(pos++);
        v |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

TEST(SeekableIntegrity, MismatchedCompressedLengthRejected)
{
    // Bump the first frame's declared compressed length by one: the
    // codec consumes fewer bytes than declared, which a v3 reader must
    // reject as corruption instead of silently resyncing.
    auto addrs = makeTrace(20'000, 81);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "store");
    auto store = writeSerial(addrs, opt);

    auto chunk = store.chunkBytes(0);
    size_t pos = 0;
    uint64_t header = varintAt(chunk, pos); // raw_size + 1
    ASSERT_GT(header, 0u);
    size_t comp_pos = pos;
    uint64_t comp = varintAt(chunk, pos);
    ASSERT_EQ(comp, header - 1); // "store" writes the block verbatim
    ASSERT_NE(chunk[comp_pos] & 0x7F, 0x7F); // +1 stays one byte
    chunk[comp_pos] += 1;

    auto bad = withChunk0(store, chunk);
    util::Status failure = drainExpectFailure(bad);
    ASSERT_FALSE(failure.ok());
    // Detected either as a compressed-length mismatch while decoding
    // or — since the open-time index scan — as the scanned headers
    // disagreeing with the stored frame index.
    EXPECT_TRUE(failure.message().find("length") != std::string::npos ||
                failure.message().find("index") != std::string::npos)
        << failure.message();
}

TEST(SeekableIntegrity, TruncatedFrameIndexRejected)
{
    auto addrs = makeTrace(20'000, 82);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "store");
    auto store = writeSerial(addrs, opt);

    // Chop the CRC trailer plus a slice of the frame index.
    auto chunk = store.chunkBytes(0);
    ASSERT_GT(chunk.size(), 12u);
    chunk.resize(chunk.size() - 10);

    auto bad = withChunk0(store, chunk);
    util::Status failure = drainExpectFailure(bad);
    ASSERT_FALSE(failure.ok());
    EXPECT_NE(failure.message().find("index"), std::string::npos)
        << failure.message();
}

TEST(SeekableIntegrity, CorruptFrameIndexEntryRejected)
{
    auto addrs = makeTrace(20'000, 83);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "store");
    auto store = writeSerial(addrs, opt);

    // Flip the low bit of the index's last varint byte (just before
    // the 4-byte CRC trailer): the recorded sizes no longer match the
    // frames actually decoded.
    auto chunk = store.chunkBytes(0);
    ASSERT_GT(chunk.size(), 5u);
    chunk[chunk.size() - 5] ^= 0x01;

    auto bad = withChunk0(store, chunk);
    util::Status failure = drainExpectFailure(bad);
    ASSERT_FALSE(failure.ok());
    EXPECT_NE(failure.message().find("index"), std::string::npos)
        << failure.message();
}

TEST(SeekableIntegrity, ParallelReaderReportsCrcMismatch)
{
    // Payload corruption under "store" (no per-block checksum) must be
    // caught by the CRC trailer verified across the *reassembled*
    // stream in the block-parallel reader.
    auto addrs = makeTrace(30'000, 84);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "store");
    auto store = writeSerial(addrs, opt);
    auto chunk = store.chunkBytes(0);
    chunk[chunk.size() / 2] ^= 0x01;
    auto bad = withChunk0(store, chunk);

    parallel::ParallelOptions popt;
    popt.threads = 4;
    parallel::ParallelAtcReader reader(bad, popt);
    std::vector<uint64_t> buf(4096);
    util::Status failure;
    for (;;) {
        auto r = reader.tryRead(buf.data(), buf.size());
        if (!r.ok()) {
            failure = r.status();
            break;
        }
        if (r.value() == 0)
            break;
    }
    ASSERT_FALSE(failure.ok());
    // Depending on where the flip lands, either the CRC check or a
    // frame-size probe fires; both must be loud.
    EXPECT_TRUE(failure.message().find("CRC") != std::string::npos ||
                failure.message().find("mismatch") != std::string::npos)
        << failure.message();
}

// --------------------------------------- block-parallel decode proof

/** "store" clone that records how many decodes run concurrently. */
class SleepyStoreCodec : public comp::StoreCodec
{
  public:
    std::string name() const override { return "zzz"; }

    void
    decompressBlock(util::ByteSource &in, size_t raw_size,
                    std::vector<uint8_t> &out) const override
    {
        int now = ++in_flight;
        int seen = max_in_flight.load();
        while (now > seen &&
               !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        // Long enough that decodes overlap even on a single core.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        comp::StoreCodec::decompressBlock(in, raw_size, out);
        --in_flight;
    }

    static inline std::atomic<int> in_flight{0};
    static inline std::atomic<int> max_in_flight{0};
};

TEST(SeekableDecode, FramesDecodeConcurrently)
{
    comp::CodecRegistry::instance().add(
        "zzz", [](const comp::CodecSpec &)
                   -> util::StatusOr<
                       std::shared_ptr<const comp::Codec>> {
            return std::shared_ptr<const comp::Codec>(
                std::make_shared<SleepyStoreCodec>());
        });

    auto addrs = makeTrace(60'000, 91);
    auto opt = makeOptions(core::Mode::Lossless, addrs.size(), "zzz");
    opt.pipeline.codec_block = 4 * 1024; // many frames
    auto store = writeSerial(addrs, opt);

    SleepyStoreCodec::max_in_flight = 0;
    parallel::ParallelOptions popt;
    popt.threads = 4;
    parallel::ParallelAtcReader reader(store, popt);
    EXPECT_EQ(trace::collect(reader), addrs);
    // The structural claim of container v3: several compressed frames
    // in flight at once (v1/v2 framing forces exactly one).
    EXPECT_GE(SleepyStoreCodec::max_in_flight.load(), 2)
        << "block-parallel decode did not overlap frame decodes";
}

// ------------------------------------------------- directory containers

TEST(ParallelAtc, DirectoryContainerInterchangeable)
{
    namespace fs = std::filesystem;
    std::string dir = testing::TempDir() + "/atc_parallel_dir";
    fs::remove_all(dir);

    auto addrs = makeTrace(40'000, 61);
    auto opt = makeOptions(core::Mode::Lossy, addrs.size());
    {
        parallel::ParallelOptions popt;
        popt.threads = 3;
        parallel::ParallelAtcWriter writer(dir, opt, popt);
        writer.write(addrs.data(), addrs.size());
        writer.close();
    }
    // The serial reader consumes the parallel writer's directory...
    core::AtcReader serial(dir);
    std::vector<uint64_t> a = trace::collect(serial);
    // ...and the parallel reader agrees with it, end to end.
    parallel::ParallelAtcReader par(dir);
    std::vector<uint64_t> b = trace::collect(par);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), addrs.size());
    fs::remove_all(dir);
}

// --------------------------------------------------- sharded cache filter

/** Byte addresses spread across many sets, with reuse for hits. */
std::vector<uint64_t>
filterTrace(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> addrs;
    addrs.reserve(n);
    uint64_t base = 0x2000'0000;
    for (size_t i = 0; i < n; ++i) {
        if (rng.below(64) == 0)
            base = 0x2000'0000 + (rng.below(32) << 20);
        // Mix of strides and revisits so every set sees hits, misses
        // and evictions.
        addrs.push_back(base + rng.below(1 << 16));
    }
    return addrs;
}

std::vector<uint64_t>
runFilter(const std::vector<uint64_t> &addrs, size_t threads,
          size_t batch, cache::CacheStats *icache = nullptr,
          cache::CacheStats *dcache = nullptr)
{
    std::vector<uint64_t> misses;
    trace::VectorTraceSink sink(misses);
    cache::FilterStage stage(sink);
    parallel::ThreadPool pool(threads);
    if (threads > 1) {
        stage.shard(pool);
        EXPECT_GT(stage.shardCount(), 1u);
    }
    size_t pos = 0;
    while (pos < addrs.size()) {
        size_t take = std::min(batch, addrs.size() - pos);
        stage.write(addrs.data() + pos, take);
        pos += take;
    }
    stage.close();
    if (icache != nullptr)
        *icache = stage.icacheStats();
    if (dcache != nullptr)
        *dcache = stage.dcacheStats();
    return misses;
}

TEST_P(ThreadSweep, ShardedFilterEmitsIdenticalMissStream)
{
    // Batches above the fan-out floor: the sharded path really runs.
    auto addrs = filterTrace(100'000, 31);
    cache::CacheStats serial_d, sharded_d;
    auto serial = runFilter(addrs, 1, 50'000, nullptr, &serial_d);
    auto sharded =
        runFilter(addrs, GetParam(), 50'000, nullptr, &sharded_d);
    EXPECT_EQ(serial, sharded);
    EXPECT_EQ(serial_d.accesses, sharded_d.accesses);
    EXPECT_EQ(serial_d.misses, sharded_d.misses);
    ASSERT_GT(serial.size(), 0u);
}

TEST_P(ThreadSweep, ShardedFilterSmallBatchesStayIdentical)
{
    // Below the fan-out floor the replicas run inline — the verdicts
    // must still match the serial filter exactly.
    auto addrs = filterTrace(20'000, 32);
    auto serial = runFilter(addrs, 1, 777);
    auto sharded = runFilter(addrs, GetParam(), 777);
    EXPECT_EQ(serial, sharded);
}

TEST(ShardedFilter, RefusesNonDecomposableConfigs)
{
    std::vector<uint64_t> misses;
    trace::VectorTraceSink sink(misses);
    parallel::ThreadPool pool(4);

    // An L2 uses a different set mask: shard() must stay serial.
    cache::CacheConfig l1 = cache::CacheConfig::paperL1();
    cache::CacheConfig l2 = l1;
    l2.sets = l1.sets * 8;
    cache::FilterStage with_l2(sink, l1, l2);
    with_l2.shard(pool);
    EXPECT_EQ(with_l2.shardCount(), 0u);

    // RANDOM replacement draws from one RNG stream shared across sets.
    cache::CacheConfig rnd = l1;
    rnd.policy = cache::ReplPolicy::RANDOM;
    cache::FilterStage with_rnd(sink, rnd);
    with_rnd.shard(pool);
    EXPECT_EQ(with_rnd.shardCount(), 0u);

    // Both still filter correctly in serial mode.
    auto addrs = filterTrace(10'000, 33);
    with_l2.write(addrs.data(), addrs.size());
    with_rnd.write(addrs.data(), addrs.size());
    EXPECT_GT(misses.size(), 0u);
}

// ---------------------------------------------------- pooled lossy encode

TEST_P(ThreadSweep, PooledLossySurvivesOddIntervalSlicing)
{
    // interval_len deliberately coprime to every batch size the
    // parallel writer sees, so dispatch boundaries never align with
    // write() calls; the container must stay byte-identical.
    auto addrs = makeTrace(70'000, 23);
    auto opt = makeOptions(core::Mode::Lossy, addrs.size());
    opt.lossy.interval_len = 9973;
    opt.lossy.epsilon = 0.05; // mix of emitted chunks and imitations
    auto serial = writeSerial(addrs, opt);
    auto par = writeParallel(addrs, opt, GetParam());
    expectStoresIdentical(serial, par);
}

TEST_P(ThreadSweep, AbandonedLossyWriterDestructsCleanly)
{
    // Destroy a writer mid-stream with signature work still queued:
    // the pool tasks share ownership of their payloads, so teardown
    // must neither crash nor deadlock (TSan-checked in CI).
    auto addrs = makeTrace(40'000, 24);
    auto opt = makeOptions(core::Mode::Lossy, addrs.size());
    opt.lossy.interval_len = 1013;
    core::MemoryStore store;
    parallel::ParallelOptions popt;
    popt.threads = GetParam();
    {
        parallel::ParallelAtcWriter writer(store, opt, popt);
        writer.write(addrs.data(), addrs.size());
        // no close(): abandoned
    }
    SUCCEED();
}

} // namespace
} // namespace atc
