/**
 * @file
 * Unit tests for the util module: byte streams, varints, bit I/O,
 * CRC-32 and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/bitio.hpp"
#include "util/bytestream.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace atc {
namespace {

TEST(Status, OkByDefault)
{
    util::Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(s.message().empty());
    EXPECT_NO_THROW(s.orThrow());
}

TEST(Status, ErrorCarriesMessage)
{
    util::Status s = util::Status::error("boom");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.message(), "boom");
    EXPECT_THROW(s.orThrow(), util::Error);
}

TEST(VectorSink, AppendsBytes)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    sink.writeByte(1);
    uint8_t data[3] = {2, 3, 4};
    sink.write(data, 3);
    EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST(MemorySource, ReadsAndTracksRemaining)
{
    std::vector<uint8_t> data{10, 20, 30, 40, 50};
    util::MemorySource src(data);
    uint8_t buf[3];
    EXPECT_EQ(src.read(buf, 3), 3u);
    EXPECT_EQ(buf[0], 10);
    EXPECT_EQ(src.remaining(), 2u);
    EXPECT_EQ(src.read(buf, 3), 2u);
    EXPECT_EQ(src.read(buf, 3), 0u);
}

TEST(MemorySource, ReadExactThrowsOnTruncation)
{
    std::vector<uint8_t> data{1, 2};
    util::MemorySource src(data);
    uint8_t buf[4];
    EXPECT_THROW(src.readExact(buf, 4), util::Error);
}

TEST(CountingSink, CountsWithoutStoring)
{
    util::CountingSink sink;
    uint8_t data[100] = {};
    sink.write(data, 100);
    sink.write(data, 23);
    EXPECT_EQ(sink.count(), 123u);
}

TEST(FileIo, RoundTrip)
{
    std::string path = testing::TempDir() + "/atc_util_file_test.bin";
    {
        util::FileSink sink(path);
        uint8_t data[5] = {9, 8, 7, 6, 5};
        sink.write(data, 5);
        EXPECT_EQ(sink.bytesWritten(), 5u);
        sink.close();
    }
    {
        util::FileSource src(path);
        uint8_t buf[8];
        EXPECT_EQ(src.read(buf, 8), 5u);
        EXPECT_EQ(buf[0], 9);
        EXPECT_EQ(buf[4], 5);
    }
    std::remove(path.c_str());
}

TEST(FileIo, OpenMissingFileThrows)
{
    EXPECT_THROW(util::FileSource("/nonexistent/path/x.bin"), util::Error);
}

TEST(FileIo, SkipBeyondTwoGiB)
{
    // fseek(long) truncated skips >= 2 GiB where long is 32 bits; the
    // skip must go through the platform's 64-bit positioning. A sparse
    // file keeps the disk footprint at a few pages.
    std::string path = testing::TempDir() + "/atc_util_sparse_test.bin";
    constexpr uint64_t kFar = (uint64_t(2) << 30) + (uint64_t(1) << 29);
    {
        std::FILE *fp = std::fopen(path.c_str(), "wb");
        ASSERT_NE(fp, nullptr);
        ASSERT_EQ(std::fputc('A', fp), 'A');
#if defined(_WIN32)
        ASSERT_EQ(_fseeki64(fp, static_cast<int64_t>(kFar), SEEK_SET), 0);
#else
        ASSERT_EQ(fseeko(fp, static_cast<off_t>(kFar), SEEK_SET), 0);
#endif
        ASSERT_EQ(std::fputc('Z', fp), 'Z');
        std::fclose(fp);
    }
    {
        util::FileSource src(path);
        uint8_t b = 0;
        ASSERT_EQ(src.read(&b, 1), 1u);
        EXPECT_EQ(b, 'A');
        src.skip(kFar - 1); // lands exactly on the far byte
        ASSERT_EQ(src.read(&b, 1), 1u);
        EXPECT_EQ(b, 'Z');
        // And past-the-end skips still report truncation.
        EXPECT_THROW(src.skip(1), util::Error);
    }
    std::remove(path.c_str());
}

TEST(LittleEndian, FixedWidthRoundTrip)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::writeLE<uint32_t>(sink, 0xDEADBEEFu);
    util::writeLE<uint64_t>(sink, 0x0123456789ABCDEFull);
    EXPECT_EQ(out.size(), 12u);
    EXPECT_EQ(out[0], 0xEF); // little endian
    util::MemorySource src(out);
    EXPECT_EQ(util::readLE<uint32_t>(src), 0xDEADBEEFu);
    EXPECT_EQ(util::readLE<uint64_t>(src), 0x0123456789ABCDEFull);
}

class VarintTest : public testing::TestWithParam<uint64_t>
{
};

TEST_P(VarintTest, RoundTrip)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::writeVarint(sink, GetParam());
    util::MemorySource src(out);
    EXPECT_EQ(util::readVarint(src), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintTest,
    testing::Values(0ull, 1ull, 127ull, 128ull, 255ull, 16383ull, 16384ull,
                    (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 12345,
                    ~0ull));

TEST(Varint, EncodingIsMinimal)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::writeVarint(sink, 127);
    EXPECT_EQ(out.size(), 1u);
    out.clear();
    util::writeVarint(sink, 128);
    EXPECT_EQ(out.size(), 2u);
}

TEST(BitIo, SingleBits)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::BitWriter bw(sink);
    for (int i = 0; i < 10; ++i)
        bw.writeBit(i & 1);
    bw.alignAndFlush();
    ASSERT_EQ(out.size(), 2u);

    util::MemorySource src(out);
    util::BitReader br(src);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(br.readBit(), static_cast<uint32_t>(i & 1));
}

TEST(BitIo, MultiBitFieldsMsbFirst)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::BitWriter bw(sink);
    bw.writeBits(0b101, 3);
    bw.writeBits(0b11110000, 8);
    bw.writeBits(0x1FFFF, 17);
    bw.alignAndFlush();

    util::MemorySource src(out);
    util::BitReader br(src);
    EXPECT_EQ(br.readBits(3), 0b101u);
    EXPECT_EQ(br.readBits(8), 0b11110000u);
    EXPECT_EQ(br.readBits(17), 0x1FFFFu);
}

TEST(BitIo, AlignSkipsToByteBoundary)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::BitWriter bw(sink);
    bw.writeBits(1, 3);
    bw.alignAndFlush();
    bw.writeBits(0xAB, 8);
    bw.alignAndFlush();

    util::MemorySource src(out);
    util::BitReader br(src);
    br.readBits(3);
    br.align();
    EXPECT_EQ(br.readBits(8), 0xABu);
}

TEST(BitIo, BitCountTracksPadding)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::BitWriter bw(sink);
    bw.writeBits(0, 3);
    bw.alignAndFlush();
    EXPECT_EQ(bw.bitCount(), 8u);
}

TEST(Crc32, MatchesKnownVector)
{
    // IEEE CRC-32 of "123456789" is 0xCBF43926.
    const char *s = "123456789";
    EXPECT_EQ(util::crc32(reinterpret_cast<const uint8_t *>(s), 9),
              0xCBF43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(util::crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> data(1000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7);
    util::Crc32 crc;
    crc.update(data.data(), 400);
    crc.update(data.data() + 400, 600);
    EXPECT_EQ(crc.value(), util::crc32(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip)
{
    std::vector<uint8_t> data(64, 0x55);
    uint32_t base = util::crc32(data.data(), data.size());
    data[17] ^= 0x04;
    EXPECT_NE(base, util::crc32(data.data(), data.size()));
}

TEST(Rng, DeterministicForSeed)
{
    util::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    util::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    util::Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, UniformCoversRange)
{
    util::Rng rng(9);
    double mn = 1.0, mx = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        mn = std::min(mn, u);
        mx = std::max(mx, u);
        sum += u;
    }
    EXPECT_GE(mn, 0.0);
    EXPECT_LT(mx, 1.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

} // namespace
} // namespace atc
