/**
 * @file
 * Unit tests for move-to-front recoding and zero-run RLE.
 */

#include <gtest/gtest.h>

#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "util/status.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

TEST(Mtf, FirstOccurrenceYieldsByteValue)
{
    comp::MtfCoder coder;
    // With the identity initial ordering, the first encode of value v
    // produces rank v.
    EXPECT_EQ(coder.encode(42), 42);
}

TEST(Mtf, RepeatYieldsZero)
{
    comp::MtfCoder coder;
    coder.encode(42);
    EXPECT_EQ(coder.encode(42), 0);
    EXPECT_EQ(coder.encode(42), 0);
}

TEST(Mtf, RecentlyUsedGetSmallRanks)
{
    comp::MtfCoder coder;
    coder.encode(10);
    coder.encode(20);
    EXPECT_EQ(coder.encode(10), 1); // one step behind 20
}

TEST(Mtf, EncodeDecodeAreInverse)
{
    util::Rng rng(3);
    std::vector<uint8_t> data(5000);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.below(7) * 37);
    auto enc = comp::mtfEncode(data.data(), data.size());
    auto dec = comp::mtfDecode(enc.data(), enc.size());
    EXPECT_EQ(dec, data);
}

TEST(Mtf, LocalReuseProducesZeros)
{
    std::vector<uint8_t> data(1000, 7);
    auto enc = comp::mtfEncode(data.data(), data.size());
    EXPECT_EQ(enc[0], 7);
    for (size_t i = 1; i < enc.size(); ++i)
        EXPECT_EQ(enc[i], 0);
}

TEST(Mtf, ResetRestoresIdentity)
{
    comp::MtfCoder coder;
    coder.encode(200);
    coder.reset();
    EXPECT_EQ(coder.encode(200), 200);
}

TEST(Rle, EmptyInputIsJustEob)
{
    auto symbols = comp::rleEncode(nullptr, 0);
    ASSERT_EQ(symbols.size(), 1u);
    EXPECT_EQ(symbols[0], comp::kEob);
    EXPECT_TRUE(comp::rleDecode(symbols).empty());
}

TEST(Rle, NonzeroBytesShiftUp)
{
    std::vector<uint8_t> data{1, 255, 100};
    auto symbols = comp::rleEncode(data.data(), data.size());
    EXPECT_EQ(symbols[0], 2);   // 1 + 1
    EXPECT_EQ(symbols[1], 256); // 255 + 1
    EXPECT_EQ(symbols[2], 101);
    EXPECT_EQ(symbols[3], comp::kEob);
}

struct RunCase
{
    uint64_t run;
    std::vector<uint16_t> digits;
};

class RleRunEncoding : public testing::TestWithParam<RunCase>
{
};

TEST_P(RleRunEncoding, BijectiveBase2)
{
    std::vector<uint8_t> data(GetParam().run, 0);
    auto symbols = comp::rleEncode(data.data(), data.size());
    std::vector<uint16_t> expected = GetParam().digits;
    expected.push_back(comp::kEob);
    EXPECT_EQ(symbols, expected);
    EXPECT_EQ(comp::rleDecode(symbols), data);
}

INSTANTIATE_TEST_SUITE_P(
    Runs, RleRunEncoding,
    testing::Values(RunCase{1, {comp::kRunA}}, RunCase{2, {comp::kRunB}},
                    RunCase{3, {comp::kRunA, comp::kRunA}},
                    RunCase{4, {comp::kRunB, comp::kRunA}},
                    RunCase{5, {comp::kRunA, comp::kRunB}},
                    RunCase{6, {comp::kRunB, comp::kRunB}},
                    RunCase{7, {comp::kRunA, comp::kRunA, comp::kRunA}}));

TEST(Rle, LongRunIsLogarithmic)
{
    std::vector<uint8_t> data(1'000'000, 0);
    auto symbols = comp::rleEncode(data.data(), data.size());
    EXPECT_LE(symbols.size(), 22u); // ~log2(1e6) digits + EOB
    EXPECT_EQ(comp::rleDecode(symbols), data);
}

TEST(Rle, MixedContentRoundTrip)
{
    util::Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> data(rng.below(3000));
        for (auto &b : data)
            b = rng.below(3) ? 0 : static_cast<uint8_t>(rng.below(256));
        auto symbols = comp::rleEncode(data.data(), data.size());
        EXPECT_EQ(comp::rleDecode(symbols), data);
    }
}

TEST(Rle, DecodeRejectsMissingEob)
{
    std::vector<uint16_t> symbols{5, 6};
    EXPECT_THROW(comp::rleDecode(symbols), util::Error);
}

TEST(Rle, DecodeRejectsTrailingSymbols)
{
    std::vector<uint16_t> symbols{5, comp::kEob, 6};
    EXPECT_THROW(comp::rleDecode(symbols), util::Error);
}

TEST(MtfRle, PipelineShrinksRepetitiveData)
{
    // BWT-like data: long runs of the same byte.
    std::vector<uint8_t> data;
    for (int run = 0; run < 100; ++run) {
        uint8_t value = static_cast<uint8_t>(run * 13);
        for (int i = 0; i < 500; ++i)
            data.push_back(value);
    }
    auto mtf = comp::mtfEncode(data.data(), data.size());
    auto symbols = comp::rleEncode(mtf.data(), mtf.size());
    // 100 runs -> ~100 literals + ~100*9 run digits, far below 50000.
    EXPECT_LT(symbols.size(), 2000u);

    auto back = comp::mtfDecode(comp::rleDecode(symbols).data(),
                                data.size());
    EXPECT_EQ(back, data);
}

} // namespace
} // namespace atc
