/**
 * @file
 * Sampling-study tests: SamplePlan grammar (canonical round-trip,
 * deterministic uniform draws, validation of plans that do not fit the
 * trace), engine-vs-manual parity on a lossless container (the merged
 * result must equal hand-fed simulators over the same slices),
 * determinism across worker counts, decoded-byte attribution (a
 * sampled run decodes a fraction of what the full reference pass
 * decodes), the lossy seek-approximation bound (kSeek windows land on
 * interval boundaries at most one interval early and perturb miss
 * ratios only slightly vs kRange), and served-backend parity: an
 * in-process TraceServer must yield byte-identical window CRCs and
 * identical merged histograms to the local backend over the same
 * container.
 */

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "atc/atc.hpp"
#include "atc/index.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "study/sample_plan.hpp"
#include "study/sample_study.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

using study::Fetch;
using study::SamplePlan;
using study::StudyOptions;

std::vector<uint64_t>
makeTrace(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> trace(n);
    uint64_t base = 0x10000000;
    for (auto &v : trace) {
        base += rng.below(4096);
        v = (rng.below(16) == 0) ? rng.next() >> 20 : base;
    }
    return trace;
}

core::AtcOptions
makeOptions(core::Mode mode)
{
    core::AtcOptions opt;
    opt.mode = mode;
    // Small buffers/blocks: the test traces must span many frames for
    // "sampling decodes only the covering frames" to be observable.
    opt.pipeline.buffer_addrs = 777;
    opt.pipeline.codec_block = 4096;
    opt.lossy.interval_len = 1000;
    opt.lossy.epsilon = 0.5;
    return opt;
}

core::MemoryStore
writeContainer(const std::vector<uint64_t> &trace,
               const core::AtcOptions &opt)
{
    core::MemoryStore store;
    core::AtcWriter writer(store, opt);
    writer.write(trace.data(), trace.size());
    writer.close();
    return store;
}

// ------------------------------------------------------------ the plan

TEST(SamplePlan, SystematicShapeAndCanonicalRoundTrip)
{
    auto plan = SamplePlan::build(
        "systematic:windows=4,len=1000,warmup=100", 100'000);
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    const auto &w = plan.value().windows();
    ASSERT_EQ(w.size(), 4u);
    for (size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w[i].begin, i * 25'000);
        EXPECT_EQ(w[i].warmup, 100u);
        EXPECT_EQ(w[i].measure, 1000u);
    }
    EXPECT_EQ(plan.value().measuredRecords(), 4000u);
    EXPECT_EQ(plan.value().fetchedRecords(), 4400u);

    // describe() is canonical: rebuilding from it reproduces the plan.
    auto again =
        SamplePlan::build(plan.value().describe(), 100'000);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().describe(), plan.value().describe());
    ASSERT_EQ(again.value().windows().size(), w.size());
    for (size_t i = 0; i < w.size(); ++i)
        EXPECT_EQ(again.value().windows()[i].begin, w[i].begin);
}

TEST(SamplePlan, DefaultsAndSuffixes)
{
    auto plan = SamplePlan::build("systematic:windows=2,len=4k",
                                  1'000'000);
    ASSERT_TRUE(plan.ok());
    // warmup defaults to len/8; len takes the k suffix.
    EXPECT_EQ(plan.value().windows()[0].measure, 4096u);
    EXPECT_EQ(plan.value().windows()[0].warmup, 512u);

    auto zero = SamplePlan::build(
        "systematic:windows=2,len=4k,warmup=0", 1'000'000);
    ASSERT_TRUE(zero.ok());
    EXPECT_EQ(zero.value().windows()[0].warmup, 0u);
}

TEST(SamplePlan, UniformIsDeterministicSortedAndSeeded)
{
    auto a = SamplePlan::build("uniform:windows=16,len=100,seed=7",
                               50'000);
    auto b = SamplePlan::build("uniform:windows=16,len=100,seed=7",
                               50'000);
    auto c = SamplePlan::build("uniform:windows=16,len=100,seed=8",
                               50'000);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_EQ(a.value().windows().size(), 16u);
    bool differs = false;
    for (size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(a.value().windows()[i].begin,
                  b.value().windows()[i].begin);
        differs = differs || a.value().windows()[i].begin !=
                                 c.value().windows()[i].begin;
        if (i > 0)
            EXPECT_GE(a.value().windows()[i].begin,
                      a.value().windows()[i - 1].begin);
        EXPECT_LE(a.value().windows()[i].end(), 50'000u);
    }
    EXPECT_TRUE(differs);
}

TEST(SamplePlan, ExplicitStarts)
{
    auto plan = SamplePlan::build(
        "explicit:at=0+4k+30000,len=512,warmup=0", 50'000);
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    ASSERT_EQ(plan.value().windows().size(), 3u);
    EXPECT_EQ(plan.value().windows()[1].begin, 4096u);
    EXPECT_EQ(plan.value().windows()[2].begin, 30'000u);
}

TEST(SamplePlan, RejectsWhatDoesNotFit)
{
    EXPECT_FALSE(SamplePlan::build("smarts:windows=4", 1000).ok());
    EXPECT_FALSE(
        SamplePlan::build("systematic:windows=4,foo=1", 100'000).ok());
    // One window longer than the trace.
    EXPECT_FALSE(
        SamplePlan::build("systematic:windows=1,len=2000", 1000).ok());
    // Windows collectively overcover the trace.
    EXPECT_FALSE(
        SamplePlan::build("systematic:windows=100,len=100,warmup=0",
                          5000)
            .ok());
    // Explicit window running past the end.
    EXPECT_FALSE(
        SamplePlan::build("explicit:at=900,len=200,warmup=0", 1000)
            .ok());
    EXPECT_FALSE(
        SamplePlan::build("explicit:at=1x,len=10", 1000).ok());
}

// ---------------------------------------------------------- the engine

TEST(SampleStudy, MatchesManuallyFedSimulators)
{
    auto trace = makeTrace(40'000, 11);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));
    auto index = core::AtcIndex::openOrThrow(store);

    StudyOptions opt;
    opt.sets = {64, 256};
    opt.max_ways = 8;
    opt.threads = 3;
    auto plan = SamplePlan::build(
        "explicit:at=100+9000+30000,len=2000,warmup=500", index->size());
    ASSERT_TRUE(plan.ok());

    auto run = study::runSampleStudy(index, plan.value(), opt);
    ASSERT_TRUE(run.ok()) << run.status().message();
    const study::StudyResult &result = run.value();
    ASSERT_EQ(result.windows.size(), 3u);

    // Hand-feed the same slices of the original trace.
    for (size_t s = 0; s < opt.sets.size(); ++s) {
        cache::StackSimulator manual(opt.sets[s], opt.max_ways);
        for (const auto &w : plan.value().windows()) {
            cache::StackSimulator one(opt.sets[s], opt.max_ways);
            one.setWarmup(true);
            for (uint64_t i = w.begin; i < w.begin + w.warmup; ++i)
                one.access(trace[i] >> 6);
            one.setWarmup(false);
            for (uint64_t i = w.begin + w.warmup; i < w.end(); ++i)
                one.access(trace[i] >> 6);
            manual.merge(one);
        }
        EXPECT_EQ(result.merged[s].accesses(), manual.accesses());
        EXPECT_EQ(result.merged[s].coldMisses(), manual.coldMisses());
        EXPECT_EQ(result.merged[s].distanceHistogram(),
                  manual.distanceHistogram());
        for (uint32_t ways = 1; ways <= opt.max_ways; ++ways)
            EXPECT_DOUBLE_EQ(result.missRatio(s, ways),
                             manual.missRatio(ways));
    }
    EXPECT_EQ(result.measured_records, 6000u);
    EXPECT_EQ(result.fetched_records, 7500u);
}

TEST(SampleStudy, DeterministicAcrossWorkerCounts)
{
    auto trace = makeTrace(60'000, 23);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));
    auto index = core::AtcIndex::openOrThrow(store);
    auto plan = SamplePlan::build("systematic:windows=12,len=2k",
                                  index->size());
    ASSERT_TRUE(plan.ok());

    StudyOptions one;
    one.threads = 1;
    StudyOptions many;
    many.threads = 8;
    auto a = study::runSampleStudy(index, plan.value(), one);
    auto b = study::runSampleStudy(index, plan.value(), many);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().windowsCrc(), b.value().windowsCrc());
    EXPECT_EQ(a.value().histCrc(), b.value().histCrc());
    for (size_t s = 0; s < a.value().sets.size(); ++s)
        for (uint32_t w = 1; w <= a.value().max_ways; ++w)
            EXPECT_DOUBLE_EQ(a.value().missRatio(s, w),
                             b.value().missRatio(s, w));
}

TEST(SampleStudy, DecodesAFractionOfTheFullPass)
{
    if (!obs::enabled())
        GTEST_SKIP() << "observability compiled out";
    auto trace = makeTrace(200'000, 31);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));
    // Tiny cache so the full pass cannot ride the sampled run's blocks.
    core::IndexOptions iopt;
    iopt.cache_bytes = 0;
    auto index = core::AtcIndex::openOrThrow(store, iopt);

    // 8 windows of ~1.5k fetched records each: ~6% of the trace.
    auto plan = SamplePlan::build(
        "systematic:windows=8,len=1330,warmup=166", index->size());
    ASSERT_TRUE(plan.ok());
    StudyOptions opt;
    opt.sets = {256};
    auto sampled = study::runSampleStudy(index, plan.value(), opt);
    ASSERT_TRUE(sampled.ok());
    auto reference = study::runFullReference(index, opt);
    ASSERT_TRUE(reference.ok());

    ASSERT_GT(sampled.value().decoded_bytes, 0);
    ASSERT_GT(reference.value().decoded_bytes, 0);
    // Frame granularity rounds each window up to whole frames, so the
    // sampled fraction exceeds the 6% record share — but it must stay
    // far below a full decode.
    EXPECT_LT(sampled.value().decoded_bytes,
              reference.value().decoded_bytes / 2);
    EXPECT_LT(sampled.value().decoded_frames,
              reference.value().decoded_frames);
    // And the estimate the cheap pass produced is a real estimate.
    EXPECT_NEAR(sampled.value().missRatio(0, 4),
                reference.value().missRatio(0, 4), 0.1);
}

TEST(SampleStudy, LossySeekApproximationIsBounded)
{
    auto trace = makeTrace(80'000, 47);
    core::AtcOptions copt = makeOptions(core::Mode::Lossy);
    auto store = writeContainer(trace, copt);
    auto index = core::AtcIndex::openOrThrow(store);
    ASSERT_EQ(index->mode(), core::Mode::Lossy);

    // Starts deliberately off the 1000-record interval grid.
    auto plan = SamplePlan::build(
        "explicit:at=1500+33333+60001,len=4000,warmup=400",
        index->size());
    ASSERT_TRUE(plan.ok());

    StudyOptions range;
    range.sets = {256};
    StudyOptions seek = range;
    seek.fetch = Fetch::kSeek;
    auto exact = study::runSampleStudy(index, plan.value(), range);
    auto approx = study::runSampleStudy(index, plan.value(), seek);
    ASSERT_TRUE(exact.ok() && approx.ok());

    // kRange is record-exact; kSeek lands each window on the
    // containing interval boundary — earlier by less than one interval.
    for (const auto &w : approx.value().windows) {
        EXPECT_LE(w.actual_begin, w.window.begin);
        EXPECT_LT(w.window.begin - w.actual_begin,
                  copt.lossy.interval_len);
    }
    for (const auto &w : exact.value().windows)
        EXPECT_EQ(w.actual_begin, w.window.begin);

    // The shifted windows still estimate the same cache behaviour:
    // the perturbation stays well under the sampling error budget.
    for (uint32_t ways = 1; ways <= range.max_ways; ++ways)
        EXPECT_NEAR(approx.value().missRatio(0, ways),
                    exact.value().missRatio(0, ways), 0.05);
}

TEST(SampleStudy, ServedBackendMatchesLocalExactly)
{
    auto trace = makeTrace(50'000, 59);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));
    auto index = core::AtcIndex::openOrThrow(store);

    serve::TraceServer server;
    ASSERT_TRUE(server.addContainer("t", store).ok());
    ASSERT_TRUE(server.start().ok());
    ASSERT_NE(server.port(), 0);

    auto plan = SamplePlan::build("systematic:windows=10,len=1500",
                                  index->size());
    ASSERT_TRUE(plan.ok());
    StudyOptions opt;
    opt.sets = {64, 512};
    opt.threads = 4;
    opt.pipeline_depth = 3;

    auto local = study::runSampleStudy(index, plan.value(), opt);
    ASSERT_TRUE(local.ok()) << local.status().message();
    auto served = study::runSampleStudyServed(
        "127.0.0.1", server.port(), "t", plan.value(), opt);
    ASSERT_TRUE(served.ok()) << served.status().message();
    server.stop();

    // Byte-identical window records, identical merged histograms.
    ASSERT_EQ(local.value().windows.size(),
              served.value().windows.size());
    for (size_t i = 0; i < local.value().windows.size(); ++i) {
        EXPECT_EQ(local.value().windows[i].crc,
                  served.value().windows[i].crc);
        EXPECT_EQ(local.value().windows[i].actual_begin,
                  served.value().windows[i].actual_begin);
    }
    EXPECT_EQ(local.value().windowsCrc(), served.value().windowsCrc());
    EXPECT_EQ(local.value().histCrc(), served.value().histCrc());
    for (size_t s = 0; s < opt.sets.size(); ++s)
        for (uint32_t w = 1; w <= opt.max_ways; ++w)
            EXPECT_DOUBLE_EQ(local.value().missRatio(s, w),
                             served.value().missRatio(s, w));
}

TEST(SampleStudy, RejectsBadGeometryAndEmptyPlans)
{
    auto trace = makeTrace(10'000, 3);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));
    auto index = core::AtcIndex::openOrThrow(store);
    auto plan = SamplePlan::build("systematic:windows=2,len=100",
                                  index->size());
    ASSERT_TRUE(plan.ok());

    StudyOptions bad;
    bad.sets = {100};  // not a power of two
    EXPECT_FALSE(study::runSampleStudy(index, plan.value(), bad).ok());
    StudyOptions none;
    none.sets = {};
    EXPECT_FALSE(study::runSampleStudy(index, plan.value(), none).ok());
}

} // namespace
} // namespace atc
