/**
 * @file
 * Tests for the trace substrate: generators, the synthetic SPEC-like
 * suite, raw trace I/O and statistics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "trace/generators.hpp"
#include "trace/stats.hpp"
#include "trace/suite.hpp"
#include "trace/trace_io.hpp"

namespace atc {
namespace {

TEST(SequentialStream, WrapsAtFootprint)
{
    trace::SequentialStream g(1000, 64, 16);
    EXPECT_EQ(g.next(), 1000u);
    EXPECT_EQ(g.next(), 1016u);
    EXPECT_EQ(g.next(), 1032u);
    EXPECT_EQ(g.next(), 1048u);
    EXPECT_EQ(g.next(), 1000u); // wrapped
}

TEST(LoopNest, SweepsInnerBlockBeforeAdvancing)
{
    trace::LoopNest g(0, 64, 32, 2, 16);
    // Inner block [0,32) swept twice at stride 16, then window moves.
    EXPECT_EQ(g.next(), 0u);
    EXPECT_EQ(g.next(), 16u);
    EXPECT_EQ(g.next(), 0u);
    EXPECT_EQ(g.next(), 16u);
    EXPECT_EQ(g.next(), 32u);
    EXPECT_EQ(g.next(), 48u);
    EXPECT_EQ(g.next(), 32u);
    EXPECT_EQ(g.next(), 48u);
    EXPECT_EQ(g.next(), 0u); // footprint wrapped
}

TEST(RandomAccess, StaysInFootprintAndAligned)
{
    trace::RandomAccess g(0x10000, 4096, 64, 7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t a = g.next();
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x10000u + 4096);
        EXPECT_EQ(a % 64, 0u);
    }
}

TEST(PointerChase, VisitsEveryNodeOncePerCycle)
{
    trace::PointerChase g(0, 97, 3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 97; ++i)
        seen.insert(g.next());
    EXPECT_EQ(seen.size(), 97u); // full cycle, no short loops
    // Second cycle repeats the same sequence.
    trace::PointerChase g2(0, 97, 3);
    std::vector<uint64_t> first, second;
    for (int i = 0; i < 97; ++i)
        first.push_back(g2.next());
    for (int i = 0; i < 97; ++i)
        second.push_back(g2.next());
    EXPECT_EQ(first, second);
}

TEST(RoundRobin, DeterministicBursts)
{
    std::vector<trace::GeneratorPtr> children;
    children.push_back(std::make_unique<trace::SequentialStream>(0, 1 << 20, 1));
    children.push_back(
        std::make_unique<trace::SequentialStream>(1 << 30, 1 << 20, 1));
    trace::RoundRobin g(std::move(children), {2, 1});
    EXPECT_LT(g.next(), 1u << 30);
    EXPECT_LT(g.next(), 1u << 30);
    EXPECT_GE(g.next(), 1u << 30);
    EXPECT_LT(g.next(), 1u << 30);
}

TEST(Phased, CyclesThroughPhases)
{
    std::vector<trace::Phased::Phase> phases;
    phases.push_back({std::make_unique<trace::SequentialStream>(0, 1024, 1),
                      3});
    phases.push_back(
        {std::make_unique<trace::SequentialStream>(1 << 20, 1024, 1), 2});
    trace::Phased g(std::move(phases));
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int i = 0; i < 3; ++i)
            EXPECT_LT(g.next(), 1u << 20) << "cycle " << cycle;
        for (int i = 0; i < 2; ++i)
            EXPECT_GE(g.next(), 1u << 20) << "cycle " << cycle;
    }
}

TEST(Drift, MovesToFreshRegions)
{
    trace::Drift g(0, 1 << 16, 100, 8, 2, 5);
    std::set<uint64_t> regions;
    for (int i = 0; i < 1000; ++i)
        regions.insert(g.next() >> 16);
    EXPECT_GE(regions.size(), 8u); // 1000 accesses / 100 per region
}

TEST(CodeStream, StaysInCodeRegion)
{
    trace::CodeStream g(0x400000, 8, 8192, 100, 3);
    for (int i = 0; i < 1000; ++i) {
        uint64_t a = g.next();
        EXPECT_GE(a, 0x400000u);
        EXPECT_LT(a, 0x400000u + 8 * 8192);
    }
}

TEST(Suite, HasTwentyTwoBenchmarks)
{
    const auto &suite = trace::syntheticSuite();
    ASSERT_EQ(suite.size(), 22u);
    EXPECT_EQ(suite.front().name, "400.perlbench");
    EXPECT_EQ(suite.back().name, "483.xalancbmk");
    std::set<std::string> names;
    for (const auto &b : suite)
        names.insert(b.name);
    EXPECT_EQ(names.size(), 22u);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(trace::benchmarkByName("470.lbm").klass, "stream");
    EXPECT_THROW(trace::benchmarkByName("999.nothing"), util::Error);
}

TEST(Suite, CoversBehaviourClasses)
{
    std::set<std::string> classes;
    for (const auto &b : trace::syntheticSuite())
        classes.insert(b.klass);
    EXPECT_TRUE(classes.count("stream"));
    EXPECT_TRUE(classes.count("random"));
    EXPECT_TRUE(classes.count("regular"));
    EXPECT_TRUE(classes.count("unstable"));
    EXPECT_TRUE(classes.count("mixed"));
}

TEST(Suite, FilteredTraceIsDeterministic)
{
    const auto &b = trace::benchmarkByName("433.milc");
    auto t1 = trace::collectFilteredTrace(b, 5000, 42);
    auto t2 = trace::collectFilteredTrace(b, 5000, 42);
    EXPECT_EQ(t1, t2);
    auto t3 = trace::collectFilteredTrace(b, 5000, 43);
    EXPECT_NE(t1, t3);
}

TEST(Suite, FilteredAddressesAreBlockAddresses)
{
    // Cache-filtered traces carry block addresses: 6 MSBs null (the
    // paper's format) and plausible magnitudes.
    const auto &b = trace::benchmarkByName("429.mcf");
    auto t = trace::collectFilteredTrace(b, 2000, 1);
    ASSERT_EQ(t.size(), 2000u);
    for (uint64_t a : t)
        EXPECT_EQ(a >> 58, 0u);
}

class SuiteClassBehaviour : public testing::TestWithParam<const char *>
{
};

TEST_P(SuiteClassBehaviour, StreamTracesAreSequential)
{
    const auto &b = trace::benchmarkByName(GetParam());
    auto t = trace::collectFilteredTrace(b, 20000, 1);
    // Stream-class traces are dominated by per-stream block-sequential
    // misses; with several lock-step streams, consecutive trace entries
    // rotate between regions, so look for the +1 successor within a
    // short window rather than strictly adjacent.
    size_t near_sequential = 0;
    for (size_t i = 1; i < t.size(); ++i) {
        size_t lo = i > 8 ? i - 8 : 0;
        for (size_t j = lo; j < i; ++j) {
            if (t[j] + 1 == t[i]) {
                ++near_sequential;
                break;
            }
        }
    }
    EXPECT_GT(static_cast<double>(near_sequential) / t.size(), 0.6)
        << b.name;
}

INSTANTIATE_TEST_SUITE_P(Streams, SuiteClassBehaviour,
                         testing::Values("410.bwaves", "433.milc",
                                         "462.libquantum", "470.lbm"));

TEST(Suite, RandomClassHasLargeUniqueFootprint)
{
    auto t = trace::collectFilteredTrace(
        trace::benchmarkByName("458.sjeng"), 20000, 1);
    auto stats = trace::computeStats(t);
    EXPECT_GT(stats.unique, 5000u);
    EXPECT_LT(stats.sequential_fraction, 0.3);
}

TEST(Suite, UnstableClassKeepsCreatingAddresses)
{
    // gcc-like drift: the second half of the trace touches blocks the
    // first half never saw.
    auto t = trace::collectFilteredTrace(trace::benchmarkByName("403.gcc"),
                                         40000, 1);
    std::set<uint64_t> first(t.begin(), t.begin() + 20000);
    size_t fresh = 0;
    for (size_t i = 20000; i < t.size(); ++i)
        fresh += !first.count(t[i]);
    EXPECT_GT(fresh, 5000u);
}

TEST(TraceIo, RawRoundTripMemory)
{
    std::vector<uint64_t> addrs{0, 1, ~0ull, 0x123456789ABCDEFull};
    auto bytes = trace::toBytes(addrs);
    EXPECT_EQ(bytes.size(), addrs.size() * 8);
    EXPECT_EQ(trace::fromBytes(bytes), addrs);
}

TEST(TraceIo, RejectsRaggedByteImage)
{
    std::vector<uint8_t> bytes(12, 0);
    EXPECT_THROW(trace::fromBytes(bytes), util::Error);
}

TEST(TraceIo, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/atc_trace_io_test.bin";
    std::vector<uint64_t> addrs;
    for (int i = 0; i < 1000; ++i)
        addrs.push_back(i * 977);
    trace::saveRawFile(addrs, path);
    EXPECT_EQ(trace::loadRawFile(path), addrs);
    std::remove(path.c_str());
}

TEST(Stats, BasicProperties)
{
    std::vector<uint64_t> t{5, 6, 7, 5, 100};
    auto s = trace::computeStats(t);
    EXPECT_EQ(s.length, 5u);
    EXPECT_EQ(s.unique, 4u);
    EXPECT_EQ(s.min_addr, 5u);
    EXPECT_EQ(s.max_addr, 100u);
    EXPECT_DOUBLE_EQ(s.sequential_fraction, 0.5); // 6 and 7 follow +1
}

TEST(Stats, EntropyBounds)
{
    std::vector<uint64_t> same(100, 42);
    auto s = trace::computeStats(same);
    EXPECT_DOUBLE_EQ(s.totalPlaneEntropy(), 0.0);

    std::vector<uint64_t> spread;
    for (int i = 0; i < 256; ++i)
        spread.push_back(i);
    auto s2 = trace::computeStats(spread);
    EXPECT_NEAR(s2.plane_entropy[0], 8.0, 1e-9);
    EXPECT_NEAR(s2.plane_entropy[1], 0.0, 1e-9);
}

TEST(Stats, EmptyTrace)
{
    auto s = trace::computeStats({});
    EXPECT_EQ(s.length, 0u);
    EXPECT_EQ(s.unique, 0u);
}

} // namespace
} // namespace atc
