/**
 * @file
 * Tests for sorted byte-histograms, the interval distance D(A,B), and
 * byte translations — including the paper's F2xx/F3xx worked example.
 */

#include <gtest/gtest.h>

#include <set>

#include "atc/histogram.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

std::vector<uint64_t>
range(uint64_t base, int count)
{
    std::vector<uint64_t> v;
    for (int i = 0; i < count; ++i)
        v.push_back(base + i);
    return v;
}

TEST(Histograms, CountsPerPlane)
{
    std::vector<uint64_t> addrs{0x0102, 0x0103, 0x0104};
    auto h = core::computeHistograms(addrs.data(), addrs.size());
    EXPECT_EQ(h.len, 3u);
    EXPECT_EQ(h.h[1][0x01], 3u); // plane 1: all 0x01
    EXPECT_EQ(h.h[0][0x02], 1u);
    EXPECT_EQ(h.h[0][0x03], 1u);
    EXPECT_EQ(h.h[0][0x04], 1u);
    // All higher planes are all-zero bytes.
    for (int j = 2; j < 8; ++j)
        EXPECT_EQ(h.h[j][0], 3u);
}

TEST(Histograms, SumsToLength)
{
    util::Rng rng(1);
    std::vector<uint64_t> addrs(1000);
    for (auto &a : addrs)
        a = rng.next();
    auto h = core::computeHistograms(addrs.data(), addrs.size());
    for (int j = 0; j < 8; ++j) {
        uint64_t sum = 0;
        for (uint32_t c : h.h[j])
            sum += c;
        EXPECT_EQ(sum, addrs.size());
    }
}

TEST(SortPermutation, DecreasingCountsStableTies)
{
    core::ByteHistogram h{};
    h[10] = 5;
    h[20] = 9;
    h[30] = 5;
    auto p = core::sortPermutation(h);
    EXPECT_EQ(p[0], 20); // most frequent first
    EXPECT_EQ(p[1], 10); // tie broken toward smaller byte value
    EXPECT_EQ(p[2], 30);
    // Remaining values (count 0) in ascending byte order.
    EXPECT_EQ(p[3], 0);
    EXPECT_EQ(p[255], 255);

    // Must be a permutation.
    std::set<uint8_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 256u);
}

TEST(HistogramDistance, IdenticalIsZero)
{
    core::ByteHistogram h{};
    h[1] = 50;
    h[2] = 50;
    EXPECT_DOUBLE_EQ(core::histogramDistance(h, 100, h, 100), 0.0);
}

TEST(HistogramDistance, DisjointIsTwo)
{
    core::ByteHistogram a{}, b{};
    a[1] = 100;
    b[2] = 100;
    EXPECT_DOUBLE_EQ(core::histogramDistance(a, 100, b, 100), 2.0);
}

TEST(HistogramDistance, SymmetricAndBounded)
{
    util::Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        core::ByteHistogram a{}, b{};
        uint64_t la = 0, lb = 0;
        for (int i = 0; i < 256; ++i) {
            a[i] = static_cast<uint32_t>(rng.below(100));
            b[i] = static_cast<uint32_t>(rng.below(100));
            la += a[i];
            lb += b[i];
        }
        if (la == 0 || lb == 0)
            continue;
        double dab = core::histogramDistance(a, la, b, lb);
        double dba = core::histogramDistance(b, lb, a, la);
        EXPECT_DOUBLE_EQ(dab, dba);
        EXPECT_GE(dab, 0.0);
        EXPECT_LE(dab, 2.0);
    }
}

TEST(HistogramDistance, TriangleInequality)
{
    util::Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        core::ByteHistogram h[3] = {};
        uint64_t len[3] = {};
        for (int k = 0; k < 3; ++k) {
            for (int i = 0; i < 32; ++i) {
                h[k][i] = static_cast<uint32_t>(rng.below(50) + 1);
                len[k] += h[k][i];
            }
        }
        double d01 = core::histogramDistance(h[0], len[0], h[1], len[1]);
        double d12 = core::histogramDistance(h[1], len[1], h[2], len[2]);
        double d02 = core::histogramDistance(h[0], len[0], h[2], len[2]);
        EXPECT_LE(d02, d01 + d12 + 1e-12);
    }
}

TEST(SignatureDistance, PaperExample)
{
    // Paper §5.1: A = F200..F2FF, B = F300..F3FF. The sorted
    // histograms match exactly on every plane, so D(A,B) = 0 even
    // though the address sets are disjoint.
    auto a = range(0xF200, 256);
    auto b = range(0xF300, 256);
    auto sig_a = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    auto sig_b = core::IntervalSignature::from(
        core::computeHistograms(b.data(), b.size()));
    EXPECT_DOUBLE_EQ(core::signatureDistance(sig_a, sig_b), 0.0);
}

TEST(SignatureDistance, DetectsStructuralDifference)
{
    // A: 256 distinct addresses. B: one address repeated 256 times.
    auto a = range(0xF200, 256);
    std::vector<uint64_t> b(256, 0xF300);
    auto sig_a = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    auto sig_b = core::IntervalSignature::from(
        core::computeHistograms(b.data(), b.size()));
    // Low-order plane: uniform 1s vs a single 256 spike.
    EXPECT_GT(core::signatureDistance(sig_a, sig_b), 1.9);
}

TEST(Translation, PaperExample)
{
    // Paper §5.1: using A = F200..F2FF to imitate B = F300..F3FF.
    // Plane 1 must be translated (F2 -> F3); plane 0 must be left
    // alone; the imitation is exact.
    auto a = range(0xF200, 256);
    auto b = range(0xF300, 256);
    auto sig_a = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    auto sig_b = core::IntervalSignature::from(
        core::computeHistograms(b.data(), b.size()));

    core::ByteTranslation t =
        core::makeTranslation(sig_a, sig_b, 0.1);
    EXPECT_EQ(t.plane_mask, 0x02); // only plane 1 translated
    EXPECT_EQ(t.t[1][0xF2], 0xF3);

    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(t.apply(a[i]), b[i]);
}

TEST(Translation, IdentityWhenPlanesMatch)
{
    auto a = range(0xF200, 256);
    auto sig = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    core::ByteTranslation t = core::makeTranslation(sig, sig, 0.1);
    EXPECT_EQ(t.plane_mask, 0);
    EXPECT_EQ(t.apply(0x123456789ABCull), 0x123456789ABCull);
}

TEST(Translation, IsPerPlanePermutation)
{
    util::Rng rng(4);
    std::vector<uint64_t> a(4096), b(4096);
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.next() >> 16;
        b[i] = rng.next() >> 16;
    }
    auto sig_a = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    auto sig_b = core::IntervalSignature::from(
        core::computeHistograms(b.data(), b.size()));
    core::ByteTranslation t = core::makeTranslation(sig_a, sig_b, 0.01);
    for (int j = 0; j < 8; ++j) {
        if (!(t.plane_mask & (1u << j)))
            continue;
        std::set<uint8_t> image(t.t[j].begin(), t.t[j].end());
        EXPECT_EQ(image.size(), 256u) << "plane " << j;
    }
}

TEST(Translation, PreservesTemporalStructure)
{
    // Translation maps distinct addresses to distinct addresses, so
    // the reuse pattern (which positions repeat) is preserved exactly.
    util::Rng rng(5);
    std::vector<uint64_t> a;
    for (int i = 0; i < 2000; ++i)
        a.push_back(0x4000 + rng.below(64)); // many repeats
    std::vector<uint64_t> b;
    for (int i = 0; i < 2000; ++i)
        b.push_back(0x9000 + rng.below(64));
    auto sig_a = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    auto sig_b = core::IntervalSignature::from(
        core::computeHistograms(b.data(), b.size()));
    core::ByteTranslation t = core::makeTranslation(sig_a, sig_b, 0.1);

    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = i + 1; j < std::min(a.size(), i + 50); ++j) {
            EXPECT_EQ(a[i] == a[j], t.apply(a[i]) == t.apply(a[j]));
        }
    }
}

TEST(Translation, MostFrequentMapsToMostFrequent)
{
    // Paper: "the most frequent byte of order j in interval A is
    // replaced with the most frequent byte of order j in interval B."
    std::vector<uint64_t> a, b;
    for (int i = 0; i < 100; ++i)
        a.push_back(0x11); // plane 0 dominated by 0x11
    for (int i = 0; i < 30; ++i)
        a.push_back(0x22);
    for (int i = 0; i < 100; ++i)
        b.push_back(0x77);
    for (int i = 0; i < 30; ++i)
        b.push_back(0x88);
    auto sig_a = core::IntervalSignature::from(
        core::computeHistograms(a.data(), a.size()));
    auto sig_b = core::IntervalSignature::from(
        core::computeHistograms(b.data(), b.size()));
    core::ByteTranslation t = core::makeTranslation(sig_a, sig_b, 0.1);
    ASSERT_TRUE(t.plane_mask & 1);
    EXPECT_EQ(t.t[0][0x11], 0x77);
    EXPECT_EQ(t.t[0][0x22], 0x88);
}

} // namespace
} // namespace atc
