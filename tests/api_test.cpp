/**
 * @file
 * Tests of the batch-first public API: batch/single-value equivalence
 * (identical container bytes and identical decoded streams), the codec
 * registry and spec grammar at the container level, Status-returning
 * open/read paths on damaged containers, suffix auto-detection, and
 * composable trace pipelines.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "cache/filter.hpp"
#include "tcgen/tcgen.hpp"
#include "trace/pipeline.hpp"
#include "trace/suite.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

namespace fs = std::filesystem;

std::vector<uint64_t>
randomTrace(size_t n, uint64_t seed, int shift = 6)
{
    util::Rng rng(seed);
    std::vector<uint64_t> trace(n);
    for (auto &v : trace)
        v = rng.next() >> shift;
    return trace;
}

core::AtcOptions
smallOptions(core::Mode mode)
{
    core::AtcOptions opt;
    opt.mode = mode;
    opt.pipeline.buffer_addrs = 777;
    opt.pipeline.codec_block = 32 * 1024;
    opt.lossy.interval_len = 500;
    return opt;
}

void
writeSingle(core::ChunkStore &store, const core::AtcOptions &opt,
            const std::vector<uint64_t> &trace)
{
    core::AtcWriter w(store, opt);
    for (uint64_t a : trace)
        w.code(a);
    w.close();
}

void
writeBatched(core::ChunkStore &store, const core::AtcOptions &opt,
             const std::vector<uint64_t> &trace, size_t batch)
{
    core::AtcWriter w(store, opt);
    for (size_t i = 0; i < trace.size(); i += batch) {
        size_t take = std::min(batch, trace.size() - i);
        w.write(trace.data() + i, take);
    }
    w.close();
}

class BatchEquivalence : public testing::TestWithParam<core::Mode>
{
};

TEST_P(BatchEquivalence, ContainersAreByteIdentical)
{
    auto trace = randomTrace(10123, 42);
    auto opt = smallOptions(GetParam());

    core::MemoryStore single;
    writeSingle(single, opt, trace);

    for (size_t batch : {size_t(1), size_t(7), size_t(1000),
                         trace.size()}) {
        core::MemoryStore batched;
        writeBatched(batched, opt, trace, batch);
        ASSERT_EQ(single.chunkCount(), batched.chunkCount()) << batch;
        EXPECT_EQ(single.infoBytes(), batched.infoBytes()) << batch;
        for (size_t id = 0; id < single.chunkCount(); ++id) {
            EXPECT_EQ(single.chunkBytes(static_cast<uint32_t>(id)),
                      batched.chunkBytes(static_cast<uint32_t>(id)))
                << "chunk " << id << " batch " << batch;
        }
    }
}

TEST_P(BatchEquivalence, BatchAndSingleDecodeAgree)
{
    auto trace = randomTrace(9137, 7);
    auto opt = smallOptions(GetParam());
    core::MemoryStore store;
    writeBatched(store, opt, trace, 512);

    std::vector<uint64_t> single;
    {
        core::AtcReader r(store);
        uint64_t v;
        while (r.decode(&v))
            single.push_back(v);
    }
    for (size_t batch : {size_t(1), size_t(13), size_t(4096)}) {
        core::AtcReader r(store);
        std::vector<uint64_t> out;
        std::vector<uint64_t> buf(batch);
        size_t got;
        while ((got = r.read(buf.data(), buf.size())) != 0)
            out.insert(out.end(), buf.begin(), buf.begin() + got);
        EXPECT_EQ(out, single) << batch;
    }
    EXPECT_EQ(single.size(), trace.size());
    if (GetParam() == core::Mode::Lossless)
        EXPECT_EQ(single, trace);
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchEquivalence,
                         testing::Values(core::Mode::Lossless,
                                         core::Mode::Lossy));

TEST(CodecSpecContainer, ParameterizedSpecRoundTripsThroughInfo)
{
    auto trace = randomTrace(4000, 3);
    core::MemoryStore store;
    auto opt = smallOptions(core::Mode::Lossless);
    opt.pipeline.codec = "bwc:block=16k";
    writeBatched(store, opt, trace, 900);

    core::AtcReader reader(store);
    EXPECT_EQ(reader.codecSpec(), "bwc:block=16k");
    std::vector<uint64_t> buf(trace.size());
    size_t got = reader.read(buf.data(), buf.size());
    EXPECT_EQ(got, trace.size());
    buf.resize(got);
    EXPECT_EQ(buf, trace);
}

TEST(CodecSpecContainer, BlockParamChangesFraming)
{
    auto trace = randomTrace(20000, 9);
    core::MemoryStore coarse, fine;
    auto opt = smallOptions(core::Mode::Lossless);
    opt.pipeline.codec = "store";
    writeBatched(coarse, opt, trace, 4096);
    opt.pipeline.codec = "store:block=1k";
    writeBatched(fine, opt, trace, 4096);
    // Smaller blocks mean more frame headers: strictly more bytes.
    EXPECT_GT(fine.chunkBytes(0).size(), coarse.chunkBytes(0).size());
}

TEST(CodecSpecContainer, MalformedSpecRejectedAtOpen)
{
    core::MemoryStore store;
    auto opt = smallOptions(core::Mode::Lossless);
    for (const char *bad : {"", "bwc:block", "bwc:block=", "bwc:=1",
                            "bwc:block=9q", "bwc:block=1,block=2",
                            "no/such", "bzip2"}) {
        opt.pipeline.codec = bad;
        auto w = core::AtcWriter::open(store, opt);
        EXPECT_FALSE(w.ok()) << "spec '" << bad << "'";
        EXPECT_FALSE(w.status().message().empty());
    }
}

TEST(StatusOpen, MissingDirectoryReportsError)
{
    auto r = core::AtcReader::open("/nonexistent/atc_dir");
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(r.status().message().empty());
}

TEST(StatusOpen, EmptyDirectoryReportsError)
{
    std::string dir = testing::TempDir() + "/atc_status_empty";
    fs::remove_all(dir);
    fs::create_directories(dir);
    auto r = core::AtcReader::open(dir);
    ASSERT_FALSE(r.ok());
    fs::remove_all(dir);
}

TEST(StatusOpen, TruncatedInfoReportsError)
{
    core::MemoryStore good;
    writeBatched(good, smallOptions(core::Mode::Lossless),
                 randomTrace(3000, 5), 512);

    const auto &info = good.infoBytes();
    for (size_t keep : {size_t(0), size_t(3), size_t(5),
                        info.size() / 2, info.size() - 1}) {
        core::MemoryStore bad;
        {
            auto sink = bad.createInfo();
            sink->write(info.data(), std::min(keep, info.size()));
        }
        auto r = core::AtcReader::open(bad);
        EXPECT_FALSE(r.ok()) << "kept " << keep << " bytes";
    }
}

TEST(StatusOpen, CorruptMagicReportsError)
{
    core::MemoryStore good;
    writeBatched(good, smallOptions(core::Mode::Lossy),
                 randomTrace(3000, 6), 512);
    auto info = good.infoBytes();
    info[1] ^= 0xFF;
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(info.data(), info.size());
    }
    auto r = core::AtcReader::open(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("not an ATC container"),
              std::string::npos);
}

TEST(StatusOpen, UnknownCodecInInfoReportsError)
{
    core::MemoryStore good;
    writeBatched(good, smallOptions(core::Mode::Lossless),
                 randomTrace(1000, 8), 512);
    // Patch the recorded spec "bwc" (length-prefixed at offset 6) to an
    // unregistered name of equal length.
    auto info = good.infoBytes();
    ASSERT_EQ(info[6], 3u);
    info[7] = 'z';
    info[8] = 'z';
    info[9] = 'z';
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(info.data(), info.size());
    }
    auto r = core::AtcReader::open(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("unknown codec"),
              std::string::npos);
}

TEST(StatusRead, MissingChunkSurfacesAsStatus)
{
    core::MemoryStore good;
    writeBatched(good, smallOptions(core::Mode::Lossy),
                 randomTrace(4000, 11), 512);
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(good.infoBytes().data(), good.infoBytes().size());
        // copy no chunks
    }
    // The index scan rejects the missing chunk at open() — as a
    // Status, never an exception; a v1/v2 container would surface it
    // on the first tryRead instead.
    auto r = core::AtcReader::open(bad);
    if (r.ok()) {
        uint64_t buf[256];
        auto got = r.value()->tryRead(buf, 256);
        ASSERT_FALSE(got.ok());
    } else {
        EXPECT_NE(r.status().message().find("chunk"), std::string::npos)
            << r.status().message();
    }
}

TEST(StatusWrite, UnwritableDirectoryReportsError)
{
    auto w = core::AtcWriter::open("/proc/atc_cannot_write_here",
                                   smallOptions(core::Mode::Lossless));
    EXPECT_FALSE(w.ok());
}

TEST(SuffixDetection, NonDefaultCodecOpensWithoutHint)
{
    std::string dir = testing::TempDir() + "/atc_suffix_lzh";
    fs::remove_all(dir);
    auto trace = randomTrace(3000, 13);
    auto opt = smallOptions(core::Mode::Lossless);
    opt.pipeline.codec = "lzh";
    {
        core::AtcWriter w(dir, opt);
        w.write(trace.data(), trace.size());
        w.close();
    }
    EXPECT_TRUE(fs::exists(dir + "/INFO.lzh"));

    core::AtcReader reader(dir); // no suffix passed
    std::vector<uint64_t> out(trace.size());
    EXPECT_EQ(reader.read(out.data(), out.size()), trace.size());
    EXPECT_EQ(out, trace);
    fs::remove_all(dir);
}

TEST(SuffixDetection, ParameterizedSpecStillUsesPlainNameSuffix)
{
    std::string dir = testing::TempDir() + "/atc_suffix_param";
    fs::remove_all(dir);
    auto opt = smallOptions(core::Mode::Lossy);
    opt.pipeline.codec = "bwc:block=32k";
    {
        core::AtcWriter w(dir, opt);
        auto trace = randomTrace(2000, 14);
        w.write(trace.data(), trace.size());
        w.close();
    }
    // The suffix is the codec *name*, not the full spec.
    EXPECT_TRUE(fs::exists(dir + "/INFO.bwc"));
    EXPECT_TRUE(fs::exists(dir + "/1.bwc"));
    core::AtcReader reader(dir);
    EXPECT_EQ(reader.codecSpec(), "bwc:block=32k");
    EXPECT_EQ(reader.count(), 2000u);
    fs::remove_all(dir);
}

TEST(SuffixDetection, TwoContainersDisambiguatedByCodecName)
{
    std::string dir = testing::TempDir() + "/atc_suffix_two";
    fs::remove_all(dir);
    auto trace = randomTrace(1500, 15);
    for (const char *codec : {"bwc", "lzh"}) {
        auto opt = smallOptions(core::Mode::Lossless);
        opt.pipeline.codec = codec;
        core::AtcWriter w(dir, opt);
        w.write(trace.data(), trace.size());
        w.close();
    }
    // Auto-detect refuses to guess between two containers...
    EXPECT_FALSE(core::AtcReader::open(dir).ok());
    // ...but explicit suffixes open both.
    for (const char *suffix : {"bwc", "lzh"}) {
        core::AtcReader reader(dir, suffix);
        std::vector<uint64_t> out(trace.size());
        ASSERT_EQ(reader.read(out.data(), out.size()), trace.size())
            << suffix;
        EXPECT_EQ(out, trace) << suffix;
    }
    fs::remove_all(dir);
}

TEST(Pipeline, GeneratorFilterCompressChain)
{
    const auto &bench = trace::benchmarkByName("429.mcf");

    // Reference: hand-written loop over the same generator and filter.
    std::vector<uint64_t> expect;
    {
        trace::GeneratorPtr gen = bench.makeData(21);
        cache::CacheFilter filter;
        for (size_t i = 0; i < 200000; ++i) {
            if (auto miss = filter.access(gen->next(), false))
                expect.push_back(*miss);
        }
    }

    // Composed: GeneratorSource -> FilterStage -> AtcWriter.
    core::MemoryStore store;
    auto opt = smallOptions(core::Mode::Lossless);
    core::AtcWriter writer(store, opt);
    trace::GeneratorPtr gen = bench.makeData(21);
    trace::GeneratorSource source(*gen, 200000);
    cache::FilterStage stage(writer);
    trace::pump(source, stage);
    stage.close();

    EXPECT_EQ(writer.count(), expect.size());
    core::AtcReader reader(store);
    EXPECT_EQ(trace::collect(reader), expect);
}

TEST(Pipeline, TeeSinkDuplicatesStream)
{
    auto trace = randomTrace(5000, 23);
    std::vector<uint64_t> a, b;
    trace::VectorTraceSink sa(a), sb(b);
    trace::TeeSink tee({&sa, &sb});
    trace::VectorTraceSource src(trace);
    EXPECT_EQ(trace::pump(src, tee), trace.size());
    tee.close();
    EXPECT_EQ(a, trace);
    EXPECT_EQ(b, trace);
}

TEST(Pipeline, TcgenSpeaksPipelineInterfaces)
{
    auto trace = randomTrace(3000, 29, 40);
    tcg::TcgenConfig cfg;
    cfg.log2_lines = 12;

    tcg::TcgenResult compressed;
    {
        util::VectorSink code_sink(compressed.code_bytes);
        util::VectorSink data_sink(compressed.data_bytes);
        tcg::TcgenEncoder enc(cfg, code_sink, data_sink);
        trace::VectorTraceSource src(trace);
        trace::pump(src, enc);
        enc.close();
    }
    {
        util::MemorySource code_src(compressed.code_bytes);
        util::MemorySource data_src(compressed.data_bytes);
        tcg::TcgenDecoder dec(cfg, code_src, data_src);
        EXPECT_EQ(trace::collect(dec), trace);
    }
}

TEST(Pipeline, AtcReaderDrainsAsSource)
{
    auto trace = randomTrace(6000, 31);
    core::MemoryStore store;
    writeBatched(store, smallOptions(core::Mode::Lossless), trace, 999);
    core::AtcReader reader(store);
    EXPECT_EQ(trace::collect(reader), trace);
}

} // namespace
} // namespace atc
