/**
 * @file
 * Tests for the value predictors (last-value, stride, FCM, DFCM) and
 * the C/DC GHB address predictor.
 */

#include <gtest/gtest.h>

#include "predict/cdc.hpp"
#include "predict/value_predictors.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

TEST(LastValue, PredictsPrevious)
{
    pred::LastValuePredictor p;
    uint64_t out;
    p.update(42);
    p.predict(&out);
    EXPECT_EQ(out, 42u);
}

TEST(Stride, LocksOntoArithmeticSequence)
{
    pred::StridePredictor p;
    p.update(100);
    p.update(107);
    uint64_t out;
    p.predict(&out);
    EXPECT_EQ(out, 114u);
}

TEST(Stride, HandlesNegativeStrides)
{
    pred::StridePredictor p;
    p.update(100);
    p.update(90);
    uint64_t out;
    p.predict(&out);
    EXPECT_EQ(out, 80u);
}

TEST(Fcm, LearnsRepeatingSequence)
{
    pred::FcmPredictor p(2, 1, 10);
    // Repeat a period-4 sequence; after the first pass, every value is
    // predicted from its 2-value context.
    const uint64_t seq[4] = {11, 22, 33, 44};
    uint64_t out;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        uint64_t v = seq[i % 4];
        p.predict(&out);
        if (i >= 8)
            correct += out == v;
        p.update(v);
    }
    EXPECT_EQ(correct, 392);
}

TEST(Fcm, MultiWayKeepsAlternatives)
{
    // Context (7) is followed by 100 or 200 alternately; a 2-way line
    // retains both.
    pred::FcmPredictor p(1, 2, 8);
    uint64_t out[2];
    int hit = 0;
    uint64_t next[2] = {100, 200};
    for (int i = 0; i < 100; ++i) {
        uint64_t v = next[i % 2];
        p.predict(out);
        if (i >= 4)
            hit += out[0] == v || out[1] == v;
        p.update(v);
        p.predict(out);
        p.update(7);
    }
    EXPECT_GE(hit, 95);
}

TEST(Dfcm, PredictsDriftingPattern)
{
    // Values grow without repeating, but strides cycle: FCM fails,
    // DFCM succeeds — the reason TCgen's spec leads with DFCM.
    pred::DfcmPredictor p(2, 1, 10);
    uint64_t v = 1000;
    const uint64_t strides[3] = {1, 1, 62};
    uint64_t out;
    int correct = 0;
    for (int i = 0; i < 300; ++i) {
        p.predict(&out);
        if (i >= 12)
            correct += out == v;
        p.update(v);
        v += strides[i % 3];
    }
    EXPECT_GE(correct, 280);
}

TEST(Dfcm, TableBytesReflectGeometry)
{
    pred::DfcmPredictor p(3, 2, 10);
    EXPECT_EQ(p.tableBytes(), (1ull << 10) * 2 * 8);
}

TEST(Fcm, WaysAccessor)
{
    pred::FcmPredictor p(3, 3, 8);
    EXPECT_EQ(p.ways(), 3);
}

TEST(Cdc, UnseenZonesAreNonPredicted)
{
    pred::CdcPredictor p;
    for (uint64_t i = 0; i < 10; ++i)
        p.access(i * 100000); // each address in a fresh zone
    EXPECT_EQ(p.stats().non_predicted, 10u);
    EXPECT_EQ(p.stats().correct, 0u);
}

TEST(Cdc, PredictsConstantStrideInZone)
{
    pred::CdcPredictor p;
    // Sequential blocks in one 64 KiB zone: after the 2-delta key has
    // repeated once, every subsequent address is predicted.
    for (uint64_t b = 0; b < 200; ++b)
        p.access(b);
    const auto &s = p.stats();
    EXPECT_EQ(s.total(), 200u);
    EXPECT_GT(s.correct, 190u);
    EXPECT_EQ(s.mispredicted, 0u);
}

TEST(Cdc, PredictsPeriodicDeltaPattern)
{
    pred::CdcPredictor p;
    // Deltas cycle 1,1,5 within a zone; the 2-delta correlation key
    // disambiguates the next delta exactly.
    uint64_t addr = 0;
    int n = 0;
    const uint64_t deltas[3] = {1, 1, 5};
    for (int i = 0; i < 150; ++i) {
        p.access(addr);
        addr += deltas[i % 3];
        ++n;
    }
    const auto &s = p.stats();
    EXPECT_EQ(s.total(), static_cast<uint64_t>(n));
    EXPECT_GT(s.correct, static_cast<uint64_t>(n) - 20);
}

TEST(Cdc, RandomAddressesMostlyUnpredicted)
{
    pred::CdcPredictor p;
    util::Rng rng(12);
    for (int i = 0; i < 5000; ++i)
        p.access(rng.below(1 << 22));
    const auto &s = p.stats();
    // Random deltas rarely repeat: correctness should be tiny.
    EXPECT_LT(static_cast<double>(s.correct) / s.total(), 0.05);
}

TEST(Cdc, TracksZonesIndependently)
{
    pred::CdcPredictor p;
    // Interleave two zones (ids 0 and 3) with different strides.
    uint64_t a = 0, b = 3 << 10;
    for (int i = 0; i < 100; ++i) {
        p.access(a);
        p.access(b);
        a += 1;
        b += 3;
    }
    const auto &s = p.stats();
    EXPECT_GT(s.correct, 180u);
}

TEST(Cdc, ZoneConflictEvictsOldState)
{
    // Two zones mapping to the same index entry (256-entry table):
    // zone ids 0 and 256 collide. Alternating between them prevents
    // any prediction from surviving.
    pred::CdcPredictor p;
    uint64_t zone_blocks = 1024; // 64 KiB zones of 64 B blocks
    for (int i = 0; i < 50; ++i) {
        p.access(0 * zone_blocks + i);
        p.access(256 * zone_blocks + i);
    }
    EXPECT_EQ(p.stats().correct, 0u);
    EXPECT_EQ(p.stats().non_predicted, 100u);
}

TEST(Cdc, GhbCapacityLimitsHistory)
{
    // With a 4-entry GHB, the 2-delta key can never find a prior
    // occurrence more than 4 accesses back.
    pred::CdcConfig cfg;
    cfg.ghb_entries = 4;
    pred::CdcPredictor p(cfg);
    // Period-8 delta pattern exceeds the GHB reach.
    uint64_t addr = 0;
    const uint64_t deltas[8] = {1, 2, 3, 4, 5, 6, 7, 9};
    for (int i = 0; i < 400; ++i) {
        p.access(addr & 1023); // stay in one zone
        addr += deltas[i % 8];
    }
    EXPECT_EQ(p.stats().correct, 0u);
}

TEST(Cdc, StatsSumToTotal)
{
    pred::CdcPredictor p;
    util::Rng rng(13);
    uint64_t addr = 0;
    for (int i = 0; i < 1000; ++i) {
        addr += rng.below(3);
        p.access(addr);
    }
    const auto &s = p.stats();
    EXPECT_EQ(s.non_predicted + s.correct + s.mispredicted, 1000u);
}

} // namespace
} // namespace atc
