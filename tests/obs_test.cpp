// Unit tests for the observability layer: bucket math exactness,
// disabled-mode behaviour, text/JSON encoding round-trips, and
// concurrent record vs snapshot churn (the TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace obs = atc::obs;

namespace {

// Tests toggle the global runtime switch; restore it no matter how
// the test exits.
struct EnabledGuard {
    EnabledGuard() = default;
    ~EnabledGuard() { obs::setEnabled(true); }
};

TEST(ObsHistogram, BucketBoundariesExact)
{
    EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
    // Bucket b >= 1 covers [2^(b-1), 2^b): both edges must land
    // exactly, for every width.
    for (size_t b = 1; b <= 64; ++b) {
        uint64_t lo = uint64_t{1} << (b - 1);
        EXPECT_EQ(obs::Histogram::bucketOf(lo), b) << "low edge b=" << b;
        uint64_t hi = (b == 64) ? ~uint64_t{0} : (uint64_t{1} << b) - 1;
        EXPECT_EQ(obs::Histogram::bucketOf(hi), b) << "high edge b=" << b;
        EXPECT_EQ(obs::Histogram::bucketLow(b), lo);
    }
    EXPECT_EQ(obs::Histogram::bucketLow(0), 0u);
}

TEST(ObsRegistry, CountersGaugesHistogramsSnapshot)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with ATC_OBS_OFF";
    obs::Registry reg;
    obs::Counter &c = reg.counter("test.count");
    obs::Gauge &g = reg.gauge("test.depth");
    obs::Histogram &h = reg.histogram("test.lat_us");

    // Same name returns the same cell.
    EXPECT_EQ(&c, &reg.counter("test.count"));
    EXPECT_EQ(&h, &reg.histogram("test.lat_us"));

    c.add(40);
    c.inc();
    c.inc();
    g.set(7);
    g.inc();
    g.dec();
    h.record(0);
    h.record(1);
    h.record(5);    // bucket 3: [4,8)
    h.record(100);  // bucket 7: [64,128)

    obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("test.count"), 42);
    EXPECT_EQ(snap.value("test.depth"), 7);
    EXPECT_EQ(snap.value("test.absent"), 0);
    const obs::HistogramValue &hv = snap.histograms.at("test.lat_us");
    EXPECT_EQ(hv.count, 4u);
    EXPECT_EQ(hv.sum, 106);
    EXPECT_EQ(hv.buckets[0], 1u);
    EXPECT_EQ(hv.buckets[1], 1u);
    EXPECT_EQ(hv.buckets[3], 1u);
    EXPECT_EQ(hv.buckets[7], 1u);
    EXPECT_EQ(snap.histSum("test.lat_us"), 106);
    EXPECT_EQ(snap.histCount("test.lat_us"), 4u);
}

TEST(ObsRegistry, DisabledModeDropsRecordsAndSnapshotsEmpty)
{
    EnabledGuard guard;
    obs::Registry reg;
    obs::Counter &c = reg.counter("test.count");
    obs::Histogram &h = reg.histogram("test.lat_us");
    c.add(5);

    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
    c.add(1000);    // dropped
    h.record(123);  // dropped
    EXPECT_EQ(obs::nowNs(), 0u);  // timers skip clock reads
    EXPECT_TRUE(reg.snapshot().empty());

    obs::setEnabled(true);
    obs::Snapshot snap = reg.snapshot();
    if (obs::kCompiledIn) {
        EXPECT_EQ(snap.value("test.count"), 5);
        EXPECT_EQ(snap.histCount("test.lat_us"), 0u);
    } else {
        EXPECT_TRUE(snap.empty());
    }
}

TEST(ObsRegistry, ConcurrentRecordVsSnapshotChurn)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with ATC_OBS_OFF";
    obs::Registry reg;
    obs::Counter &c = reg.counter("churn.count");
    obs::Histogram &h = reg.histogram("churn.lat_us");

    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::atomic<bool> stop{false};

    // Snapshot churn concurrent with recording: values are transient
    // but every read must be race-free and monotonically plausible.
    std::thread snapper([&] {
        int64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            obs::Snapshot s = reg.snapshot();
            int64_t v = s.value("churn.count");
            EXPECT_GE(v, last);
            last = v;
            // Registration churn from another thread must not
            // invalidate prior handles either.
            reg.counter("churn.extra." +
                        std::to_string(last % 16));
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                h.record(static_cast<uint64_t>((t * kIters + i) %
                                               1024));
            }
        });
    }
    for (auto &w : writers)
        w.join();
    stop.store(true, std::memory_order_release);
    snapper.join();

    obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("churn.count"),
              int64_t(kThreads) * kIters);
    EXPECT_EQ(snap.histCount("churn.lat_us"),
              uint64_t(kThreads) * kIters);
}

TEST(ObsText, RoundTripAndRejects)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with ATC_OBS_OFF";
    obs::Registry reg;
    reg.counter("a.count").add(12);
    reg.gauge("b.depth").set(-3);
    obs::Histogram &h = reg.histogram("c.lat_us");
    h.record(0);
    h.record(9);

    std::string text = obs::snapshotToText(reg.snapshot());
    EXPECT_EQ(text.rfind("atc_metrics 1\n", 0), 0u);

    std::map<std::string, int64_t> parsed;
    ASSERT_TRUE(obs::parseMetricsText(text, parsed));
    EXPECT_EQ(parsed.at("a.count"), 12);
    EXPECT_EQ(parsed.at("b.depth"), -3);
    EXPECT_EQ(parsed.at("c.lat_us.count"), 2);
    EXPECT_EQ(parsed.at("c.lat_us.sum"), 9);
    EXPECT_EQ(parsed.at("c.lat_us.bucket0"), 1);
    EXPECT_EQ(parsed.at("c.lat_us.bucket4"), 1);  // 9 in [8,16)

    EXPECT_FALSE(obs::parseMetricsText("bogus 2\nx 1\n", parsed));
    EXPECT_FALSE(obs::parseMetricsText("", parsed));
    EXPECT_FALSE(
        obs::parseMetricsText("atc_metrics 1\nnovalue\n", parsed));
    EXPECT_FALSE(
        obs::parseMetricsText("atc_metrics 1\nk notanint\n", parsed));

    std::string json = obs::snapshotToJson(reg.snapshot());
    EXPECT_NE(json.find("\"atc_metrics\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"a.count\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"c.lat_us.sum\": 9"), std::string::npos);
}

TEST(ObsHistogram, QuantileFromBuckets)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with ATC_OBS_OFF";
    obs::Registry reg;
    obs::Histogram &h = reg.histogram("q.lat_us");
    for (int i = 0; i < 90; ++i)
        h.record(3);  // bucket 2: low edge 2
    for (int i = 0; i < 10; ++i)
        h.record(1000);  // bucket 10: low edge 512
    obs::HistogramValue hv =
        reg.snapshot().histograms.at("q.lat_us");
    EXPECT_EQ(hv.quantile(0.5), 2u);
    EXPECT_EQ(hv.quantile(0.99), 512u);
}

}  // namespace
