/**
 * @file
 * Failure-injection and robustness properties: corrupted containers
 * must fail loudly (throw util::Error), never crash, hang, or return
 * silently wrong data past the integrity checks. Also covers the
 * write-back tagging extension and the delta transform end to end.
 */

#include <gtest/gtest.h>

#include "atc/atc.hpp"
#include "cache/filter.hpp"
#include "trace/suite.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

core::MemoryStore
makeContainer(core::Mode mode, size_t n, uint64_t seed)
{
    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = mode;
    opt.lossy.interval_len = n / 8 + 1;
    opt.pipeline.buffer_addrs = n / 16 + 1;
    opt.pipeline.codec_block = 16 * 1024;
    core::AtcWriter w(store, opt);
    util::Rng rng(seed);
    for (size_t i = 0; i < n; ++i)
        w.code(rng.next() >> 8);
    w.close();
    return store;
}

/** Copy a store with one byte of one blob flipped. */
core::MemoryStore
corruptCopy(const core::MemoryStore &src, bool corrupt_info, size_t pos,
            uint8_t mask)
{
    core::MemoryStore out;
    {
        auto sink = out.createInfo();
        std::vector<uint8_t> info = src.infoBytes();
        if (corrupt_info && pos < info.size())
            info[pos] ^= mask;
        sink->write(info.data(), info.size());
    }
    for (size_t id = 0; id < src.chunkCount(); ++id) {
        auto sink = out.createChunk(static_cast<uint32_t>(id));
        std::vector<uint8_t> chunk =
            src.chunkBytes(static_cast<uint32_t>(id));
        if (!corrupt_info && pos < chunk.size())
            chunk[pos] ^= mask;
        sink->write(chunk.data(), chunk.size());
    }
    return out;
}

/** Fully drain a container; count decoded values. */
size_t
drain(core::MemoryStore &store)
{
    core::AtcReader reader(store);
    uint64_t v;
    size_t count = 0;
    while (reader.decode(&v))
        ++count;
    return count;
}

class CorruptionSweep : public testing::TestWithParam<int>
{
};

TEST_P(CorruptionSweep, ChunkBitFlipsNeverSilentlyAccepted)
{
    // Flip one byte at many positions of the (lossless) chunk: every
    // outcome must be either a throw or — never — a silent wrong-length
    // or wrong-content success. The chunk CRC makes corruption loud.
    auto base = makeContainer(core::Mode::Lossless, 3000, GetParam());
    size_t chunk_size = base.chunkBytes(0).size();
    int threw = 0, survived = 0;
    for (size_t pos = 0; pos < chunk_size;
         pos += std::max<size_t>(chunk_size / 40, 1)) {
        auto bad = corruptCopy(base, false, pos, 0x20);
        try {
            size_t n = drain(bad);
            // Tolerable only if the corruption hit dead framing space
            // AND content is identical; verify by comparing streams.
            ++survived;
            core::AtcReader a(base), b(bad);
            uint64_t va, vb;
            for (size_t i = 0; i < n; ++i) {
                ASSERT_TRUE(a.decode(&va));
                ASSERT_TRUE(b.decode(&vb));
                ASSERT_EQ(va, vb) << "silent corruption at byte " << pos;
            }
        } catch (const util::Error &) {
            ++threw;
        }
    }
    // The vast majority of flips must be detected.
    EXPECT_GT(threw, survived);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep, testing::Values(1, 2, 3));

TEST(Robustness, InfoBitFlipsThrowOrPreserveContent)
{
    auto base = makeContainer(core::Mode::Lossy, 4000, 7);
    size_t info_size = base.infoBytes().size();
    size_t expect = drain(base);
    for (size_t pos = 0; pos < info_size; ++pos) {
        auto bad = corruptCopy(base, true, pos, 0x01);
        try {
            size_t n = drain(bad);
            // INFO integrity is protected by the codec CRC except the
            // tiny uncompressed preamble; a surviving flip must not
            // change the value count.
            EXPECT_EQ(n, expect) << "at byte " << pos;
        } catch (const util::Error &) {
            // expected for most positions
        }
    }
}

TEST(Robustness, TruncatedChunkThrows)
{
    auto base = makeContainer(core::Mode::Lossless, 5000, 9);
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(base.infoBytes().data(), base.infoBytes().size());
        auto chunk = base.chunkBytes(0);
        chunk.resize(chunk.size() / 3);
        auto csink = bad.createChunk(0);
        csink->write(chunk.data(), chunk.size());
    }
    EXPECT_THROW(drain(bad), util::Error);
}

TEST(Robustness, MissingChunkFileThrows)
{
    auto base = makeContainer(core::Mode::Lossy, 4000, 11);
    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(base.infoBytes().data(), base.infoBytes().size());
        // copy no chunks
    }
    EXPECT_THROW(drain(bad), util::Error);
}

TEST(DeltaTransform, RoundTripStreaming)
{
    util::Rng rng(3);
    for (size_t len : {size_t(0), size_t(1), size_t(1000), size_t(4097)}) {
        std::vector<uint64_t> addrs(len);
        uint64_t base = 0x4000000;
        for (auto &a : addrs) {
            base += rng.below(256);
            a = base;
        }
        std::vector<uint8_t> out;
        util::VectorSink sink(out);
        core::TransformEncoder enc(core::Transform::Delta, 512, sink);
        for (uint64_t a : addrs)
            enc.code(a);
        enc.finish();
        util::MemorySource src(out);
        core::TransformDecoder dec(core::Transform::Delta, src);
        std::vector<uint64_t> back;
        uint64_t v;
        while (dec.decode(&v))
            back.push_back(v);
        EXPECT_EQ(back, addrs) << len;
    }
}

TEST(DeltaTransform, BeatsRawOnSequentialTrace)
{
    std::vector<uint64_t> addrs(100000);
    for (size_t i = 0; i < addrs.size(); ++i)
        addrs[i] = 0x123456000 + i;
    auto bpa = [&](core::Transform t) {
        util::CountingSink sink;
        core::LosslessParams p;
        p.transform = t;
        p.buffer_addrs = 10000;
        core::LosslessWriter w(p, sink);
        for (uint64_t a : addrs)
            w.code(a);
        w.finish();
        return 8.0 * sink.count() / addrs.size();
    };
    EXPECT_LT(bpa(core::Transform::Delta), bpa(core::Transform::None));
    EXPECT_LT(bpa(core::Transform::Delta), 0.2);
}

TEST(DeltaTransform, ContainerRoundTrip)
{
    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossless;
    opt.pipeline.transform = core::Transform::Delta;
    opt.pipeline.buffer_addrs = 700;
    std::vector<uint64_t> addrs;
    util::Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        addrs.push_back(rng.next() >> 20);
    {
        core::AtcWriter w(store, opt);
        for (uint64_t a : addrs)
            w.code(a);
        w.close();
    }
    core::AtcReader r(store);
    std::vector<uint64_t> back;
    uint64_t v;
    while (r.decode(&v))
        back.push_back(v);
    EXPECT_EQ(back, addrs);
}

TEST(WriteBackFilter, WritesProduceTaggedRecords)
{
    // Tiny direct-mapped D-cache: write block 0, then force its
    // eviction with a conflicting block; a tagged write-back appears.
    cache::CacheConfig l1{2, 1, 64};
    cache::CacheFilter f(l1);
    std::vector<uint64_t> out;
    f.accessTagged(0 * 64, false, true, out);   // write miss: demand rec
    f.accessTagged(2 * 64, false, false, out);  // conflicting read
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0u);                         // demand miss, block 0
    EXPECT_EQ(out[1], 2u);                         // demand miss, block 2
    EXPECT_EQ(out[2], 0u | cache::kWriteBackTag);  // block 0 written back
}

TEST(WriteBackFilter, ReadsNeverProduceWriteBacks)
{
    cache::CacheConfig l1{2, 1, 64};
    cache::CacheFilter f(l1);
    std::vector<uint64_t> out;
    for (int i = 0; i < 100; ++i)
        f.accessTagged(static_cast<uint64_t>(i) * 64, false, false, out);
    for (uint64_t rec : out)
        EXPECT_EQ(rec & cache::kWriteBackTag, 0u);
}

TEST(WriteBackFilter, InstructionFetchesNeverDirty)
{
    cache::CacheConfig l1{2, 1, 64};
    cache::CacheFilter f(l1);
    std::vector<uint64_t> out;
    // is_write is ignored for instruction fetches.
    f.accessTagged(0, true, true, out);
    f.accessTagged(2 * 64, true, false, out);
    f.accessTagged(4 * 64, true, false, out);
    for (uint64_t rec : out)
        EXPECT_EQ(rec & cache::kWriteBackTag, 0u);
}

TEST(WriteBackFilter, TaggedStreamSurvivesAtcLossless)
{
    // End-to-end: tagged records (with their MSB tag bits) round-trip
    // through the compressor — the paper's §2 use case.
    cache::CacheFilter f;
    util::Rng rng(6);
    std::vector<uint64_t> records;
    for (int i = 0; i < 300000 && records.size() < 20000; ++i) {
        uint64_t addr = 0x1000000 + rng.below(1 << 21);
        f.accessTagged(addr, false, rng.below(2) == 0, records);
    }
    ASSERT_GT(records.size(), 1000u);
    bool any_wb = false;
    for (uint64_t rec : records)
        any_wb |= (rec & cache::kWriteBackTag) != 0;
    EXPECT_TRUE(any_wb);

    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossless;
    opt.pipeline.buffer_addrs = 4096;
    {
        core::AtcWriter w(store, opt);
        for (uint64_t rec : records)
            w.code(rec);
        w.close();
    }
    core::AtcReader r(store);
    std::vector<uint64_t> back;
    uint64_t v;
    while (r.decode(&v))
        back.push_back(v);
    EXPECT_EQ(back, records);
}

} // namespace
} // namespace atc
