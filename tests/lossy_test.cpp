/**
 * @file
 * Tests for the lossy phase-based codec: chunk/imitate decisions, the
 * myopic-interval fix, and the properties the paper's evaluation
 * relies on (length preservation, locality preservation).
 */

#include <gtest/gtest.h>

#include <set>

#include "atc/lossy.hpp"
#include "cache/stack_sim.hpp"
#include "trace/suite.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

core::LossyParams
testParams(uint64_t interval_len)
{
    core::LossyParams p;
    p.interval_len = interval_len;
    p.chunk_params.buffer_addrs = std::max<uint64_t>(interval_len / 4, 16);
    p.chunk_params.codec_block = 64 * 1024;
    return p;
}

/** Run the encoder over a trace and return (store, records, stats). */
struct EncodeResult
{
    core::MemoryStore store;
    std::vector<core::IntervalRecord> records;
    core::LossyStats stats;
};

EncodeResult
encode(const std::vector<uint64_t> &trace, const core::LossyParams &params)
{
    EncodeResult r;
    core::LossyEncoder enc(params, r.store);
    for (uint64_t a : trace)
        enc.code(a);
    enc.finish();
    r.records = enc.records();
    r.stats = enc.stats();
    return r;
}

std::vector<uint64_t>
decode(EncodeResult &r, const core::LossyParams &params)
{
    core::LossyDecoder dec(params, r.store, r.records);
    std::vector<uint64_t> out;
    uint64_t v;
    while (dec.decode(&v))
        out.push_back(v);
    return out;
}

TEST(Lossy, FirstIntervalAlwaysChunk)
{
    auto params = testParams(100);
    std::vector<uint64_t> trace(100, 5);
    auto r = encode(trace, params);
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].kind, core::IntervalRecord::Kind::Chunk);
    EXPECT_EQ(r.stats.chunks_created, 1u);
}

TEST(Lossy, RandomIntervalsImitateFirstChunk)
{
    // The paper's Figure 8 scenario: random values; all intervals look
    // like the first one, so exactly one chunk is created.
    auto params = testParams(10000);
    util::Rng rng(1);
    std::vector<uint64_t> trace(100000);
    for (auto &v : trace)
        v = rng.next();
    auto r = encode(trace, params);
    EXPECT_EQ(r.stats.intervals, 10u);
    EXPECT_EQ(r.stats.chunks_created, 1u);
    EXPECT_EQ(r.stats.imitated, 9u);
    // Compression ratio ~10 as in the paper's example.
    double ratio = 8.0 * trace.size() / r.store.totalBytes();
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 12.0);
}

TEST(Lossy, LengthAlwaysPreserved)
{
    // Sequence length is one of the two properties the paper demands
    // of lossy compression (§5).
    for (size_t len : {size_t(1), size_t(99), size_t(100), size_t(101),
                       size_t(1234), size_t(10000)}) {
        auto params = testParams(100);
        util::Rng rng(len);
        std::vector<uint64_t> trace(len);
        for (auto &v : trace)
            v = rng.next() >> 20;
        auto r = encode(trace, params);
        EXPECT_EQ(decode(r, params).size(), len) << "len " << len;
    }
}

TEST(Lossy, PartialFinalIntervalStoredExactly)
{
    auto params = testParams(1000);
    util::Rng rng(2);
    std::vector<uint64_t> trace(2500);
    for (auto &v : trace)
        v = rng.next();
    auto r = encode(trace, params);
    auto back = decode(r, params);
    ASSERT_EQ(back.size(), trace.size());
    // The final 500 addresses form a partial interval: stored lossless.
    for (size_t i = 2000; i < 2500; ++i)
        EXPECT_EQ(back[i], trace[i]) << i;
}

TEST(Lossy, DistinctPhasesGetDistinctChunks)
{
    // Two alternating phases with structurally different histograms:
    // uniform-random vs single-hot-address intervals.
    auto params = testParams(1000);
    util::Rng rng(3);
    std::vector<uint64_t> trace;
    for (int phase = 0; phase < 10; ++phase) {
        for (int i = 0; i < 1000; ++i) {
            trace.push_back(phase % 2 ? 0xAAAA000000ull
                                      : (rng.next() >> 10));
        }
    }
    auto r = encode(trace, params);
    // One chunk per distinct phase, then reuse.
    EXPECT_EQ(r.stats.chunks_created, 2u);
    EXPECT_EQ(r.stats.imitated, 8u);
}

TEST(Lossy, UnstableTraceCreatesManyChunks)
{
    // Every interval gets its own structure: imitation never fires.
    auto params = testParams(500);
    std::vector<uint64_t> trace;
    util::Rng rng(4);
    for (int interval = 0; interval < 8; ++interval) {
        // Alternate structurally different interval shapes: the
        // fraction of repeated addresses varies per interval.
        for (int i = 0; i < 500; ++i) {
            bool repeat = static_cast<int>(rng.below(8)) < interval;
            trace.push_back(repeat ? 0x5000 : rng.next());
        }
    }
    auto r = encode(trace, params);
    EXPECT_GT(r.stats.chunks_created, 4u);
}

TEST(Lossy, TranslationReusesChunkAcrossRegions)
{
    // Same temporal structure in two disjoint regions (the paper's
    // F2xx/F3xx example, scaled): one chunk + translated imitations.
    auto params = testParams(4096);
    std::vector<uint64_t> trace;
    for (int region = 0; region < 6; ++region) {
        uint64_t base = (0xF2ull + region) << 32;
        for (int i = 0; i < 4096; ++i)
            trace.push_back(base + i);
    }
    auto r = encode(trace, params);
    EXPECT_EQ(r.stats.chunks_created, 1u);
    EXPECT_EQ(r.stats.imitated, 5u);

    // The imitation must be exact here: translation rewrites the
    // region byte, and lower planes are identical.
    auto back = decode(r, params);
    EXPECT_EQ(back, trace);
}

TEST(Lossy, MyopicIntervalProblemMitigated)
{
    // §5's motivating example: random accesses over N distinct
    // addresses with intervals shorter than the footprint. Without
    // translations the compressed trace collapses to the first
    // interval's footprint; with translations the footprint stays
    // comparable.
    const uint64_t N = 4096;
    auto params = testParams(1024); // interval << footprint
    util::Rng rng(5);
    std::vector<uint64_t> trace(16 * 1024);
    for (auto &v : trace)
        v = 0x7000000 + rng.below(N);

    auto r = encode(trace, params);
    auto back = decode(r, params);
    std::set<uint64_t> unique_exact(trace.begin(), trace.end());
    std::set<uint64_t> unique_lossy(back.begin(), back.end());
    EXPECT_GT(unique_lossy.size(), unique_exact.size() / 3);

    // Ablation: translations disabled (Figure 4's setting) collapses
    // the footprint to roughly one interval's worth.
    auto params_no_trans = params;
    params_no_trans.translate = false;
    auto r2 = encode(trace, params_no_trans);
    auto back2 = decode(r2, params_no_trans);
    std::set<uint64_t> unique_no_trans(back2.begin(), back2.end());
    EXPECT_LT(unique_no_trans.size(), unique_lossy.size());
}

TEST(Lossy, MissRatiosPreservedOnStationaryTrace)
{
    // The paper's core accuracy claim (Figure 3): cache miss ratios of
    // the regenerated trace track the exact trace.
    const auto &bench = trace::benchmarkByName("429.mcf");
    auto trace_data = trace::collectFilteredTrace(bench, 100000, 7);
    auto params = testParams(2000);
    auto r = encode(trace_data, params);
    auto back = decode(r, params);
    ASSERT_EQ(back.size(), trace_data.size());

    for (uint32_t sets : {64u, 256u}) {
        cache::StackSimulator exact(sets, 8), lossy(sets, 8);
        for (uint64_t a : trace_data)
            exact.access(a);
        for (uint64_t a : back)
            lossy.access(a);
        for (uint32_t w : {1u, 2u, 4u, 8u}) {
            EXPECT_NEAR(lossy.missRatio(w), exact.missRatio(w), 0.12)
                << "sets " << sets << " ways " << w;
        }
    }
}

TEST(Lossy, ChunkTableEvictionBounded)
{
    // More distinct phases than table entries: the encoder must not
    // grow its table beyond the configured bound (it keeps creating
    // chunks instead).
    auto params = testParams(256);
    params.chunk_table = 2;
    util::Rng rng(8);
    std::vector<uint64_t> trace;
    for (int phase = 0; phase < 12; ++phase) {
        // Cycle through 3 structurally distinct phases with period 3;
        // with a 2-entry table the oldest is always gone.
        int kind = phase % 3;
        for (int i = 0; i < 256; ++i) {
            switch (kind) {
              case 0:
                trace.push_back(rng.next());
                break;
              case 1:
                trace.push_back(0x1234);
                break;
              default:
                trace.push_back(i % 2 ? 0x8888 : rng.next());
                break;
            }
        }
    }
    auto r = encode(trace, params);
    auto back = decode(r, params);
    EXPECT_EQ(back.size(), trace.size());
    EXPECT_GE(r.stats.chunks_created, 4u);
}

TEST(Lossy, EpsilonZeroDisablesImitation)
{
    auto params = testParams(500);
    params.epsilon = 0.0;
    util::Rng rng(9);
    std::vector<uint64_t> trace(5000);
    for (auto &v : trace)
        v = rng.next();
    auto r = encode(trace, params);
    // Random intervals are never *exactly* at distance < 0.
    EXPECT_EQ(r.stats.chunks_created, r.stats.intervals);
}

TEST(Lossy, DecoderCacheSmallerThanChunkCount)
{
    // Force chunk reloads: a 1-byte budget degenerates the decoder's
    // private cache to one resident chunk per shard.
    auto params = testParams(512);
    params.decoder_cache_bytes = 1;
    std::vector<uint64_t> trace;
    util::Rng rng(10);
    for (int phase = 0; phase < 8; ++phase) {
        for (int i = 0; i < 512; ++i)
            trace.push_back(phase % 2 ? 0xBEEF : rng.next());
    }
    auto r = encode(trace, params);
    EXPECT_EQ(decode(r, params).size(), trace.size());
}

} // namespace
} // namespace atc
