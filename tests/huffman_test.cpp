/**
 * @file
 * Unit tests for canonical, length-limited Huffman coding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "compress/huffman.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

/** Verify Kraft inequality and length-limit for a set of lengths. */
void
checkValidCode(const std::vector<uint8_t> &lengths, int limit)
{
    double kraft = 0.0;
    for (uint8_t l : lengths) {
        EXPECT_LE(l, limit);
        if (l > 0)
            kraft += std::pow(2.0, -static_cast<double>(l));
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(HuffmanLengths, EmptyFrequencies)
{
    std::vector<uint64_t> freq(10, 0);
    auto lengths = comp::huffmanLengths(freq);
    for (uint8_t l : lengths)
        EXPECT_EQ(l, 0);
}

TEST(HuffmanLengths, SingleSymbolGetsLengthOne)
{
    std::vector<uint64_t> freq(10, 0);
    freq[3] = 1000;
    auto lengths = comp::huffmanLengths(freq);
    EXPECT_EQ(lengths[3], 1);
}

TEST(HuffmanLengths, TwoSymbols)
{
    std::vector<uint64_t> freq{7, 0, 3};
    auto lengths = comp::huffmanLengths(freq);
    EXPECT_EQ(lengths[0], 1);
    EXPECT_EQ(lengths[1], 0);
    EXPECT_EQ(lengths[2], 1);
}

TEST(HuffmanLengths, MoreFrequentNeverLonger)
{
    util::Rng rng(5);
    std::vector<uint64_t> freq(64);
    for (auto &f : freq)
        f = rng.below(10000);
    auto lengths = comp::huffmanLengths(freq);
    for (size_t i = 0; i < freq.size(); ++i) {
        for (size_t j = 0; j < freq.size(); ++j) {
            if (freq[i] > freq[j] && freq[j] > 0)
                EXPECT_LE(lengths[i], lengths[j])
                    << "sym " << i << " freq " << freq[i] << " vs sym "
                    << j << " freq " << freq[j];
        }
    }
    checkValidCode(lengths, comp::kMaxCodeLen);
}

TEST(HuffmanLengths, RespectsLengthLimitOnSkewedInput)
{
    // Fibonacci-like frequencies force deep trees without a limit.
    std::vector<uint64_t> freq(40);
    uint64_t a = 1, b = 1;
    for (auto &f : freq) {
        f = a;
        uint64_t c = a + b;
        a = b;
        b = c;
    }
    for (int limit : {8, 12, 24}) {
        auto lengths = comp::huffmanLengths(freq, limit);
        checkValidCode(lengths, limit);
        for (size_t i = 0; i < freq.size(); ++i)
            EXPECT_GT(lengths[i], 0) << i;
    }
}

TEST(HuffmanLengths, NearOptimalOnUniformInput)
{
    std::vector<uint64_t> freq(256, 100);
    auto lengths = comp::huffmanLengths(freq);
    for (uint8_t l : lengths)
        EXPECT_EQ(l, 8); // 256 equal symbols -> exactly 8 bits
}

class HuffmanRoundTrip : public testing::TestWithParam<int>
{
};

TEST_P(HuffmanRoundTrip, EncodeDecode)
{
    const int alphabet = GetParam();
    util::Rng rng(alphabet);

    // Geometric-ish distribution over the alphabet.
    std::vector<uint64_t> freq(alphabet, 0);
    std::vector<int> symbols;
    for (int i = 0; i < 20000; ++i) {
        int sym = 0;
        while (sym + 1 < alphabet && rng.below(3) == 0)
            ++sym;
        freq[sym]++;
        symbols.push_back(sym);
    }

    comp::HuffmanEncoder enc(freq);
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    util::BitWriter bw(sink);
    enc.writeTable(bw);
    for (int sym : symbols)
        enc.writeSymbol(bw, sym);
    bw.alignAndFlush();

    util::MemorySource src(out);
    util::BitReader br(src);
    comp::HuffmanDecoder dec = comp::HuffmanDecoder::readTable(br, alphabet);
    for (int sym : symbols)
        EXPECT_EQ(dec.decode(br), sym);
}

INSTANTIATE_TEST_SUITE_P(Alphabets, HuffmanRoundTrip,
                         testing::Values(2, 3, 16, 100, 258, 300));

TEST(HuffmanDecoder, RejectsOverfullTable)
{
    // Three codes of length 1 violate Kraft.
    std::vector<uint8_t> lengths{1, 1, 1};
    EXPECT_THROW(comp::HuffmanDecoder dec(lengths), util::Error);
}

TEST(HuffmanDecoder, RejectsInvalidStreamCode)
{
    // Incomplete code: one symbol of length 2; the code 11... is invalid.
    std::vector<uint8_t> lengths{2};
    comp::HuffmanDecoder dec(lengths);
    std::vector<uint8_t> data{0xFF, 0xFF, 0xFF, 0xFF};
    util::MemorySource src(data);
    util::BitReader br(src);
    EXPECT_THROW(dec.decode(br), util::Error);
}

TEST(HuffmanEncoder, CanonicalCodesAreOrdered)
{
    std::vector<uint64_t> freq{100, 50, 25, 12, 6, 3};
    comp::HuffmanEncoder enc(freq);
    const auto &lengths = enc.lengths();
    // Canonical property: codes are assigned by (length, symbol); just
    // verify the most frequent symbol got the shortest code length.
    for (size_t i = 1; i < lengths.size(); ++i)
        EXPECT_LE(lengths[0], lengths[i]);
}

TEST(HuffmanCompression, ApproachesEntropyOnBiasedData)
{
    // 90/10 binary source: entropy ~0.469 bits/symbol.
    util::Rng rng(11);
    std::vector<uint64_t> freq(2, 0);
    std::vector<int> symbols(100000);
    for (auto &s : symbols) {
        s = rng.below(10) == 0;
        freq[s]++;
    }
    comp::HuffmanEncoder enc(freq);
    // Plain Huffman on a binary alphabet cannot beat 1 bit/symbol, but
    // the table must still assign 1-bit codes to both.
    EXPECT_EQ(enc.lengths()[0], 1);
    EXPECT_EQ(enc.lengths()[1], 1);
}

} // namespace
} // namespace atc
