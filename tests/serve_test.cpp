/**
 * @file
 * Trace-serving daemon tests: wire-protocol codec round-trips,
 * served seek/range results byte-identical to direct AtcCursor reads
 * (lossless and lossy, across concurrent clients), the full negative
 * grid — truncated frames, oversized declared lengths, unknown
 * opcodes, bad versions, malformed bodies, bad handles, unknown
 * containers, out-of-range requests, mid-request disconnects — each
 * answered with the documented status code (or a clean close) and
 * never a crash, session reaping observed through STAT counters, the
 * shared decoded-block cache visible through AtcIndex::cacheStats(),
 * and the admission-control bound: with a sleepy codec making decodes
 * expensive, a seek client's p99 latency under a flooding pipelined
 * scanner stays well below the uncapped configuration's, while the
 * scanner's own results remain byte-identical to direct reads.
 */

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "atc/atc.hpp"
#include "atc/index.hpp"
#include "compress/codec.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

using serve::Op;
using serve::ServeClient;
using serve::ServeOptions;
using serve::TraceServer;
using serve::Wire;

std::vector<uint64_t>
makeTrace(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> trace(n);
    uint64_t base = 0x10000000;
    for (auto &v : trace) {
        base += rng.below(4096);
        v = (rng.below(16) == 0) ? rng.next() >> 20 : base;
    }
    return trace;
}

core::AtcOptions
makeOptions(core::Mode mode, const std::string &codec = "bwc")
{
    core::AtcOptions opt;
    opt.mode = mode;
    // Small buffers/blocks so even modest traces span many frames.
    opt.pipeline.buffer_addrs = 777;
    opt.pipeline.codec = codec;
    opt.pipeline.codec_block = 4096;
    opt.lossy.interval_len = 1000;
    opt.lossy.epsilon = 0.5;
    return opt;
}

core::MemoryStore
writeContainer(const std::vector<uint64_t> &trace,
               const core::AtcOptions &opt)
{
    core::MemoryStore store;
    core::AtcWriter writer(store, opt);
    writer.write(trace.data(), trace.size());
    writer.close();
    return store;
}

/** Start a server over @p store as container "t"; gtest-fails on error. */
void
startServer(TraceServer &server, core::MemoryStore &store)
{
    ASSERT_TRUE(server.addContainer("t", store).ok());
    util::Status st = server.start();
    ASSERT_TRUE(st.ok()) << st.message();
    ASSERT_NE(server.port(), 0);
}

ServeClient
connectOrDie(const TraceServer &server)
{
    auto conn = ServeClient::connect("127.0.0.1", server.port());
    EXPECT_TRUE(conn.ok()) << conn.status().message();
    return conn.take();
}

// --------------------------------------------------- protocol codecs

TEST(Protocol, RequestRoundTripsEveryOpcode)
{
    serve::Request reqs[7];
    reqs[0].op = Op::Ping;
    reqs[1].op = Op::Open;
    reqs[1].name = "trace-a";
    reqs[2].op = Op::Seek;
    reqs[2].handle = 7;
    reqs[2].begin = 123456789;
    reqs[2].count = 4096;
    reqs[3].op = Op::ReadRange;
    reqs[3].handle = 9;
    reqs[3].begin = 1;
    reqs[3].end = 1000001;
    reqs[4].op = Op::Close;
    reqs[4].handle = 3;
    reqs[5].op = Op::Shutdown;
    reqs[6].op = Op::Metrics;

    uint32_t id = 100;
    for (serve::Request &req : reqs) {
        req.request_id = id++;
        std::vector<uint8_t> frame;
        serve::encodeRequest(req, frame);
        ASSERT_GE(frame.size(), 4u + serve::kHeaderLen);
        EXPECT_EQ(serve::getU32(frame.data()), frame.size() - 4);

        serve::Request out;
        std::string err;
        Wire verdict = serve::parseRequest(frame.data() + 4,
                                           frame.size() - 4, out, err);
        ASSERT_EQ(verdict, Wire::kOk) << err;
        EXPECT_EQ(out.op, req.op);
        EXPECT_EQ(out.request_id, req.request_id);
        EXPECT_EQ(out.handle, req.handle);
        EXPECT_EQ(out.begin, req.begin);
        EXPECT_EQ(out.end, req.end);
        EXPECT_EQ(out.count, req.count);
        EXPECT_EQ(out.name, req.name);
    }
}

TEST(Protocol, MalformedRequestsGetTheDocumentedVerdicts)
{
    serve::Request out;
    std::string err;

    // Too short for a header.
    uint8_t tiny[4] = {1, 0, 0, 0};
    EXPECT_EQ(serve::parseRequest(tiny, sizeof(tiny), out, err),
              Wire::kBadRequest);

    // Wrong version.
    serve::Request ping;
    ping.op = Op::Ping;
    ping.request_id = 5;
    std::vector<uint8_t> frame;
    serve::encodeRequest(ping, frame);
    frame[4] = serve::kProtocolVersion + 1;
    EXPECT_EQ(serve::parseRequest(frame.data() + 4, frame.size() - 4,
                                  out, err),
              Wire::kBadVersion);
    EXPECT_EQ(out.request_id, 5u) << "errors must echo the request id";

    // Unknown opcode.
    frame[4] = serve::kProtocolVersion;
    frame[5] = 99;
    EXPECT_EQ(serve::parseRequest(frame.data() + 4, frame.size() - 4,
                                  out, err),
              Wire::kUnknownOp);

    // SEEK with a short body.
    serve::Request seek;
    seek.op = Op::Seek;
    seek.handle = 1;
    frame.clear();
    serve::encodeRequest(seek, frame);
    frame.pop_back();
    EXPECT_EQ(serve::parseRequest(frame.data() + 4, frame.size() - 4,
                                  out, err),
              Wire::kBadRequest);

    // OPEN whose name_len disagrees with the payload.
    serve::Request open;
    open.op = Op::Open;
    open.name = "abc";
    frame.clear();
    serve::encodeRequest(open, frame);
    frame[4 + serve::kHeaderLen] = 200; // name_len lies
    EXPECT_EQ(serve::parseRequest(frame.data() + 4, frame.size() - 4,
                                  out, err),
              Wire::kBadRequest);
}

// ------------------------------------------------- served read parity

TEST(Serve, LosslessSeekAndRangeMatchDirectCursor)
{
    auto trace = makeTrace(60'000, 21);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    TraceServer server;
    startServer(server, store);
    ServeClient client = connectOrDie(server);

    auto remote = client.open("t");
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    EXPECT_EQ(remote.value().records, trace.size());
    EXPECT_FALSE(remote.value().lossy);
    uint32_t handle = remote.value().handle;

    auto index = server.containerIndex("t");
    ASSERT_NE(index, nullptr);
    auto direct = index->cursor();

    const uint64_t probes[] = {0,     1,     776,   777,   778,
                               4095,  4096,  12345, 59'000, 59'999};
    for (uint64_t pos : probes) {
        std::vector<uint64_t> got;
        uint64_t actual = ~0ull;
        util::Status st = client.seekRead(handle, pos, 512, got, &actual);
        ASSERT_TRUE(st.ok()) << st.message();
        EXPECT_EQ(actual, pos); // lossless seeks are exact

        ASSERT_TRUE(direct->seek(pos).ok());
        std::vector<uint64_t> want(512);
        want.resize(direct->read(want.data(), want.size()));
        EXPECT_EQ(got, want) << "seek parity diverged at " << pos;
    }

    const std::pair<uint64_t, uint64_t> ranges[] = {
        {0, 1}, {0, 777}, {776, 780}, {4000, 9000}, {59'990, 60'000}};
    for (auto [begin, end] : ranges) {
        std::vector<uint64_t> got, want;
        ASSERT_TRUE(client.readRange(handle, begin, end, got).ok());
        ASSERT_TRUE(direct->readRange(begin, end, want).ok());
        EXPECT_EQ(got, want)
            << "range parity diverged at [" << begin << "," << end << ")";
    }

    EXPECT_TRUE(client.closeHandle(handle).ok());
    server.stop();
}

TEST(Serve, LossySeekReportsWhereItLanded)
{
    auto trace = makeTrace(40'000, 22);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossy));

    TraceServer server;
    startServer(server, store);
    ServeClient client = connectOrDie(server);

    auto remote = client.open("t");
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    EXPECT_TRUE(remote.value().lossy);
    uint32_t handle = remote.value().handle;

    auto direct = server.containerIndex("t")->cursor();
    for (uint64_t pos : {0ull, 999ull, 1000ull, 1500ull, 39'999ull}) {
        std::vector<uint64_t> got;
        uint64_t actual = 0;
        ASSERT_TRUE(
            client.seekRead(handle, pos, 256, got, &actual).ok());

        ASSERT_TRUE(direct->seek(pos).ok());
        EXPECT_EQ(actual, direct->tell())
            << "landing position diverged at " << pos;
        std::vector<uint64_t> want(256);
        want.resize(direct->read(want.data(), want.size()));
        EXPECT_EQ(got, want);
    }
    server.stop();
}

TEST(Serve, ConcurrentClientsStayByteIdentical)
{
    auto trace = makeTrace(50'000, 23);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    ServeOptions opt;
    opt.threads = 4;
    TraceServer server(opt);
    startServer(server, store);

    auto index = server.containerIndex("t");
    constexpr int kClients = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            auto conn =
                ServeClient::connect("127.0.0.1", server.port());
            if (!conn.ok()) {
                ++failures;
                return;
            }
            ServeClient client = conn.take();
            auto remote = client.open("t");
            if (!remote.ok()) {
                ++failures;
                return;
            }
            auto direct = index->cursor();
            util::Rng rng(1000 + c);
            for (int i = 0; i < 25; ++i) {
                uint64_t begin = rng.below(trace.size() - 1);
                uint64_t end =
                    std::min<uint64_t>(begin + 1 + rng.below(3000),
                                       trace.size());
                std::vector<uint64_t> got, want;
                if (!client
                         .readRange(remote.value().handle, begin, end,
                                    got)
                         .ok() ||
                    !direct->readRange(begin, end, want).ok() ||
                    got != want) {
                    ++failures;
                    return;
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.connections_accepted, kClients);
    EXPECT_EQ(stats.requests_read_range, kClients * 25u);
    server.stop();
}

// ----------------------------------------------------- error handling

TEST(Serve, ErrorStatusGrid)
{
    auto trace = makeTrace(10'000, 24);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    ServeOptions opt;
    opt.max_range_records = 4096;
    TraceServer server(opt);
    startServer(server, store);
    ServeClient client = connectOrDie(server);

    // OPEN of an unserved name.
    auto missing = client.open("nope");
    ASSERT_FALSE(missing.ok());
    EXPECT_NE(missing.status().message().find("not_found"),
              std::string::npos)
        << missing.status().message();

    // Operations on a never-issued handle.
    std::vector<uint64_t> out;
    util::Status st = client.seekRead(42, 0, 10, out);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("bad_handle"), std::string::npos);

    auto remote = client.open("t");
    ASSERT_TRUE(remote.ok());
    uint32_t handle = remote.value().handle;

    // Seek past the end.
    st = client.seekRead(handle, trace.size() + 1, 10, out);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("out_of_range"), std::string::npos);

    // begin > end.
    st = client.readRange(handle, 100, 50, out);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("out_of_range"), std::string::npos);

    // Range past the end (small enough to clear the size pre-check,
    // so the end-bound check is what fires).
    st = client.readRange(handle, trace.size() - 10, trace.size() + 1,
                          out);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("out_of_range"), std::string::npos);

    // Range beyond max_range_records.
    st = client.readRange(handle, 0, 5000, out);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("too_large"), std::string::npos);

    // Close twice.
    ASSERT_TRUE(client.closeHandle(handle).ok());
    st = client.closeHandle(handle);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("bad_handle"), std::string::npos);

    // The connection survived every error above.
    EXPECT_TRUE(client.ping().ok());
    server.stop();
}

/** Build a raw frame: length prefix + header + body. */
std::vector<uint8_t>
rawFrame(uint8_t version, uint8_t opcode, uint16_t flags, uint32_t id,
         const std::vector<uint8_t> &body)
{
    std::vector<uint8_t> out;
    serve::putU32(out,
                  static_cast<uint32_t>(serve::kHeaderLen + body.size()));
    out.push_back(version);
    out.push_back(opcode);
    serve::putU16(out, flags);
    serve::putU32(out, id);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/** Read one response frame off @p sock; gtest-asserts on transport. */
serve::Response
readResponse(const serve::Socket &sock)
{
    uint8_t len_bytes[4];
    std::string err;
    EXPECT_EQ(sock.readFull(len_bytes, 4, &err), serve::IoResult::kOk)
        << err;
    uint32_t len = serve::getU32(len_bytes);
    EXPECT_GE(len, serve::kHeaderLen);
    EXPECT_LE(len, 1u << 20);
    std::vector<uint8_t> payload(len);
    EXPECT_EQ(sock.readFull(payload.data(), len, &err),
              serve::IoResult::kOk)
        << err;
    serve::Response resp;
    EXPECT_TRUE(serve::parseResponse(payload.data(), payload.size(),
                                     resp));
    return resp;
}

TEST(Serve, HostileFramesNeverCrashTheServer)
{
    auto trace = makeTrace(5'000, 25);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    TraceServer server;
    startServer(server, store);
    std::string err;

    { // Oversized declared length: kTooLarge, then the server hangs up.
        auto sock = serve::connectTo("127.0.0.1", server.port());
        ASSERT_TRUE(sock.ok());
        std::vector<uint8_t> evil;
        serve::putU32(evil, serve::kMaxRequestPayload + 1);
        // Enough header bytes that the error can echo our request id.
        evil.push_back(serve::kProtocolVersion);
        evil.push_back(0);
        serve::putU16(evil, 0);
        serve::putU32(evil, 77);
        ASSERT_EQ(sock.value().writeFull(evil.data(), evil.size(), &err),
                  serve::IoResult::kOk);
        serve::Response resp = readResponse(sock.value());
        EXPECT_EQ(resp.status, Wire::kTooLarge);
        EXPECT_EQ(resp.request_id, 77u);
        uint8_t byte;
        EXPECT_EQ(sock.value().readFull(&byte, 1, &err, 5000),
                  serve::IoResult::kEof)
            << "untrusted framing must close the connection";
    }

    { // Unknown opcode: kUnknownOp, and the connection survives.
        auto sock = serve::connectTo("127.0.0.1", server.port());
        ASSERT_TRUE(sock.ok());
        auto evil = rawFrame(serve::kProtocolVersion, 99, 0, 5, {});
        ASSERT_EQ(sock.value().writeFull(evil.data(), evil.size(), &err),
                  serve::IoResult::kOk);
        serve::Response resp = readResponse(sock.value());
        EXPECT_EQ(resp.status, Wire::kUnknownOp);
        EXPECT_EQ(resp.request_id, 5u);

        auto ping = rawFrame(serve::kProtocolVersion,
                             uint8_t(Op::Ping), 0, 6, {});
        ASSERT_EQ(sock.value().writeFull(ping.data(), ping.size(), &err),
                  serve::IoResult::kOk);
        resp = readResponse(sock.value());
        EXPECT_EQ(resp.status, Wire::kOk);
        EXPECT_EQ(resp.request_id, 6u);
    }

    { // Bad version: kBadVersion, then close.
        auto sock = serve::connectTo("127.0.0.1", server.port());
        ASSERT_TRUE(sock.ok());
        auto evil = rawFrame(serve::kProtocolVersion + 1,
                             uint8_t(Op::Ping), 0, 8, {});
        ASSERT_EQ(sock.value().writeFull(evil.data(), evil.size(), &err),
                  serve::IoResult::kOk);
        serve::Response resp = readResponse(sock.value());
        EXPECT_EQ(resp.status, Wire::kBadVersion);
        uint8_t byte;
        EXPECT_EQ(sock.value().readFull(&byte, 1, &err, 5000),
                  serve::IoResult::kEof);
    }

    { // Malformed body (SEEK with 3 body bytes): kBadRequest + close.
        auto sock = serve::connectTo("127.0.0.1", server.port());
        ASSERT_TRUE(sock.ok());
        auto evil = rawFrame(serve::kProtocolVersion,
                             uint8_t(Op::Seek), 0, 9, {1, 2, 3});
        ASSERT_EQ(sock.value().writeFull(evil.data(), evil.size(), &err),
                  serve::IoResult::kOk);
        serve::Response resp = readResponse(sock.value());
        EXPECT_EQ(resp.status, Wire::kBadRequest);
        uint8_t byte;
        EXPECT_EQ(sock.value().readFull(&byte, 1, &err, 5000),
                  serve::IoResult::kEof);
    }

    { // Truncated frame then mid-request disconnect: just a reap.
        auto sock = serve::connectTo("127.0.0.1", server.port());
        ASSERT_TRUE(sock.ok());
        auto frame = rawFrame(serve::kProtocolVersion,
                              uint8_t(Op::Open), 0, 10,
                              {5, 0, 'a', 'b', 'c', 'd', 'e'});
        ASSERT_EQ(sock.value().writeFull(frame.data(),
                                         frame.size() - 3, &err),
                  serve::IoResult::kOk);
        sock.value().close();
    }

    // After all of the above the server still serves real clients.
    ServeClient client = connectOrDie(server);
    EXPECT_TRUE(client.ping().ok());
    auto remote = client.open("t");
    ASSERT_TRUE(remote.ok());
    std::vector<uint64_t> got;
    EXPECT_TRUE(
        client.readRange(remote.value().handle, 0, 100, got).ok());
    EXPECT_EQ(got.size(), 100u);

    serve::ServerStats stats = server.stats();
    EXPECT_GE(stats.protocol_errors, 4u);
    server.stop();
}

TEST(Serve, DisconnectedSessionsAreReaped)
{
    auto trace = makeTrace(5'000, 26);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    TraceServer server;
    startServer(server, store);

    {
        ServeClient a = connectOrDie(server);
        ServeClient b = connectOrDie(server);
        ASSERT_TRUE(a.ping().ok());
        ASSERT_TRUE(b.ping().ok());
        a.disconnect();
        b.disconnect();
    }

    // The I/O thread reaps on its next poll wakeup; give it a moment.
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {
        serve::ServerStats stats = server.stats();
        reaped = stats.sessions_active == 0 && stats.disconnects >= 2;
        if (!reaped)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(reaped) << "closed sessions were not reaped";
    server.stop();
}

TEST(Serve, StatExposesCountersAndCacheStats)
{
    auto trace = makeTrace(20'000, 27);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    TraceServer server;
    startServer(server, store);
    ServeClient client = connectOrDie(server);

    auto remote = client.open("t");
    ASSERT_TRUE(remote.ok());
    std::vector<uint64_t> out;
    // Same range twice: the second decode must come from the shared
    // block cache.
    ASSERT_TRUE(
        client.readRange(remote.value().handle, 1000, 3000, out).ok());
    ASSERT_TRUE(
        client.readRange(remote.value().handle, 1000, 3000, out).ok());

    auto text = client.statText();
    ASSERT_TRUE(text.ok()) << text.status().message();
    auto stat = ServeClient::parseStat(text.value());
    EXPECT_EQ(stat["server.requests.open"], 1u);
    EXPECT_EQ(stat["server.requests.read_range"], 2u);
    EXPECT_EQ(stat["server.records_served"], 4000u);
    EXPECT_EQ(stat["container.t.records"], trace.size());
    EXPECT_GE(stat["container.t.cache.insertions"], 1u);
    EXPECT_GE(stat["container.t.cache.hits"], 1u)
        << "repeated range did not hit the shared cache";

    // The same counters through the public C++ surface.
    core::BlockCacheStats cs = server.containerIndex("t")->cacheStats();
    EXPECT_EQ(cs.hits, stat["container.t.cache.hits"]);
    EXPECT_GE(cs.bytes, 1u);
    server.stop();
}

TEST(Serve, MetricsOpRoundTripsTheRegistrySnapshot)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "built with ATC_OBS_OFF";
    auto trace = makeTrace(20'000, 29);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    // kDebug also drives the structured-logging path (one stderr line
    // per request) under the sanitizer jobs running this binary.
    ServeOptions opt;
    opt.log_level = serve::LogLevel::kDebug;
    TraceServer server(opt);
    startServer(server, store);
    ServeClient client = connectOrDie(server);

    auto remote = client.open("t");
    ASSERT_TRUE(remote.ok());
    std::vector<uint64_t> out;
    ASSERT_TRUE(
        client.readRange(remote.value().handle, 500, 2500, out).ok());

    auto text = client.metricsText();
    ASSERT_TRUE(text.ok()) << text.status().message();
    ASSERT_EQ(text.value().rfind("atc_metrics 1\n", 0), 0u);
    std::map<std::string, int64_t> parsed;
    ASSERT_TRUE(obs::parseMetricsText(text.value(), parsed));

    // Round-trip parity: the wire bytes are the shared text encoding
    // of the process registry, so re-encoding the registry now must
    // yield a superset of the parsed keys (metrics are never removed,
    // non-empty histogram buckets never empty again) with monotone
    // counter values.
    std::map<std::string, int64_t> now;
    ASSERT_TRUE(obs::parseMetricsText(
        obs::snapshotToText(obs::Registry::global().snapshot()), now));
    for (const auto &[key, value] : parsed)
        EXPECT_TRUE(now.count(key) != 0)
            << key << " served but absent from the local registry";
    EXPECT_GE(parsed["serve.req.read_range_us.count"], 1);
    EXPECT_GE(parsed["serve.req.open_us.count"], 1);
    EXPECT_GE(parsed["cache.misses"], 1);
    EXPECT_GE(now["serve.req.read_range_us.count"],
              parsed["serve.req.read_range_us.count"]);

    // The new STAT keys ride along: the METRICS request was counted,
    // uptime is reported, and nothing heavy is in flight by now.
    auto stat_text = client.statText();
    ASSERT_TRUE(stat_text.ok());
    auto stat = ServeClient::parseStat(stat_text.value());
    EXPECT_EQ(stat["server.requests.metrics"], 1u);
    EXPECT_EQ(stat["server.inflight_heavy"], 0u);
    EXPECT_EQ(stat.count("server.uptime_seconds"), 1u);
    server.stop();
}

TEST(Serve, ShutdownOpcodeStopsTheServer)
{
    auto trace = makeTrace(2'000, 28);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless));

    TraceServer server;
    startServer(server, store);
    ServeClient client = connectOrDie(server);
    EXPECT_FALSE(server.waitFor(0));
    ASSERT_TRUE(client.shutdownServer().ok());
    EXPECT_TRUE(server.waitFor(5000));
    server.stop();
}

// ------------------------------------------- admission-control bound

/** Store clone whose block decodes cost wall-clock time, so worker
 *  occupancy — not decode speed — dominates served latency. */
class SleepyStoreCodec : public comp::StoreCodec
{
  public:
    std::string name() const override { return "zzz"; }

    void
    decompressBlock(util::ByteSource &in, size_t raw_size,
                    std::vector<uint8_t> &out) const override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        comp::StoreCodec::decompressBlock(in, raw_size, out);
    }
};

void
registerSleepyCodec()
{
    static bool once = [] {
        comp::CodecRegistry::instance().add(
            "zzz", [](const comp::CodecSpec &)
                       -> util::StatusOr<
                           std::shared_ptr<const comp::Codec>> {
                return std::shared_ptr<const comp::Codec>(
                    std::make_shared<SleepyStoreCodec>());
            });
        return true;
    }();
    (void)once;
}

struct FloodOutcome
{
    double seek_p99_ms = 0;
    uint64_t admission_deferred = 0;
};

/**
 * One scanner pipelines @p kScans READ_RANGEs while a seek client
 * measures per-request latency. @return the seek client's p99 and the
 * server's deferred-admission count; gtest-fails on any parity or
 * transport error.
 */
FloodOutcome
runFlood(core::MemoryStore &store, const std::vector<uint64_t> &trace,
         uint32_t max_inflight)
{
    using Clock = std::chrono::steady_clock;
    constexpr int kScans = 24;
    constexpr uint64_t kScanLen = 4000;
    constexpr int kSeeks = 24;

    ServeOptions opt;
    opt.threads = 2;
    opt.cache_bytes = 0; // every range decodes; sleeps dominate
    opt.max_inflight_per_client = max_inflight;
    opt.max_inflight_records_per_client = uint64_t(max_inflight) << 14;
    TraceServer server(opt);
    startServer(server, store);

    ServeClient scanner = connectOrDie(server);
    ServeClient seeker = connectOrDie(server);
    auto scan_handle = scanner.open("t");
    auto seek_handle = seeker.open("t");
    EXPECT_TRUE(scan_handle.ok());
    EXPECT_TRUE(seek_handle.ok());

    std::atomic<bool> scanner_done{false};
    std::thread flood([&] {
        // Pipeline everything, then drain; each response is checked
        // byte-for-byte against a direct cursor read.
        std::vector<std::pair<uint32_t, uint64_t>> sent; // id -> begin
        for (int i = 0; i < kScans; ++i) {
            uint64_t begin = (uint64_t(i) * 1777) %
                             (trace.size() - kScanLen);
            auto id = scanner.sendReadRange(scan_handle.value().handle,
                                            begin, begin + kScanLen);
            if (!id.ok()) {
                ADD_FAILURE() << id.status().message();
                break;
            }
            sent.emplace_back(id.value(), begin);
        }
        auto direct = server.containerIndex("t")->cursor();
        for (size_t i = 0; i < sent.size(); ++i) {
            serve::ClientResponse resp;
            util::Status st = scanner.receive(resp);
            if (!st.ok()) {
                ADD_FAILURE() << st.message();
                break;
            }
            EXPECT_EQ(resp.status, Wire::kOk) << resp.error;
            auto it = std::find_if(sent.begin(), sent.end(),
                                   [&](const auto &p) {
                                       return p.first ==
                                              resp.request_id;
                                   });
            ASSERT_NE(it, sent.end());
            std::vector<uint64_t> want;
            ASSERT_TRUE(direct
                            ->readRange(it->second,
                                        it->second + kScanLen, want)
                            .ok());
            EXPECT_EQ(resp.records, want)
                << "scanner parity diverged under flood";
        }
        scanner_done = true;
    });

    // Let the flood land first so the seeker always competes with it.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    std::vector<double> lat_ms;
    lat_ms.reserve(kSeeks);
    for (int i = 0; i < kSeeks; ++i) {
        uint64_t pos = (uint64_t(i) * 997) % trace.size();
        std::vector<uint64_t> got;
        auto t0 = Clock::now();
        util::Status st =
            seeker.seekRead(seek_handle.value().handle, pos, 64, got);
        auto t1 = Clock::now();
        EXPECT_TRUE(st.ok()) << st.message();
        lat_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (scanner_done)
            break; // flood over; later samples measure an idle server
    }
    flood.join();

    std::sort(lat_ms.begin(), lat_ms.end());
    FloodOutcome out;
    out.seek_p99_ms = lat_ms[(lat_ms.size() * 99) / 100];
    out.admission_deferred = server.stats().admission_deferred;
    server.stop();
    return out;
}

TEST(Serve, AdmissionControlBoundsAHostileScanner)
{
    registerSleepyCodec();
    auto trace = makeTrace(50'000, 29);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless, "zzz"));

    // Uncapped: the scanner's pipelined ranges occupy every worker and
    // the seeker queues behind the whole flood.
    FloodOutcome uncapped = runFlood(store, trace, 64);
    // Capped: at most one scanner range is in flight, so the seeker
    // waits for at most a request or two.
    FloodOutcome capped = runFlood(store, trace, 1);

    EXPECT_GT(capped.admission_deferred, 0u)
        << "the cap never actually deferred the scanner";
    EXPECT_LT(capped.seek_p99_ms * 2, uncapped.seek_p99_ms)
        << "capped p99 " << capped.seek_p99_ms
        << "ms is not clearly below uncapped p99 "
        << uncapped.seek_p99_ms << "ms";
    // And an absolute sanity bound: with the scanner capped the seeker
    // competes with at most one 4000-record sleepy decode at a time.
    EXPECT_LT(capped.seek_p99_ms, 1000.0);
}

} // namespace
} // namespace atc
