/**
 * @file
 * Tests for the zero-copy source layer: MappedFile, MmapSource, the
 * openFileSource fallback policy, and byte parity of mmap-backed
 * container reads against the buffered stdio path across container
 * versions and modes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "atc/atc.hpp"
#include "atc/container.hpp"
#include "atc/index.hpp"
#include "obs/metrics.hpp"
#include "util/mmap.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace fs = std::filesystem;
using namespace atc;

namespace {

/** Scoped override of the process-wide io mode. */
struct IoModeGuard
{
    util::IoMode saved;
    explicit IoModeGuard(util::IoMode mode) : saved(util::defaultIoMode())
    {
        util::setDefaultIoMode(mode);
    }
    ~IoModeGuard() { util::setDefaultIoMode(saved); }
};

std::string
writeBytes(const std::string &name, const std::vector<uint8_t> &bytes)
{
    std::string path = testing::TempDir() + "/" + name;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (!bytes.empty())
        EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    std::fclose(f);
    return path;
}

std::vector<uint64_t>
syntheticTrace(size_t n)
{
    util::Rng rng(7);
    std::vector<uint64_t> trace(n);
    uint64_t base = 0x4000'0000;
    for (auto &v : trace) {
        if (rng.below(16) == 0)
            base = 0x4000'0000 + (rng.below(8) << 24);
        v = base + rng.below(1 << 16);
    }
    return trace;
}

std::vector<uint64_t>
readAll(const std::string &dir, util::IoMode mode)
{
    IoModeGuard guard(mode);
    core::AtcReader reader(dir);
    std::vector<uint64_t> out;
    uint64_t v;
    while (reader.decode(&v))
        out.push_back(v);
    return out;
}

} // namespace

TEST(MappedFile, MapsRegularFileAndBoundsChecksViews)
{
    std::vector<uint8_t> bytes(4096);
    for (size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<uint8_t>(i * 31);
    std::string path = writeBytes("atc_mmap_basic.bin", bytes);

    auto file = util::MappedFile::map(path);
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->size(), bytes.size());
    EXPECT_EQ(std::vector<uint8_t>(file->data(),
                                   file->data() + file->size()),
              bytes);

    EXPECT_EQ(file->view(100, 16), file->data() + 100);
    EXPECT_EQ(file->view(bytes.size(), 0), file->data() + bytes.size());
    EXPECT_EQ(file->view(bytes.size(), 1), nullptr);
    EXPECT_EQ(file->view(1, bytes.size()), nullptr);
    fs::remove(path);
}

TEST(MappedFile, RejectsMissingEmptyAndSpecialFiles)
{
    EXPECT_EQ(util::MappedFile::map(testing::TempDir() +
                                    "/atc_mmap_no_such_file"),
              nullptr);
    std::string empty = writeBytes("atc_mmap_empty.bin", {});
    EXPECT_EQ(util::MappedFile::map(empty), nullptr);
    fs::remove(empty);
#if !defined(_WIN32)
    EXPECT_EQ(util::MappedFile::map("/dev/null"), nullptr);
#endif
}

TEST(MmapSource, ViewReadSkipSemantics)
{
    std::vector<uint8_t> bytes(256);
    for (size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<uint8_t>(i);
    std::string path = writeBytes("atc_mmap_source.bin", bytes);
    auto file = util::MappedFile::map(path);
    ASSERT_NE(file, nullptr);

    util::MmapSource src(file);
    const uint8_t *span = src.view(16);
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span, file->data());
    EXPECT_EQ(span[15], 15);
    // The keepalive token pins the mapping for borrowers that outlive
    // the source.
    EXPECT_EQ(src.viewKeepalive().get(), file.get());

    uint8_t buf[8];
    EXPECT_EQ(src.read(buf, 8), 8u);
    EXPECT_EQ(buf[0], 16);
    src.skip(200);
    EXPECT_EQ(src.remaining(), 256u - 16 - 8 - 200);
    // A view larger than what remains must refuse, not truncate.
    EXPECT_EQ(src.view(64), nullptr);
    EXPECT_THROW(src.skip(64), util::Error);
    fs::remove(path);
}

TEST(OpenFileSource, StdioModeAndUnmappableInputsFallBack)
{
    std::vector<uint8_t> bytes{1, 2, 3, 4, 5};
    std::string path = writeBytes("atc_mmap_fallback.bin", bytes);

    // kStdio forces the buffered path: no borrowed views available.
    auto stdio_src = util::openFileSource(path, util::IoMode::kStdio);
    EXPECT_EQ(stdio_src->view(2), nullptr);
    uint8_t buf[5] = {};
    stdio_src->readExact(buf, 5);
    EXPECT_EQ(buf[4], 5);

    // kMmap on a regular file serves views.
    auto mmap_src = util::openFileSource(path, util::IoMode::kMmap);
    EXPECT_NE(mmap_src->view(5), nullptr);
    fs::remove(path);

#if !defined(_WIN32)
    // An unmappable special file falls back to stdio cleanly instead
    // of failing: reads work, views are refused.
    auto dev = util::openFileSource("/dev/null", util::IoMode::kMmap);
    EXPECT_EQ(dev->view(1), nullptr);
    EXPECT_EQ(dev->read(buf, 1), 0u);
#endif

    // A missing file is an error in both modes, not a silent fallback.
    std::string missing = testing::TempDir() + "/atc_mmap_missing.bin";
    EXPECT_THROW(util::openFileSource(missing, util::IoMode::kMmap),
                 util::Error);
    EXPECT_THROW(util::openFileSource(missing, util::IoMode::kStdio),
                 util::Error);
}

#if !defined(_WIN32)
TEST(MappedFile, SparseFileBeyondTwoGiB)
{
    // 64-bit offset probe: map a sparse >=2 GiB file (no disk blocks
    // behind the hole) and read a marker placed past the 2^31 line.
    if (sizeof(size_t) < 8)
        GTEST_SKIP() << "needs a 64-bit size_t";
    const uint64_t kOffset = (1ull << 31) + 4096;
    const uint8_t kMarker[8] = {0xA5, 1, 2, 3, 4, 5, 6, 0x5A};
    std::string path = testing::TempDir() + "/atc_mmap_sparse.bin";
    int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pwrite(fd, kMarker, sizeof kMarker,
                       static_cast<off_t>(kOffset)),
              static_cast<ssize_t>(sizeof kMarker));
    ::close(fd);

    auto file = util::MappedFile::map(path);
    ASSERT_NE(file, nullptr);
    EXPECT_EQ(file->size(), kOffset + sizeof kMarker);
    const uint8_t *span = file->view(kOffset, sizeof kMarker);
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(std::memcmp(span, kMarker, sizeof kMarker), 0);
    // The hole reads as zeros.
    EXPECT_EQ(file->view(kOffset - 8, 8)[0], 0);

    // MmapSource::skip is O(1), so seeking past 2 GiB is instant.
    util::MmapSource src(file);
    src.skip(kOffset);
    uint8_t buf[8] = {};
    EXPECT_EQ(src.read(buf, 8), 8u);
    EXPECT_EQ(std::memcmp(buf, kMarker, 8), 0);
    fs::remove(path);
}
#endif

TEST(MmapParity, ContainersDecodeIdenticallyAcrossVersionsAndModes)
{
    auto trace = syntheticTrace(30000);
    for (int version = int(core::kMinContainerVersion);
         version <= int(core::kContainerVersion); ++version) {
        for (bool lossy : {false, true}) {
            std::string dir = testing::TempDir() + "/atc_mmap_parity_v" +
                              std::to_string(version) +
                              (lossy ? "_lossy" : "_lossless");
            fs::remove_all(dir);
            core::AtcOptions opt;
            opt.container_version = static_cast<uint8_t>(version);
            opt.mode = lossy ? core::Mode::Lossy : core::Mode::Lossless;
            opt.lossy.interval_len = 5000;
            opt.pipeline.buffer_addrs = 4096;
            {
                core::AtcWriter writer(dir, opt);
                writer.write(trace.data(), trace.size());
                writer.close();
            }

            auto mmap_out = readAll(dir, util::IoMode::kMmap);
            auto stdio_out = readAll(dir, util::IoMode::kStdio);
            EXPECT_EQ(mmap_out, stdio_out)
                << "v" << version << (lossy ? " lossy" : " lossless");
            EXPECT_EQ(mmap_out.size(), trace.size());
            if (!lossy)
                EXPECT_EQ(mmap_out, trace);
            fs::remove_all(dir);
        }
    }
}

TEST(MmapParity, RandomAccessCursorMatchesStdio)
{
    auto trace = syntheticTrace(40000);
    std::string dir = testing::TempDir() + "/atc_mmap_cursor_parity";
    fs::remove_all(dir);
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossless;
    opt.pipeline.buffer_addrs = 4096;
    opt.pipeline.codec_block = 16 * 1024;
    {
        core::AtcWriter writer(dir, opt);
        writer.write(trace.data(), trace.size());
        writer.close();
    }

    for (util::IoMode mode :
         {util::IoMode::kMmap, util::IoMode::kStdio}) {
        IoModeGuard guard(mode);
        auto index = core::AtcIndex::openOrThrow(
            std::make_unique<core::DirectoryStore>(dir, "bwc", mode));
        auto cursor = index->cursor();
        std::vector<uint64_t> slice;
        ASSERT_TRUE(cursor->readRange(17000, 19000, slice).ok());
        EXPECT_EQ(slice,
                  std::vector<uint64_t>(trace.begin() + 17000,
                                        trace.begin() + 19000));
    }
    fs::remove_all(dir);
}

TEST(MmapParity, ViewBytesCounterRecordsZeroCopyDecodes)
{
    if (!obs::enabled())
        GTEST_SKIP() << "observability disabled";
    auto trace = syntheticTrace(20000);
    std::string dir = testing::TempDir() + "/atc_mmap_counters";
    fs::remove_all(dir);
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossless;
    opt.pipeline.buffer_addrs = 4096;
    {
        core::AtcWriter writer(dir, opt);
        writer.write(trace.data(), trace.size());
        writer.close();
    }

    auto before = obs::Registry::global().snapshot();
    auto out = readAll(dir, util::IoMode::kMmap);
    auto after = obs::Registry::global().snapshot();
    EXPECT_EQ(out.size(), trace.size());
    EXPECT_GT(after.value("io.mmap_opens"), before.value("io.mmap_opens"));
    EXPECT_GT(after.value("io.view_bytes"), before.value("io.view_bytes"));
    fs::remove_all(dir);
}
