/**
 * @file
 * Tests for the cache model, the I/D filter, and the Cheetah-style
 * stack-distance simulator (including cross-validation between them).
 */

#include <gtest/gtest.h>

#include "cache/cache_model.hpp"
#include "cache/filter.hpp"
#include "cache/stack_sim.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace atc {
namespace {

TEST(CacheModel, ColdMissesThenHits)
{
    cache::CacheModel c({16, 2, 64, cache::ReplPolicy::LRU});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1008)); // same 64B block
    EXPECT_FALSE(c.access(0x1040)); // next block
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheModel, LruEvictsLeastRecentlyUsed)
{
    // Direct the accesses into one set: 1 set, 2 ways.
    cache::CacheModel c({1, 2, 64, cache::ReplPolicy::LRU});
    c.access(0 * 64);
    c.access(1 * 64);
    c.access(0 * 64);      // touch block 0: block 1 is now LRU
    c.access(2 * 64);      // evicts block 1
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_FALSE(c.access(1 * 64));
}

TEST(CacheModel, FifoIgnoresTouches)
{
    cache::CacheModel c({1, 2, 64, cache::ReplPolicy::FIFO});
    c.access(0 * 64);
    c.access(1 * 64);
    c.access(0 * 64);      // touch does not refresh FIFO order
    c.access(2 * 64);      // evicts block 0 (oldest insertion)
    EXPECT_FALSE(c.access(0 * 64));
}

TEST(CacheModel, CapacityHoldsWorkingSet)
{
    // 32 KB cache: a 16 KB working set fits entirely.
    cache::CacheModel c(cache::CacheConfig::paperL1());
    for (int round = 0; round < 3; ++round) {
        for (uint64_t a = 0; a < 16384; a += 64)
            c.access(a);
    }
    EXPECT_EQ(c.stats().misses, 256u); // only the cold round misses
}

TEST(CacheModel, RejectsBadGeometry)
{
    EXPECT_THROW(cache::CacheModel c({100, 4, 64}), util::Error);
    EXPECT_THROW(cache::CacheModel c({128, 4, 60}), util::Error);
    EXPECT_THROW(cache::CacheModel c({128, 0, 64}), util::Error);
}

TEST(CacheModel, ResetClearsState)
{
    cache::CacheModel c({16, 2, 64});
    c.access(0x1000);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0x1000)); // cold again
}

TEST(CacheModel, RandomPolicyStillCaches)
{
    cache::CacheModel c({16, 4, 64, cache::ReplPolicy::RANDOM});
    for (int i = 0; i < 100; ++i)
        c.access(0x2000);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheConfig, PaperL1Geometry)
{
    auto cfg = cache::CacheConfig::paperL1();
    EXPECT_EQ(cfg.capacityBytes(), 32u * 1024);
    EXPECT_EQ(cfg.ways, 4u);
    EXPECT_EQ(cfg.block_bytes, 64u);
}

TEST(CacheFilter, SeparatesInstructionAndData)
{
    cache::CacheFilter f;
    // Same address in I and D streams: each misses its own cache once.
    EXPECT_TRUE(f.access(0x4000, true).has_value());
    EXPECT_TRUE(f.access(0x4000, false).has_value());
    EXPECT_FALSE(f.access(0x4000, true).has_value());
    EXPECT_FALSE(f.access(0x4000, false).has_value());
    EXPECT_EQ(f.icacheStats().misses, 1u);
    EXPECT_EQ(f.dcacheStats().misses, 1u);
}

TEST(CacheFilter, EmitsBlockAddresses)
{
    cache::CacheFilter f;
    auto miss = f.access(0x12345678, false);
    ASSERT_TRUE(miss.has_value());
    EXPECT_EQ(*miss, 0x12345678ull >> 6);
}

TEST(CacheFilter, L2AbsorbsL1ConflictMisses)
{
    // Tiny L1 (direct-mapped, 2 sets) with a large L2 behind it: two
    // blocks conflicting in L1 stay resident in L2, so only the cold
    // misses reach the output.
    cache::CacheConfig l1{2, 1, 64};
    cache::CacheConfig l2{1024, 8, 64};
    cache::CacheFilter f(l1, l2);
    int emitted = 0;
    for (int i = 0; i < 50; ++i) {
        // Blocks 0 and 2 map to L1 set 0.
        emitted += f.access(0 * 64, false).has_value();
        emitted += f.access(2 * 64, false).has_value();
    }
    EXPECT_EQ(emitted, 2);
    EXPECT_TRUE(f.hasL2());
}

TEST(CacheFilter, MismatchedBlockSizesRejected)
{
    cache::CacheConfig l1{128, 4, 64};
    cache::CacheConfig l2{1024, 8, 128};
    EXPECT_THROW(cache::CacheFilter f(l1, l2), util::Error);
}

TEST(StackSimulator, DistanceHistogramBasics)
{
    cache::StackSimulator sim(1, 8);
    // a b a: 'a' reused at depth 2.
    sim.access(10);
    sim.access(20);
    sim.access(10);
    EXPECT_EQ(sim.accesses(), 3u);
    EXPECT_EQ(sim.coldMisses(), 2u);
    EXPECT_EQ(sim.distanceHistogram()[1], 1u); // depth 2 => index 1
    EXPECT_EQ(sim.missCount(1), 3u);           // direct-mapped: all miss
    EXPECT_EQ(sim.missCount(2), 2u);           // 2-way: reuse hits
}

TEST(StackSimulator, MissRatioMonotoneInAssociativity)
{
    util::Rng rng(8);
    cache::StackSimulator sim(64, 32);
    for (int i = 0; i < 100000; ++i)
        sim.access(rng.below(16384));
    for (uint32_t w = 2; w <= 32; ++w)
        EXPECT_LE(sim.missRatio(w), sim.missRatio(w - 1));
}

TEST(StackSimulator, RejectsOutOfRangeAssociativity)
{
    cache::StackSimulator sim(16, 8);
    sim.access(1);
    EXPECT_THROW(sim.missRatio(0), util::Error);
    EXPECT_THROW(sim.missRatio(9), util::Error);
}

class StackVsModel : public testing::TestWithParam<uint32_t>
{
};

TEST_P(StackVsModel, AgreesWithDirectLruSimulation)
{
    // The inclusion property: one stack-simulator pass must reproduce
    // the exact miss counts of an explicit LRU cache at every
    // associativity.
    const uint32_t sets = GetParam();
    const uint32_t max_ways = 8;

    // Workload mixing streaming, loops and randomness.
    std::vector<uint64_t> blocks;
    util::Rng rng(sets);
    trace::LoopNest loop(0x100000, 1 << 18, 1 << 12, 3, 64);
    for (int i = 0; i < 60000; ++i) {
        uint64_t byte_addr =
            rng.below(3) == 0 ? 0x800000 + rng.below(1 << 17) : loop.next();
        blocks.push_back(byte_addr >> 6);
    }

    cache::StackSimulator sim(sets, max_ways);
    for (uint64_t b : blocks)
        sim.access(b);

    for (uint32_t ways = 1; ways <= max_ways; ++ways) {
        cache::CacheModel model({sets, ways, 64, cache::ReplPolicy::LRU});
        for (uint64_t b : blocks)
            model.accessBlock(b);
        EXPECT_EQ(sim.missCount(ways), model.stats().misses)
            << "sets " << sets << " ways " << ways;
    }
}

INSTANTIATE_TEST_SUITE_P(SetCounts, StackVsModel,
                         testing::Values(1u, 4u, 16u, 64u, 256u));

TEST(StackSimulator, StreamingHasNoReuseHits)
{
    cache::StackSimulator sim(16, 8);
    for (uint64_t b = 0; b < 10000; ++b)
        sim.access(b);
    EXPECT_EQ(sim.missCount(8), 10000u);
}

TEST(StackSim, LruMissRatiosMatchesSimulator)
{
    util::Rng rng(3);
    std::vector<uint64_t> trace(20000);
    for (auto &a : trace)
        a = rng.below(4096);
    auto ratios = cache::lruMissRatios(trace, 64, 8);
    ASSERT_EQ(ratios.size(), 8u);
    cache::StackSimulator sim(64, 8);
    for (uint64_t a : trace)
        sim.access(a);
    for (uint32_t w = 1; w <= 8; ++w)
        EXPECT_DOUBLE_EQ(ratios[w - 1], sim.missRatio(w));
    // Inclusion property: more ways never miss more.
    for (uint32_t w = 1; w < 8; ++w)
        EXPECT_GE(ratios[w - 1], ratios[w]);
}

TEST(StackSim, MissRatioErrorZeroForIdenticalTraces)
{
    util::Rng rng(4);
    std::vector<uint64_t> trace(10000);
    for (auto &a : trace)
        a = rng.below(2048);
    EXPECT_EQ(cache::missRatioError(trace, trace, 64, 8), 0.0);
}

TEST(StackSim, WarmupSuppressesStatsButWarmsTheStacks)
{
    // Feed [0,128) twice: once as warm-up, once measured. The warm-up
    // pass must record nothing, yet leave the stacks hot enough that
    // the measured pass consists purely of depth-1..N hits.
    cache::StackSimulator sim(64, 8);
    sim.setWarmup(true);
    for (uint64_t a = 0; a < 128; ++a)
        sim.access(a);
    EXPECT_EQ(sim.accesses(), 0u);
    EXPECT_EQ(sim.warmupAccesses(), 128u);
    EXPECT_EQ(sim.coldMisses(), 0u);
    sim.setWarmup(false);
    for (uint64_t a = 0; a < 128; ++a)
        sim.access(a);
    EXPECT_EQ(sim.accesses(), 128u);
    EXPECT_EQ(sim.coldMisses(), 0u);  // the warm-up made them warm
    EXPECT_DOUBLE_EQ(sim.missRatio(8), 0.0);

    // A cold simulator over the same measured pass misses everything.
    cache::StackSimulator cold(64, 8);
    for (uint64_t a = 0; a < 128; ++a)
        cold.access(a);
    EXPECT_EQ(cold.coldMisses(), 128u);
}

TEST(StackSim, MergeEqualsBoundaryResetSinglePass)
{
    // merge() of independently simulated windows must equal ONE
    // simulator run over the concatenated trace with resetStacks() at
    // the boundary (the reset makes the second window start cold in
    // both worlds).
    util::Rng rng(6);
    std::vector<uint64_t> a(6000), b(4000);
    for (auto &v : a)
        v = rng.below(4096);
    for (auto &v : b)
        v = rng.below(4096);

    cache::StackSimulator single(64, 8);
    for (uint64_t v : a)
        single.access(v);
    single.resetStacks();
    for (uint64_t v : b)
        single.access(v);

    cache::StackSimulator wa(64, 8), wb(64, 8);
    for (uint64_t v : a)
        wa.access(v);
    for (uint64_t v : b)
        wb.access(v);
    wa.merge(wb);

    EXPECT_EQ(wa.accesses(), single.accesses());
    EXPECT_EQ(wa.coldMisses(), single.coldMisses());
    EXPECT_EQ(wa.distanceHistogram(), single.distanceHistogram());
    for (uint32_t w = 1; w <= 8; ++w) {
        EXPECT_EQ(wa.missCount(w), single.missCount(w));
        EXPECT_DOUBLE_EQ(wa.missRatio(w), single.missRatio(w));
    }
}

TEST(StackSim, MergeRejectsMismatchedGeometry)
{
    cache::StackSimulator a(64, 8);
    cache::StackSimulator b(128, 8);
    cache::StackSimulator c(64, 4);
    EXPECT_THROW(a.merge(b), util::Error);
    EXPECT_THROW(a.merge(c), util::Error);
}

TEST(StackSim, MissRatioErrorDetectsDivergence)
{
    // A tight loop vs. a random scatter over the same footprint: every
    // non-trivial cache sees wildly different miss ratios.
    std::vector<uint64_t> loop, scatter;
    util::Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        loop.push_back(i % 128);
        scatter.push_back(rng.below(1u << 20));
    }
    EXPECT_GT(cache::missRatioError(loop, scatter, 64, 8), 0.5);
}

} // namespace
} // namespace atc
