/**
 * @file
 * Tests for the TCgen/VPC-style baseline trace compressor.
 */

#include <gtest/gtest.h>

#include "tcgen/tcgen.hpp"
#include "trace/suite.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

tcg::TcgenConfig
smallConfig()
{
    tcg::TcgenConfig cfg;
    cfg.log2_lines = 12; // keep test memory small
    return cfg;
}

TEST(PredictorBank, PaperSpecSlotCount)
{
    // DFCM3[2], FCM3[3], FCM2[3], FCM1[3] -> 11 prediction slots.
    tcg::PredictorBank bank(smallConfig());
    EXPECT_EQ(bank.slots(), 11);
}

TEST(PredictorBank, MemoryAccounting)
{
    tcg::TcgenConfig cfg = smallConfig();
    tcg::PredictorBank bank(cfg);
    // 11 slots x 2^12 lines x 8 bytes.
    EXPECT_EQ(bank.memoryBytes(), 11ull * (1ull << 12) * 8);
}

TEST(PredictorBank, RejectsEmptyBank)
{
    tcg::TcgenConfig cfg;
    cfg.dfcm3_ways = cfg.fcm3_ways = cfg.fcm2_ways = cfg.fcm1_ways = 0;
    EXPECT_THROW(tcg::PredictorBank bank(cfg), util::Error);
}

TEST(Tcgen, EmptyTrace)
{
    auto r = tcg::tcgenCompress({}, smallConfig());
    EXPECT_EQ(tcg::tcgenDecompress(r, smallConfig()), std::vector<uint64_t>{});
}

class TcgenRoundTrip : public testing::TestWithParam<int>
{
};

TEST_P(TcgenRoundTrip, LosslessOnVariedContent)
{
    util::Rng rng(GetParam());
    std::vector<uint64_t> trace;
    switch (GetParam()) {
      case 0: // strided
        for (int i = 0; i < 50000; ++i)
            trace.push_back(0x1000 + i * 3);
        break;
      case 1: // random
        for (int i = 0; i < 50000; ++i)
            trace.push_back(rng.next());
        break;
      case 2: // repeating cycle
        for (int r = 0; r < 5; ++r)
            for (int i = 0; i < 10000; ++i)
                trace.push_back((i * 2654435761u) & 0xFFFFF);
        break;
      default: // mixed
        for (int i = 0; i < 50000; ++i)
            trace.push_back(rng.below(4) ? 0x4000 + i : rng.next() >> 20);
        break;
    }
    auto compressed = tcg::tcgenCompress(trace, smallConfig());
    EXPECT_EQ(tcg::tcgenDecompress(compressed, smallConfig()), trace);
}

INSTANTIATE_TEST_SUITE_P(Contents, TcgenRoundTrip,
                         testing::Values(0, 1, 2, 3));

TEST(Tcgen, StridedTraceCompressesExtremely)
{
    std::vector<uint64_t> trace;
    for (int i = 0; i < 100000; ++i)
        trace.push_back(0x1000 + i);
    util::CountingSink code_sink, data_sink;
    tcg::TcgenEncoder enc(smallConfig(), code_sink, data_sink);
    for (uint64_t v : trace)
        enc.code(v);
    enc.finish();
    // DFCM locks on after a couple of values: nearly no escapes, and
    // the code stream is a constant byte that compresses away.
    EXPECT_LT(enc.escapes(), 10u);
    EXPECT_LT(code_sink.count() + data_sink.count(), 2000u);
}

TEST(Tcgen, RepeatingCycleLearnedByFcm)
{
    // A pseudo-random cycle: unpredictable by stride, but FCM replays
    // it after one pass.
    std::vector<uint64_t> cycle(20000);
    util::Rng rng(5);
    for (auto &v : cycle)
        v = rng.next() >> 16;
    std::vector<uint64_t> trace;
    for (int r = 0; r < 4; ++r)
        trace.insert(trace.end(), cycle.begin(), cycle.end());

    util::CountingSink code_sink, data_sink;
    tcg::TcgenConfig cfg = smallConfig();
    cfg.log2_lines = 16;
    tcg::TcgenEncoder enc(cfg, code_sink, data_sink);
    for (uint64_t v : trace)
        enc.code(v);
    enc.finish();
    // Only the first pass escapes.
    EXPECT_LT(enc.escapes(), cycle.size() + 200);
}

TEST(Tcgen, EscapeCountMatchesUnpredictability)
{
    util::Rng rng(6);
    std::vector<uint64_t> trace(20000);
    for (auto &v : trace)
        v = rng.next();
    util::CountingSink code_sink, data_sink;
    tcg::TcgenEncoder enc(smallConfig(), code_sink, data_sink);
    for (uint64_t v : trace)
        enc.code(v);
    enc.finish();
    // 64-bit random values: essentially everything escapes.
    EXPECT_GT(enc.escapes(), trace.size() * 95 / 100);
}

TEST(Tcgen, RoundTripOnSyntheticBenchmark)
{
    auto trace = trace::collectFilteredTrace(
        trace::benchmarkByName("456.hmmer"), 30000, 1);
    tcg::TcgenConfig cfg = smallConfig();
    cfg.log2_lines = 16;
    auto compressed = tcg::tcgenCompress(trace, cfg);
    EXPECT_EQ(tcg::tcgenDecompress(compressed, cfg), trace);
    // Regular benchmark: far below raw 64 bits/address.
    double bpa = 8.0 * compressed.totalBytes() / trace.size();
    EXPECT_LT(bpa, 24.0);
}

TEST(Tcgen, DecoderRejectsInvalidCode)
{
    // Hand-craft a code stream with an out-of-range predictor code.
    std::vector<uint8_t> code_bytes, data_bytes;
    util::VectorSink code_sink(code_bytes), data_sink(data_bytes);
    {
        comp::StreamCompressor cs(comp::codecByName("bwc"), code_sink);
        uint8_t bad = 200; // valid codes are 0..10 and 255
        cs.write(&bad, 1);
        cs.finish();
        comp::StreamCompressor ds(comp::codecByName("bwc"), data_sink);
        ds.finish();
    }
    util::MemorySource code_src(code_bytes), data_src(data_bytes);
    tcg::TcgenDecoder dec(smallConfig(), code_src, data_src);
    uint64_t v;
    EXPECT_THROW(dec.decode(&v), util::Error);
}

TEST(Tcgen, AlternativeCodecBackEnd)
{
    std::vector<uint64_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(0x8000 + i * 7);
    tcg::TcgenConfig cfg = smallConfig();
    cfg.codec = "lzh";
    auto compressed = tcg::tcgenCompress(trace, cfg);
    EXPECT_EQ(tcg::tcgenDecompress(compressed, cfg), trace);
}

} // namespace
} // namespace atc
