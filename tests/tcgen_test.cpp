/**
 * @file
 * Tests for the TCgen/VPC-style baseline trace compressor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "atc/atc.hpp"
#include "tcgen/corpus.hpp"
#include "tcgen/tcgen.hpp"
#include "trace/suite.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

tcg::TcgenConfig
smallConfig()
{
    tcg::TcgenConfig cfg;
    cfg.log2_lines = 12; // keep test memory small
    return cfg;
}

TEST(PredictorBank, PaperSpecSlotCount)
{
    // DFCM3[2], FCM3[3], FCM2[3], FCM1[3] -> 11 prediction slots.
    tcg::PredictorBank bank(smallConfig());
    EXPECT_EQ(bank.slots(), 11);
}

TEST(PredictorBank, MemoryAccounting)
{
    tcg::TcgenConfig cfg = smallConfig();
    tcg::PredictorBank bank(cfg);
    // 11 slots x 2^12 lines x 8 bytes.
    EXPECT_EQ(bank.memoryBytes(), 11ull * (1ull << 12) * 8);
}

TEST(PredictorBank, RejectsEmptyBank)
{
    tcg::TcgenConfig cfg;
    cfg.dfcm3_ways = cfg.fcm3_ways = cfg.fcm2_ways = cfg.fcm1_ways = 0;
    EXPECT_THROW(tcg::PredictorBank bank(cfg), util::Error);
}

TEST(Tcgen, EmptyTrace)
{
    auto r = tcg::tcgenCompress({}, smallConfig());
    EXPECT_EQ(tcg::tcgenDecompress(r, smallConfig()), std::vector<uint64_t>{});
}

class TcgenRoundTrip : public testing::TestWithParam<int>
{
};

TEST_P(TcgenRoundTrip, LosslessOnVariedContent)
{
    util::Rng rng(GetParam());
    std::vector<uint64_t> trace;
    switch (GetParam()) {
      case 0: // strided
        for (int i = 0; i < 50000; ++i)
            trace.push_back(0x1000 + i * 3);
        break;
      case 1: // random
        for (int i = 0; i < 50000; ++i)
            trace.push_back(rng.next());
        break;
      case 2: // repeating cycle
        for (int r = 0; r < 5; ++r)
            for (int i = 0; i < 10000; ++i)
                trace.push_back((i * 2654435761u) & 0xFFFFF);
        break;
      default: // mixed
        for (int i = 0; i < 50000; ++i)
            trace.push_back(rng.below(4) ? 0x4000 + i : rng.next() >> 20);
        break;
    }
    auto compressed = tcg::tcgenCompress(trace, smallConfig());
    EXPECT_EQ(tcg::tcgenDecompress(compressed, smallConfig()), trace);
}

INSTANTIATE_TEST_SUITE_P(Contents, TcgenRoundTrip,
                         testing::Values(0, 1, 2, 3));

TEST(Tcgen, StridedTraceCompressesExtremely)
{
    std::vector<uint64_t> trace;
    for (int i = 0; i < 100000; ++i)
        trace.push_back(0x1000 + i);
    util::CountingSink code_sink, data_sink;
    tcg::TcgenEncoder enc(smallConfig(), code_sink, data_sink);
    for (uint64_t v : trace)
        enc.code(v);
    enc.finish();
    // DFCM locks on after a couple of values: nearly no escapes, and
    // the code stream is a constant byte that compresses away.
    EXPECT_LT(enc.escapes(), 10u);
    EXPECT_LT(code_sink.count() + data_sink.count(), 2000u);
}

TEST(Tcgen, RepeatingCycleLearnedByFcm)
{
    // A pseudo-random cycle: unpredictable by stride, but FCM replays
    // it after one pass.
    std::vector<uint64_t> cycle(20000);
    util::Rng rng(5);
    for (auto &v : cycle)
        v = rng.next() >> 16;
    std::vector<uint64_t> trace;
    for (int r = 0; r < 4; ++r)
        trace.insert(trace.end(), cycle.begin(), cycle.end());

    util::CountingSink code_sink, data_sink;
    tcg::TcgenConfig cfg = smallConfig();
    cfg.log2_lines = 16;
    tcg::TcgenEncoder enc(cfg, code_sink, data_sink);
    for (uint64_t v : trace)
        enc.code(v);
    enc.finish();
    // Only the first pass escapes.
    EXPECT_LT(enc.escapes(), cycle.size() + 200);
}

TEST(Tcgen, EscapeCountMatchesUnpredictability)
{
    util::Rng rng(6);
    std::vector<uint64_t> trace(20000);
    for (auto &v : trace)
        v = rng.next();
    util::CountingSink code_sink, data_sink;
    tcg::TcgenEncoder enc(smallConfig(), code_sink, data_sink);
    for (uint64_t v : trace)
        enc.code(v);
    enc.finish();
    // 64-bit random values: essentially everything escapes.
    EXPECT_GT(enc.escapes(), trace.size() * 95 / 100);
}

TEST(Tcgen, RoundTripOnSyntheticBenchmark)
{
    auto trace = trace::collectFilteredTrace(
        trace::benchmarkByName("456.hmmer"), 30000, 1);
    tcg::TcgenConfig cfg = smallConfig();
    cfg.log2_lines = 16;
    auto compressed = tcg::tcgenCompress(trace, cfg);
    EXPECT_EQ(tcg::tcgenDecompress(compressed, cfg), trace);
    // Regular benchmark: far below raw 64 bits/address.
    double bpa = 8.0 * compressed.totalBytes() / trace.size();
    EXPECT_LT(bpa, 24.0);
}

TEST(Tcgen, DecoderRejectsInvalidCode)
{
    // Hand-craft a code stream with an out-of-range predictor code.
    std::vector<uint8_t> code_bytes, data_bytes;
    util::VectorSink code_sink(code_bytes), data_sink(data_bytes);
    {
        comp::StreamCompressor cs(comp::codecByName("bwc"), code_sink);
        uint8_t bad = 200; // valid codes are 0..10 and 255
        cs.write(&bad, 1);
        cs.finish();
        comp::StreamCompressor ds(comp::codecByName("bwc"), data_sink);
        ds.finish();
    }
    util::MemorySource code_src(code_bytes), data_src(data_bytes);
    tcg::TcgenDecoder dec(smallConfig(), code_src, data_src);
    uint64_t v;
    EXPECT_THROW(dec.decode(&v), util::Error);
}

TEST(Tcgen, AlternativeCodecBackEnd)
{
    std::vector<uint64_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(0x8000 + i * 7);
    tcg::TcgenConfig cfg = smallConfig();
    cfg.codec = "lzh";
    auto compressed = tcg::tcgenCompress(trace, cfg);
    EXPECT_EQ(tcg::tcgenDecompress(compressed, cfg), trace);
}

// --- Corpus generators (tcgen/corpus.hpp) -------------------------------

std::vector<uint64_t>
drain(tcg::CorpusSource &src)
{
    std::vector<uint64_t> out;
    uint64_t buf[1013]; // odd size: exercises partial batches
    size_t got;
    while ((got = src.read(buf, 1013)) != 0)
        out.insert(out.end(), buf, buf + got);
    return out;
}

class CorpusSpec : public testing::TestWithParam<const char *>
{
};

TEST_P(CorpusSpec, DeterministicUnderFixedSeed)
{
    auto a = tcg::makeCorpusSource(GetParam(), 20000, 7);
    auto b = tcg::makeCorpusSource(GetParam(), 20000, 7);
    ASSERT_TRUE(a.ok()) << a.status().message();
    ASSERT_TRUE(b.ok()) << b.status().message();
    EXPECT_EQ(drain(*a.value()), drain(*b.value()));
}

TEST_P(CorpusSpec, DifferentSeedsDiverge)
{
    // Only the randomized generators consume the seed: stream sweeps,
    // fixed-stride chases and rr merges are deterministic by design.
    std::string spec(GetParam());
    bool seeded = spec.rfind("gcphase", 0) == 0 ||
                  spec.find("mode=bursty") != std::string::npos ||
                  (spec.rfind("ptrchase", 0) == 0 &&
                   spec.find("stride=") == std::string::npos) ||
                  spec.find("stride=rand") != std::string::npos;
    if (!seeded)
        GTEST_SKIP() << "generator is seed-independent by design";
    auto a = tcg::makeCorpusSource(GetParam(), 20000, 7);
    auto b = tcg::makeCorpusSource(GetParam(), 20000, 8);
    EXPECT_NE(drain(*a.value()), drain(*b.value()));
}

TEST_P(CorpusSpec, ProducesExactlyCountRecords)
{
    auto src = tcg::makeCorpusSource(GetParam(), 12345, 1);
    ASSERT_TRUE(src.ok()) << src.status().message();
    EXPECT_EQ(src.value()->count(), 12345u);
    EXPECT_EQ(drain(*src.value()).size(), 12345u);
    // A drained source stays dry.
    uint64_t v;
    EXPECT_EQ(src.value()->read(&v, 1), 0u);
}

TEST_P(CorpusSpec, DescribeRoundTrips)
{
    // parse -> describe -> parse: the canonical spec reproduces the
    // generator exactly (same stream), and re-describing is stable.
    auto a = tcg::makeCorpusSource(GetParam(), 20000, 3);
    ASSERT_TRUE(a.ok()) << a.status().message();
    std::string canonical = a.value()->describe();
    auto b = tcg::makeCorpusSource(canonical, 20000, 3);
    ASSERT_TRUE(b.ok()) << "canonical spec '" << canonical
                        << "' rejected: " << b.status().message();
    EXPECT_EQ(b.value()->describe(), canonical);
    EXPECT_EQ(drain(*a.value()), drain(*b.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusSpec,
    testing::Values("ptrchase", "ptrchase:nodes=4k,stride=rand",
                    "ptrchase:nodes=1k,stride=128", "gcphase",
                    "gcphase:heap=1m,mutator=8k,collector=4k", "stream",
                    "stream:footprint=1m,stride=256", "multicore",
                    "multicore:cores=3,mode=bursty,burst=8,footprint=1m",
                    "queue", "queue:producers=2,depth=64"));

TEST(Corpus, CatalogSpecsAllParse)
{
    for (const std::string &spec : tcg::corpusCatalog()) {
        auto src = tcg::makeCorpusSource(spec, 1000, 1);
        EXPECT_TRUE(src.ok())
            << spec << ": " << src.status().message();
    }
}

TEST(Corpus, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"nosuchgen", "ptrchase:nodes=0", "ptrchase:stride=100",
          "ptrchase:bogus=1", "gcphase:heap=100",
          "stream:footprint=1k,stride=1m",
          "multicore:cores=1", "multicore:mode=zigzag",
          "multicore:footprint=2t", "ptrchase:nodes",
          "queue:depth=1", "queue:producers=2000", "queue:slots=4"}) {
        auto src = tcg::makeCorpusSource(bad, 1000, 1);
        EXPECT_FALSE(src.ok()) << bad << " should have been rejected";
    }
}

TEST(Corpus, PtrChaseRandomVisitsEveryNodeOncePerLap)
{
    // Sattolo permutation: one full cycle covers all nodes exactly once.
    constexpr uint64_t kNodes = 512;
    auto src = tcg::makeCorpusSource("ptrchase:nodes=512,stride=rand",
                                     kNodes, 11);
    auto lap = drain(*src.value());
    std::map<uint64_t, int> seen;
    for (uint64_t a : lap)
        seen[a]++;
    EXPECT_EQ(seen.size(), kNodes);
    for (const auto &[addr, times] : seen) {
        EXPECT_EQ(times, 1) << "node visited twice within one lap";
        EXPECT_EQ(addr % 64, 0u) << "node addresses are line-aligned";
    }
}

TEST(Corpus, GcPhaseAlternatesSweepAndScatter)
{
    // During a collector phase the stream is a pure sequential sweep;
    // detect it by counting +64 deltas over phase-sized windows.
    auto src = tcg::makeCorpusSource(
        "gcphase:heap=256k,mutator=2048,collector=2048", 16384, 5);
    auto trace = drain(*src.value());
    size_t window = 2048;
    std::vector<double> seq_fraction;
    for (size_t w = 0; w + window <= trace.size(); w += window) {
        size_t seq = 0;
        for (size_t i = w + 1; i < w + window; ++i)
            seq += (trace[i] - trace[i - 1] == 64);
        seq_fraction.push_back(double(seq) / double(window - 1));
    }
    double lo = 1.0, hi = 0.0;
    for (double f : seq_fraction) {
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    EXPECT_GT(hi, 0.95) << "no collector-like sweep window found";
    EXPECT_LT(lo, 0.75) << "no mutator-like scattered window found";
}

TEST(Corpus, MulticoreRoundRobinInvariants)
{
    // rr merge, burst b: per-core record counts never differ by more
    // than one full burst, every address maps to a valid core, and the
    // per-core sub-streams are strided sweeps within the footprint.
    constexpr uint64_t kCount = 60000;
    constexpr uint32_t kCores = 5;
    constexpr uint64_t kBurst = 32;
    auto src = tcg::makeCorpusSource(
        "multicore:cores=5,mode=rr,burst=32,footprint=1m", kCount, 2);
    ASSERT_TRUE(src.ok()) << src.status().message();
    auto trace = drain(*src.value());
    ASSERT_EQ(trace.size(), kCount);

    uint64_t per_core[kCores] = {};
    uint32_t turn = 0; // rr: bursts arrive in strict core order
    for (size_t i = 0; i < trace.size(); i += kBurst) {
        uint32_t core = tcg::multicoreCoreOf(trace[i]);
        ASSERT_LT(core, kCores);
        EXPECT_EQ(core, (turn + 1) % kCores) << "burst order broken";
        turn = core;
        for (size_t j = i; j < std::min(trace.size(), i + kBurst); ++j) {
            EXPECT_EQ(tcg::multicoreCoreOf(trace[j]), core)
                << "burst " << i << " mixes cores";
            EXPECT_LT(trace[j] % tcg::kMulticoreCoreSpan, 1u << 20)
                << "address outside the declared footprint";
            ++per_core[core];
        }
    }
    uint64_t lo = kCount, hi = 0;
    for (uint64_t c : per_core) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    EXPECT_LE(hi - lo, kBurst) << "rr merge is unfair beyond one burst";
}

TEST(Corpus, MulticoreBurstyCoversAllCores)
{
    auto src = tcg::makeCorpusSource(
        "multicore:cores=4,mode=bursty,burst=16,footprint=1m", 40000, 9);
    auto trace = drain(*src.value());
    uint64_t per_core[4] = {};
    for (uint64_t a : trace) {
        uint32_t core = tcg::multicoreCoreOf(a);
        ASSERT_LT(core, 4u);
        ++per_core[core];
    }
    for (uint64_t c : per_core)
        EXPECT_GT(c, 40000u / 16) << "a core is starved";
}

TEST(Corpus, QueueAlternatesFillAndDrainPhases)
{
    // depth=16, 2 producers: a fill phase is 16 produces of 3 records
    // (tail counter, slot, producer stamp), a drain phase 16 consumes
    // of 2 (head counter, slot). Verify the structure of the first two
    // phases record by record, classifying by the address layout.
    constexpr uint64_t kBase = 0xC0000000ull;
    constexpr uint64_t kDepth = 16;
    auto src = tcg::makeCorpusSource("queue:producers=2,depth=16",
                                     16 * 3 + 16 * 2, 9);
    ASSERT_TRUE(src.ok());
    auto trace = drain(*src.value());
    ASSERT_EQ(trace.size(), 16u * 3 + 16u * 2);

    auto head = kBase;
    auto tail = kBase + 64;
    auto slot = [&](uint64_t s) { return kBase + (2 + s % kDepth) * 64; };
    auto stamp_floor = kBase + (2 + kDepth) * 64;

    size_t i = 0;
    for (uint64_t s = 0; s < kDepth; ++s) {  // fill phase
        EXPECT_EQ(trace[i++], tail);
        EXPECT_EQ(trace[i++], slot(s));
        EXPECT_GE(trace[i], stamp_floor);    // some producer's stamp
        EXPECT_LT(trace[i++], stamp_floor + 2 * 64);
    }
    for (uint64_t s = 0; s < kDepth; ++s) {  // drain phase
        EXPECT_EQ(trace[i++], head);
        EXPECT_EQ(trace[i++], slot(s));
    }
}

TEST(Corpus, QueueIsDeterministicPerSeed)
{
    auto a = tcg::makeCorpusSource("queue:producers=4,depth=64", 20000, 5);
    auto b = tcg::makeCorpusSource("queue:producers=4,depth=64", 20000, 5);
    auto c = tcg::makeCorpusSource("queue:producers=4,depth=64", 20000, 6);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    auto ta = drain(*a.value());
    EXPECT_EQ(ta, drain(*b.value()));
    EXPECT_NE(ta, drain(*c.value()));  // producer choice is seeded
}

TEST(Corpus, GeneratorsRoundTripThroughAtcLosslessly)
{
    // The corpus exists to feed the compressor: every family must
    // survive a lossless container round trip bit-exactly.
    for (const std::string &spec : tcg::corpusCatalog()) {
        auto src = tcg::makeCorpusSource(spec, 30000, 1);
        ASSERT_TRUE(src.ok()) << src.status().message();
        auto trace = drain(*src.value());

        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossless;
        opt.pipeline.buffer_addrs = 4096;
        core::AtcWriter writer(store, opt);
        writer.write(trace.data(), trace.size());
        writer.close();

        core::AtcReader reader(store);
        std::vector<uint64_t> back(trace.size());
        size_t got = 0;
        while (got < back.size()) {
            size_t n = reader.read(back.data() + got, back.size() - got);
            if (n == 0)
                break;
            got += n;
        }
        EXPECT_EQ(back, trace) << spec;
    }
}

} // namespace
} // namespace atc
