#!/bin/sh
# End-to-end smoke test of the serving daemon: build a container with
# bin2atc, start atcserved on a kernel-assigned loopback port, drive it
# with atcclient (ping, open, seek, range, stat), ask it to shut down,
# and require a clean exit. Run by ctest as `serve_smoke`.
#
# Usage: serve_smoke.sh <dir-with-binaries> <scratch-dir>
set -e

BIN_DIR="$1"
WORK_DIR="$2"
[ -n "$BIN_DIR" ] && [ -n "$WORK_DIR" ] || {
    echo "usage: $0 <bin-dir> <work-dir>" >&2
    exit 2
}

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR"
cd "$WORK_DIR"

# 16384 random u64 addresses; content doesn't matter, round-tripping does.
dd if=/dev/urandom of=trace.bin bs=4096 count=32 2>/dev/null
"$BIN_DIR/bin2atc" tdir c < trace.bin

"$BIN_DIR/atcserved" --port 0 --port-file port.txt demo=tdir &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT

i=0
while [ ! -s port.txt ] && [ $i -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
[ -s port.txt ] || { echo "server never wrote its port" >&2; exit 1; }
ADDR="127.0.0.1:$(cat port.txt)"

"$BIN_DIR/atcclient" "$ADDR" ping | grep -q pong
"$BIN_DIR/atcclient" "$ADDR" open demo | grep -q 'records:   16384'
"$BIN_DIR/atcclient" "$ADDR" seek demo 100 10 > seek.out
[ "$(wc -l < seek.out)" -eq 10 ]
"$BIN_DIR/atcclient" "$ADDR" range demo 100 110 > range.out
# Lossless seeks are exact, so both views of records [100,110) agree.
cmp seek.out range.out
"$BIN_DIR/atcclient" "$ADDR" stat | grep -q 'server.requests.read_range=1'
"$BIN_DIR/atcclient" "$ADDR" shutdown

trap - EXIT
wait $SERVER_PID # propagates the daemon's exit code; must be 0
echo "serve_smoke: OK"
