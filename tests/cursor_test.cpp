/**
 * @file
 * Random-access API tests: AtcIndex open/validation, AtcCursor seek
 * edges (record 0, last record, exact buffer/frame and interval
 * boundaries, seek past end), seek+read parity against a sequential
 * reference at every tested offset, v1/v2 decode-and-skip fallback
 * parity, readRange record-exactness in both modes, a decode-counting
 * codec proving that a v3 readRange decodes only the frames covering
 * the slice (and that opening an index decodes nothing), corrupt-index
 * rejection at open, and N threads sharing one AtcIndex through
 * private cursors (the TSan target).
 */

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "atc/atc.hpp"
#include "atc/index.hpp"
#include "compress/codec.hpp"
#include "parallel/parallel_atc.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/pipeline.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

std::vector<uint64_t>
makeTrace(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> trace(n);
    uint64_t base = 0x10000000;
    for (auto &v : trace) {
        base += rng.below(4096);
        v = (rng.below(16) == 0) ? rng.next() >> 20 : base;
    }
    return trace;
}

core::AtcOptions
makeOptions(core::Mode mode, const std::string &codec = "bwc")
{
    core::AtcOptions opt;
    opt.mode = mode;
    // Small buffers and blocks so a modest trace spans many transform
    // buffers and many codec frames — the geometry seek must get right.
    opt.pipeline.buffer_addrs = 777;
    opt.pipeline.codec = codec;
    opt.pipeline.codec_block = 4096;
    opt.lossy.interval_len = 1000;
    opt.lossy.epsilon = 0.5; // force some imitated intervals
    return opt;
}

core::MemoryStore
writeContainer(const std::vector<uint64_t> &trace,
               const core::AtcOptions &opt)
{
    core::MemoryStore store;
    core::AtcWriter writer(store, opt);
    writer.write(trace.data(), trace.size());
    writer.close();
    return store;
}

/** Sequentially decode the whole container — the parity reference. */
std::vector<uint64_t>
reference(core::MemoryStore &store)
{
    core::AtcReader reader(store);
    return trace::collect(reader);
}

// ------------------------------------------------------------- lossless

class LosslessSeek : public testing::TestWithParam<uint8_t>
{
};

TEST_P(LosslessSeek, SeekReadParityAtEveryTestedOffset)
{
    auto trace = makeTrace(10'000, 21);
    auto opt = makeOptions(core::Mode::Lossless);
    opt.container_version = GetParam();
    auto store = writeContainer(trace, opt);
    auto ref = reference(store);
    ASSERT_EQ(ref, trace);

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();
    EXPECT_EQ(cursor->size(), trace.size());
    EXPECT_EQ(index.value()->nativeSeek(), GetParam() >= 3);

    // Edges: first, last, end, exact transform-buffer boundaries
    // (buffer_addrs = 777) and a spread of interior offsets — forward
    // and backward seeks interleaved.
    std::vector<uint64_t> offsets = {0,    1,    776,  777,  778,
                                     1554, 4242, 9998, 9999, 10'000,
                                     3,    7770, 42};
    for (uint64_t off : offsets) {
        auto s = cursor->seek(off);
        ASSERT_TRUE(s.ok()) << off << ": " << s.message();
        EXPECT_EQ(cursor->tell(), off);
        uint64_t buf[257];
        size_t got = cursor->read(buf, 257);
        size_t expect =
            std::min<size_t>(257, trace.size() - static_cast<size_t>(off));
        ASSERT_EQ(got, expect) << off;
        for (size_t i = 0; i < got; ++i)
            ASSERT_EQ(buf[i], ref[static_cast<size_t>(off) + i])
                << "offset " << off << " + " << i;
        EXPECT_EQ(cursor->tell(), off + got);
    }

    // Seeking past the end is an out-of-range Status, not a throw.
    auto bad = cursor->seek(trace.size() + 1);
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("out of range"), std::string::npos);

    // Seek to end: clean end-of-trace.
    ASSERT_TRUE(cursor->seek(trace.size()).ok());
    uint64_t v;
    EXPECT_EQ(cursor->read(&v, 1), 0u);

    // Seek back to 0 restores the full sequential path.
    ASSERT_TRUE(cursor->seek(0).ok());
    EXPECT_EQ(trace::collect(*cursor), ref);
}

TEST_P(LosslessSeek, ReadRangeMatchesSequentialSlices)
{
    auto trace = makeTrace(8'000, 22);
    auto opt = makeOptions(core::Mode::Lossless);
    opt.container_version = GetParam();
    auto store = writeContainer(trace, opt);

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();

    ASSERT_TRUE(cursor->seek(5000).ok()); // readRange must not disturb it

    std::vector<uint64_t> out;
    std::vector<std::pair<uint64_t, uint64_t>> ranges = {
        {0, 1},      {0, 80},     {776, 778}, {777, 1554},
        {4000, 4080}, {7999, 8000}, {0, 8000},  {3000, 3000}};
    for (auto [b, e] : ranges) {
        auto s = cursor->readRange(b, e, out);
        ASSERT_TRUE(s.ok()) << b << ":" << e << " " << s.message();
        ASSERT_EQ(out.size(), e - b);
        for (size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], trace[static_cast<size_t>(b) + i])
                << "range " << b << ":" << e << " + " << i;
    }

    // Bad ranges are Status errors.
    EXPECT_FALSE(cursor->readRange(10, 5, out).ok());
    EXPECT_FALSE(cursor->readRange(0, 8001, out).ok());
    auto oor = cursor->readRange(8000, 8001, out);
    ASSERT_FALSE(oor.ok());
    EXPECT_NE(oor.message().find("out of range"), std::string::npos);

    // The cursor's own position was untouched throughout.
    EXPECT_EQ(cursor->tell(), 5000u);
    uint64_t v;
    ASSERT_EQ(cursor->read(&v, 1), 1u);
    EXPECT_EQ(v, trace[5000]);
}

INSTANTIATE_TEST_SUITE_P(Versions, LosslessSeek,
                         testing::Values(uint8_t(1), uint8_t(2),
                                         uint8_t(3)));

// --------------------------------------------------------------- lossy

TEST(LossySeek, LandsOnIntervalBoundaryAndReadsFromThere)
{
    auto trace = makeTrace(10'500, 23);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossy));
    auto ref = reference(store); // the *regenerated* (lossy) trace

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    const auto &starts = index.value()->recordStarts();
    ASSERT_GT(starts.size(), 2u); // several intervals
    auto cursor = index.value()->cursor();

    for (uint64_t off : {uint64_t(0), uint64_t(1), uint64_t(999),
                         uint64_t(1000), uint64_t(1001), uint64_t(5500),
                         uint64_t(10'499), uint64_t(10'500)}) {
        auto s = cursor->seek(off);
        ASSERT_TRUE(s.ok()) << off << ": " << s.message();
        // Lossy seek lands on the containing interval boundary at or
        // before the request (interval_len = 1000).
        uint64_t landed = cursor->tell();
        EXPECT_LE(landed, off);
        EXPECT_TRUE(std::find(starts.begin(), starts.end(), landed) !=
                    starts.end())
            << landed;
        if (off < cursor->size())
            EXPECT_EQ(off - landed, off % 1000);
        uint64_t buf[123];
        size_t got = cursor->read(buf, 123);
        size_t expect = std::min<size_t>(
            123, ref.size() - static_cast<size_t>(landed));
        ASSERT_EQ(got, expect) << off;
        for (size_t i = 0; i < got; ++i)
            ASSERT_EQ(buf[i], ref[static_cast<size_t>(landed) + i]) << off;
    }

    auto bad = cursor->seek(10'501);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("out of range"), std::string::npos);
}

TEST(LossySeek, ReadRangeIsRecordExactAndPositionPreserving)
{
    auto trace = makeTrace(9'500, 24);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossy));
    auto ref = reference(store);

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();
    ASSERT_TRUE(cursor->seek(2500).ok());
    uint64_t mark = cursor->tell(); // interval boundary at 2000
    uint64_t probe[7];
    ASSERT_EQ(cursor->read(probe, 7), 7u); // now mid-interval

    std::vector<uint64_t> out;
    for (auto [b, e] :
         std::vector<std::pair<uint64_t, uint64_t>>{{0, 50},
                                                    {995, 1005},
                                                    {4242, 5777},
                                                    {9499, 9500}}) {
        auto s = cursor->readRange(b, e, out);
        ASSERT_TRUE(s.ok()) << s.message();
        ASSERT_EQ(out.size(), e - b);
        for (size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], ref[static_cast<size_t>(b) + i])
                << "range " << b << ":" << e;
    }

    // Streaming resumes exactly where it was (mid-interval).
    uint64_t v;
    ASSERT_EQ(cursor->read(&v, 1), 1u);
    EXPECT_EQ(v, ref[static_cast<size_t>(mark) + 7]);
}

// --------------------------------------------- decode-counting codec

/** "store" wrapper counting decompressBlock calls process-wide. */
class CountingCodec : public comp::Codec
{
  public:
    std::string name() const override { return "countstore"; }

    void
    compressBlock(const uint8_t *data, size_t n,
                  util::ByteSink &out) const override
    {
        out.write(data, n);
    }

    void
    decompressBlock(util::ByteSource &in, size_t raw_size,
                    std::vector<uint8_t> &out) const override
    {
        ++decodes;
        out.resize(raw_size);
        in.readExact(out.data(), out.size());
    }

    static std::atomic<uint64_t> decodes;
};

std::atomic<uint64_t> CountingCodec::decodes{0};

void
registerCountingCodec()
{
    static bool once = [] {
        comp::CodecRegistry::instance().add(
            "countstore", [](const comp::CodecSpec &)
                -> util::StatusOr<std::shared_ptr<const comp::Codec>> {
                return std::shared_ptr<const comp::Codec>(
                    std::make_shared<CountingCodec>());
            });
        return true;
    }();
    (void)once;
}

TEST(RangedDecode, OnePercentSliceDecodesOnlyCoveringFrames)
{
    registerCountingCodec();
    auto trace = makeTrace(100'000, 25);
    auto opt = makeOptions(core::Mode::Lossless, "countstore");
    auto store = writeContainer(trace, opt);

    // Baseline: opening any reader decodes the (tiny, legacy-framed)
    // INFO payload; measure that fixed cost first so the chunk-frame
    // accounting below is exact.
    CountingCodec::decodes = 0;
    { core::ContainerInfo probe = core::readContainerInfo(store); }
    uint64_t info_decodes = CountingCodec::decodes.load();
    ASSERT_GE(info_decodes, 1u);

    // Full sequential decode: every chunk frame decodes exactly once.
    CountingCodec::decodes = 0;
    auto ref = reference(store);
    ASSERT_EQ(ref, trace);
    uint64_t full_decodes = CountingCodec::decodes.load() - info_decodes;
    ASSERT_GT(full_decodes, 50u); // the geometry gives many frames

    // Opening the index scans frame headers only — not one chunk
    // payload is decoded (only the unavoidable INFO payload is).
    CountingCodec::decodes = 0;
    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    EXPECT_EQ(CountingCodec::decodes.load(), info_decodes);

    // A 1% slice decodes exactly the frames covering its transform
    // buffers — computed from the same public geometry the cursor
    // uses — and returns bytes identical to the sequential decode.
    uint64_t begin = 50'000, end = 51'000;
    const auto &idx = *index.value();
    const comp::StreamLayout &layout = *idx.chunkLayout(0);
    uint64_t b0 = idx.bufferOf(begin), b1 = idx.bufferOf(end - 1);
    uint64_t raw0 = idx.bufferRawOffset(b0);
    uint64_t raw1 = idx.bufferRawOffset(b1 + 1);
    size_t covering = layout.frameContaining(raw1 - 1) -
                      layout.frameContaining(raw0) + 1;

    auto cursor = idx.cursor();
    CountingCodec::decodes = 0;
    std::vector<uint64_t> out;
    auto s = cursor->readRange(begin, end, out);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(CountingCodec::decodes.load(), covering);
    ASSERT_LT(covering, full_decodes / 10); // it IS a small subset
    ASSERT_EQ(out.size(), end - begin);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], ref[static_cast<size_t>(begin) + i]);

    // Seeking decodes only from the containing frame onward, bounded
    // by the frames after the seek point, never the whole stream.
    CountingCodec::decodes = 0;
    ASSERT_TRUE(cursor->seek(begin).ok());
    uint64_t buf[100];
    ASSERT_EQ(cursor->read(buf, 100), 100u);
    EXPECT_LT(CountingCodec::decodes.load(), full_decodes / 10);
    for (size_t i = 0; i < 100; ++i)
        ASSERT_EQ(buf[i], ref[static_cast<size_t>(begin) + i]);
}

// ----------------------------------------------------- corruption

TEST(IndexOpen, CorruptFrameIndexRejected)
{
    auto trace = makeTrace(20'000, 26);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless, "store"));

    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(store.infoBytes().data(), store.infoBytes().size());
        auto chunk = store.chunkBytes(0);
        ASSERT_GT(chunk.size(), 5u);
        chunk[chunk.size() - 5] ^= 0x01; // inside the stored index
        auto csink = bad.createChunk(0);
        csink->write(chunk.data(), chunk.size());
    }
    auto index = core::AtcIndex::open(bad);
    ASSERT_FALSE(index.ok());
    EXPECT_NE(index.status().message().find("index"), std::string::npos)
        << index.status().message();
}

TEST(IndexOpen, CrossLinkedChunkRejected)
{
    // INFO of a long trace over the chunk of a short one: the scanned
    // layout cannot cover the recorded count.
    auto long_store = writeContainer(makeTrace(30'000, 27),
                                     makeOptions(core::Mode::Lossless));
    auto short_store = writeContainer(makeTrace(6'000, 27),
                                      makeOptions(core::Mode::Lossless));
    core::MemoryStore franken;
    {
        auto sink = franken.createInfo();
        sink->write(long_store.infoBytes().data(),
                    long_store.infoBytes().size());
        auto csink = franken.createChunk(0);
        csink->write(short_store.chunkBytes(0).data(),
                     short_store.chunkBytes(0).size());
    }
    auto index = core::AtcIndex::open(franken);
    ASSERT_FALSE(index.ok());
    EXPECT_NE(index.status().message().find("truncated"),
              std::string::npos)
        << index.status().message();
}

// ------------------------------------------------------- empty trace

TEST(CursorEdge, EmptyTrace)
{
    std::vector<uint64_t> empty;
    auto store = writeContainer(empty, makeOptions(core::Mode::Lossless));
    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();
    EXPECT_EQ(cursor->size(), 0u);
    ASSERT_TRUE(cursor->seek(0).ok());
    uint64_t v;
    EXPECT_EQ(cursor->read(&v, 1), 0u);
    EXPECT_FALSE(cursor->seek(1).ok());
    std::vector<uint64_t> out;
    EXPECT_TRUE(cursor->readRange(0, 0, out).ok());
    EXPECT_TRUE(out.empty());
}

// --------------------------------------------- concurrent index sharing

class SharedIndex : public testing::TestWithParam<core::Mode>
{
};

TEST_P(SharedIndex, ManyThreadsManyCursorsOneIndex)
{
    auto trace = makeTrace(40'000, 28);
    auto store = writeContainer(trace, makeOptions(GetParam()));
    auto ref = reference(store);

    auto opened = core::AtcIndex::open(store);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    std::shared_ptr<const core::AtcIndex> index = opened.value();

    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Each thread: its own cursor, its own offsets — seeks,
            // streaming reads and ranged reads interleaved.
            auto cursor = index->cursor();
            util::Rng rng(1000 + static_cast<uint64_t>(t));
            std::vector<uint64_t> out;
            for (int round = 0; round < 12; ++round) {
                uint64_t off = rng.below(ref.size());
                if (!cursor->seek(off).ok()) {
                    ++failures;
                    return;
                }
                uint64_t landed = cursor->tell();
                uint64_t buf[64];
                size_t got = cursor->read(
                    buf, std::min<size_t>(64, ref.size() -
                                                  static_cast<size_t>(
                                                      landed)));
                for (size_t i = 0; i < got; ++i) {
                    if (buf[i] != ref[static_cast<size_t>(landed) + i]) {
                        ++failures;
                        return;
                    }
                }
                uint64_t b = rng.below(ref.size());
                uint64_t e = std::min<uint64_t>(ref.size(),
                                                b + 1 + rng.below(2000));
                if (!cursor->readRange(b, e, out).ok() ||
                    out.size() != e - b) {
                    ++failures;
                    return;
                }
                for (size_t i = 0; i < out.size(); ++i) {
                    if (out[i] != ref[static_cast<size_t>(b) + i]) {
                        ++failures;
                        return;
                    }
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, SharedIndex,
                         testing::Values(core::Mode::Lossless,
                                         core::Mode::Lossy));

// ----------------------------------------- pooled readRange (parallel)

TEST(PooledRange, ParallelReaderCursorMatchesSerial)
{
    auto trace = makeTrace(60'000, 29);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));

    parallel::ParallelOptions popt;
    popt.threads = 4;
    parallel::ParallelAtcReader reader(store, popt);
    auto cursor = reader.cursor();

    std::vector<uint64_t> out;
    auto s = cursor->readRange(12'345, 23'456, out);
    ASSERT_TRUE(s.ok()) << s.message();
    ASSERT_EQ(out.size(), 23'456u - 12'345u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], trace[12'345 + i]);

    // The reader's own sequential stream is unaffected.
    EXPECT_EQ(trace::collect(reader), trace);
}

} // namespace
} // namespace atc
