/**
 * @file
 * Random-access API tests: AtcIndex open/validation, AtcCursor seek
 * edges (record 0, last record, exact buffer/frame and interval
 * boundaries, seek past end), seek+read parity against a sequential
 * reference at every tested offset, v1/v2 decode-and-skip fallback
 * parity, readRange record-exactness in both modes, a decode-counting
 * codec proving that a v3 readRange decodes only the frames covering
 * the slice (and that opening an index decodes nothing), corrupt-index
 * rejection at open, and N threads sharing one AtcIndex through
 * private cursors (the TSan target). The shared decoded-block cache
 * suite proves results are budget-independent (disabled/tiny/large),
 * that repeated seeks into a cache-resident working set decode zero
 * frames, that eviction races under a starved budget stay coherent
 * (TSan again), and that a pooled lossy readRange fans covering-chunk
 * decodes onto worker threads while staying record-exact.
 */

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "atc/atc.hpp"
#include "atc/index.hpp"
#include "compress/codec.hpp"
#include "parallel/parallel_atc.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/pipeline.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

std::vector<uint64_t>
makeTrace(size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint64_t> trace(n);
    uint64_t base = 0x10000000;
    for (auto &v : trace) {
        base += rng.below(4096);
        v = (rng.below(16) == 0) ? rng.next() >> 20 : base;
    }
    return trace;
}

core::AtcOptions
makeOptions(core::Mode mode, const std::string &codec = "bwc")
{
    core::AtcOptions opt;
    opt.mode = mode;
    // Small buffers and blocks so a modest trace spans many transform
    // buffers and many codec frames — the geometry seek must get right.
    opt.pipeline.buffer_addrs = 777;
    opt.pipeline.codec = codec;
    opt.pipeline.codec_block = 4096;
    opt.lossy.interval_len = 1000;
    opt.lossy.epsilon = 0.5; // force some imitated intervals
    return opt;
}

core::MemoryStore
writeContainer(const std::vector<uint64_t> &trace,
               const core::AtcOptions &opt)
{
    core::MemoryStore store;
    core::AtcWriter writer(store, opt);
    writer.write(trace.data(), trace.size());
    writer.close();
    return store;
}

/** Sequentially decode the whole container — the parity reference. */
std::vector<uint64_t>
reference(core::MemoryStore &store)
{
    core::AtcReader reader(store);
    return trace::collect(reader);
}

// ------------------------------------------------------------- lossless

class LosslessSeek : public testing::TestWithParam<uint8_t>
{
};

TEST_P(LosslessSeek, SeekReadParityAtEveryTestedOffset)
{
    auto trace = makeTrace(10'000, 21);
    auto opt = makeOptions(core::Mode::Lossless);
    opt.container_version = GetParam();
    auto store = writeContainer(trace, opt);
    auto ref = reference(store);
    ASSERT_EQ(ref, trace);

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();
    EXPECT_EQ(cursor->size(), trace.size());
    EXPECT_EQ(index.value()->nativeSeek(), GetParam() >= 3);

    // Edges: first, last, end, exact transform-buffer boundaries
    // (buffer_addrs = 777) and a spread of interior offsets — forward
    // and backward seeks interleaved.
    std::vector<uint64_t> offsets = {0,    1,    776,  777,  778,
                                     1554, 4242, 9998, 9999, 10'000,
                                     3,    7770, 42};
    for (uint64_t off : offsets) {
        auto s = cursor->seek(off);
        ASSERT_TRUE(s.ok()) << off << ": " << s.message();
        EXPECT_EQ(cursor->tell(), off);
        uint64_t buf[257];
        size_t got = cursor->read(buf, 257);
        size_t expect =
            std::min<size_t>(257, trace.size() - static_cast<size_t>(off));
        ASSERT_EQ(got, expect) << off;
        for (size_t i = 0; i < got; ++i)
            ASSERT_EQ(buf[i], ref[static_cast<size_t>(off) + i])
                << "offset " << off << " + " << i;
        EXPECT_EQ(cursor->tell(), off + got);
    }

    // Seeking past the end is an out-of-range Status, not a throw.
    auto bad = cursor->seek(trace.size() + 1);
    EXPECT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("out of range"), std::string::npos);

    // Seek to end: clean end-of-trace.
    ASSERT_TRUE(cursor->seek(trace.size()).ok());
    uint64_t v;
    EXPECT_EQ(cursor->read(&v, 1), 0u);

    // Seek back to 0 restores the full sequential path.
    ASSERT_TRUE(cursor->seek(0).ok());
    EXPECT_EQ(trace::collect(*cursor), ref);
}

TEST_P(LosslessSeek, ReadRangeMatchesSequentialSlices)
{
    auto trace = makeTrace(8'000, 22);
    auto opt = makeOptions(core::Mode::Lossless);
    opt.container_version = GetParam();
    auto store = writeContainer(trace, opt);

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();

    ASSERT_TRUE(cursor->seek(5000).ok()); // readRange must not disturb it

    std::vector<uint64_t> out;
    std::vector<std::pair<uint64_t, uint64_t>> ranges = {
        {0, 1},      {0, 80},     {776, 778}, {777, 1554},
        {4000, 4080}, {7999, 8000}, {0, 8000},  {3000, 3000}};
    for (auto [b, e] : ranges) {
        auto s = cursor->readRange(b, e, out);
        ASSERT_TRUE(s.ok()) << b << ":" << e << " " << s.message();
        ASSERT_EQ(out.size(), e - b);
        for (size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], trace[static_cast<size_t>(b) + i])
                << "range " << b << ":" << e << " + " << i;
    }

    // Bad ranges are Status errors.
    EXPECT_FALSE(cursor->readRange(10, 5, out).ok());
    EXPECT_FALSE(cursor->readRange(0, 8001, out).ok());
    auto oor = cursor->readRange(8000, 8001, out);
    ASSERT_FALSE(oor.ok());
    EXPECT_NE(oor.message().find("out of range"), std::string::npos);

    // The cursor's own position was untouched throughout.
    EXPECT_EQ(cursor->tell(), 5000u);
    uint64_t v;
    ASSERT_EQ(cursor->read(&v, 1), 1u);
    EXPECT_EQ(v, trace[5000]);
}

INSTANTIATE_TEST_SUITE_P(Versions, LosslessSeek,
                         testing::Values(uint8_t(1), uint8_t(2),
                                         uint8_t(3)));

// --------------------------------------------------------------- lossy

TEST(LossySeek, LandsOnIntervalBoundaryAndReadsFromThere)
{
    auto trace = makeTrace(10'500, 23);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossy));
    auto ref = reference(store); // the *regenerated* (lossy) trace

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    const auto &starts = index.value()->recordStarts();
    ASSERT_GT(starts.size(), 2u); // several intervals
    auto cursor = index.value()->cursor();

    for (uint64_t off : {uint64_t(0), uint64_t(1), uint64_t(999),
                         uint64_t(1000), uint64_t(1001), uint64_t(5500),
                         uint64_t(10'499), uint64_t(10'500)}) {
        auto s = cursor->seek(off);
        ASSERT_TRUE(s.ok()) << off << ": " << s.message();
        // Lossy seek lands on the containing interval boundary at or
        // before the request (interval_len = 1000).
        uint64_t landed = cursor->tell();
        EXPECT_LE(landed, off);
        EXPECT_TRUE(std::find(starts.begin(), starts.end(), landed) !=
                    starts.end())
            << landed;
        if (off < cursor->size())
            EXPECT_EQ(off - landed, off % 1000);
        uint64_t buf[123];
        size_t got = cursor->read(buf, 123);
        size_t expect = std::min<size_t>(
            123, ref.size() - static_cast<size_t>(landed));
        ASSERT_EQ(got, expect) << off;
        for (size_t i = 0; i < got; ++i)
            ASSERT_EQ(buf[i], ref[static_cast<size_t>(landed) + i]) << off;
    }

    auto bad = cursor->seek(10'501);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("out of range"), std::string::npos);
}

TEST(LossySeek, ReadRangeIsRecordExactAndPositionPreserving)
{
    auto trace = makeTrace(9'500, 24);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossy));
    auto ref = reference(store);

    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();
    ASSERT_TRUE(cursor->seek(2500).ok());
    uint64_t mark = cursor->tell(); // interval boundary at 2000
    uint64_t probe[7];
    ASSERT_EQ(cursor->read(probe, 7), 7u); // now mid-interval

    std::vector<uint64_t> out;
    for (auto [b, e] :
         std::vector<std::pair<uint64_t, uint64_t>>{{0, 50},
                                                    {995, 1005},
                                                    {4242, 5777},
                                                    {9499, 9500}}) {
        auto s = cursor->readRange(b, e, out);
        ASSERT_TRUE(s.ok()) << s.message();
        ASSERT_EQ(out.size(), e - b);
        for (size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i], ref[static_cast<size_t>(b) + i])
                << "range " << b << ":" << e;
    }

    // Streaming resumes exactly where it was (mid-interval).
    uint64_t v;
    ASSERT_EQ(cursor->read(&v, 1), 1u);
    EXPECT_EQ(v, ref[static_cast<size_t>(mark) + 7]);
}

// --------------------------------------------- decode-counting codec

/** "store" wrapper counting decompressBlock calls process-wide, and
 *  recording which threads ran them (proof of pool fan-out). */
class CountingCodec : public comp::Codec
{
  public:
    std::string name() const override { return "countstore"; }

    void
    compressBlock(const uint8_t *data, size_t n,
                  util::ByteSink &out) const override
    {
        out.write(data, n);
    }

    void
    decompressBlock(util::ByteSource &in, size_t raw_size,
                    std::vector<uint8_t> &out) const override
    {
        ++decodes;
        {
            std::lock_guard<std::mutex> lock(mu);
            threads.insert(std::this_thread::get_id());
        }
        out.resize(raw_size);
        in.readExact(out.data(), out.size());
    }

    static void
    resetThreads()
    {
        std::lock_guard<std::mutex> lock(mu);
        threads.clear();
    }

    /** @return true when any decode ran off the calling thread. */
    static bool
    decodedOffThread()
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const std::thread::id &id : threads)
            if (id != std::this_thread::get_id())
                return true;
        return false;
    }

    static std::atomic<uint64_t> decodes;
    static std::mutex mu;
    static std::set<std::thread::id> threads;
};

std::atomic<uint64_t> CountingCodec::decodes{0};
std::mutex CountingCodec::mu;
std::set<std::thread::id> CountingCodec::threads;

void
registerCountingCodec()
{
    static bool once = [] {
        comp::CodecRegistry::instance().add(
            "countstore", [](const comp::CodecSpec &)
                -> util::StatusOr<std::shared_ptr<const comp::Codec>> {
                return std::shared_ptr<const comp::Codec>(
                    std::make_shared<CountingCodec>());
            });
        return true;
    }();
    (void)once;
}

TEST(RangedDecode, OnePercentSliceDecodesOnlyCoveringFrames)
{
    registerCountingCodec();
    auto trace = makeTrace(100'000, 25);
    auto opt = makeOptions(core::Mode::Lossless, "countstore");
    auto store = writeContainer(trace, opt);

    // Baseline: opening any reader decodes the (tiny, legacy-framed)
    // INFO payload; measure that fixed cost first so the chunk-frame
    // accounting below is exact.
    CountingCodec::decodes = 0;
    { core::ContainerInfo probe = core::readContainerInfo(store); }
    uint64_t info_decodes = CountingCodec::decodes.load();
    ASSERT_GE(info_decodes, 1u);

    // Full sequential decode: every chunk frame decodes exactly once.
    CountingCodec::decodes = 0;
    auto ref = reference(store);
    ASSERT_EQ(ref, trace);
    uint64_t full_decodes = CountingCodec::decodes.load() - info_decodes;
    ASSERT_GT(full_decodes, 50u); // the geometry gives many frames

    // Opening the index scans frame headers only — not one chunk
    // payload is decoded (only the unavoidable INFO payload is).
    CountingCodec::decodes = 0;
    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    EXPECT_EQ(CountingCodec::decodes.load(), info_decodes);

    // A 1% slice decodes exactly the frames covering its transform
    // buffers — computed from the same public geometry the cursor
    // uses — and returns bytes identical to the sequential decode.
    uint64_t begin = 50'000, end = 51'000;
    const auto &idx = *index.value();
    const comp::StreamLayout &layout = *idx.chunkLayout(0);
    uint64_t b0 = idx.bufferOf(begin), b1 = idx.bufferOf(end - 1);
    uint64_t raw0 = idx.bufferRawOffset(b0);
    uint64_t raw1 = idx.bufferRawOffset(b1 + 1);
    size_t covering = layout.frameContaining(raw1 - 1) -
                      layout.frameContaining(raw0) + 1;

    auto cursor = idx.cursor();
    CountingCodec::decodes = 0;
    std::vector<uint64_t> out;
    auto s = cursor->readRange(begin, end, out);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(CountingCodec::decodes.load(), covering);
    ASSERT_LT(covering, full_decodes / 10); // it IS a small subset
    ASSERT_EQ(out.size(), end - begin);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], ref[static_cast<size_t>(begin) + i]);

    // Seeking decodes only from the containing frame onward, bounded
    // by the frames after the seek point, never the whole stream.
    CountingCodec::decodes = 0;
    ASSERT_TRUE(cursor->seek(begin).ok());
    uint64_t buf[100];
    ASSERT_EQ(cursor->read(buf, 100), 100u);
    EXPECT_LT(CountingCodec::decodes.load(), full_decodes / 10);
    for (size_t i = 0; i < 100; ++i)
        ASSERT_EQ(buf[i], ref[static_cast<size_t>(begin) + i]);
}

// ----------------------------------------------------- corruption

TEST(IndexOpen, CorruptFrameIndexRejected)
{
    auto trace = makeTrace(20'000, 26);
    auto store =
        writeContainer(trace, makeOptions(core::Mode::Lossless, "store"));

    core::MemoryStore bad;
    {
        auto sink = bad.createInfo();
        sink->write(store.infoBytes().data(), store.infoBytes().size());
        auto chunk = store.chunkBytes(0);
        ASSERT_GT(chunk.size(), 5u);
        chunk[chunk.size() - 5] ^= 0x01; // inside the stored index
        auto csink = bad.createChunk(0);
        csink->write(chunk.data(), chunk.size());
    }
    auto index = core::AtcIndex::open(bad);
    ASSERT_FALSE(index.ok());
    EXPECT_NE(index.status().message().find("index"), std::string::npos)
        << index.status().message();
}

TEST(IndexOpen, CrossLinkedChunkRejected)
{
    // INFO of a long trace over the chunk of a short one: the scanned
    // layout cannot cover the recorded count.
    auto long_store = writeContainer(makeTrace(30'000, 27),
                                     makeOptions(core::Mode::Lossless));
    auto short_store = writeContainer(makeTrace(6'000, 27),
                                      makeOptions(core::Mode::Lossless));
    core::MemoryStore franken;
    {
        auto sink = franken.createInfo();
        sink->write(long_store.infoBytes().data(),
                    long_store.infoBytes().size());
        auto csink = franken.createChunk(0);
        csink->write(short_store.chunkBytes(0).data(),
                     short_store.chunkBytes(0).size());
    }
    auto index = core::AtcIndex::open(franken);
    ASSERT_FALSE(index.ok());
    EXPECT_NE(index.status().message().find("truncated"),
              std::string::npos)
        << index.status().message();
}

// ------------------------------------------------------- empty trace

TEST(CursorEdge, EmptyTrace)
{
    std::vector<uint64_t> empty;
    auto store = writeContainer(empty, makeOptions(core::Mode::Lossless));
    auto index = core::AtcIndex::open(store);
    ASSERT_TRUE(index.ok()) << index.status().message();
    auto cursor = index.value()->cursor();
    EXPECT_EQ(cursor->size(), 0u);
    ASSERT_TRUE(cursor->seek(0).ok());
    uint64_t v;
    EXPECT_EQ(cursor->read(&v, 1), 0u);
    EXPECT_FALSE(cursor->seek(1).ok());
    std::vector<uint64_t> out;
    EXPECT_TRUE(cursor->readRange(0, 0, out).ok());
    EXPECT_TRUE(out.empty());
}

// --------------------------------------------- concurrent index sharing

class SharedIndex : public testing::TestWithParam<core::Mode>
{
};

/**
 * Hammer one shared index from @p kThreads threads — each with its own
 * cursor and offsets, seeks, streaming reads and ranged reads
 * interleaved — and return how many threads saw a wrong byte or a
 * failed call.
 */
int
stressCursors(const std::shared_ptr<const core::AtcIndex> &index,
              const std::vector<uint64_t> &ref)
{
    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto cursor = index->cursor();
            util::Rng rng(1000 + static_cast<uint64_t>(t));
            std::vector<uint64_t> out;
            for (int round = 0; round < 12; ++round) {
                uint64_t off = rng.below(ref.size());
                if (!cursor->seek(off).ok()) {
                    ++failures;
                    return;
                }
                uint64_t landed = cursor->tell();
                uint64_t buf[64];
                size_t got = cursor->read(
                    buf, std::min<size_t>(64, ref.size() -
                                                  static_cast<size_t>(
                                                      landed)));
                for (size_t i = 0; i < got; ++i) {
                    if (buf[i] != ref[static_cast<size_t>(landed) + i]) {
                        ++failures;
                        return;
                    }
                }
                uint64_t b = rng.below(ref.size());
                uint64_t e = std::min<uint64_t>(ref.size(),
                                                b + 1 + rng.below(2000));
                if (!cursor->readRange(b, e, out).ok() ||
                    out.size() != e - b) {
                    ++failures;
                    return;
                }
                for (size_t i = 0; i < out.size(); ++i) {
                    if (out[i] != ref[static_cast<size_t>(b) + i]) {
                        ++failures;
                        return;
                    }
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    return failures.load();
}

TEST_P(SharedIndex, ManyThreadsManyCursorsOneIndex)
{
    auto trace = makeTrace(40'000, 28);
    auto store = writeContainer(trace, makeOptions(GetParam()));
    auto ref = reference(store);

    auto opened = core::AtcIndex::open(store);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    EXPECT_EQ(stressCursors(opened.value(), ref), 0);
}

TEST_P(SharedIndex, TinyCacheEvictionRacesStayCoherent)
{
    // A near-zero budget keeps the shared cache under constant
    // eviction pressure while 8 threads insert and hit concurrently —
    // the TSan target for the cache itself, and a liveness check that
    // eviction never yanks a block out from under a reader.
    auto trace = makeTrace(40'000, 35);
    auto opt = makeOptions(GetParam());
    opt.lossy.epsilon = 0.0; // many distinct chunks -> shard collisions
    auto store = writeContainer(trace, opt);
    auto ref = reference(store);

    // Big enough to retain individual blocks (frames are 4 KiB raw
    // here, chunks 8 KB), far too small for the working set.
    core::IndexOptions iopt;
    iopt.cache_bytes = 16 * 1024;
    auto opened = core::AtcIndex::open(store, iopt);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    EXPECT_EQ(stressCursors(opened.value(), ref), 0);
    core::BlockCacheStats stats = GetParam() == core::Mode::Lossless
                                      ? opened.value()->frameCache().stats()
                                      : opened.value()->chunkCache().stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.entries, 8u); // one pinned survivor per shard at most
}

INSTANTIATE_TEST_SUITE_P(Modes, SharedIndex,
                         testing::Values(core::Mode::Lossless,
                                         core::Mode::Lossy));

// ------------------------------------------------- shared block cache

class CacheBudget : public testing::TestWithParam<core::Mode>
{
};

TEST_P(CacheBudget, ResultsIdenticalAcrossBudgets)
{
    // Disabled, pathologically tiny and comfortably large budgets must
    // be observationally identical — the cache is a pure accelerator.
    auto trace = makeTrace(20'000, 34);
    auto store = writeContainer(trace, makeOptions(GetParam()));
    auto ref = reference(store);

    for (size_t cache_bytes :
         {size_t(0), size_t(1), size_t(64) << 20}) {
        core::IndexOptions iopt;
        iopt.cache_bytes = cache_bytes;
        auto opened = core::AtcIndex::open(store, iopt);
        ASSERT_TRUE(opened.ok()) << opened.status().message();
        auto index = opened.value();
        EXPECT_EQ(index->frameCache().enabled(), cache_bytes != 0);
        EXPECT_EQ(index->chunkCache().enabled(), cache_bytes != 0);

        auto cursor = index->cursor();
        util::Rng rng(77); // same access pattern for every budget
        std::vector<uint64_t> out;
        for (int round = 0; round < 16; ++round) {
            uint64_t off = rng.below(ref.size());
            ASSERT_TRUE(cursor->seek(off).ok()) << cache_bytes;
            uint64_t landed = cursor->tell();
            uint64_t buf[128];
            size_t want = std::min<size_t>(
                128, ref.size() - static_cast<size_t>(landed));
            ASSERT_EQ(cursor->read(buf, want), want) << cache_bytes;
            for (size_t i = 0; i < want; ++i)
                ASSERT_EQ(buf[i], ref[static_cast<size_t>(landed) + i])
                    << "budget " << cache_bytes << " offset " << off;
            uint64_t b = rng.below(ref.size());
            uint64_t e = std::min<uint64_t>(ref.size(),
                                            b + 1 + rng.below(3000));
            ASSERT_TRUE(cursor->readRange(b, e, out).ok()) << cache_bytes;
            ASSERT_EQ(out.size(), e - b);
            for (size_t i = 0; i < out.size(); ++i)
                ASSERT_EQ(out[i], ref[static_cast<size_t>(b) + i])
                    << "budget " << cache_bytes << " range " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, CacheBudget,
                         testing::Values(core::Mode::Lossless,
                                         core::Mode::Lossy));

TEST(SeekHot, CacheResidentWorkingSetDecodesZeroFrames)
{
    registerCountingCodec();
    auto trace = makeTrace(60'000, 30);
    auto opt = makeOptions(core::Mode::Lossless, "countstore");
    auto store = writeContainer(trace, opt);

    auto opened = core::AtcIndex::open(store); // default budget
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    auto index = opened.value();
    auto cursor = index->cursor();

    // Warm: the first visit of each offset decodes its covering frames
    // into the shared cache.
    const uint64_t offsets[] = {777, 12'345, 23'456, 41'000, 59'000};
    uint64_t buf[500];
    for (uint64_t off : offsets) {
        ASSERT_TRUE(cursor->seek(off).ok());
        ASSERT_EQ(cursor->read(buf, 500), 500u);
    }
    ASSERT_GT(index->frameCache().stats().entries, 0u);

    // Hot: the working set is cache-resident — repeated seeks decode
    // zero frames, from this cursor and from a second cursor sharing
    // the index (that is what "shared" buys).
    auto cursor2 = index->cursor();
    CountingCodec::decodes = 0;
    for (int round = 0; round < 3; ++round) {
        for (uint64_t off : offsets) {
            ASSERT_TRUE(cursor->seek(off).ok());
            ASSERT_EQ(cursor->read(buf, 500), 500u);
            ASSERT_TRUE(cursor2->seek(off).ok());
            ASSERT_EQ(cursor2->read(buf, 500), 500u);
        }
    }
    EXPECT_EQ(CountingCodec::decodes.load(), 0u);
    EXPECT_GT(index->frameCache().stats().hits, 0u);
}

// ----------------------------------------- pooled readRange (parallel)

TEST(PooledRange, ParallelReaderCursorMatchesSerial)
{
    auto trace = makeTrace(60'000, 29);
    auto store = writeContainer(trace, makeOptions(core::Mode::Lossless));

    parallel::ParallelOptions popt;
    popt.threads = 4;
    parallel::ParallelAtcReader reader(store, popt);
    auto cursor = reader.cursor();

    std::vector<uint64_t> out;
    auto s = cursor->readRange(12'345, 23'456, out);
    ASSERT_TRUE(s.ok()) << s.message();
    ASSERT_EQ(out.size(), 23'456u - 12'345u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], trace[12'345 + i]);

    // The reader's own sequential stream is unaffected.
    EXPECT_EQ(trace::collect(reader), trace);
}

TEST(PooledRange, LossyRangeSpanningManyChunksUsesPoolStaysExact)
{
    registerCountingCodec();
    auto trace = makeTrace(9'000, 33);
    auto opt = makeOptions(core::Mode::Lossy, "countstore");
    opt.lossy.epsilon = 0.0; // every interval becomes its own chunk
    auto store = writeContainer(trace, opt);
    auto ref = reference(store);

    auto opened = core::AtcIndex::open(store);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    auto index = opened.value();
    ASSERT_GE(index->info().chunk_count, 4u);

    parallel::ThreadPool pool(4);
    core::CursorOptions copt;
    copt.pool = &pool;
    auto pooled = index->cursor(copt);

    // Cold: the distinct covering chunks decode on the pool (proved by
    // the codec seeing worker threads), record-exactly.
    CountingCodec::resetThreads();
    std::vector<uint64_t> out;
    ASSERT_TRUE(pooled->readRange(500, 8'500, out).ok());
    ASSERT_EQ(out.size(), 8'000u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], ref[500 + i]);
    EXPECT_TRUE(CountingCodec::decodedOffThread());

    // Warm: the covering chunks are cache-resident — nothing decodes.
    uint64_t before = CountingCodec::decodes.load();
    ASSERT_TRUE(pooled->readRange(500, 8'500, out).ok());
    EXPECT_EQ(CountingCodec::decodes.load(), before);

    // Parity against a serial, cache-disabled cursor over a fresh
    // index — the pooled fan-out is a pure accelerator.
    core::IndexOptions iopt;
    iopt.cache_bytes = 0;
    auto serial_idx = core::AtcIndex::open(store, iopt);
    ASSERT_TRUE(serial_idx.ok());
    auto serial = serial_idx.value()->cursor();
    std::vector<uint64_t> serial_out;
    ASSERT_TRUE(serial->readRange(500, 8'500, serial_out).ok());
    EXPECT_EQ(out, serial_out);
}

} // namespace
} // namespace atc
