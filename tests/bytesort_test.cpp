/**
 * @file
 * Tests for the bytesort transformation — including the two worked
 * examples from the paper (§4.1 and Figure 1).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "atc/bytesort.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

TEST(Bytesort, EmptyBuffer)
{
    EXPECT_TRUE(core::bytesortForward(nullptr, 0).empty());
    EXPECT_TRUE(core::bytesortInverse(nullptr, 0).empty());
}

TEST(Bytesort, SingleAddress)
{
    uint64_t a = 0x0123456789ABCDEFull;
    auto planes = core::bytesortForward(&a, 1);
    // MSB plane first.
    EXPECT_EQ(planes,
              (std::vector<uint8_t>{0x01, 0x23, 0x45, 0x67, 0x89, 0xAB,
                                    0xCD, 0xEF}));
    EXPECT_EQ(core::bytesortInverse(planes.data(), 1),
              std::vector<uint64_t>{a});
}

TEST(Bytesort, PaperSection41Example)
{
    // §4.1: F200,F201,A100,F202,F203,A101,... — after emitting the
    // high-order plane and sorting, the low-order plane groups the A1
    // region before the F2 region. We model the 16-bit example with the
    // values in the two low bytes of 64-bit addresses.
    std::vector<uint64_t> addrs;
    for (int i = 0; i < 128; ++i) {
        addrs.push_back(0xF200 + 2 * i);
        addrs.push_back(0xF200 + 2 * i + 1);
        if (i < 128)
            addrs.push_back(0xA100 + i);
    }
    auto planes = core::bytesortForward(addrs.data(), addrs.size());
    size_t n = addrs.size();

    // Plane 6 (second-lowest byte) is emitted in the order produced by
    // sorting on planes 0..5, which are all zero — i.e. original order:
    // the periodic F2,F2,A1 pattern.
    const uint8_t *plane6 = planes.data() + 6 * n;
    EXPECT_EQ(plane6[0], 0xF2);
    EXPECT_EQ(plane6[1], 0xF2);
    EXPECT_EQ(plane6[2], 0xA1);
    EXPECT_EQ(plane6[3], 0xF2);

    // Plane 7 (lowest byte) is emitted after sorting by plane 6: all
    // A1-region offsets (ascending 00..7F) then all F2 offsets.
    const uint8_t *plane7 = planes.data() + 7 * n;
    for (int i = 0; i < 128; ++i)
        EXPECT_EQ(plane7[i], i) << "A1 region offset " << i;
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(plane7[128 + i], i) << "F2 region offset " << i;

    EXPECT_EQ(core::bytesortInverse(planes.data(), n), addrs);
}

TEST(Bytesort, Figure1Example)
{
    // Figure 1: sixteen 32-bit addresses; we embed them in the low 32
    // bits. The original trace alternates a 00-region stream and an
    // FF-region stream.
    std::vector<uint64_t> addrs = {
        0x00000000, 0xFF000007, 0x0001C000, 0xFF000006, 0x00018000,
        0xFF000005, 0x00014000, 0xFF000004, 0x00010000, 0xFF000003,
        0x0000C000, 0xFF000002, 0x00008000, 0xFF000001, 0x00004000,
        0xFF000000,
    };
    size_t n = addrs.size();
    auto planes = core::bytesortForward(addrs.data(), n);

    // Plane 4 (byte 3 of the 32-bit value) in original order:
    // alternating 00 / FF.
    const uint8_t *p4 = planes.data() + 4 * n;
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(p4[i], i % 2 ? 0xFF : 0x00);

    // Each plane is re-sorted before the next is emitted, so the final
    // plane's order is keyed primarily by the *previous* plane (the
    // most recent stable sort wins). The FF-region addresses all share
    // bytes 1..3, so they stay contiguous and keep their original
    // relative order (stability): their low bytes appear as the run
    // 07,06,...,00 somewhere in the final plane — regions grouped, as
    // in Figure 1's fourth column.
    const uint8_t *p7 = planes.data() + 7 * n;
    std::vector<uint8_t> expected_run{7, 6, 5, 4, 3, 2, 1, 0};
    bool found = false;
    for (size_t start = 0; start + 8 <= n && !found; ++start) {
        found = std::equal(expected_run.begin(), expected_run.end(),
                           p7 + start);
    }
    EXPECT_TRUE(found) << "FF-region run not grouped in final plane";

    EXPECT_EQ(core::bytesortInverse(planes.data(), n), addrs);
}

TEST(Unshuffle, PlanesKeepSequenceOrder)
{
    std::vector<uint64_t> addrs = {0x1122334455667788ull,
                                   0xAABBCCDDEEFF0011ull};
    auto planes = core::unshuffleForward(addrs.data(), 2);
    EXPECT_EQ(planes[0], 0x11);
    EXPECT_EQ(planes[1], 0xAA); // plane 0 = MSBs in order
    EXPECT_EQ(planes[14], 0x88);
    EXPECT_EQ(planes[15], 0x11); // plane 7 = LSBs in order
    EXPECT_EQ(core::unshuffleInverse(planes.data(), 2), addrs);
}

class TransformRoundTrip
    : public testing::TestWithParam<std::pair<core::Transform, size_t>>
{
};

TEST_P(TransformRoundTrip, StreamingRandomAddresses)
{
    auto [transform, buffer] = GetParam();
    util::Rng rng(buffer * 3 + static_cast<int>(transform));
    // Lengths around buffer boundaries, including a partial final
    // buffer and an exact multiple.
    for (size_t len : {size_t(0), size_t(1), buffer - 1, buffer,
                       buffer + 1, 3 * buffer, 3 * buffer + 7}) {
        std::vector<uint64_t> addrs(len);
        for (auto &a : addrs)
            a = rng.next() >> rng.below(40);

        std::vector<uint8_t> out;
        util::VectorSink sink(out);
        core::TransformEncoder enc(transform, buffer, sink);
        for (uint64_t a : addrs)
            enc.code(a);
        enc.finish();
        EXPECT_EQ(enc.count(), len);

        util::MemorySource src(out);
        core::TransformDecoder dec(transform, src);
        std::vector<uint64_t> back;
        uint64_t v;
        while (dec.decode(&v))
            back.push_back(v);
        EXPECT_EQ(back, addrs) << "len " << len;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TransformRoundTrip,
    testing::Values(std::pair{core::Transform::None, size_t(64)},
                    std::pair{core::Transform::Unshuffle, size_t(64)},
                    std::pair{core::Transform::Bytesort, size_t(64)},
                    std::pair{core::Transform::Bytesort, size_t(1000)},
                    std::pair{core::Transform::Bytesort, size_t(4096)}));

TEST(Bytesort, SortingIsStablePerPlane)
{
    // Addresses sharing all high bytes must keep their relative order
    // in every plane (stability makes the transform reversible).
    std::vector<uint64_t> addrs;
    util::Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        addrs.push_back(0xAB0000 | rng.below(256));
    auto planes = core::bytesortForward(addrs.data(), addrs.size());
    EXPECT_EQ(core::bytesortInverse(planes.data(), addrs.size()), addrs);
}

TEST(Bytesort, GroupsRegionsInLaterPlanes)
{
    // Two interleaved regions: after the transform, the low plane must
    // consist of two sorted-by-region runs, not an interleaving.
    std::vector<uint64_t> addrs;
    for (int i = 0; i < 256; ++i) {
        addrs.push_back(0x11000000ull + i);
        addrs.push_back(0x22000000ull + i);
    }
    size_t n = addrs.size();
    auto planes = core::bytesortForward(addrs.data(), n);
    const uint8_t *low = planes.data() + 7 * n;
    // First 256 low bytes belong to region 0x11 (ascending), next 256
    // to region 0x22 (ascending).
    for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(low[i], i);
        EXPECT_EQ(low[256 + i], i);
    }
}

TEST(Bytesort, SixMsbZeroBlockAddressesSupported)
{
    // Cache-filtered block addresses have their 6 MSBs null; the paper
    // notes those bits can carry tags. Verify both work.
    std::vector<uint64_t> addrs;
    util::Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        uint64_t block = rng.next() >> 6; // top 6 bits zero
        addrs.push_back(block);
        addrs.push_back(block | (0x2Aull << 58)); // tagged variant
    }
    auto planes = core::bytesortForward(addrs.data(), addrs.size());
    EXPECT_EQ(core::bytesortInverse(planes.data(), addrs.size()), addrs);
}

} // namespace
} // namespace atc
