/**
 * @file
 * Unit and property tests for the SA-IS suffix array and the BWT.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "compress/bwt.hpp"
#include "util/status.hpp"
#include "compress/sais.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

/** O(n^2 log n) reference suffix sort with implicit smallest sentinel. */
std::vector<int32_t>
naiveSuffixArray(const std::vector<uint8_t> &s)
{
    std::vector<int32_t> sa(s.size());
    for (size_t i = 0; i < s.size(); ++i)
        sa[i] = static_cast<int32_t>(i);
    std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
        size_t la = s.size() - a, lb = s.size() - b;
        int c = std::memcmp(s.data() + a, s.data() + b, std::min(la, lb));
        if (c != 0)
            return c < 0;
        return la < lb; // shorter suffix first (sentinel is smallest)
    });
    return sa;
}

TEST(SuffixArray, EmptyInput)
{
    EXPECT_TRUE(comp::suffixArray(nullptr, 0).empty());
}

TEST(SuffixArray, SingleCharacter)
{
    uint8_t c = 'x';
    auto sa = comp::suffixArray(&c, 1);
    EXPECT_EQ(sa, std::vector<int32_t>{0});
}

TEST(SuffixArray, Banana)
{
    std::string s = "banana";
    auto sa = comp::suffixArray(
        reinterpret_cast<const uint8_t *>(s.data()), s.size());
    // suffixes sorted: a(5), ana(3), anana(1), banana(0), na(4), nana(2)
    EXPECT_EQ(sa, (std::vector<int32_t>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, AllSameCharacter)
{
    std::vector<uint8_t> s(50, 'z');
    auto sa = comp::suffixArray(s.data(), s.size());
    // Shorter suffixes sort first: 49, 48, ..., 0.
    for (size_t i = 0; i < s.size(); ++i)
        EXPECT_EQ(sa[i], static_cast<int32_t>(s.size() - 1 - i));
}

class SuffixArrayProperty
    : public testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SuffixArrayProperty, MatchesNaiveSort)
{
    auto [max_len, alphabet] = GetParam();
    util::Rng rng(max_len * 131 + alphabet);
    for (int trial = 0; trial < 40; ++trial) {
        size_t n = 1 + rng.below(max_len);
        std::vector<uint8_t> s(n);
        for (auto &c : s)
            c = static_cast<uint8_t>(rng.below(alphabet));
        EXPECT_EQ(comp::suffixArray(s.data(), n), naiveSuffixArray(s));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SuffixArrayProperty,
    testing::Values(std::pair{16, 2}, std::pair{64, 2}, std::pair{64, 4},
                    std::pair{200, 3}, std::pair{200, 256},
                    std::pair{500, 10}));

TEST(Bwt, EmptyInput)
{
    auto r = comp::bwtForward(nullptr, 0);
    EXPECT_TRUE(r.data.empty());
    EXPECT_TRUE(comp::bwtInverse(nullptr, 0, 0).empty());
}

TEST(Bwt, KnownTransform)
{
    // BWT groups identical characters together.
    std::string s = "mississippi";
    auto r = comp::bwtForward(reinterpret_cast<const uint8_t *>(s.data()),
                              s.size());
    auto inv = comp::bwtInverse(r.data.data(), r.data.size(), r.primary);
    EXPECT_EQ(std::string(inv.begin(), inv.end()), s);
}

TEST(Bwt, GroupsRunsOnPeriodicInput)
{
    // "abababab...": the transform should be two runs.
    std::vector<uint8_t> s;
    for (int i = 0; i < 64; ++i)
        s.push_back(i % 2 ? 'b' : 'a');
    auto r = comp::bwtForward(s.data(), s.size());
    int transitions = 0;
    for (size_t i = 1; i < r.data.size(); ++i)
        transitions += r.data[i] != r.data[i - 1];
    EXPECT_LE(transitions, 2);
    auto inv = comp::bwtInverse(r.data.data(), r.data.size(), r.primary);
    EXPECT_EQ(inv, s);
}

class BwtRoundTrip : public testing::TestWithParam<int>
{
};

TEST_P(BwtRoundTrip, RandomInputs)
{
    const int alphabet = GetParam();
    util::Rng rng(alphabet * 7919);
    for (int trial = 0; trial < 60; ++trial) {
        size_t n = rng.below(800);
        std::vector<uint8_t> s(n);
        for (auto &c : s)
            c = static_cast<uint8_t>(rng.below(alphabet));
        auto r = comp::bwtForward(s.data(), n);
        ASSERT_EQ(r.data.size(), n);
        if (n > 0) {
            EXPECT_GE(r.primary, 1u);
            EXPECT_LE(r.primary, n);
        }
        EXPECT_EQ(comp::bwtInverse(r.data.data(), n, r.primary), s);
    }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, BwtRoundTrip,
                         testing::Values(1, 2, 3, 16, 256));

TEST(Bwt, LargeBlockRoundTrip)
{
    util::Rng rng(99);
    std::vector<uint8_t> s(1 << 20);
    // Mixed content: compressible spans and random spans.
    for (size_t i = 0; i < s.size(); ++i)
        s[i] = (i / 4096) % 2 ? static_cast<uint8_t>(rng.below(256))
                              : static_cast<uint8_t>(i & 31);
    auto r = comp::bwtForward(s.data(), s.size());
    EXPECT_EQ(comp::bwtInverse(r.data.data(), r.data.size(), r.primary), s);
}

TEST(Bwt, InverseRejectsBadPrimary)
{
    std::vector<uint8_t> data{'a', 'b', 'c'};
    EXPECT_THROW(comp::bwtInverse(data.data(), data.size(), 0),
                 util::Error);
    EXPECT_THROW(comp::bwtInverse(data.data(), data.size(), 4),
                 util::Error);
}

TEST(SaisCore, HandlesRecursiveCase)
{
    // A string designed to produce repeated LMS substrings and force
    // the recursive naming path: long repetition of a 3-phase pattern.
    std::vector<int32_t> t;
    for (int i = 0; i < 30; ++i) {
        t.push_back(2);
        t.push_back(1);
        t.push_back(3);
    }
    t.push_back(0); // sentinel
    std::vector<int32_t> sa;
    comp::saisCore(t, 4, sa);
    ASSERT_EQ(sa.size(), t.size());
    // Verify it is a permutation and correctly ordered.
    std::vector<bool> seen(t.size(), false);
    for (int32_t v : sa) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, static_cast<int32_t>(t.size()));
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
    for (size_t i = 1; i < sa.size(); ++i) {
        std::vector<int32_t> a(t.begin() + sa[i - 1], t.end());
        std::vector<int32_t> b(t.begin() + sa[i], t.end());
        EXPECT_TRUE(std::lexicographical_compare(a.begin(), a.end(),
                                                 b.begin(), b.end()));
    }
}

} // namespace
} // namespace atc
