/**
 * @file
 * Tests for the block codecs (BWC, LZH, store) and the stream framing,
 * including corruption detection.
 */

#include <gtest/gtest.h>

#include <string>

#include "compress/bwc.hpp"
#include "compress/lzh.hpp"
#include "compress/stream.hpp"
#include "util/rng.hpp"

namespace atc {
namespace {

std::vector<uint8_t>
makeData(int mode, size_t n, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<uint8_t> data(n);
    for (size_t i = 0; i < n; ++i) {
        switch (mode) {
          case 0: // random
            data[i] = static_cast<uint8_t>(rng.below(256));
            break;
          case 1: // periodic
            data[i] = static_cast<uint8_t>((i / 7) & 15);
            break;
          case 2: // low entropy random
            data[i] = static_cast<uint8_t>(rng.below(3));
            break;
          default: // text-like
            data[i] = static_cast<uint8_t>('a' + rng.below(26));
            break;
        }
    }
    return data;
}

struct CodecCase
{
    std::string codec;
    int mode;
    size_t size;
};

class CodecRoundTrip : public testing::TestWithParam<CodecCase>
{
};

TEST_P(CodecRoundTrip, CompressDecompress)
{
    const auto &[name, mode, size] = GetParam();
    const comp::Codec &codec = comp::codecByName(name);
    auto data = makeData(mode, size, size * 31 + mode);
    auto compressed = comp::compressAll(codec, data.data(), data.size(),
                                        64 * 1024);
    auto back = comp::decompressAll(codec, compressed.data(),
                                    compressed.size());
    EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CodecRoundTrip,
    testing::Values(
        CodecCase{"bwc", 0, 0}, CodecCase{"bwc", 0, 1},
        CodecCase{"bwc", 0, 100000}, CodecCase{"bwc", 1, 100000},
        CodecCase{"bwc", 2, 100000}, CodecCase{"bwc", 3, 200000},
        CodecCase{"bwc", 1, 65536}, // exactly one block
        CodecCase{"bwc", 1, 65537}, // one block + 1 byte
        CodecCase{"lzh", 0, 0}, CodecCase{"lzh", 0, 1},
        CodecCase{"lzh", 0, 100000}, CodecCase{"lzh", 1, 100000},
        CodecCase{"lzh", 2, 100000}, CodecCase{"lzh", 3, 200000},
        CodecCase{"store", 0, 10000}, CodecCase{"store", 1, 0}));

TEST(CodecRegistry, KnowsAllCodecs)
{
    EXPECT_EQ(comp::codecByName("bwc").name(), "bwc");
    EXPECT_EQ(comp::codecByName("lzh").name(), "lzh");
    EXPECT_EQ(comp::codecByName("store").name(), "store");
    EXPECT_THROW(comp::codecByName("bzip2"), util::Error);
}

TEST(CodecRegistry, ListsBuiltins)
{
    auto &reg = comp::CodecRegistry::instance();
    EXPECT_TRUE(reg.has("bwc"));
    EXPECT_TRUE(reg.has("lzh"));
    EXPECT_TRUE(reg.has("store"));
    EXPECT_FALSE(reg.has("bzip2"));
    auto names = reg.names();
    EXPECT_GE(names.size(), 3u);
}

TEST(CodecRegistry, RuntimeRegistrationExtendsLookup)
{
    auto &reg = comp::CodecRegistry::instance();
    reg.add("null2", [](const comp::CodecSpec &spec)
                -> atc::util::StatusOr<
                    std::shared_ptr<const comp::Codec>> {
        if (!spec.params.empty())
            return util::Status::error("null2 takes no parameters");
        return std::shared_ptr<const comp::Codec>(
            std::make_shared<comp::StoreCodec>());
    });
    auto cc = reg.create("null2:block=2k");
    ASSERT_TRUE(cc.ok()) << cc.status().message();
    EXPECT_EQ(cc.value().block_size, 2048u);
    EXPECT_FALSE(reg.create("null2:junk=1").ok());
}

TEST(CodecSpec, ParsesPlainNames)
{
    auto spec = comp::CodecSpec::parse("bwc");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().name, "bwc");
    EXPECT_TRUE(spec.value().params.empty());
    EXPECT_EQ(spec.value().toString(), "bwc");
}

TEST(CodecSpec, ParsesParameters)
{
    auto spec = comp::CodecSpec::parse("bwc:block=900k,foo=bar");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().name, "bwc");
    ASSERT_EQ(spec.value().params.size(), 2u);
    ASSERT_NE(spec.value().find("block"), nullptr);
    EXPECT_EQ(*spec.value().find("block"), "900k");
    ASSERT_NE(spec.value().find("foo"), nullptr);
    EXPECT_EQ(*spec.value().find("foo"), "bar");
    EXPECT_EQ(spec.value().find("missing"), nullptr);
    EXPECT_EQ(spec.value().toString(), "bwc:block=900k,foo=bar");
}

TEST(CodecSpec, SizeParamHandlesSuffixes)
{
    auto spec = comp::CodecSpec::parse("x:a=7,b=2k,c=3m,d=1g");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().sizeParam("a", 0).value(), 7u);
    EXPECT_EQ(spec.value().sizeParam("b", 0).value(), 2048u);
    EXPECT_EQ(spec.value().sizeParam("c", 0).value(), 3u << 20);
    EXPECT_EQ(spec.value().sizeParam("d", 0).value(), 1u << 30);
    EXPECT_EQ(spec.value().sizeParam("absent", 42).value(), 42u);
}

TEST(CodecSpec, RejectsMalformedInput)
{
    for (const char *bad :
         {"", ":", "bwc:", "bwc:block", "bwc:block=", "bwc:=v",
          "bwc:block=1,", "bwc:block=1,block=2", "bw c", "bwc:a b=1"}) {
        EXPECT_FALSE(comp::CodecSpec::parse(bad).ok()) << "'" << bad
                                                       << "'";
    }
}

TEST(CodecSpec, RejectsMalformedSizes)
{
    // e/f: the digits pass the raw-value cap but the k/m/g multiplier
    // would wrap uint64_t — must be out-of-range, not a tiny size.
    auto spec = comp::CodecSpec::parse(
        "x:a=k,b=9q,c=0,d=12kb,e=281474976710656g,f=562949953421312k");
    ASSERT_TRUE(spec.ok());
    for (const char *key : {"a", "b", "c", "d", "e", "f"})
        EXPECT_FALSE(spec.value().sizeParam(key, 1).ok()) << key;
}

TEST(CodecSpec, RegistryRejectsUnknownParameters)
{
    EXPECT_FALSE(
        comp::CodecRegistry::instance().create("bwc:window=1k").ok());
    EXPECT_FALSE(
        comp::CodecRegistry::instance().create("lzh:level=9").ok());
}

TEST(CodecSpec, MakeCodecAppliesBlockParameter)
{
    comp::ConfiguredCodec cc = comp::makeCodec("lzh:block=64k");
    EXPECT_EQ(cc.codec->name(), "lzh");
    EXPECT_EQ(cc.block_size, 64u * 1024);
    EXPECT_EQ(cc.blockOr(123), 64u * 1024);
    EXPECT_EQ(cc.spec, "lzh:block=64k");

    comp::ConfiguredCodec plain = comp::makeCodec("lzh");
    EXPECT_EQ(plain.block_size, 0u);
    EXPECT_EQ(plain.blockOr(123), 123u);
    EXPECT_THROW(comp::makeCodec("bwc:block=x"), util::Error);
    EXPECT_THROW(comp::makeCodec("nope"), util::Error);
}

TEST(Bwc, CompressesPeriodicDataWell)
{
    auto data = makeData(1, 1 << 20, 1);
    auto compressed = comp::compressAll(comp::codecByName("bwc"),
                                        data.data(), data.size());
    EXPECT_LT(compressed.size(), data.size() / 100);
}

TEST(Bwc, BeatsLzhOnTextLikeData)
{
    auto data = makeData(3, 1 << 19, 2);
    auto bwc = comp::compressAll(comp::codecByName("bwc"), data.data(),
                                 data.size());
    auto lzh = comp::compressAll(comp::codecByName("lzh"), data.data(),
                                 data.size());
    // BWT+entropy coding approaches the ~4.7 bit/symbol source entropy;
    // LZ77 cannot find matches in memoryless random text.
    EXPECT_LT(bwc.size(), lzh.size());
}

TEST(Bwc, RandomDataDoesNotExplode)
{
    auto data = makeData(0, 100000, 3);
    auto compressed = comp::compressAll(comp::codecByName("bwc"),
                                        data.data(), data.size());
    // Huffman on incompressible bytes: bounded overhead.
    EXPECT_LT(compressed.size(), data.size() * 11 / 10);
}

TEST(Bwc, DetectsCorruption)
{
    auto data = makeData(1, 50000, 4);
    auto compressed = comp::compressAll(comp::codecByName("bwc"),
                                        data.data(), data.size());
    // Flip a bit in the payload (past the frame header and CRC field).
    compressed[compressed.size() / 2] ^= 0x10;
    EXPECT_THROW(comp::decompressAll(comp::codecByName("bwc"),
                                     compressed.data(), compressed.size()),
                 util::Error);
}

TEST(Lzh, DetectsCorruption)
{
    auto data = makeData(3, 50000, 5);
    auto compressed = comp::compressAll(comp::codecByName("lzh"),
                                        data.data(), data.size());
    compressed[compressed.size() / 2] ^= 0x10;
    EXPECT_THROW(comp::decompressAll(comp::codecByName("lzh"),
                                     compressed.data(), compressed.size()),
                 util::Error);
}

TEST(Lzh, FindsLongMatches)
{
    // Two copies of the same 32 KiB random block: the second copy
    // should almost disappear.
    auto half = makeData(0, 32768, 6);
    std::vector<uint8_t> data(half);
    data.insert(data.end(), half.begin(), half.end());
    auto compressed = comp::compressAll(comp::codecByName("lzh"),
                                        data.data(), data.size());
    EXPECT_LT(compressed.size(), half.size() * 11 / 10 + 1024);
    auto back = comp::decompressAll(comp::codecByName("lzh"),
                                    compressed.data(), compressed.size());
    EXPECT_EQ(back, data);
}

TEST(Lzh, OverlappingMatchRoundTrip)
{
    // RLE-style overlap: "aaaa..." encodes as (dist 1, long length).
    std::vector<uint8_t> data(10000, 'a');
    auto compressed = comp::compressAll(comp::codecByName("lzh"),
                                        data.data(), data.size());
    EXPECT_LT(compressed.size(), 600u);
    auto back = comp::decompressAll(comp::codecByName("lzh"),
                                    compressed.data(), compressed.size());
    EXPECT_EQ(back, data);
}

TEST(Stream, MultiBlockFraming)
{
    auto data = makeData(1, 300000, 7);
    // Small blocks force multiple frames.
    auto compressed = comp::compressAll(comp::codecByName("bwc"),
                                        data.data(), data.size(), 4096);
    auto back = comp::decompressAll(comp::codecByName("bwc"),
                                    compressed.data(), compressed.size());
    EXPECT_EQ(back, data);
}

TEST(Stream, TerminatorAllowsEmbedding)
{
    auto data = makeData(1, 10000, 8);
    std::vector<uint8_t> container;
    util::VectorSink sink(container);
    comp::StreamCompressor sc(comp::codecByName("store"), sink, 4096);
    sc.write(data.data(), data.size());
    sc.finish();
    // Trailing garbage after the terminator must not be consumed.
    container.push_back(0xAA);
    container.push_back(0xBB);

    util::MemorySource src(container);
    comp::StreamDecompressor sd(comp::codecByName("store"), src);
    std::vector<uint8_t> back(data.size() + 10);
    size_t got = sd.read(back.data(), back.size());
    EXPECT_EQ(got, data.size());
    back.resize(got);
    EXPECT_EQ(back, data);
    EXPECT_EQ(src.remaining(), 2u);
}

TEST(Stream, RawByteCountTracked)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    comp::StreamCompressor sc(comp::codecByName("store"), sink);
    auto data = makeData(1, 12345, 9);
    sc.write(data.data(), data.size());
    sc.finish();
    EXPECT_EQ(sc.rawBytes(), 12345u);
}

TEST(Stream, ByteAtATimeReads)
{
    auto data = makeData(3, 5000, 10);
    auto compressed = comp::compressAll(comp::codecByName("bwc"),
                                        data.data(), data.size(), 1024);
    util::MemorySource src(compressed);
    comp::StreamDecompressor sd(comp::codecByName("bwc"), src);
    for (size_t i = 0; i < data.size(); ++i) {
        uint8_t b;
        ASSERT_EQ(sd.read(&b, 1), 1u);
        ASSERT_EQ(b, data[i]) << "at " << i;
    }
    uint8_t b;
    EXPECT_EQ(sd.read(&b, 1), 0u);
}

TEST(Stream, TruncatedStreamThrows)
{
    auto data = makeData(1, 50000, 11);
    auto compressed = comp::compressAll(comp::codecByName("bwc"),
                                        data.data(), data.size());
    compressed.resize(compressed.size() / 2);
    EXPECT_THROW(comp::decompressAll(comp::codecByName("bwc"),
                                     compressed.data(), compressed.size()),
                 util::Error);
}

} // namespace
} // namespace atc
