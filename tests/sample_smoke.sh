#!/bin/sh
# End-to-end parity test of the sampling study's two backends: build a
# container with bin2atc, sample it locally with cache_study --sample,
# then sample the same container through atcserved on loopback — the
# two JSON reports must agree on every window's payload CRC and on the
# merged histogram CRC (same records fetched, same statistics merged).
# Run by ctest as `sample_smoke`.
#
# Usage: sample_smoke.sh <dir-with-binaries> <scratch-dir>
set -e

BIN_DIR="$1"
WORK_DIR="$2"
[ -n "$BIN_DIR" ] && [ -n "$WORK_DIR" ] || {
    echo "usage: $0 <bin-dir> <work-dir>" >&2
    exit 2
}

rm -rf "$WORK_DIR"
mkdir -p "$WORK_DIR"
cd "$WORK_DIR"

# 65536 random u64 addresses — parity is about bytes, not locality.
dd if=/dev/urandom of=trace.bin bs=4096 count=128 2>/dev/null
"$BIN_DIR/bin2atc" tdir c < trace.bin

PLAN='systematic:windows=8,len=1k,warmup=128'

"$BIN_DIR/cache_study" --sample tdir --plan "$PLAN" --sets 64,256 \
    --reference --json local.json > /dev/null
grep -q '"atc_sample_study": 1' local.json
grep -q '"backend": "local"' local.json
# The sampled estimate of a fully referenced run carries error bounds.
grep -q '"max_error"' local.json

"$BIN_DIR/atcserved" --port 0 --port-file port.txt demo=tdir &
SERVER_PID=$!
trap 'kill $SERVER_PID 2>/dev/null || true' EXIT

i=0
while [ ! -s port.txt ] && [ $i -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
[ -s port.txt ] || { echo "server never wrote its port" >&2; exit 1; }
ADDR="127.0.0.1:$(cat port.txt)"

"$BIN_DIR/cache_study" --sample --connect "$ADDR" --name demo \
    --plan "$PLAN" --sets 64,256 --json served.json > /dev/null
grep -q '"backend": "served"' served.json

"$BIN_DIR/atcclient" "$ADDR" shutdown
trap - EXIT
wait $SERVER_PID # propagates the daemon's exit code; must be 0

# Backend parity: byte-identical window records (per-window CRCs fold
# into windows_crc) and identical merged histograms (hist_crc).
for key in windows_crc hist_crc window_crcs; do
    L=$(grep "\"$key\"" local.json)
    S=$(grep "\"$key\"" served.json)
    [ -n "$L" ] || { echo "$key missing from local.json" >&2; exit 1; }
    [ "$L" = "$S" ] || {
        echo "backend mismatch on $key:" >&2
        echo "  local:  $L" >&2
        echo "  served: $S" >&2
        exit 1
    }
done

echo "sample_smoke: OK"
