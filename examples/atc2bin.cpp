/**
 * @file
 * CLI mirroring the paper's Figure 7: read an ATC-compressed directory
 * and write the (regenerated) trace as raw 64-bit values on standard
 * output. The chunk suffix is auto-detected from INFO.<suffix>.
 *
 * Usage: atc2bin [-j N] <dirname>
 *   -j N  decode with N worker threads prefetching chunks ahead
 *
 * Example (paper Figure 8):
 *   atc2bin -j 4 foobar | wc -c
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "atc/atc.hpp"
#include "parallel/parallel_atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    size_t threads = 1;
    const char *dir = nullptr;
    bool bad_args = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 ||
            std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc)
                bad_args = true;
            else
                threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "-j", 2) == 0 &&
                   argv[i][2] != '\0') {
            threads = std::strtoull(argv[i] + 2, nullptr, 10);
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            bad_args = true; // unknown option, not a directory
        } else {
            dir = argv[i];
        }
    }
    if (dir == nullptr || bad_args) {
        std::fprintf(stderr, "usage: %s [-j N] <dirname>\n", argv[0]);
        return 2;
    }

    std::unique_ptr<core::AtcReader> serial;
    std::unique_ptr<parallel::ParallelAtcReader> par;
    if (threads > 1) {
        parallel::ParallelOptions popt;
        popt.threads = threads;
        auto opened = parallel::ParallelAtcReader::open(dir, popt);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        par = opened.take();
    } else {
        auto opened = core::AtcReader::open(dir);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        serial = opened.take();
    }

    std::vector<uint64_t> batch(1 << 16);
    for (;;) {
        auto got = par ? par->tryRead(batch.data(), batch.size())
                       : serial->tryRead(batch.data(), batch.size());
        if (!got.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         got.status().message().c_str());
            return 1;
        }
        if (got.value() == 0)
            break;
        if (std::fwrite(batch.data(), sizeof(uint64_t), got.value(),
                        stdout) != got.value()) {
            std::fprintf(stderr, "write error\n");
            return 1;
        }
    }
    return 0;
}
