/**
 * @file
 * CLI mirroring the paper's Figure 7: read an ATC-compressed directory
 * and write the (regenerated) trace as raw 64-bit values on standard
 * output. The chunk suffix is auto-detected from INFO.<suffix>.
 *
 * Usage: atc2bin [-j N] [--container-version V] <dirname>
 *   -j N  decode with N worker threads; on v3 containers the lossless
 *         stream is decoded block-parallel (seekable frames)
 *   --container-version V
 *         require the input container to be format version V and fail
 *         otherwise — a guard for scripts that depend on v3's
 *         parallel-decode layout
 *
 * Example (paper Figure 8):
 *   atc2bin -j 4 foobar | wc -c
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "atc/atc.hpp"
#include "parallel/parallel_atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    size_t threads = 1;
    long expect_version = 0; // 0 = accept any
    const char *dir = nullptr;
    bool bad_args = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-j") == 0 ||
            std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc)
                bad_args = true;
            else
                threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "-j", 2) == 0 &&
                   argv[i][2] != '\0') {
            threads = std::strtoull(argv[i] + 2, nullptr, 10);
        } else if (std::strcmp(argv[i], "--container-version") == 0) {
            if (i + 1 >= argc) {
                bad_args = true;
            } else {
                char *end = nullptr;
                expect_version = std::strtol(argv[++i], &end, 10);
                // Garbage or out-of-range must not silently disable
                // the guard this flag exists to provide.
                if (end == argv[i] || *end != '\0' ||
                    expect_version < core::kMinContainerVersion ||
                    expect_version > core::kContainerVersion)
                    bad_args = true;
            }
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            bad_args = true; // unknown option, not a directory
        } else {
            dir = argv[i];
        }
    }
    if (dir == nullptr || bad_args) {
        std::fprintf(stderr,
                     "usage: %s [-j N] [--container-version V] "
                     "<dirname>\n",
                     argv[0]);
        return 2;
    }

    std::unique_ptr<core::AtcReader> serial;
    std::unique_ptr<parallel::ParallelAtcReader> par;
    if (threads > 1) {
        parallel::ParallelOptions popt;
        popt.threads = threads;
        auto opened = parallel::ParallelAtcReader::open(dir, popt);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        par = opened.take();
    } else {
        auto opened = core::AtcReader::open(dir);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        serial = opened.take();
    }

    if (expect_version != 0) {
        uint8_t got = par ? par->containerVersion()
                          : serial->containerVersion();
        if (got != expect_version) {
            std::fprintf(stderr,
                         "error: container is format v%d, expected "
                         "v%ld\n",
                         int(got), expect_version);
            return 1;
        }
    }

    std::vector<uint64_t> batch(1 << 16);
    for (;;) {
        auto got = par ? par->tryRead(batch.data(), batch.size())
                       : serial->tryRead(batch.data(), batch.size());
        if (!got.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         got.status().message().c_str());
            return 1;
        }
        if (got.value() == 0)
            break;
        if (std::fwrite(batch.data(), sizeof(uint64_t), got.value(),
                        stdout) != got.value()) {
            std::fprintf(stderr, "write error\n");
            return 1;
        }
    }
    return 0;
}
