/**
 * @file
 * CLI mirroring the paper's Figure 7: read an ATC-compressed directory
 * and write the (regenerated) trace as raw 64-bit values on standard
 * output.
 *
 * Usage: atc2bin <dirname>
 *
 * Example (paper Figure 8):
 *   atc2bin foobar | wc -c
 */

#include <cstdio>

#include "atc/atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dirname>\n", argv[0]);
        return 2;
    }

    try {
        core::AtcReader reader(argv[1]);
        uint64_t x;
        while (reader.decode(&x)) {
            if (std::fwrite(&x, sizeof(x), 1, stdout) != 1) {
                std::fprintf(stderr, "write error\n");
                return 1;
            }
        }
    } catch (const util::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
