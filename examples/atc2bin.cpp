/**
 * @file
 * CLI mirroring the paper's Figure 7: read an ATC-compressed directory
 * and write the (regenerated) trace as raw 64-bit values on standard
 * output. The chunk suffix is auto-detected from INFO.<suffix>.
 *
 * Usage: atc2bin [-j N] [--container-version V]
 *                [--range BEGIN:END]... <dirname>
 *   -j N  decode with N worker threads; on v3 containers the lossless
 *         stream is decoded block-parallel (seekable frames)
 *   --container-version V
 *         require the input container to be format version V and fail
 *         otherwise — a guard for scripts that depend on v3's
 *         parallel-decode layout
 *   --range BEGIN:END
 *         emit only the records [BEGIN, END) instead of the whole
 *         trace, decoded through the random-access cursor (on v3 only
 *         the frames covering the slice are decoded; with -j their
 *         decode fans out on the thread pool). May repeat; ranges must
 *         be in increasing order and non-overlapping. Malformed,
 *         overlapping or out-of-range specs are rejected up front.
 *   --cache BYTES[k|m|g]
 *         budget of the shared decoded-block cache backing seeks and
 *         ranges (default 256m, 0 disables); repeated --range specs
 *         over one working set decode each covering frame/chunk once
 *   --io {mmap,stdio}
 *         chunk-file read path: mmap maps regular files and decodes
 *         borrowed bytes zero-copy (default), stdio forces the
 *         buffered-read fallback every input supports
 *   --metrics-json PATH
 *         before exiting, dump the obs registry snapshot (decode stage
 *         timings, cache and I/O counters) to PATH as JSON (see
 *         docs/metrics.md)
 *
 * Example (paper Figure 8):
 *   atc2bin -j 4 foobar | wc -c
 *   atc2bin --cache 128m --range 10000000:11000000 foobar > slice.bin
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "atc/atc.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_atc.hpp"
#include "util/mmap.hpp"

namespace {

/**
 * Parse one BEGIN:END range spec. Returns an error Status — never
 * throws — on anything other than two full decimal numbers with
 * BEGIN <= END.
 */
atc::util::Status
parseRange(const char *spec, std::pair<uint64_t, uint64_t> &out)
{
    const std::string text(spec);
    char *end = nullptr;
    uint64_t begin = std::strtoull(spec, &end, 10);
    if (end == spec || *end != ':')
        return atc::util::Status::error("bad range spec '" + text +
                                        "' (expected BEGIN:END)");
    const char *second = end + 1;
    uint64_t stop = std::strtoull(second, &end, 10);
    if (end == second || *end != '\0')
        return atc::util::Status::error("bad range spec '" + text +
                                        "' (expected BEGIN:END)");
    if (begin > stop)
        return atc::util::Status::error(
            "bad range spec '" + text + "' (BEGIN exceeds END)");
    out = {begin, stop};
    return atc::util::Status();
}

/** Parse a byte count with an optional k/m/g binary suffix. */
bool
parseSize(const char *text, size_t &out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text)
        return false;
    switch (*end) {
    case 'k': v <<= 10; ++end; break;
    case 'm': v <<= 20; ++end; break;
    case 'g': v <<= 30; ++end; break;
    default: break;
    }
    if (*end != '\0')
        return false;
    out = static_cast<size_t>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    size_t threads = 1;
    size_t cache_bytes = core::kDefaultDecodedCacheBytes;
    long expect_version = 0; // 0 = accept any
    std::string metrics_json;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    const char *dir = nullptr;
    bool bad_args = false;
    // Both exit paths (range extraction and streaming decode) funnel
    // through this before returning success.
    auto finish = [&metrics_json]() -> int {
        if (!metrics_json.empty() &&
            !obs::writeMetricsJson(metrics_json)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         metrics_json.c_str());
            return 1;
        }
        return 0;
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics-json") == 0) {
            if (i + 1 >= argc)
                bad_args = true;
            else
                metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "-j") == 0 ||
            std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc)
                bad_args = true;
            else
                threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "-j", 2) == 0 &&
                   argv[i][2] != '\0') {
            threads = std::strtoull(argv[i] + 2, nullptr, 10);
        } else if (std::strcmp(argv[i], "--range") == 0) {
            if (i + 1 >= argc) {
                bad_args = true;
            } else {
                std::pair<uint64_t, uint64_t> range;
                util::Status s = parseRange(argv[++i], range);
                if (!s.ok()) {
                    std::fprintf(stderr, "error: %s\n",
                                 s.message().c_str());
                    return 1;
                }
                if (!ranges.empty() && range.first < ranges.back().second) {
                    std::fprintf(stderr,
                                 "error: range %llu:%llu overlaps or "
                                 "reorders the previous range\n",
                                 static_cast<unsigned long long>(
                                     range.first),
                                 static_cast<unsigned long long>(
                                     range.second));
                    return 1;
                }
                ranges.push_back(range);
            }
        } else if (std::strcmp(argv[i], "--cache") == 0) {
            if (i + 1 >= argc || !parseSize(argv[++i], cache_bytes))
                bad_args = true;
        } else if (std::strcmp(argv[i], "--io") == 0) {
            util::IoMode io;
            if (i + 1 >= argc || !util::parseIoMode(argv[++i], io))
                bad_args = true;
            else
                util::setDefaultIoMode(io);
        } else if (std::strcmp(argv[i], "--container-version") == 0) {
            if (i + 1 >= argc) {
                bad_args = true;
            } else {
                char *end = nullptr;
                expect_version = std::strtol(argv[++i], &end, 10);
                // Garbage or out-of-range must not silently disable
                // the guard this flag exists to provide.
                if (end == argv[i] || *end != '\0' ||
                    expect_version < core::kMinContainerVersion ||
                    expect_version > core::kContainerVersion)
                    bad_args = true;
            }
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            bad_args = true; // unknown option, not a directory
        } else {
            dir = argv[i];
        }
    }
    if (dir == nullptr || bad_args) {
        std::fprintf(stderr,
                     "usage: %s [-j N] [--container-version V] "
                     "[--cache BYTES[k|m|g]] [--io mmap|stdio] "
                     "[--metrics-json PATH] "
                     "[--range BEGIN:END]... <dirname>\n",
                     argv[0]);
        return 2;
    }

    if (!ranges.empty()) {
        // Random-access extraction: open the index directly (no
        // streaming reader — that would start decoding the whole
        // trace in the background) and run one readRange per spec.
        // Out-of-range specs come back as a Status from the cursor.
        core::IndexOptions iopt;
        iopt.cache_bytes = cache_bytes;
        auto index = core::AtcIndex::open(dir, iopt);
        if (!index.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         index.status().message().c_str());
            return 1;
        }
        if (expect_version != 0 &&
            index.value()->version() != expect_version) {
            std::fprintf(stderr,
                         "error: container is format v%d, expected "
                         "v%ld\n",
                         int(index.value()->version()), expect_version);
            return 1;
        }
        std::unique_ptr<parallel::ThreadPool> pool;
        core::CursorOptions copt;
        if (threads > 1) {
            pool = std::make_unique<parallel::ThreadPool>(threads);
            copt.pool = pool.get();
        }
        auto cursor = index.value()->cursor(copt);
        std::vector<uint64_t> slice;
        for (const auto &[begin, stop] : ranges) {
            util::Status s = cursor->readRange(begin, stop, slice);
            if (!s.ok()) {
                std::fprintf(stderr, "error: %s\n",
                             s.message().c_str());
                return 1;
            }
            if (!slice.empty() &&
                std::fwrite(slice.data(), sizeof(uint64_t),
                            slice.size(), stdout) != slice.size()) {
                std::fprintf(stderr, "write error\n");
                return 1;
            }
        }
        return finish();
    }

    std::unique_ptr<core::AtcReader> serial;
    std::unique_ptr<parallel::ParallelAtcReader> par;
    if (threads > 1) {
        parallel::ParallelOptions popt;
        popt.threads = threads;
        popt.cache_bytes = cache_bytes;
        auto opened = parallel::ParallelAtcReader::open(dir, popt);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        par = opened.take();
    } else {
        auto opened = core::AtcReader::open(dir, cache_bytes);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        serial = opened.take();
    }

    if (expect_version != 0) {
        uint8_t got = par ? par->containerVersion()
                          : serial->containerVersion();
        if (got != expect_version) {
            std::fprintf(stderr,
                         "error: container is format v%d, expected "
                         "v%ld\n",
                         int(got), expect_version);
            return 1;
        }
    }

    std::vector<uint64_t> batch(1 << 16);
    for (;;) {
        auto got = par ? par->tryRead(batch.data(), batch.size())
                       : serial->tryRead(batch.data(), batch.size());
        if (!got.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         got.status().message().c_str());
            return 1;
        }
        if (got.value() == 0)
            break;
        if (std::fwrite(batch.data(), sizeof(uint64_t), got.value(),
                        stdout) != got.value()) {
            std::fprintf(stderr, "write error\n");
            return 1;
        }
    }
    return finish();
}
