/**
 * @file
 * CLI mirroring the paper's Figure 7: read an ATC-compressed directory
 * and write the (regenerated) trace as raw 64-bit values on standard
 * output. The chunk suffix is auto-detected from INFO.<suffix>.
 *
 * Usage: atc2bin <dirname>
 *
 * Example (paper Figure 8):
 *   atc2bin foobar | wc -c
 */

#include <cstdio>
#include <vector>

#include "atc/atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dirname>\n", argv[0]);
        return 2;
    }

    auto reader = core::AtcReader::open(argv[1]);
    if (!reader.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     reader.status().message().c_str());
        return 1;
    }

    std::vector<uint64_t> batch(1 << 16);
    for (;;) {
        auto got = reader.value()->tryRead(batch.data(), batch.size());
        if (!got.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         got.status().message().c_str());
            return 1;
        }
        if (got.value() == 0)
            break;
        if (std::fwrite(batch.data(), sizeof(uint64_t), got.value(),
                        stdout) != got.value()) {
            std::fprintf(stderr, "write error\n");
            return 1;
        }
    }
    return 0;
}
