/**
 * @file
 * atcserved: the trace-serving daemon CLI.
 *
 * Serves one or more ATC container directories over the loopback
 * binary protocol (docs/protocol.md). Each NAME=DIR argument maps a
 * wire-visible container name to a container directory; clients OPEN
 * by name and then SEEK / READ_RANGE records through shared
 * decoded-block caches.
 *
 * Usage: atcserved [options] NAME=DIR [NAME=DIR ...]
 *   --port N         listen port (default 0 = kernel-assigned)
 *   --port-file PATH write the bound port to PATH (for scripts that
 *                    start with --port 0)
 *   --threads N      worker threads (default: hardware concurrency)
 *   --cache BYTES    global decoded-block cache budget, split evenly
 *                    across containers
 *   --max-inflight N heavy requests one client may have executing
 *   --max-range N    per-request record ceiling (kTooLarge beyond it)
 *   --log-level L    structured stderr logging: off (default), info
 *                    (session lifecycle + non-ok requests), debug
 *                    (every request)
 *   --io {mmap,stdio} chunk-file read path for the served containers:
 *                    mmap decodes borrowed mapped bytes zero-copy
 *                    (default), stdio forces buffered reads
 *   --metrics-json PATH on exit, dump the obs registry snapshot to
 *                    PATH as JSON (see docs/metrics.md)
 *
 * The daemon runs until SIGINT/SIGTERM or a client SHUTDOWN op, then
 * tears down cleanly and exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/mmap.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--port N] [--port-file PATH] [--threads N]"
                 " [--cache BYTES]\n"
                 "          [--max-inflight N] [--max-range N]"
                 " [--log-level off|info|debug]\n"
                 "          [--io mmap|stdio] [--metrics-json PATH]"
                 " NAME=DIR [NAME=DIR ...]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    serve::ServeOptions opt;
    std::string port_file;
    std::string metrics_json;
    std::vector<std::pair<std::string, std::string>> mappings;

    for (int i = 1; i < argc; ++i) {
        auto intArg = [&](const char *flag, long long &out) -> bool {
            if (std::strcmp(argv[i], flag) != 0)
                return false;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            out = std::atoll(argv[++i]);
            return true;
        };
        long long v = 0;
        if (intArg("--port", v))
            opt.port = static_cast<uint16_t>(v);
        else if (intArg("--threads", v))
            opt.threads = static_cast<size_t>(v);
        else if (intArg("--cache", v))
            opt.cache_bytes = static_cast<size_t>(v);
        else if (intArg("--max-inflight", v))
            opt.max_inflight_per_client = static_cast<uint32_t>(v);
        else if (intArg("--max-range", v))
            opt.max_range_records = static_cast<uint64_t>(v);
        else if (std::strcmp(argv[i], "--port-file") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            port_file = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "--io") == 0) {
            util::IoMode io;
            if (i + 1 >= argc || !util::parseIoMode(argv[++i], io)) {
                std::fprintf(stderr, "--io must be mmap or stdio\n");
                return 2;
            }
            util::setDefaultIoMode(io);
        } else if (std::strcmp(argv[i], "--log-level") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            const char *level = argv[++i];
            if (std::strcmp(level, "off") == 0)
                opt.log_level = serve::LogLevel::kOff;
            else if (std::strcmp(level, "info") == 0)
                opt.log_level = serve::LogLevel::kInfo;
            else if (std::strcmp(level, "debug") == 0)
                opt.log_level = serve::LogLevel::kDebug;
            else {
                std::fprintf(stderr,
                             "--log-level must be off, info, or debug\n");
                return 2;
            }
        } else {
            const char *eq = std::strchr(argv[i], '=');
            if (eq == nullptr || eq == argv[i] || eq[1] == '\0')
                return usage(argv[0]);
            mappings.emplace_back(
                std::string(argv[i], static_cast<size_t>(eq - argv[i])),
                std::string(eq + 1));
        }
    }
    if (mappings.empty())
        return usage(argv[0]);

    serve::TraceServer server(opt);
    for (const auto &[name, dir] : mappings) {
        util::Status st = server.addContainer(name, dir);
        if (!st.ok()) {
            std::fprintf(stderr, "error: %s\n", st.message().c_str());
            return 1;
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    util::Status st = server.start();
    if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.message().c_str());
        return 1;
    }
    std::printf("atcserved listening on 127.0.0.1:%u (%zu container%s)\n",
                unsigned(server.port()), mappings.size(),
                mappings.size() == 1 ? "" : "s");
    std::fflush(stdout);

    if (!port_file.empty()) {
        std::FILE *f = std::fopen(port_file.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         port_file.c_str());
            return 1;
        }
        std::fprintf(f, "%u\n", unsigned(server.port()));
        std::fclose(f);
    }

    // Poll so signal delivery is noticed promptly; waitFor returns
    // true the moment a client SHUTDOWN (or requestStop) lands.
    while (!g_stop && !server.waitFor(200)) {
    }
    server.stop();
    if (!metrics_json.empty() &&
        !obs::writeMetricsJson(metrics_json))
        std::fprintf(stderr, "warning: cannot write %s\n",
                     metrics_json.c_str());
    std::printf("atcserved: clean shutdown\n");
    return 0;
}
