/**
 * @file
 * atcclient: command-line client for atcserved.
 *
 * Usage: atcclient <host:port> <command> [args]
 *   ping                          liveness round-trip
 *   stat                          print the server's key=value counters
 *   metrics                       print the server's obs registry
 *                                 snapshot (atc_metrics text format)
 *   open NAME                     print a container's metadata
 *   seek NAME POS COUNT           seek and read COUNT records
 *   range NAME BEGIN END          record-exact extraction of [BEGIN,END)
 *   shutdown                      ask the server to stop
 *
 * Records print one per line as hex addresses (same rendering as
 * atc2bin --text), so outputs diff cleanly against local decodes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <host:port> <command> [args]\n"
                 "  ping | stat | metrics | shutdown\n"
                 "  open NAME\n"
                 "  seek NAME POS COUNT\n"
                 "  range NAME BEGIN END\n",
                 argv0);
    return 2;
}

void
printRecords(const std::vector<uint64_t> &records)
{
    for (uint64_t r : records)
        std::printf("%llx\n", static_cast<unsigned long long>(r));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    if (argc < 3)
        return usage(argv[0]);

    std::string target = argv[1];
    size_t colon = target.rfind(':');
    if (colon == std::string::npos || colon + 1 >= target.size())
        return usage(argv[0]);
    std::string host = target.substr(0, colon);
    uint16_t port =
        static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
    std::string cmd = argv[2];

    auto conn = serve::ServeClient::connect(host, port);
    if (!conn.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     conn.status().message().c_str());
        return 1;
    }
    serve::ServeClient client = conn.take();

    util::Status st;
    if (cmd == "ping") {
        st = client.ping();
        if (st.ok())
            std::printf("pong\n");
    } else if (cmd == "stat") {
        auto text = client.statText();
        if (!text.ok())
            st = text.status();
        else
            std::fputs(text.value().c_str(), stdout);
    } else if (cmd == "metrics") {
        auto text = client.metricsText();
        if (!text.ok())
            st = text.status();
        else
            std::fputs(text.value().c_str(), stdout);
    } else if (cmd == "shutdown") {
        st = client.shutdownServer();
        if (st.ok())
            std::printf("server stopping\n");
    } else if (cmd == "open" && argc == 4) {
        auto trace = client.open(argv[3]);
        if (!trace.ok()) {
            st = trace.status();
        } else {
            const auto &t = trace.value();
            std::printf("name:      %s\n", argv[3]);
            std::printf("records:   %llu\n",
                        static_cast<unsigned long long>(t.records));
            std::printf("mode:      %s\n",
                        t.lossy ? "lossy ('k')" : "lossless ('c')");
            std::printf("container: v%d\n", int(t.container_version));
        }
    } else if (cmd == "seek" && argc == 6) {
        auto trace = client.open(argv[3]);
        if (!trace.ok()) {
            st = trace.status();
        } else {
            uint64_t pos = std::strtoull(argv[4], nullptr, 0);
            uint32_t count = static_cast<uint32_t>(
                std::strtoull(argv[5], nullptr, 0));
            std::vector<uint64_t> records;
            uint64_t actual = 0;
            st = client.seekRead(trace.value().handle, pos, count,
                                 records, &actual);
            if (st.ok()) {
                if (actual != pos)
                    std::fprintf(stderr,
                                 "note: lossy seek landed on record "
                                 "%llu\n",
                                 static_cast<unsigned long long>(actual));
                printRecords(records);
            }
        }
    } else if (cmd == "range" && argc == 6) {
        auto trace = client.open(argv[3]);
        if (!trace.ok()) {
            st = trace.status();
        } else {
            uint64_t begin = std::strtoull(argv[4], nullptr, 0);
            uint64_t end = std::strtoull(argv[5], nullptr, 0);
            std::vector<uint64_t> records;
            st = client.readRange(trace.value().handle, begin, end,
                                  records);
            if (st.ok())
                printRecords(records);
        }
    } else {
        return usage(argv[0]);
    }

    if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.message().c_str());
        return 1;
    }
    return 0;
}
