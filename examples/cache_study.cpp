/**
 * @file
 * Cache-design study on a lossy-compressed trace (the paper's §5.3
 * use case): compare LRU miss ratios of the exact and the regenerated
 * trace across a grid of cache geometries, using the single-pass
 * stack-distance simulator.
 *
 * Usage: cache_study [benchmark] [addresses]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "cache/opt_sim.hpp"
#include "cache/stack_sim.hpp"
#include "trace/pipeline.hpp"
#include "trace/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    std::string name = argc > 1 ? argv[1] : "470.lbm";
    size_t count = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                            : 2'000'000;

    auto addrs = trace::collectFilteredTrace(trace::benchmarkByName(name),
                                             count, 1);

    // Lossy-compress and regenerate.
    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossy;
    opt.lossy.interval_len = count / 100;
    opt.pipeline.buffer_addrs = count / 100;
    {
        core::AtcWriter writer(store, opt);
        writer.write(addrs.data(), addrs.size());
        writer.close();
    }
    std::vector<uint64_t> approx;
    approx.reserve(count);
    {
        core::AtcReader reader(store);
        approx = trace::collect(reader);
    }
    std::printf("%s: %zu addresses, lossy size %llu bytes "
                "(%.3f bits/address)\n\n",
                name.c_str(), addrs.size(),
                static_cast<unsigned long long>(store.totalBytes()),
                8.0 * store.totalBytes() / addrs.size());

    // Miss-ratio grid: one stack-simulator pass per set count yields
    // every LRU associativity at once (Cheetah's trick); the OPT
    // column (Belady/MIN) bounds how much of each miss curve is
    // replacement-policy artefact.
    const uint32_t max_ways = 32;
    std::printf("%6s %5s | %10s %10s %10s | %10s\n", "sets", "ways",
                "exact LRU", "lossy LRU", "delta", "exact OPT");
    for (uint32_t sets : {256u, 1024u, 4096u}) {
        cache::StackSimulator exact(sets, max_ways);
        cache::StackSimulator lossy(sets, max_ways);
        for (uint64_t a : addrs)
            exact.access(a);
        for (uint64_t a : approx)
            lossy.access(a);
        for (uint32_t ways : {1u, 2u, 4u, 8u, 16u, 32u}) {
            double e = exact.missRatio(ways);
            double l = lossy.missRatio(ways);
            double o = cache::simulateOpt(addrs, sets, ways).missRatio();
            std::printf("%6u %5u | %10.4f %10.4f %+10.4f | %10.4f\n",
                        sets, ways, e, l, l - e, o);
        }
        std::printf("\n");
    }
    return 0;
}
