/**
 * @file
 * Cache-design studies over ATC traces.
 *
 * Two modes:
 *
 *  - Grid demo (default, the paper's §5.3 use case): compare LRU miss
 *    ratios of an exact and a lossy-regenerated benchmark trace across
 *    a grid of cache geometries.
 *
 *        cache_study [benchmark] [addresses]
 *
 *  - Sampling study (`--sample`): estimate whole-trace miss ratios
 *    from scattered windows of a seekable container, decoding only
 *    the frames the windows touch — locally through AtcIndex, or
 *    against an atcserved daemon with `--connect`. Emits one JSON
 *    document on stdout (windows, estimates ± CI, decoded-bytes
 *    accounting, parity CRCs; see docs/sampling.md).
 *
 *        cache_study --sample DIR [--plan SPEC] [--sets 64,256]
 *                    [--ways N] [--block-shift N] [--threads N]
 *                    [--fetch range|seek] [--io mmap|stdio]
 *                    [--reference] [--json PATH]
 *        cache_study --sample --connect HOST:PORT --name NAME ...
 *
 *    `--sample DIR --connect ... --name ...` uses the daemon for the
 *    sampled windows and the local directory for `--reference`.
 */

#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "atc/index.hpp"
#include "cache/opt_sim.hpp"
#include "cache/stack_sim.hpp"
#include "serve/client.hpp"
#include "study/sample_plan.hpp"
#include "study/sample_study.hpp"
#include "trace/pipeline.hpp"
#include "trace/suite.hpp"
#include "util/mmap.hpp"

namespace {

using namespace atc;

int
gridDemo(const std::string &name, size_t count)
{
    auto addrs = trace::collectFilteredTrace(trace::benchmarkByName(name),
                                             count, 1);

    // Lossy-compress and regenerate.
    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossy;
    opt.lossy.interval_len = count / 100;
    opt.pipeline.buffer_addrs = count / 100;
    {
        core::AtcWriter writer(store, opt);
        writer.write(addrs.data(), addrs.size());
        writer.close();
    }
    std::vector<uint64_t> approx;
    approx.reserve(count);
    {
        core::AtcReader reader(store);
        approx = trace::collect(reader);
    }
    std::printf("%s: %zu addresses, lossy size %llu bytes "
                "(%.3f bits/address)\n\n",
                name.c_str(), addrs.size(),
                static_cast<unsigned long long>(store.totalBytes()),
                8.0 * store.totalBytes() / addrs.size());

    // Miss-ratio grid: one stack-simulator pass per set count yields
    // every LRU associativity at once (Cheetah's trick); the OPT
    // column (Belady/MIN) bounds how much of each miss curve is
    // replacement-policy artefact.
    const uint32_t max_ways = 32;
    std::printf("%6s %5s | %10s %10s %10s | %10s\n", "sets", "ways",
                "exact LRU", "lossy LRU", "delta", "exact OPT");
    for (uint32_t sets : {256u, 1024u, 4096u}) {
        cache::StackSimulator exact(sets, max_ways);
        cache::StackSimulator lossy(sets, max_ways);
        for (uint64_t a : addrs)
            exact.access(a);
        for (uint64_t a : approx)
            lossy.access(a);
        for (uint32_t ways : {1u, 2u, 4u, 8u, 16u, 32u}) {
            double e = exact.missRatio(ways);
            double l = lossy.missRatio(ways);
            double o = cache::simulateOpt(addrs, sets, ways).missRatio();
            std::printf("%6u %5u | %10.4f %10.4f %+10.4f | %10.4f\n",
                        sets, ways, e, l, l - e, o);
        }
        std::printf("\n");
    }
    return 0;
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "cache_study: %s\n", msg.c_str());
    std::exit(1);
}

bool
parseSets(const std::string &text, std::vector<uint32_t> &out)
{
    out.clear();
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        char *end = nullptr;
        std::string item = text.substr(pos, comma - pos);
        unsigned long v = std::strtoul(item.c_str(), &end, 10);
        if (item.empty() || end == item.c_str() || *end != '\0' ||
            v == 0)
            return false;
        out.push_back(static_cast<uint32_t>(v));
        pos = comma + 1;
    }
    return !out.empty();
}

struct SampleArgs
{
    std::string dir;
    std::string plan = "systematic";
    std::string host;
    uint16_t port = 0;
    std::string name;
    study::StudyOptions opt;
    bool reference = false;
    std::string json_path;
};

SampleArgs
parseSampleArgs(int argc, char **argv)
{
    SampleArgs args;
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                die("missing value after " + a);
            return argv[++i];
        };
        if (a == "--plan") {
            args.plan = next();
        } else if (a == "--connect") {
            std::string hp = next();
            size_t colon = hp.rfind(':');
            if (colon == std::string::npos)
                die("--connect wants HOST:PORT");
            args.host = hp.substr(0, colon);
            args.port = static_cast<uint16_t>(
                std::strtoul(hp.c_str() + colon + 1, nullptr, 10));
        } else if (a == "--name") {
            args.name = next();
        } else if (a == "--sets") {
            if (!parseSets(next(), args.opt.sets))
                die("--sets wants a comma-separated list, e.g. 64,256");
        } else if (a == "--ways") {
            args.opt.max_ways =
                static_cast<uint32_t>(std::strtoul(next().c_str(),
                                                   nullptr, 10));
        } else if (a == "--block-shift") {
            args.opt.block_shift =
                static_cast<uint32_t>(std::strtoul(next().c_str(),
                                                   nullptr, 10));
        } else if (a == "--threads") {
            args.opt.threads = std::strtoul(next().c_str(), nullptr, 10);
        } else if (a == "--depth") {
            args.opt.pipeline_depth =
                std::strtoul(next().c_str(), nullptr, 10);
        } else if (a == "--io") {
            util::IoMode io;
            if (!util::parseIoMode(next(), io))
                die("--io wants mmap or stdio");
            util::setDefaultIoMode(io);
        } else if (a == "--fetch") {
            std::string mode = next();
            if (mode == "range")
                args.opt.fetch = study::Fetch::kRange;
            else if (mode == "seek")
                args.opt.fetch = study::Fetch::kSeek;
            else
                die("--fetch wants range or seek");
        } else if (a == "--reference") {
            args.reference = true;
        } else if (a == "--json") {
            args.json_path = next();
        } else if (!a.empty() && a[0] != '-' && args.dir.empty()) {
            args.dir = a;
        } else {
            die("unknown option '" + a + "'");
        }
    }
    bool served = !args.host.empty();
    if (served && args.name.empty())
        die("--connect needs --name CONTAINER");
    if (!served && args.dir.empty())
        die("--sample wants a container directory (or --connect)");
    if (args.reference && args.dir.empty())
        die("--reference needs a local container directory");
    return args;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

int
sampleStudy(int argc, char **argv)
{
    SampleArgs args = parseSampleArgs(argc, argv);
    bool served = !args.host.empty();

    std::shared_ptr<const core::AtcIndex> index;
    if (!args.dir.empty()) {
        auto opened = core::AtcIndex::open(args.dir);
        if (!opened.ok())
            die(opened.status().message());
        index = opened.value();
    }

    uint64_t records = 0;
    if (index != nullptr) {
        records = index->size();
    } else {
        auto client = serve::ServeClient::connect(args.host, args.port);
        if (!client.ok())
            die(client.status().message());
        auto remote = client.value().open(args.name);
        if (!remote.ok())
            die(remote.status().message());
        records = remote.value().records;
        client.value().closeHandle(remote.value().handle);
    }

    auto plan = study::SamplePlan::build(args.plan, records);
    if (!plan.ok())
        die(plan.status().message());

    auto result =
        served ? study::runSampleStudyServed(args.host, args.port,
                                             args.name, plan.value(),
                                             args.opt)
               : study::runSampleStudy(index, plan.value(), args.opt);
    if (!result.ok())
        die(result.status().message());
    const study::StudyResult &study = result.value();

    bool have_ref = false;
    study::ReferenceResult ref;
    if (args.reference) {
        auto r = study::runFullReference(index, args.opt);
        if (!r.ok())
            die(r.status().message());
        ref = std::move(r.value());
        have_ref = true;
    }

    // Decoded fraction: sampled decode bytes over the full-pass decode
    // bytes when a reference ran, else over the raw record payload
    // (8 bytes per record — close for lossless, an estimate for lossy).
    double decoded_frac = -1;
    if (study.decoded_bytes >= 0) {
        double full = have_ref && ref.decoded_bytes > 0
                          ? static_cast<double>(ref.decoded_bytes)
                          : 8.0 * static_cast<double>(records);
        if (full > 0)
            decoded_frac =
                static_cast<double>(study.decoded_bytes) / full;
    }

    std::string json;
    json += "{\n";
    appendf(json, "  \"atc_sample_study\": 1,\n");
    appendf(json, "  \"backend\": \"%s\",\n",
            served ? "served" : "local");
    appendf(json, "  \"container\": \"%s\",\n",
            served ? args.name.c_str() : args.dir.c_str());
    appendf(json, "  \"plan\": \"%s\",\n", study.plan.c_str());
    appendf(json, "  \"fetch\": \"%s\",\n",
            args.opt.fetch == study::Fetch::kRange ? "range" : "seek");
    appendf(json, "  \"records\": %" PRIu64 ",\n", records);
    appendf(json, "  \"windows\": %zu,\n", study.windows.size());
    appendf(json, "  \"measured_records\": %" PRIu64 ",\n",
            study.measured_records);
    appendf(json, "  \"fetched_records\": %" PRIu64 ",\n",
            study.fetched_records);
    appendf(json, "  \"seconds\": %.6f,\n", study.seconds);
    appendf(json, "  \"decoded_bytes\": %lld,\n",
            static_cast<long long>(study.decoded_bytes));
    appendf(json, "  \"decoded_frames\": %lld,\n",
            static_cast<long long>(study.decoded_frames));
    appendf(json, "  \"decoded_frac\": %.6f,\n", decoded_frac);
    appendf(json, "  \"windows_crc\": \"%08x\",\n", study.windowsCrc());
    appendf(json, "  \"hist_crc\": \"%08x\",\n", study.histCrc());
    json += "  \"window_crcs\": [";
    for (size_t i = 0; i < study.windows.size(); ++i)
        appendf(json, "%s\"%08x\"", i == 0 ? "" : ", ",
                study.windows[i].crc);
    json += "],\n";

    json += "  \"estimates\": [\n";
    bool first_row = true;
    for (size_t s = 0; s < study.sets.size(); ++s) {
        for (uint32_t w = 1; w <= study.max_ways; w *= 2) {
            study::Estimate e = study.estimate(s, w);
            if (!first_row)
                json += ",\n";
            first_row = false;
            appendf(json,
                    "    {\"sets\": %u, \"ways\": %u, "
                    "\"ratio\": %.6f, \"ci95\": %.6f",
                    study.sets[s], w, e.ratio, e.ci95);
            if (have_ref) {
                double r = ref.missRatio(s, w);
                appendf(json, ", \"reference\": %.6f, \"error\": %.6f",
                        r, std::fabs(e.ratio - r));
            }
            json += "}";
        }
    }
    json += "\n  ]";

    if (have_ref) {
        appendf(json, ",\n  \"max_error\": %.6f",
                study::worstAbsError(study, ref));
        appendf(json,
                ",\n  \"reference\": {\"seconds\": %.6f, "
                "\"decoded_bytes\": %lld, \"speedup\": %.3f}",
                ref.seconds, static_cast<long long>(ref.decoded_bytes),
                study.seconds > 0 ? ref.seconds / study.seconds : 0.0);
    }
    json += "\n}\n";

    std::fputs(json.c_str(), stdout);
    if (!args.json_path.empty()) {
        std::FILE *f = std::fopen(args.json_path.c_str(), "w");
        if (f == nullptr)
            die("cannot write " + args.json_path);
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--sample") == 0)
        return sampleStudy(argc, argv);

    std::string name = argc > 1 ? argv[1] : "470.lbm";
    size_t count = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                            : 2'000'000;
    return gridDemo(name, count);
}
