/**
 * @file
 * CLI mirroring the paper's Figure 6: read raw 64-bit values from
 * standard input and write an ATC-compressed directory.
 *
 * Usage: bin2atc [-j N] [--container-version V] <dirname> [c|k]
 *        [codec-spec]
 *   -j N        compress with N worker threads (default 1 = serial)
 *   --container-version V
 *               container format version to write (default 3:
 *               seekable framing for block-parallel decode; 2/1
 *               reproduce the older layouts)
 *   --block BYTES
 *               codec block (= seekable frame) size; k/m/g suffixes.
 *               Smaller frames cost compression ratio but shrink the
 *               decode granularity random access pays — a sampling
 *               study (docs/sampling.md) wants frames no larger than
 *               its windows
 *   --buffer ADDRS
 *               transform buffer capacity in addresses (k/m/g)
 *   c           lossless compression
 *   k           lossy compression (default, as in the paper's example)
 *   codec-spec  registry spec, e.g. bwc, lzh, bwc:block=900k
 *   --io {mmap,stdio}
 *               how the container's chunk files are read back (e.g.
 *               by the lossy writer's decision probes): mmap maps
 *               regular files and decodes borrowed bytes zero-copy
 *               (default), stdio forces the buffered-read path
 *   --metrics-json PATH
 *               after closing the container, dump the obs registry
 *               snapshot (pipeline stage timings, I/O and pool
 *               counters) to PATH as JSON (see docs/metrics.md)
 *
 * Example (paper Figure 8):
 *   cat /dev/urandom | head -c 800000000 | bin2atc -j 8 foobar
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_atc.hpp"
#include "util/mmap.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [-j N] [--container-version V] "
                 "[--block BYTES] [--buffer ADDRS] [--io mmap|stdio] "
                 "[--metrics-json PATH] <dirname> [c|k] [codec-spec]\n",
                 argv0);
    return 2;
}

/** Parse a positive size with an optional k/m/g binary suffix. */
bool
parseSize(const char *text, size_t &out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || v == 0)
        return false;
    switch (*end) {
      case '\0': break;
      case 'k': case 'K': v <<= 10; ++end; break;
      case 'm': case 'M': v <<= 20; ++end; break;
      case 'g': case 'G': v <<= 30; ++end; break;
      default: return false;
    }
    if (*end != '\0')
        return false;
    out = static_cast<size_t>(v);
    return true;
}

/** Parse a -j/--threads option at argv[i]; advances i past it. */
bool
parseThreads(int argc, char **argv, int &i, size_t &threads)
{
    const char *arg = argv[i];
    if (std::strcmp(arg, "-j") == 0 ||
        std::strcmp(arg, "--threads") == 0) {
        if (i + 1 >= argc)
            return false;
        threads = std::strtoull(argv[++i], nullptr, 10);
        return true;
    }
    if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
        threads = std::strtoull(arg + 2, nullptr, 10);
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    size_t threads = 1;
    long container_version = atc::core::kContainerVersion;
    size_t codec_block = 0;
    size_t buffer_addrs = 0;
    std::string metrics_json;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics-json") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "--block") == 0) {
            if (i + 1 >= argc || !parseSize(argv[++i], codec_block))
                return usage(argv[0]);
        } else if (std::strcmp(argv[i], "--buffer") == 0) {
            if (i + 1 >= argc || !parseSize(argv[++i], buffer_addrs))
                return usage(argv[0]);
        } else if (std::strcmp(argv[i], "--container-version") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            container_version = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0')
                return usage(argv[0]);
        } else if (std::strcmp(argv[i], "--io") == 0) {
            util::IoMode io;
            if (i + 1 >= argc || !util::parseIoMode(argv[++i], io))
                return usage(argv[0]);
            util::setDefaultIoMode(io);
        } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
            if (!parseThreads(argc, argv, i, threads))
                return usage(argv[0]);
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.empty())
        return usage(argv[0]);
    if (container_version < core::kMinContainerVersion ||
        container_version > core::kContainerVersion) {
        std::fprintf(stderr, "container version must be %d..%d\n",
                     int(core::kMinContainerVersion),
                     int(core::kContainerVersion));
        return 2;
    }

    const char mode = positional.size() > 1 ? positional[1][0] : 'k';
    if (mode != 'c' && mode != 'k') {
        std::fprintf(stderr, "mode must be 'c' (lossless) or 'k' "
                             "(lossy)\n");
        return 2;
    }

    core::AtcOptions options;
    options.mode = mode == 'k' ? core::Mode::Lossy : core::Mode::Lossless;
    options.container_version = static_cast<uint8_t>(container_version);
    if (positional.size() > 2)
        options.pipeline.codec = positional[2];
    if (codec_block != 0)
        options.pipeline.codec_block = codec_block;
    if (buffer_addrs != 0)
        options.pipeline.buffer_addrs = buffer_addrs;

    // Both writers speak TraceSink; only construction and the close /
    // count calls differ.
    std::unique_ptr<core::AtcWriter> serial;
    std::unique_ptr<parallel::ParallelAtcWriter> par;
    trace::TraceSink *sink = nullptr;
    if (threads > 1) {
        parallel::ParallelOptions popt;
        popt.threads = threads;
        auto opened =
            parallel::ParallelAtcWriter::open(positional[0], options,
                                              popt);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        par = opened.take();
        sink = par.get();
    } else {
        auto opened = core::AtcWriter::open(positional[0], options);
        if (!opened.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         opened.status().message().c_str());
            return 1;
        }
        serial = opened.take();
        sink = serial.get();
    }

    try {
        std::vector<uint64_t> batch(1 << 16);
        size_t got;
        while ((got = std::fread(batch.data(), sizeof(uint64_t),
                                 batch.size(), stdin)) > 0)
            sink->write(batch.data(), got);
    } catch (const util::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    util::Status closed = par ? par->tryClose() : serial->tryClose();
    if (!closed.ok()) {
        std::fprintf(stderr, "error: %s\n", closed.message().c_str());
        return 1;
    }
    uint64_t count = par ? par->count() : serial->count();
    std::fprintf(stderr, "%llu values compressed into %s (%zu thread%s)\n",
                 static_cast<unsigned long long>(count), positional[0],
                 threads, threads == 1 ? "" : "s");
    if (!metrics_json.empty() && !obs::writeMetricsJson(metrics_json)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_json.c_str());
        return 1;
    }
    return 0;
}
