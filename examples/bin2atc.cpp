/**
 * @file
 * CLI mirroring the paper's Figure 6: read raw 64-bit values from
 * standard input and write an ATC-compressed directory.
 *
 * Usage: bin2atc <dirname> [c|k]
 *   c  lossless compression
 *   k  lossy compression (default, as in the paper's example)
 *
 * Example (paper Figure 8):
 *   cat /dev/urandom | head -c 800000000 | bin2atc foobar
 */

#include <cstdio>
#include <cstring>

#include "atc/atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dirname> [c|k]\n", argv[0]);
        return 2;
    }
    const char mode = argc > 2 ? argv[2][0] : 'k';
    if (mode != 'c' && mode != 'k') {
        std::fprintf(stderr, "mode must be 'c' (lossless) or 'k' "
                             "(lossy)\n");
        return 2;
    }

    core::AtcOptions options;
    options.mode = mode == 'k' ? core::Mode::Lossy : core::Mode::Lossless;

    try {
        core::AtcWriter writer(argv[1], options);
        uint64_t x;
        while (std::fread(&x, sizeof(x), 1, stdin) == 1)
            writer.code(x);
        writer.close();
        std::fprintf(stderr, "%llu values compressed into %s\n",
                     static_cast<unsigned long long>(writer.count()),
                     argv[1]);
    } catch (const util::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
