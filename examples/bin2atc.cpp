/**
 * @file
 * CLI mirroring the paper's Figure 6: read raw 64-bit values from
 * standard input and write an ATC-compressed directory.
 *
 * Usage: bin2atc <dirname> [c|k] [codec-spec]
 *   c           lossless compression
 *   k           lossy compression (default, as in the paper's example)
 *   codec-spec  registry spec, e.g. bwc, lzh, bwc:block=900k
 *
 * Example (paper Figure 8):
 *   cat /dev/urandom | head -c 800000000 | bin2atc foobar
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "atc/atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dirname> [c|k] [codec-spec]\n",
                     argv[0]);
        return 2;
    }
    const char mode = argc > 2 ? argv[2][0] : 'k';
    if (mode != 'c' && mode != 'k') {
        std::fprintf(stderr, "mode must be 'c' (lossless) or 'k' "
                             "(lossy)\n");
        return 2;
    }

    core::AtcOptions options;
    options.mode = mode == 'k' ? core::Mode::Lossy : core::Mode::Lossless;
    if (argc > 3)
        options.pipeline.codec = argv[3];

    auto writer = core::AtcWriter::open(argv[1], options);
    if (!writer.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     writer.status().message().c_str());
        return 1;
    }

    try {
        std::vector<uint64_t> batch(1 << 16);
        size_t got;
        while ((got = std::fread(batch.data(), sizeof(uint64_t),
                                 batch.size(), stdin)) > 0)
            writer.value()->write(batch.data(), got);
    } catch (const util::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    util::Status closed = writer.value()->tryClose();
    if (!closed.ok()) {
        std::fprintf(stderr, "error: %s\n", closed.message().c_str());
        return 1;
    }
    std::fprintf(stderr, "%llu values compressed into %s\n",
                 static_cast<unsigned long long>(writer.value()->count()),
                 argv[1]);
    return 0;
}
