/**
 * @file
 * End-to-end trace pipeline: synthetic workload -> L1 I/D cache filter
 * -> ATC compression (lossless and lossy), reporting sizes and
 * bits-per-address — the workflow of the paper's §4.2/§5.3 setup.
 *
 * Usage: trace_pipeline [benchmark] [addresses]
 *   benchmark  suite entry name (default 429.mcf)
 *   addresses  filtered trace length (default 1000000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "atc/atc.hpp"
#include "trace/stats.hpp"
#include "trace/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    std::string name = argc > 1 ? argv[1] : "429.mcf";
    size_t count = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                            : 1'000'000;

    const trace::SyntheticBenchmark &bench = trace::benchmarkByName(name);
    std::printf("Benchmark %s (class %s): collecting %zu cache-filtered "
                "addresses\n",
                bench.name.c_str(), bench.klass.c_str(), count);
    std::printf("  filter: two 32 KB / 4-way / LRU / 64 B L1 caches "
                "(I and D)\n");

    auto addrs = trace::collectFilteredTrace(bench, count, 1);
    auto stats = trace::computeStats(addrs);
    std::printf("  unique blocks: %llu (%.1f MB footprint), sequential "
                "fraction %.2f\n",
                static_cast<unsigned long long>(stats.unique),
                stats.unique * 64.0 / 1048576, stats.sequential_fraction);

    // Lossless: bytesort + BWC, the paper's §4 configuration.
    {
        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossless;
        opt.pipeline.buffer_addrs = count / 10;
        core::AtcWriter writer(store, opt);
        for (uint64_t a : addrs)
            writer.code(a);
        writer.close();
        std::printf("  lossless (bytesort B=n/10 + bwc): %8llu bytes, "
                    "%6.3f bits/address\n",
                    static_cast<unsigned long long>(store.totalBytes()),
                    8.0 * store.totalBytes() / addrs.size());
    }

    // Lossy: L = n/100 intervals, epsilon = 0.1 (paper §5).
    {
        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossy;
        opt.lossy.interval_len = count / 100;
        opt.pipeline.buffer_addrs = count / 100;
        core::AtcWriter writer(store, opt);
        for (uint64_t a : addrs)
            writer.code(a);
        writer.close();
        const auto &ls = writer.lossyStats();
        std::printf("  lossy (L=n/100, eps=0.1):            %8llu bytes, "
                    "%6.3f bits/address (%llu chunks / %llu intervals)\n",
                    static_cast<unsigned long long>(store.totalBytes()),
                    8.0 * store.totalBytes() / addrs.size(),
                    static_cast<unsigned long long>(ls.chunks_created),
                    static_cast<unsigned long long>(ls.intervals));

        // Verify the regenerated length (always preserved).
        core::AtcReader reader(store);
        size_t n = 0;
        uint64_t v;
        while (reader.decode(&v))
            ++n;
        std::printf("  lossy regeneration: %zu addresses (%s)\n", n,
                    n == addrs.size() ? "OK" : "MISMATCH");
        if (n != addrs.size())
            return 1;
    }
    return 0;
}
