/**
 * @file
 * End-to-end trace pipeline: synthetic workload -> L1 cache filter ->
 * ATC compression (lossless and lossy), reporting sizes and
 * bits-per-address — the workflow of the paper's §4.2/§5.3 setup.
 *
 * The stages are composed through the trace-pipeline interfaces: an
 * AccessGenerator feeds a cache::FilterStage whose miss stream fans out
 * (TeeSink) into a vector and both compressors in a single pass — no
 * hand-written per-stage loops. With -j N the compressors are the
 * parallel drivers (byte-identical containers, N worker threads).
 *
 * Usage: trace_pipeline [-j N] [--container-version V] [benchmark]
 *        [addresses]
 *   -j N       compress/decompress with N worker threads
 *   --container-version V
 *              container format to write (default 3; v3's seekable
 *              frames enable block-parallel lossless decode)
 *   --metrics-json PATH
 *              before exiting, dump the obs registry snapshot (stage
 *              timings over the whole run) to PATH as JSON
 *   benchmark  suite entry name (default 429.mcf), or an adversarial
 *              corpus spec such as "ptrchase:nodes=1m,stride=rand"
 *              (families: gcphase, multicore, ptrchase, stream — these
 *              are miss streams already, so the L1 filter is skipped)
 *   addresses  filtered trace length (default 1000000)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_atc.hpp"
#include "tcgen/corpus.hpp"
#include "trace/pipeline.hpp"
#include "trace/stats.hpp"
#include "trace/suite.hpp"

namespace {

/** Serial or parallel compressor behind one TraceSink facade. */
struct Compressor
{
    std::unique_ptr<atc::core::AtcWriter> serial;
    std::unique_ptr<atc::parallel::ParallelAtcWriter> par;

    atc::trace::TraceSink *
    sink()
    {
        return par ? static_cast<atc::trace::TraceSink *>(par.get())
                   : serial.get();
    }

    const atc::core::LossyStats &
    lossyStats() const
    {
        return par ? par->lossyStats() : serial->lossyStats();
    }
};

Compressor
makeCompressor(atc::core::ChunkStore &store,
               const atc::core::AtcOptions &opt, size_t threads)
{
    Compressor c;
    if (threads > 1) {
        atc::parallel::ParallelOptions popt;
        popt.threads = threads;
        c.par = std::make_unique<atc::parallel::ParallelAtcWriter>(
            store, opt, popt);
    } else {
        c.serial = std::make_unique<atc::core::AtcWriter>(store, opt);
    }
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    size_t threads = 1;
    long container_version = core::kContainerVersion;
    std::string metrics_json;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics-json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--metrics-json needs a path\n");
                return 2;
            }
            metrics_json = argv[++i];
        } else if (std::strcmp(argv[i], "-j") == 0 ||
            std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 < argc)
                threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "-j", 2) == 0 &&
                   argv[i][2] != '\0') {
            threads = std::strtoull(argv[i] + 2, nullptr, 10);
        } else if (std::strcmp(argv[i], "--container-version") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "usage: %s [-j N] [--container-version V] "
                             "[benchmark] [addresses]\n",
                             argv[0]);
                return 2;
            }
            char *end = nullptr;
            container_version = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' ||
                container_version < core::kMinContainerVersion ||
                container_version > core::kContainerVersion) {
                std::fprintf(stderr,
                             "container version must be %d..%d\n",
                             int(core::kMinContainerVersion),
                             int(core::kContainerVersion));
                return 2;
            }
        } else {
            positional.push_back(argv[i]);
        }
    }
    std::string name = !positional.empty() ? positional[0] : "429.mcf";
    size_t count = positional.size() > 1
                       ? std::strtoull(positional[1], nullptr, 10)
                       : 1'000'000;

    // A name with a ':' or matching a corpus family is an adversarial
    // corpus spec (same grammar bench/matrix sweeps); anything else is
    // a suite benchmark run through the L1 filter.
    const auto &families = tcg::corpusFamilies();
    bool is_corpus =
        name.find(':') != std::string::npos ||
        std::find(families.begin(), families.end(), name) !=
            families.end();

    const trace::SyntheticBenchmark *bench = nullptr;
    std::vector<uint64_t> addrs;
    if (is_corpus) {
        auto src = tcg::makeCorpusSource(name, count);
        if (!src.ok()) {
            std::fprintf(stderr, "corpus spec '%s': %s\n", name.c_str(),
                         src.status().message().c_str());
            return 2;
        }
        std::printf("Corpus %s: generating %zu addresses "
                    "(%zu thread%s, container v%d)\n",
                    src.value()->describe().c_str(), count, threads,
                    threads == 1 ? "" : "s", int(container_version));
        std::printf("  corpus generators emit miss streams directly; "
                    "L1 filter skipped\n");
        addrs.reserve(count);
        uint64_t buf[4096];
        size_t got;
        while ((got = src.value()->read(buf, 4096)) != 0)
            addrs.insert(addrs.end(), buf, buf + got);
    } else {
        bench = &trace::benchmarkByName(name);
        std::printf("Benchmark %s (class %s): collecting %zu "
                    "cache-filtered addresses (%zu thread%s, container "
                    "v%d)\n",
                    bench->name.c_str(), bench->klass.c_str(), count,
                    threads, threads == 1 ? "" : "s",
                    int(container_version));
        std::printf("  filter: two 32 KB / 4-way / LRU / 64 B L1 caches "
                    "(I and D)\n");

        // The I/D interleaving of the suite model needs its own
        // routing, so the reference trace comes from the suite helper...
        addrs = trace::collectFilteredTrace(*bench, count, 1);
    }
    auto stats = trace::computeStats(addrs);
    std::printf("  unique blocks: %llu (%.1f MB footprint), sequential "
                "fraction %.2f\n",
                static_cast<unsigned long long>(stats.unique),
                stats.unique * 64.0 / 1048576, stats.sequential_fraction);

    // ... and both compressors consume it as one composed pipeline:
    // VectorTraceSource -> TeeSink -> { lossless writer, lossy writer }.
    core::MemoryStore lossless_store, lossy_store;

    core::AtcOptions lossless_opt;
    lossless_opt.mode = core::Mode::Lossless;
    lossless_opt.pipeline.buffer_addrs = count / 10;
    lossless_opt.container_version =
        static_cast<uint8_t>(container_version);
    Compressor lossless =
        makeCompressor(lossless_store, lossless_opt, threads);

    core::AtcOptions lossy_opt;
    lossy_opt.mode = core::Mode::Lossy;
    lossy_opt.lossy.interval_len = count / 100;
    lossy_opt.pipeline.buffer_addrs = count / 100;
    lossy_opt.container_version =
        static_cast<uint8_t>(container_version);
    Compressor lossy = makeCompressor(lossy_store, lossy_opt, threads);

    trace::VectorTraceSource source(addrs);
    trace::TeeSink fanout({lossless.sink(), lossy.sink()});
    trace::pump(source, fanout);
    fanout.close();

    std::printf("  lossless (bytesort B=n/10 + bwc): %8llu bytes, "
                "%6.3f bits/address\n",
                static_cast<unsigned long long>(
                    lossless_store.totalBytes()),
                8.0 * lossless_store.totalBytes() / addrs.size());

    const auto &ls = lossy.lossyStats();
    std::printf("  lossy (L=n/100, eps=0.1):            %8llu bytes, "
                "%6.3f bits/address (%llu chunks / %llu intervals)\n",
                static_cast<unsigned long long>(lossy_store.totalBytes()),
                8.0 * lossy_store.totalBytes() / addrs.size(),
                static_cast<unsigned long long>(ls.chunks_created),
                static_cast<unsigned long long>(ls.intervals));

    // Verify the regenerated length (always preserved) by draining the
    // reader as a TraceSource — the parallel reader when -j asked.
    size_t n = 0;
    {
        std::unique_ptr<trace::TraceSource> reader;
        if (threads > 1) {
            parallel::ParallelOptions popt;
            popt.threads = threads;
            reader = std::make_unique<parallel::ParallelAtcReader>(
                lossy_store, popt);
        } else {
            reader = std::make_unique<core::AtcReader>(lossy_store);
        }
        uint64_t buf[4096];
        size_t got;
        while ((got = reader->read(buf, 4096)) != 0)
            n += got;
    }
    std::printf("  lossy regeneration: %zu addresses (%s)\n", n,
                n == addrs.size() ? "OK" : "MISMATCH");
    if (n != addrs.size())
        return 1;

    // Bonus: the same seam runs the paper's Figure 8 layout directly —
    // generator -> filter stage -> compressor, one object chain.
    // (Suite benchmarks only: corpus generators have no raw/pre-filter
    // form, their output already is the miss stream.)
    if (bench) {
        core::MemoryStore store;
        core::AtcOptions opt;
        opt.mode = core::Mode::Lossless;
        opt.pipeline.buffer_addrs = count / 10;
        core::AtcWriter writer(store, opt);
        cache::FilterStage filter(writer);
        trace::GeneratorPtr gen = bench->makeData(1);
        trace::GeneratorSource raw(*gen, count * 4);
        trace::pump(raw, filter);
        filter.close();
        std::printf("  chained generator->filter->atc: %llu filtered "
                    "addresses, %llu bytes\n",
                    static_cast<unsigned long long>(writer.count()),
                    static_cast<unsigned long long>(store.totalBytes()));
    }
    if (!metrics_json.empty() && !obs::writeMetricsJson(metrics_json)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_json.c_str());
        return 1;
    }
    return 0;
}
