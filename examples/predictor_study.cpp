/**
 * @file
 * C/DC address-predictor study on exact vs lossy traces (the paper's
 * Figure 5 use case): does the regenerated trace "look like" the
 * original to a hardware prefetcher model?
 *
 * Usage: predictor_study [benchmark] [addresses]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "predict/cdc.hpp"
#include "trace/suite.hpp"

namespace {

void
report(const char *label, const atc::pred::CdcStats &s)
{
    double total = static_cast<double>(s.total());
    std::printf("  %-6s non-predicted %6.2f%%  correct %6.2f%%  "
                "mispredicted %6.2f%%\n",
                label, 100.0 * s.non_predicted / total,
                100.0 * s.correct / total, 100.0 * s.mispredicted / total);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace atc;

    std::string name = argc > 1 ? argv[1] : "462.libquantum";
    size_t count = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                            : 1'000'000;

    auto addrs = trace::collectFilteredTrace(trace::benchmarkByName(name),
                                             count, 1);

    core::MemoryStore store;
    core::AtcOptions opt;
    opt.mode = core::Mode::Lossy;
    opt.lossy.interval_len = count / 100;
    opt.pipeline.buffer_addrs = count / 100;
    {
        core::AtcWriter writer(store, opt);
        writer.write(addrs.data(), addrs.size());
        writer.close();
    }

    // Paper's predictor configuration: 64 KB CZones, 256-entry index
    // table, 256-entry GHB, 2-delta correlation key.
    pred::CdcPredictor exact_pred, lossy_pred;
    for (uint64_t a : addrs)
        exact_pred.access(a);
    {
        core::AtcReader reader(store);
        uint64_t buf[4096];
        size_t got;
        while ((got = reader.read(buf, 4096)) != 0) {
            for (size_t i = 0; i < got; ++i)
                lossy_pred.access(buf[i]);
        }
    }

    std::printf("%s: C/DC predictor outcomes (%zu addresses)\n",
                name.c_str(), addrs.size());
    report("exact", exact_pred.stats());
    report("lossy", lossy_pred.stats());
    return 0;
}
