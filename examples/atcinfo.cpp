/**
 * @file
 * Container inspection tool: prints the metadata of an ATC trace
 * directory — mode, codec spec, per-chunk sizes, and a decode probe.
 * The chunk suffix is auto-detected; pass it explicitly only when
 * several containers share one directory.
 *
 * Usage: atcinfo <dirname> [suffix]
 */

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "atc/atc.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dirname> [suffix]\n", argv[0]);
        return 2;
    }
    std::string dir = argv[1];

    try {
        std::unique_ptr<core::AtcReader> reader;
        if (argc > 2)
            reader = std::make_unique<core::AtcReader>(dir, argv[2]);
        else
            reader = std::make_unique<core::AtcReader>(dir);

        std::printf("container:  %s\n", dir.c_str());
        std::printf("version:    %d%s\n",
                    int(reader->containerVersion()),
                    reader->containerVersion() >= 3
                        ? " (seekable frames, block-parallel decode)"
                        : "");
        std::printf("mode:       %s\n",
                    reader->mode() == core::Mode::Lossy
                        ? "lossy ('k')"
                        : "lossless ('c')");
        std::printf("codec:      %s\n", reader->codecSpec().c_str());
        std::printf("addresses:  %llu\n",
                    static_cast<unsigned long long>(reader->count()));

        uint64_t total_bytes = 0;
        size_t files = 0;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            ++files;
            total_bytes += entry.file_size();
        }
        std::printf("files:      %zu, %llu bytes total "
                    "(%.3f bits/address)\n",
                    files, static_cast<unsigned long long>(total_bytes),
                    reader->count()
                        ? 8.0 * static_cast<double>(total_bytes) /
                              static_cast<double>(reader->count())
                        : 0.0);

        // Decode a prefix to prove the container is readable.
        uint64_t probe_buf[1000];
        size_t probe = reader->read(probe_buf, 1000);
        std::printf("probe:      first %zu addresses decode OK\n", probe);
    } catch (const util::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
