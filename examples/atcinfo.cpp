/**
 * @file
 * Container inspection tool: prints the metadata of an ATC trace
 * directory — mode, codec spec, per-chunk sizes, and a decode probe.
 * The chunk suffix is auto-detected; pass it explicitly only when
 * several containers share one directory.
 *
 * Usage: atcinfo [--frames] [--metrics] [--io mmap|stdio] <dirname>
 *        [suffix]
 *   --frames  also print each chunk's v3 frame index: frame count and
 *             compressed/decompressed extents, straight from the
 *             AtcIndex scan (no payload is decoded). v1/v2 containers
 *             carry no frame index and report so.
 *   --metrics after the probe, print the active io source mode and the
 *             full obs registry snapshot in the shared atc_metrics
 *             text encoding (cache.*, io.* — including the zero-copy
 *             counters io.mmap_opens/io.view_bytes —, codec.*;
 *             see docs/metrics.md) instead of the one-line cache
 *             summary.
 *   --io {mmap,stdio}
 *             chunk-file read path for the scan and probe: mmap
 *             (default) decodes borrowed mapped bytes, stdio forces
 *             the buffered-read fallback.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "atc/index.hpp"
#include "obs/metrics.hpp"
#include "util/mmap.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    bool frames = false;
    bool metrics = false;
    std::string dir;
    std::string suffix;
    bool bad_args = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--frames") == 0) {
            frames = true;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            metrics = true;
        } else if (std::strcmp(argv[i], "--io") == 0) {
            util::IoMode io;
            if (i + 1 >= argc || !util::parseIoMode(argv[++i], io))
                bad_args = true;
            else
                util::setDefaultIoMode(io);
        } else if (dir.empty()) {
            dir = argv[i];
        } else {
            suffix = argv[i];
        }
    }
    if (dir.empty() || bad_args) {
        std::fprintf(stderr,
                     "usage: %s [--frames] [--metrics] "
                     "[--io mmap|stdio] <dirname> [suffix]\n",
                     argv[0]);
        return 2;
    }

    try {
        std::unique_ptr<core::AtcReader> reader;
        if (!suffix.empty())
            reader = std::make_unique<core::AtcReader>(dir, suffix);
        else
            reader = std::make_unique<core::AtcReader>(dir);

        std::printf("container:  %s\n", dir.c_str());
        std::printf("version:    %d%s\n",
                    int(reader->containerVersion()),
                    reader->containerVersion() >= 3
                        ? " (seekable frames, block-parallel decode)"
                        : "");
        std::printf("mode:       %s\n",
                    reader->mode() == core::Mode::Lossy
                        ? "lossy ('k')"
                        : "lossless ('c')");
        std::printf("codec:      %s\n", reader->codecSpec().c_str());
        std::printf("addresses:  %llu\n",
                    static_cast<unsigned long long>(reader->count()));

        uint64_t total_bytes = 0;
        size_t files = 0;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            ++files;
            total_bytes += entry.file_size();
        }
        std::printf("files:      %zu, %llu bytes total "
                    "(%.3f bits/address)\n",
                    files, static_cast<unsigned long long>(total_bytes),
                    reader->count()
                        ? 8.0 * static_cast<double>(total_bytes) /
                              static_cast<double>(reader->count())
                        : 0.0);
        std::printf("seek:       %s\n",
                    reader->index()->nativeSeek()
                        ? "native (frame index / interval trace)"
                        : "decode-and-skip fallback (v1/v2 lossless)");

        if (frames) {
            const auto &index = *reader->index();
            for (uint32_t id = 0; id < index.chunkCount(); ++id) {
                const comp::StreamLayout *layout = index.chunkLayout(id);
                if (layout == nullptr) {
                    std::printf("chunk %-4u  no frame index "
                                "(container v%d)\n",
                                id, int(reader->containerVersion()));
                    continue;
                }
                uint64_t comp_total =
                    layout->comp_starts.back() - layout->comp_starts[0];
                std::printf("chunk %-4u  %5zu frames, %llu -> %llu "
                            "bytes (x%.2f)%s\n",
                            id, layout->frames.size(),
                            static_cast<unsigned long long>(
                                layout->rawTotal()),
                            static_cast<unsigned long long>(comp_total),
                            comp_total
                                ? static_cast<double>(
                                      layout->rawTotal()) /
                                      static_cast<double>(comp_total)
                                : 0.0,
                            layout->indexed ? "" : " [index missing]");
            }
        }

        // Decode a prefix to prove the container is readable — through
        // cursor->readRange, which reads via the shared decoded-block
        // cache (the sequential path deliberately bypasses it).
        uint64_t probe_n = std::min<uint64_t>(1000, reader->count());
        std::vector<uint64_t> probe_buf;
        reader->index()
            ->cursor()
            ->readRange(0, probe_n, probe_buf)
            .orThrow();
        std::printf("probe:      first %zu addresses decode OK\n",
                    probe_buf.size());

        // The probe populated the index's shared decoded-block cache
        // and exercised the instrumented decode path. With --metrics
        // the whole registry snapshot goes out in the shared text
        // encoding (the same bytes the serve METRICS op returns);
        // otherwise just the one-line cache summary.
        if (metrics) {
            std::printf("io mode:    %s\n",
                        util::ioModeName(util::defaultIoMode()));
            std::printf("metrics:\n%s",
                        obs::snapshotToText(
                            obs::Registry::global().snapshot())
                            .c_str());
        } else {
            core::BlockCacheStats cs = reader->index()->cacheStats();
            std::printf("cache:      %llu hit%s, %llu miss%s, "
                        "%llu/%llu bytes in %llu entr%s\n",
                        static_cast<unsigned long long>(cs.hits),
                        cs.hits == 1 ? "" : "s",
                        static_cast<unsigned long long>(cs.misses),
                        cs.misses == 1 ? "" : "es",
                        static_cast<unsigned long long>(cs.bytes),
                        static_cast<unsigned long long>(
                            reader->index()->info().mode ==
                                    core::Mode::Lossy
                                ? reader->index()->chunkCache()
                                      .capacityBytes()
                                : reader->index()->frameCache()
                                      .capacityBytes()),
                        static_cast<unsigned long long>(cs.entries),
                        cs.entries == 1 ? "y" : "ies");
        }
    } catch (const util::Error &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
