/**
 * @file
 * Quickstart: the paper's Figure 8 scenario.
 *
 * Compress 10M random 64-bit values with ATC's lossy mode into a
 * directory container, then decompress and verify the length. Random
 * data is the worst case for lossless compression, but every interval
 * "looks like" the first one, so ATC stores a single chunk plus byte
 * translations — a compression ratio of ~10 with L = n/10.
 *
 * The writer is driven through the batch-first API: values are staged
 * in a block and handed over as spans (the single-value code() wrapper
 * remains as the atc_code equivalent).
 *
 * Usage: quickstart [output-dir]
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "atc/atc.hpp"
#include "util/rng.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    std::string dir = argc > 1 ? argv[1] : "/tmp/atc_quickstart";
    std::filesystem::remove_all(dir);

    const size_t n = 10'000'000;
    const size_t block = 1 << 16;

    core::AtcOptions options;
    options.mode = core::Mode::Lossy;           // 'k' in the original tool
    options.lossy.interval_len = n / 10;        // L
    options.pipeline.buffer_addrs = n / 100;    // bytesort buffer B

    std::printf("Compressing %zu random 64-bit values into %s ...\n", n,
                dir.c_str());
    {
        core::AtcWriter writer(dir, options);
        util::Rng rng(42);
        std::vector<uint64_t> batch(block);
        size_t produced = 0;
        while (produced < n) {
            size_t take = std::min(block, n - produced);
            for (size_t i = 0; i < take; ++i)
                batch[i] = rng.next();
            writer.write(batch.data(), take); // batched atc_code
            produced += take;
        }
        writer.close();                       // atc_close

        const auto &stats = writer.lossyStats();
        std::printf("  intervals: %llu, chunks stored: %llu, imitated: "
                    "%llu\n",
                    static_cast<unsigned long long>(stats.intervals),
                    static_cast<unsigned long long>(stats.chunks_created),
                    static_cast<unsigned long long>(stats.imitated));
    }

    uint64_t compressed_bytes = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        std::printf("  %10llu  %s\n",
                    static_cast<unsigned long long>(entry.file_size()),
                    entry.path().filename().c_str());
        compressed_bytes += entry.file_size();
    }
    std::printf("  raw: %zu bytes, compressed: %llu bytes, ratio %.2fx "
                "(paper: ~10x)\n",
                8 * n, static_cast<unsigned long long>(compressed_bytes),
                8.0 * n / compressed_bytes);

    std::printf("Decompressing and checking length ...\n");
    core::AtcReader reader(dir); // atc_open('d'); suffix auto-detected
    std::vector<uint64_t> out(block);
    size_t count = 0, got = 0;
    while ((got = reader.read(out.data(), out.size())) != 0) // atc_decode
        count += got;
    std::printf("  regenerated %zu values (%s)\n", count,
                count == n ? "OK" : "MISMATCH");
    return count == n ? 0 : 1;
}
