/**
 * @file
 * Quickstart: the paper's Figure 8 scenario.
 *
 * Compress 10M random 64-bit values with ATC's lossy mode into a
 * directory container, then decompress and verify the length. Random
 * data is the worst case for lossless compression, but every interval
 * "looks like" the first one, so ATC stores a single chunk plus byte
 * translations — a compression ratio of ~10 with L = n/10.
 *
 * Usage: quickstart [output-dir]
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "atc/atc.hpp"
#include "util/rng.hpp"

int
main(int argc, char **argv)
{
    using namespace atc;

    std::string dir = argc > 1 ? argv[1] : "/tmp/atc_quickstart";
    std::filesystem::remove_all(dir);

    const size_t n = 10'000'000;

    core::AtcOptions options;
    options.mode = core::Mode::Lossy;           // 'k' in the original tool
    options.lossy.interval_len = n / 10;        // L
    options.pipeline.buffer_addrs = n / 100;    // bytesort buffer B

    std::printf("Compressing %zu random 64-bit values into %s ...\n", n,
                dir.c_str());
    {
        core::AtcWriter writer(dir, options);
        util::Rng rng(42);
        for (size_t i = 0; i < n; ++i)
            writer.code(rng.next()); // atc_code
        writer.close();              // atc_close

        const auto &stats = writer.lossyStats();
        std::printf("  intervals: %llu, chunks stored: %llu, imitated: "
                    "%llu\n",
                    static_cast<unsigned long long>(stats.intervals),
                    static_cast<unsigned long long>(stats.chunks_created),
                    static_cast<unsigned long long>(stats.imitated));
    }

    uint64_t compressed_bytes = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        std::printf("  %10llu  %s\n",
                    static_cast<unsigned long long>(entry.file_size()),
                    entry.path().filename().c_str());
        compressed_bytes += entry.file_size();
    }
    std::printf("  raw: %zu bytes, compressed: %llu bytes, ratio %.2fx "
                "(paper: ~10x)\n",
                8 * n, static_cast<unsigned long long>(compressed_bytes),
                8.0 * n / compressed_bytes);

    std::printf("Decompressing and checking length ...\n");
    core::AtcReader reader(dir); // atc_open('d')
    size_t count = 0;
    uint64_t value;
    while (reader.decode(&value)) // atc_decode
        ++count;
    std::printf("  regenerated %zu values (%s)\n", count,
                count == n ? "OK" : "MISMATCH");
    return count == n ? 0 : 1;
}
