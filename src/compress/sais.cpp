#include "compress/sais.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atc::comp {

namespace {

/**
 * One induced-sorting round: given LMS suffixes seeded into sa (all
 * other slots -1), derive the order of all L-type then S-type suffixes.
 */
void
induce(const std::vector<int32_t> &t, const std::vector<uint8_t> &is_s,
       const std::vector<int32_t> &cnt, std::vector<int32_t> &bkt,
       int32_t k, std::vector<int32_t> &sa)
{
    const int32_t m = static_cast<int32_t>(t.size());

    // L-type pass, left to right, inserting at bucket heads.
    {
        int32_t sum = 0;
        for (int32_t c = 0; c < k; ++c) {
            bkt[c] = sum;
            sum += cnt[c];
        }
    }
    for (int32_t i = 0; i < m; ++i) {
        int32_t j = sa[i] - 1;
        if (sa[i] > 0 && !is_s[j])
            sa[bkt[t[j]]++] = j;
    }

    // S-type pass, right to left, inserting at bucket tails.
    {
        int32_t sum = 0;
        for (int32_t c = 0; c < k; ++c) {
            sum += cnt[c];
            bkt[c] = sum;
        }
    }
    for (int32_t i = m - 1; i >= 0; --i) {
        int32_t j = sa[i] - 1;
        if (sa[i] > 0 && is_s[j])
            sa[--bkt[t[j]]] = j;
    }
}

} // namespace

void
saisCore(const std::vector<int32_t> &t, int32_t k, std::vector<int32_t> &sa)
{
    const int32_t m = static_cast<int32_t>(t.size());
    ATC_ASSERT(m >= 1 && t[m - 1] == 0);
    sa.assign(m, -1);
    if (m == 1) {
        sa[0] = 0;
        return;
    }

    // Classify positions: S-type iff suffix i < suffix i+1. A byte
    // vector, not vector<bool> — the type flags are read in the two
    // inner induce() loops, where the bit-extraction ALU work and the
    // proxy objects cost more than the 8x memory.
    std::vector<uint8_t> is_s(m, 0);
    is_s[m - 1] = 1;
    for (int32_t i = m - 2; i >= 0; --i)
        is_s[i] = t[i] < t[i + 1] || (t[i] == t[i + 1] && is_s[i + 1]);

    auto is_lms = [&](int32_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

    std::vector<int32_t> cnt(k, 0), bkt(k);
    for (int32_t c : t)
        cnt[c]++;

    // LMS positions in text order.
    std::vector<int32_t> lms;
    for (int32_t i = 1; i < m; ++i) {
        if (is_lms(i))
            lms.push_back(i);
    }

    // Round 1: seed LMS suffixes (any order) and induce, which sorts the
    // LMS *substrings*.
    {
        int32_t sum = 0;
        for (int32_t c = 0; c < k; ++c) {
            sum += cnt[c];
            bkt[c] = sum;
        }
    }
    for (int32_t i : lms)
        sa[--bkt[t[i]]] = i;
    induce(t, is_s, cnt, bkt, k, sa);

    // Name LMS substrings by scanning the induced order.
    auto lms_equal = [&](int32_t a, int32_t b) {
        if (a == m - 1 || b == m - 1)
            return a == b;
        for (int32_t d = 0;; ++d) {
            bool a_end = d > 0 && is_lms(a + d);
            bool b_end = d > 0 && is_lms(b + d);
            if (a_end && b_end)
                return true;
            if (a_end != b_end)
                return false;
            if (t[a + d] != t[b + d] || is_s[a + d] != is_s[b + d])
                return false;
        }
    };

    std::vector<int32_t> name(m, -1);
    int32_t num_names = 0;
    int32_t prev = -1;
    for (int32_t i = 0; i < m; ++i) {
        int32_t pos = sa[i];
        if (pos > 0 && is_lms(pos)) {
            if (prev < 0 || !lms_equal(prev, pos))
                ++num_names;
            name[pos] = num_names - 1;
            prev = pos;
        }
    }
    // The sentinel suffix m-1 is LMS and sorts first.
    ATC_ASSERT(sa[0] == m - 1);

    const int32_t n_lms = static_cast<int32_t>(lms.size());
    std::vector<int32_t> reduced(n_lms);
    for (int32_t i = 0; i < n_lms; ++i)
        reduced[i] = name[lms[i]];

    // Order of LMS suffixes (indices into lms[]).
    std::vector<int32_t> lms_rank(n_lms);
    if (num_names == n_lms) {
        for (int32_t i = 0; i < n_lms; ++i)
            lms_rank[reduced[i]] = i;
    } else {
        std::vector<int32_t> sub_sa;
        saisCore(reduced, num_names, sub_sa);
        lms_rank = sub_sa;
    }

    // Round 2: seed LMS suffixes in true sorted order and induce.
    std::fill(sa.begin(), sa.end(), -1);
    {
        int32_t sum = 0;
        for (int32_t c = 0; c < k; ++c) {
            sum += cnt[c];
            bkt[c] = sum;
        }
    }
    for (int32_t i = n_lms - 1; i >= 0; --i) {
        int32_t pos = lms[lms_rank[i]];
        sa[--bkt[t[pos]]] = pos;
    }
    induce(t, is_s, cnt, bkt, k, sa);
}

std::vector<int32_t>
suffixArray(const uint8_t *data, size_t n)
{
    if (n == 0)
        return {};

    // Shift bytes up by one and append an explicit 0 sentinel; this is
    // the "sentinel strictly smaller than everything" convention.
    std::vector<int32_t> t(n + 1);
    for (size_t i = 0; i < n; ++i)
        t[i] = static_cast<int32_t>(data[i]) + 1;
    t[n] = 0;

    std::vector<int32_t> sa;
    saisCore(t, 257, sa);
    ATC_ASSERT(sa[0] == static_cast<int32_t>(n));
    return {sa.begin() + 1, sa.end()};
}

} // namespace atc::comp
