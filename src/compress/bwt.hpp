/**
 * @file
 * Burrows-Wheeler transform (forward and inverse).
 *
 * Suffix-array based variant: the input is treated as if followed by a
 * unique sentinel smaller than every byte; the sentinel itself is not
 * emitted, its row index (the primary index) is returned instead.
 */

#ifndef ATC_COMPRESS_BWT_HPP_
#define ATC_COMPRESS_BWT_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc::comp {

/** Result of a forward BWT. */
struct BwtResult
{
    /** Transformed bytes, same length as the input. */
    std::vector<uint8_t> data;
    /**
     * Row of the dropped sentinel character, in [1, n] for nonempty
     * input. Required to invert the transform.
     */
    uint32_t primary = 0;
};

/** Forward transform of [data, data+n). */
BwtResult bwtForward(const uint8_t *data, size_t n);

/**
 * Inverse transform.
 *
 * @param data    transformed bytes
 * @param n       length
 * @param primary primary index returned by bwtForward
 * @return the original byte string
 */
std::vector<uint8_t> bwtInverse(const uint8_t *data, size_t n,
                                uint32_t primary);

} // namespace atc::comp

#endif // ATC_COMPRESS_BWT_HPP_
