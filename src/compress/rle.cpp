#include "compress/rle.hpp"

#include <cstring>

#include "util/status.hpp"

namespace atc::comp {

namespace {

/** Append the bijective base-2 numeral for a run of @p run zeros. */
void
emitRun(uint64_t run, std::vector<uint16_t> &out)
{
    // run = sum of digit_i * 2^i with digits in {1 (RUNA), 2 (RUNB)}.
    while (run > 0) {
        if (run & 1) {
            out.push_back(kRunA);
            run = (run - 1) >> 1;
        } else {
            out.push_back(kRunB);
            run = (run - 2) >> 1;
        }
    }
}

} // namespace

std::vector<uint16_t>
rleEncode(const uint8_t *data, size_t n)
{
    std::vector<uint16_t> out;
    out.reserve(n / 2 + 16);
    uint64_t run = 0;
    size_t i = 0;
    while (i < n) {
        if (data[i] == 0) {
            // MTF output is dominated by zero runs; skip over them a
            // word at a time before falling back to the byte tail.
            size_t start = i;
            ++i;
            while (i + 8 <= n) {
                uint64_t w;
                std::memcpy(&w, data + i, 8);
                if (w != 0)
                    break;
                i += 8;
            }
            while (i < n && data[i] == 0)
                ++i;
            run += i - start;
            continue;
        }
        emitRun(run, out);
        run = 0;
        out.push_back(static_cast<uint16_t>(data[i]) + 1);
        ++i;
    }
    emitRun(run, out);
    out.push_back(kEob);
    return out;
}

std::vector<uint8_t>
rleDecode(const std::vector<uint16_t> &symbols)
{
    std::vector<uint8_t> out;
    out.reserve(symbols.size());
    uint64_t run = 0;
    uint64_t weight = 1;
    bool in_run = false;
    bool saw_eob = false;

    auto flush_run = [&]() {
        out.insert(out.end(), run, 0);
        run = 0;
        weight = 1;
        in_run = false;
    };

    for (size_t i = 0; i < symbols.size(); ++i) {
        uint16_t sym = symbols[i];
        ATC_CHECK(!saw_eob, "RLE symbols after EOB");
        if (sym == kRunA || sym == kRunB) {
            run += weight * (sym == kRunA ? 1 : 2);
            weight <<= 1;
            in_run = true;
        } else if (sym == kEob) {
            if (in_run)
                flush_run();
            saw_eob = true;
        } else {
            ATC_CHECK(sym >= 2 && sym <= 256, "invalid RLE symbol");
            if (in_run)
                flush_run();
            out.push_back(static_cast<uint8_t>(sym - 1));
        }
    }
    ATC_CHECK(saw_eob, "RLE stream missing EOB");
    return out;
}

} // namespace atc::comp
