/**
 * @file
 * Zero-run-length recoding (bzip2's RUNA/RUNB scheme).
 *
 * After MTF, zeros dominate. Runs of zeros are rewritten as bijective
 * base-2 numerals over two dedicated symbols; nonzero bytes shift up by
 * one. The resulting symbols feed the entropy coder.
 *
 * Alphabet (width kAlphabet = 258):
 *   0       RUNA (run digit, weight 1)
 *   1       RUNB (run digit, weight 2)
 *   2..256  literal bytes 1..255 (value + 1)
 *   257     EOB (end of block)
 */

#ifndef ATC_COMPRESS_RLE_HPP_
#define ATC_COMPRESS_RLE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc::comp {

/** Symbol values for the zero-run alphabet. */
enum RleSymbol : uint16_t
{
    kRunA = 0,
    kRunB = 1,
    kEob = 257,
};

/** Number of distinct symbols the recoding can produce. */
constexpr int kRleAlphabet = 258;

/**
 * Recode @p n MTF bytes into run-length symbols.
 * The EOB symbol is appended.
 */
std::vector<uint16_t> rleEncode(const uint8_t *data, size_t n);

/**
 * Decode run-length symbols back to MTF bytes.
 * Decoding stops at (and consumes) EOB; trailing symbols are an error.
 *
 * @param symbols encoded stream, must contain exactly one trailing EOB
 * @return the original MTF byte string
 */
std::vector<uint8_t> rleDecode(const std::vector<uint16_t> &symbols);

} // namespace atc::comp

#endif // ATC_COMPRESS_RLE_HPP_
