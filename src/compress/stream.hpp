/**
 * @file
 * Streaming framing on top of block codecs.
 *
 * Two frame formats share one stream grammar:
 *
 * - Legacy (container v1/v2): each frame is `varint(n + 1)` followed by
 *   the codec's representation of an n-byte block. Readers must decode
 *   a frame to find the next one.
 * - Seekable (container v3): each frame header additionally records the
 *   compressed byte length — `varint(n + 1)` `varint(c)` followed by
 *   exactly c codec bytes — so a scanner can walk frame boundaries
 *   without decoding, and workers can decode frames independently. The
 *   stream ends with an optional frame index (one `(raw, compressed)`
 *   varint pair per frame) that readers validate against the frames
 *   actually seen.
 *
 * Both formats terminate with a single 0 varint. The terminator lets
 * compressed streams be embedded in larger files; a clean end-of-source
 * is also accepted.
 */

#ifndef ATC_COMPRESS_STREAM_HPP_
#define ATC_COMPRESS_STREAM_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "compress/codec.hpp"
#include "util/bytestream.hpp"
#include "util/crc32.hpp"

namespace atc::comp {

// kDefaultBlockSize lives in codec.hpp, next to the spec machinery.

/** Stream frame format (see the file comment). */
enum class FrameFormat : uint8_t
{
    Legacy = 0,   ///< v1/v2: decompressed block length only
    Seekable = 1, ///< v3: + compressed length and end-of-stream index
};

/** One frame's sizes, as recorded in a Seekable stream's index. */
struct FrameIndexEntry
{
    uint64_t raw_size = 0;  ///< decompressed block length
    uint64_t comp_size = 0; ///< codec bytes in the stream
};

/**
 * Compress one block into a self-contained frame (header + payload).
 * The single serialization point for frames: the serial compressor and
 * the parallel writer both call it, which is what keeps containers
 * byte-identical across thread counts.
 * @param entry receives the frame's index entry when non-null
 */
std::vector<uint8_t> encodeFrame(const Codec &codec, const uint8_t *data,
                                 size_t n, FrameFormat format,
                                 FrameIndexEntry *entry = nullptr);

/**
 * Emit the end-of-stream terminator and — Seekable only — the frame
 * index for @p index.
 */
void writeStreamEnd(util::ByteSink &sink, FrameFormat format,
                    const std::vector<FrameIndexEntry> &index);

/** Outcome of reading one Seekable frame header. */
enum class FrameScan
{
    Frame,      ///< header parsed; payload follows
    Terminator, ///< 0 varint seen; index comes next
    EndOfData,  ///< clean end of the source before any header byte
};

/**
 * Read the next Seekable frame header from @p src.
 * @param entry receives the frame sizes when the result is Frame
 * @throws util::Error on corrupt or truncated headers
 */
FrameScan readSeekableFrameHeader(util::ByteSource &src,
                                  FrameIndexEntry &entry);

/**
 * Decode one Seekable frame payload, enforcing that the codec consumes
 * exactly @p comp_size bytes and produces exactly @p raw_size bytes.
 * The single validation point for frames: the serial decompressor and
 * the parallel reader's pooled decode tasks both call it, so serial
 * and parallel readers reject identical corruption.
 * @throws util::Error on any disagreement with the declared sizes
 */
void decodeSeekableFrame(const Codec &codec, const uint8_t *comp,
                         size_t comp_size, size_t raw_size,
                         std::vector<uint8_t> &out);

/**
 * Read a Seekable stream's frame index (positioned just after the
 * terminator) and validate it against the frames actually decoded.
 * @throws util::Error on a truncated index or any disagreement with
 *         @p seen — the corruption probe for resync-style damage
 */
void readFrameIndex(util::ByteSource &src,
                    const std::vector<FrameIndexEntry> &seen);

/**
 * The complete layout of one Seekable stream, built by scanning its
 * frame headers without decoding any payload. This is what random
 * access keys off: raw_starts supports a binary search from a
 * decompressed byte offset to the frame containing it, comp_starts
 * gives the in-stream byte position to skip() to.
 */
struct StreamLayout
{
    /** Per-frame sizes, identical to the end-of-stream index. */
    std::vector<FrameIndexEntry> frames;
    /** Cumulative decompressed offsets; frames.size() + 1 entries,
     *  raw_starts[f] = first decompressed byte served by frame f. */
    std::vector<uint64_t> raw_starts;
    /** In-stream byte offset of each frame's *header*;
     *  frames.size() + 1 entries (last = offset of the terminator). */
    std::vector<uint64_t> comp_starts;
    /** True when the terminator + frame index were present (a clean
     *  end-of-data before them leaves this false — a truncated but
     *  tolerated stream; readers report the shortfall downstream). */
    bool indexed = false;
    /** CRC-32 trailer, valid when @ref has_crc. */
    uint32_t crc = 0;
    bool has_crc = false;

    /** @return total decompressed bytes across all frames. */
    uint64_t rawTotal() const { return raw_starts.back(); }

    /**
     * @return the frame whose decompressed extent contains @p raw_off.
     * @p raw_off must be < rawTotal().
     */
    size_t frameContaining(uint64_t raw_off) const;
};

/**
 * Scan a Seekable stream's frame headers from @p src (positioned at
 * the first frame), skipping every payload, and validate the stored
 * end-of-stream index against the headers actually seen. When
 * @p crc_trailer is set the trailing CRC-32 is captured too.
 * @throws util::Error on corrupt headers, a truncated payload or any
 *         header/index disagreement
 */
StreamLayout scanSeekableStream(util::ByteSource &src, bool crc_trailer);

/**
 * Read frame @p f's compressed payload from @p src — which must be
 * positioned at that frame's header (layout.comp_starts[f]) — into
 * @p comp, re-validating the header against the scanned @p layout.
 * The one frame-fetch used by every consumer of a StreamLayout (the
 * cursor's mid-stream pipelines and the parallel scanner), so they
 * all reject a stream that changed since the scan identically.
 * @throws util::Error on truncation or any header/layout disagreement
 */
void readIndexedFramePayload(util::ByteSource &src,
                             const StreamLayout &layout, size_t f,
                             std::vector<uint8_t> &comp);

/**
 * One frame's compressed payload, zero-copy when the source can serve
 * it. `data` either borrows the source's backing storage (mmap or
 * memory — `owned` stays empty, `keepalive` pins a mapping) or points
 * into `owned` after a copy through read(). Movable: moving relocates
 * the vector header, not its heap block, so `data` stays valid —
 * pooled decode tasks capture a FramePayload by value.
 */
struct FramePayload
{
    const uint8_t *data = nullptr;
    size_t size = 0;
    std::vector<uint8_t> owned;
    std::shared_ptr<const void> keepalive;
};

/**
 * readIndexedFramePayload without the copy when @p src supports
 * view(): validates the header identically, then borrows the payload
 * span in place (falling back to an owned read). The fetch used by the
 * pooled decoders — the cursor's frame pipeline and the parallel
 * scanner — so mapped containers decode straight off the page cache.
 * @throws util::Error on truncation or any header/layout disagreement
 */
FramePayload fetchIndexedFramePayload(util::ByteSource &src,
                                      const StreamLayout &layout,
                                      size_t f);

/**
 * Read and decode frame @p f of a scanned Seekable stream in one step
 * (readIndexedFramePayload + decodeSeekableFrame). @p src must be
 * positioned at the frame's header (layout.comp_starts[f]) and is left
 * just past the frame. This is the serial frame-decode entry point the
 * random-access paths funnel through — cursor seeks and the shared
 * decoded-block cache fill — so every consumer rejects a stream that
 * changed since the scan identically. (Pooled decoders split the two
 * steps: payloads are read serially, decodeSeekableFrame runs on the
 * pool.)
 */
std::vector<uint8_t> decodeIndexedFrame(const Codec &codec,
                                        util::ByteSource &src,
                                        const StreamLayout &layout,
                                        size_t f);

/** Accumulates bytes and emits codec frames into a sink. */
class StreamCompressor : public util::ByteSink
{
  public:
    /**
     * @param codec      block codec (must outlive the compressor)
     * @param sink       destination (must outlive the compressor)
     * @param block_size bytes per block; larger blocks compress better
     * @param format     frame format (Legacy matches container v1/v2)
     */
    StreamCompressor(const Codec &codec, util::ByteSink &sink,
                     size_t block_size = kDefaultBlockSize,
                     FrameFormat format = FrameFormat::Legacy);

    ~StreamCompressor() override;

    /** Buffer input, emitting a frame whenever a block fills. */
    void write(const uint8_t *data, size_t n) override;

    /** Emit the final partial block, the end marker and the index. */
    void finish();

    /** @return raw bytes consumed so far. */
    uint64_t rawBytes() const { return raw_bytes_; }

    /** @return CRC-32 of the raw bytes consumed so far. */
    uint32_t crc() const { return crc_.value(); }

  private:
    void emitBlock();

    const Codec &codec_;
    util::ByteSink &sink_;
    size_t block_size_;
    FrameFormat format_;
    std::vector<uint8_t> buffer_;
    std::vector<FrameIndexEntry> index_;
    uint64_t raw_bytes_ = 0;
    util::Crc32 crc_;
    bool finished_ = false;
};

/** Reads codec frames and serves decompressed bytes. */
class StreamDecompressor : public util::ByteSource
{
  public:
    /**
     * @param codec  block codec used to write the stream
     * @param src    source positioned at the first frame
     * @param format frame format the stream was written with
     */
    StreamDecompressor(const Codec &codec, util::ByteSource &src,
                       FrameFormat format = FrameFormat::Legacy);

    /** Serve decompressed bytes; 0 at end of stream. */
    size_t read(uint8_t *data, size_t n) override;

    /** @return CRC-32 of every decompressed block produced so far. */
    uint32_t crc() const { return crc_.value(); }

  private:
    bool refill();
    bool refillSeekable();

    const Codec &codec_;
    util::ByteSource &src_;
    FrameFormat format_;
    std::vector<uint8_t> block_;
    std::vector<uint8_t> comp_buf_;
    std::vector<FrameIndexEntry> seen_;
    size_t pos_ = 0;
    util::Crc32 crc_;
    bool done_ = false;
};

/** One-shot convenience: compress a whole buffer into a vector. */
std::vector<uint8_t> compressAll(const Codec &codec,
                                 const uint8_t *data, size_t n,
                                 size_t block_size = kDefaultBlockSize,
                                 FrameFormat format = FrameFormat::Legacy);

/** One-shot convenience: decompress a whole stream into a vector. */
std::vector<uint8_t> decompressAll(const Codec &codec,
                                   const uint8_t *data, size_t n,
                                   FrameFormat format = FrameFormat::Legacy);

} // namespace atc::comp

#endif // ATC_COMPRESS_STREAM_HPP_
