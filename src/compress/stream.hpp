/**
 * @file
 * Streaming framing on top of block codecs.
 *
 * A compressed stream is a sequence of frames, each `varint(n + 1)`
 * followed by the codec's representation of an n-byte block, terminated
 * by a single 0 varint. The terminator lets compressed streams be
 * embedded in larger files; a clean end-of-source is also accepted.
 */

#ifndef ATC_COMPRESS_STREAM_HPP_
#define ATC_COMPRESS_STREAM_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/codec.hpp"
#include "util/bytestream.hpp"
#include "util/crc32.hpp"

namespace atc::comp {

// kDefaultBlockSize lives in codec.hpp, next to the spec machinery.

/** Accumulates bytes and emits codec frames into a sink. */
class StreamCompressor : public util::ByteSink
{
  public:
    /**
     * @param codec      block codec (must outlive the compressor)
     * @param sink       destination (must outlive the compressor)
     * @param block_size bytes per block; larger blocks compress better
     */
    StreamCompressor(const Codec &codec, util::ByteSink &sink,
                     size_t block_size = kDefaultBlockSize);

    ~StreamCompressor() override;

    /** Buffer input, emitting a frame whenever a block fills. */
    void write(const uint8_t *data, size_t n) override;

    /** Emit the final partial block and the end-of-stream marker. */
    void finish();

    /** @return raw bytes consumed so far. */
    uint64_t rawBytes() const { return raw_bytes_; }

    /** @return CRC-32 of the raw bytes consumed so far. */
    uint32_t crc() const { return crc_.value(); }

  private:
    void emitBlock();

    const Codec &codec_;
    util::ByteSink &sink_;
    size_t block_size_;
    std::vector<uint8_t> buffer_;
    uint64_t raw_bytes_ = 0;
    util::Crc32 crc_;
    bool finished_ = false;
};

/** Reads codec frames and serves decompressed bytes. */
class StreamDecompressor : public util::ByteSource
{
  public:
    /**
     * @param codec block codec used to write the stream
     * @param src   source positioned at the first frame
     */
    StreamDecompressor(const Codec &codec, util::ByteSource &src);

    /** Serve decompressed bytes; 0 at end of stream. */
    size_t read(uint8_t *data, size_t n) override;

    /** @return CRC-32 of every decompressed block produced so far. */
    uint32_t crc() const { return crc_.value(); }

  private:
    bool refill();

    const Codec &codec_;
    util::ByteSource &src_;
    std::vector<uint8_t> block_;
    size_t pos_ = 0;
    util::Crc32 crc_;
    bool done_ = false;
};

/** One-shot convenience: compress a whole buffer into a vector. */
std::vector<uint8_t> compressAll(const Codec &codec,
                                 const uint8_t *data, size_t n,
                                 size_t block_size = kDefaultBlockSize);

/** One-shot convenience: decompress a whole stream into a vector. */
std::vector<uint8_t> decompressAll(const Codec &codec,
                                   const uint8_t *data, size_t n);

} // namespace atc::comp

#endif // ATC_COMPRESS_STREAM_HPP_
