/**
 * @file
 * Block codec interface, parameterized codec specs, and the codec
 * registry.
 *
 * The original ATC tool delegated byte-level compression to an external
 * command ("bzip2 -c"); this library replaces that seam with a Codec
 * interface and a factory registry, so chunk compression stays pluggable
 * without forking processes and without touching core code to add a
 * back end.
 *
 * Codecs are addressed by *specs*: `name[:key=value[,key=value]...]`,
 * e.g. "bwc", "lzh", "store", "bwc:block=900k". The spec is serialized
 * into the container's INFO preamble, so a reader reconstructs the
 * exact codec configuration the writer used. Size-valued parameters
 * accept k/m/g suffixes (binary: KiB/MiB/GiB).
 */

#ifndef ATC_COMPRESS_CODEC_HPP_
#define ATC_COMPRESS_CODEC_HPP_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/bytestream.hpp"
#include "util/status.hpp"

namespace atc::comp {

/** Default framing block size: 1 MiB, the scale of a bzip2 -9 block. */
constexpr size_t kDefaultBlockSize = 1u << 20;

/**
 * A whole-block byte compressor.
 *
 * compressBlock writes a self-contained representation of one block;
 * decompressBlock reads exactly one such representation back. Framing
 * (block sizes, end of stream) is the caller's job — see stream.hpp.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** @return registry name of this codec ("bwc", "lzh", "store"). */
    virtual std::string name() const = 0;

    /**
     * Compress one block.
     * @param data block contents
     * @param n    block size in bytes
     * @param out  sink receiving the compressed representation
     */
    virtual void compressBlock(const uint8_t *data, size_t n,
                               util::ByteSink &out) const = 0;

    /**
     * Decompress one block previously written by compressBlock.
     * @param in       source positioned at the block representation
     * @param raw_size original block size (from the stream framing)
     * @param out      receives exactly raw_size bytes
     */
    virtual void decompressBlock(util::ByteSource &in, size_t raw_size,
                                 std::vector<uint8_t> &out) const = 0;
};

/**
 * A parsed codec spec: a registry name plus key=value parameters.
 *
 * Grammar: `name[:key=value[,key=value]...]` with nonempty name, keys
 * and values; duplicate keys are rejected. toString() produces the
 * canonical form (parameters in parse order), which is what containers
 * persist.
 */
struct CodecSpec
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;

    /** Parse @p spec; returns an error status on malformed input. */
    static util::StatusOr<CodecSpec> parse(const std::string &spec);

    /** @return the canonical spec string. */
    std::string toString() const;

    /** @return the value of @p key, or nullptr if absent. */
    const std::string *find(const std::string &key) const;

    /**
     * Parse parameter @p key as a byte size (optional k/m/g suffix,
     * binary multipliers). @return @p fallback when the key is absent,
     * an error status when present but malformed or zero.
     */
    util::StatusOr<size_t> sizeParam(const std::string &key,
                                     size_t fallback) const;
};

/** A codec instance constructed from a spec, plus framing knobs. */
struct ConfiguredCodec
{
    /** The codec; shared so stateless codecs can be cached. */
    std::shared_ptr<const Codec> codec;
    /** Framing block size from a `block=` parameter; 0 = unspecified. */
    size_t block_size = 0;
    /** Canonical spec string (what the INFO preamble records). */
    std::string spec;

    /** @return block_size, or @p fallback if the spec set none. */
    size_t
    blockOr(size_t fallback) const
    {
        return block_size != 0 ? block_size : fallback;
    }
};

/**
 * Factory registry mapping codec names to constructors.
 *
 * The built-in codecs ("bwc", "lzh", "store") are pre-registered;
 * add() extends the registry at runtime without touching core code.
 */
class CodecRegistry
{
  public:
    /**
     * Build a codec from the (name-stripped) parameters of a spec.
     * The common `block=` parameter is consumed by the registry before
     * the factory runs; factories must reject parameters they do not
     * understand.
     */
    using Factory = std::function<
        util::StatusOr<std::shared_ptr<const Codec>>(const CodecSpec &)>;

    /** @return the process-wide registry. */
    static CodecRegistry &instance();

    /** Register @p factory under @p name (replaces an existing entry). */
    void add(const std::string &name, Factory factory);

    /** @return true if @p name is registered. */
    bool has(const std::string &name) const;

    /** @return all registered names, sorted. */
    std::vector<std::string> names() const;

    /** Parse @p spec and construct the configured codec. */
    util::StatusOr<ConfiguredCodec> create(const std::string &spec) const;

    /** Construct the configured codec for an already-parsed spec. */
    util::StatusOr<ConfiguredCodec> create(const CodecSpec &spec) const;

  private:
    CodecRegistry();

    /** Guards factories_: add() may race with create()/has()/names(). */
    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/**
 * Convenience: build a codec from @p spec via the registry.
 * @throws util::Error on malformed specs or unknown codecs.
 */
ConfiguredCodec makeCodec(const std::string &spec);

/**
 * Look up a shared default-configured codec by plain name.
 * Kept for call sites that only need an unparameterized instance
 * (benches, one-shot helpers); new code should prefer makeCodec().
 * @throws util::Error for unknown names.
 */
const Codec &codecByName(const std::string &name);

/** "store": the identity codec (useful for tests and calibration). */
class StoreCodec : public Codec
{
  public:
    std::string name() const override { return "store"; }
    void compressBlock(const uint8_t *data, size_t n,
                       util::ByteSink &out) const override;
    void decompressBlock(util::ByteSource &in, size_t raw_size,
                         std::vector<uint8_t> &out) const override;
};

} // namespace atc::comp

#endif // ATC_COMPRESS_CODEC_HPP_
