/**
 * @file
 * Block codec interface and registry.
 *
 * The original ATC tool delegated byte-level compression to an external
 * command ("bzip2 -c"); this library replaces that seam with a Codec
 * interface and named registry ("bwc", "lzh", "store"), so chunk
 * compression stays pluggable without forking processes.
 */

#ifndef ATC_COMPRESS_CODEC_HPP_
#define ATC_COMPRESS_CODEC_HPP_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bytestream.hpp"

namespace atc::comp {

/**
 * A whole-block byte compressor.
 *
 * compressBlock writes a self-contained representation of one block;
 * decompressBlock reads exactly one such representation back. Framing
 * (block sizes, end of stream) is the caller's job — see stream.hpp.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** @return registry name of this codec ("bwc", "lzh", "store"). */
    virtual std::string name() const = 0;

    /**
     * Compress one block.
     * @param data block contents
     * @param n    block size in bytes
     * @param out  sink receiving the compressed representation
     */
    virtual void compressBlock(const uint8_t *data, size_t n,
                               util::ByteSink &out) const = 0;

    /**
     * Decompress one block previously written by compressBlock.
     * @param in       source positioned at the block representation
     * @param raw_size original block size (from the stream framing)
     * @param out      receives exactly raw_size bytes
     */
    virtual void decompressBlock(util::ByteSource &in, size_t raw_size,
                                 std::vector<uint8_t> &out) const = 0;
};

/**
 * Look up a codec by name.
 * @throws util::Error for unknown names.
 */
const Codec &codecByName(const std::string &name);

/** "store": the identity codec (useful for tests and calibration). */
class StoreCodec : public Codec
{
  public:
    std::string name() const override { return "store"; }
    void compressBlock(const uint8_t *data, size_t n,
                       util::ByteSink &out) const override;
    void decompressBlock(util::ByteSource &in, size_t raw_size,
                         std::vector<uint8_t> &out) const override;
};

} // namespace atc::comp

#endif // ATC_COMPRESS_CODEC_HPP_
