#include "compress/stream.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace atc::comp {

namespace {

// Whole-frame accounting (frames/bytes counters + per-frame latency
// histogram), one set per direction. The per-stage split (BWT vs
// MTF+RLE vs entropy) lives inside BwcCodec itself.
struct FrameMetrics {
    obs::Counter &frames;
    obs::Counter &raw_bytes;
    obs::Counter &comp_bytes;
    obs::Histogram &frame_us;
};

FrameMetrics &
encodeFrameMetrics()
{
    auto &r = obs::Registry::global();
    static FrameMetrics m{
        r.counter("codec.encode.frames"),
        r.counter("codec.encode.raw_bytes"),
        r.counter("codec.encode.comp_bytes"),
        r.histogram("codec.encode.frame_us"),
    };
    return m;
}

FrameMetrics &
decodeFrameMetrics()
{
    auto &r = obs::Registry::global();
    static FrameMetrics m{
        r.counter("codec.decode.frames"),
        r.counter("codec.decode.raw_bytes"),
        r.counter("codec.decode.comp_bytes"),
        r.histogram("codec.decode.frame_us"),
    };
    return m;
}

/** Largest credible decompressed frame (far above any block size). */
constexpr uint64_t kMaxFrameRawSize = uint64_t(1) << 30;

/**
 * Sanity bound on a frame's declared sizes: generous (codecs may
 * expand incompressible blocks) but tight enough that a corrupt varint
 * cannot drive an absurd allocation — and, with raw_size capped first,
 * the 4x product cannot wrap.
 */
bool
plausibleFrameSizes(uint64_t raw_size, uint64_t comp_size)
{
    return raw_size <= kMaxFrameRawSize &&
           comp_size <= 4 * raw_size + (1u << 20);
}

} // namespace

std::vector<uint8_t>
encodeFrame(const Codec &codec, const uint8_t *data, size_t n,
            FrameFormat format, FrameIndexEntry *entry)
{
    FrameMetrics &m = encodeFrameMetrics();
    obs::LatencyTimer frame_t(m.frame_us);
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    if (format == FrameFormat::Legacy) {
        util::writeVarint(sink, n + 1);
        size_t header = out.size();
        codec.compressBlock(data, n, sink);
        if (entry != nullptr)
            *entry = {n, out.size() - header};
        frame_t.stop();
        m.frames.inc();
        m.raw_bytes.add(static_cast<int64_t>(n));
        m.comp_bytes.add(static_cast<int64_t>(out.size() - header));
        return out;
    }
    // Seekable: the compressed length goes into the header, so the
    // payload is produced first.
    std::vector<uint8_t> payload;
    util::VectorSink payload_sink(payload);
    codec.compressBlock(data, n, payload_sink);
    util::writeVarint(sink, n + 1);
    util::writeVarint(sink, payload.size());
    sink.write(payload.data(), payload.size());
    if (entry != nullptr)
        *entry = {n, payload.size()};
    frame_t.stop();
    m.frames.inc();
    m.raw_bytes.add(static_cast<int64_t>(n));
    m.comp_bytes.add(static_cast<int64_t>(payload.size()));
    return out;
}

void
writeStreamEnd(util::ByteSink &sink, FrameFormat format,
               const std::vector<FrameIndexEntry> &index)
{
    util::writeVarint(sink, 0);
    if (format == FrameFormat::Legacy)
        return;
    sink.writeByte(1); // index present
    util::writeVarint(sink, index.size());
    for (const FrameIndexEntry &e : index) {
        util::writeVarint(sink, e.raw_size);
        util::writeVarint(sink, e.comp_size);
    }
}

FrameScan
readSeekableFrameHeader(util::ByteSource &src, FrameIndexEntry &entry)
{
    uint8_t first;
    if (src.read(&first, 1) == 0)
        return FrameScan::EndOfData;
    uint64_t header = first & 0x7F;
    int shift = 7;
    while (first & 0x80) {
        src.readExact(&first, 1);
        header |= static_cast<uint64_t>(first & 0x7F) << shift;
        shift += 7;
        ATC_CHECK(shift <= 63, "corrupt frame header");
    }
    if (header == 0)
        return FrameScan::Terminator;
    entry.raw_size = header - 1;
    entry.comp_size = util::readVarint(src);
    ATC_CHECK(plausibleFrameSizes(entry.raw_size, entry.comp_size),
              "corrupt frame header (implausible frame size)");
    return FrameScan::Frame;
}

void
decodeSeekableFrame(const Codec &codec, const uint8_t *comp,
                    size_t comp_size, size_t raw_size,
                    std::vector<uint8_t> &out)
{
    FrameMetrics &m = decodeFrameMetrics();
    obs::LatencyTimer frame_t(m.frame_us);
    // Decode from the declared extent only: a codec trying to consume
    // past it sees end-of-source, and leftover bytes are a mismatch.
    util::MemorySource frame_src(comp, comp_size);
    try {
        codec.decompressBlock(frame_src, raw_size, out);
    } catch (const util::Error &) {
        if (frame_src.remaining() == 0)
            util::raise("frame overruns its declared compressed length "
                        "(corrupt container)");
        throw;
    }
    ATC_CHECK(out.size() == raw_size, "frame size mismatch");
    ATC_CHECK(frame_src.remaining() == 0,
              "frame compressed-length mismatch (corrupt container)");
    frame_t.stop();
    m.frames.inc();
    m.raw_bytes.add(static_cast<int64_t>(raw_size));
    m.comp_bytes.add(static_cast<int64_t>(comp_size));
}

void
readFrameIndex(util::ByteSource &src,
               const std::vector<FrameIndexEntry> &seen)
{
    uint8_t flag;
    uint64_t count = 0;
    std::vector<FrameIndexEntry> stored;
    try {
        src.readExact(&flag, 1);
        ATC_CHECK(flag <= 1, "corrupt frame index marker");
        if (flag == 0)
            return; // index omitted by the writer
        count = util::readVarint(src);
        ATC_CHECK(count == seen.size(),
                  "frame index disagrees with decoded frame count "
                  "(corrupt container)");
        stored.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
            FrameIndexEntry e;
            e.raw_size = util::readVarint(src);
            e.comp_size = util::readVarint(src);
            stored.push_back(e);
        }
    } catch (const util::Error &e) {
        if (std::string(e.what()).find("truncated") != std::string::npos)
            util::raise("chunk frame index truncated");
        throw;
    }
    for (uint64_t i = 0; i < count; ++i)
        ATC_CHECK(stored[i].raw_size == seen[i].raw_size &&
                      stored[i].comp_size == seen[i].comp_size,
                  "frame index entry disagrees with decoded frame " +
                      std::to_string(i) + " (corrupt container)");
}

size_t
StreamLayout::frameContaining(uint64_t raw_off) const
{
    ATC_ASSERT(raw_off < rawTotal());
    // upper_bound over the cumulative starts: the first start > raw_off
    // is the *next* frame's.
    auto it = std::upper_bound(raw_starts.begin(), raw_starts.end(),
                               raw_off);
    return static_cast<size_t>(it - raw_starts.begin()) - 1;
}

StreamLayout
scanSeekableStream(util::ByteSource &src, bool crc_trailer)
{
    StreamLayout layout;
    layout.raw_starts.push_back(0);
    layout.comp_starts.push_back(0);
    uint64_t raw = 0, pos = 0;
    for (;;) {
        FrameIndexEntry entry;
        FrameScan scan = readSeekableFrameHeader(src, entry);
        if (scan == FrameScan::Terminator) {
            readFrameIndex(src, layout.frames);
            layout.indexed = true;
            if (crc_trailer) {
                layout.crc = util::readLE<uint32_t>(src);
                layout.has_crc = true;
            }
            break;
        }
        if (scan == FrameScan::EndOfData)
            break; // tolerated, like the decoders; shortfall reported
                   // against the INFO count downstream
        src.skip(entry.comp_size); // payload untouched — this is a scan
        pos += util::varintLen(entry.raw_size + 1) +
               util::varintLen(entry.comp_size) + entry.comp_size;
        raw += entry.raw_size;
        layout.frames.push_back(entry);
        layout.raw_starts.push_back(raw);
        layout.comp_starts.push_back(pos);
    }
    return layout;
}

namespace {

/**
 * Read frame @p f's header and validate it against the scanned layout
 * — the shared front half of the indexed-frame fetches.
 */
void
checkIndexedFrameHeader(util::ByteSource &src, const StreamLayout &layout,
                        size_t f, FrameIndexEntry &entry)
{
    ATC_ASSERT(f < layout.frames.size());
    FrameScan scan = readSeekableFrameHeader(src, entry);
    ATC_CHECK(scan == FrameScan::Frame &&
                  entry.raw_size == layout.frames[f].raw_size &&
                  entry.comp_size == layout.frames[f].comp_size,
              "frame header disagrees with the scanned index "
              "(container modified while indexed?)");
}

} // namespace

void
readIndexedFramePayload(util::ByteSource &src, const StreamLayout &layout,
                        size_t f, std::vector<uint8_t> &comp)
{
    FrameIndexEntry entry;
    checkIndexedFrameHeader(src, layout, f, entry);
    comp.resize(static_cast<size_t>(entry.comp_size));
    src.readExact(comp.data(), comp.size());
}

FramePayload
fetchIndexedFramePayload(util::ByteSource &src, const StreamLayout &layout,
                         size_t f)
{
    FrameIndexEntry entry;
    checkIndexedFrameHeader(src, layout, f, entry);
    FramePayload p;
    p.size = static_cast<size_t>(entry.comp_size);
    if (const uint8_t *span = src.view(p.size)) {
        p.data = span;
        p.keepalive = src.viewKeepalive();
    } else {
        p.owned.resize(p.size);
        src.readExact(p.owned.data(), p.size);
        p.data = p.owned.data();
    }
    return p;
}

std::vector<uint8_t>
decodeIndexedFrame(const Codec &codec, util::ByteSource &src,
                   const StreamLayout &layout, size_t f)
{
    std::vector<uint8_t> out;
    FramePayload p = fetchIndexedFramePayload(src, layout, f);
    decodeSeekableFrame(codec, p.data, p.size,
                        static_cast<size_t>(layout.frames[f].raw_size),
                        out);
    return out;
}

StreamCompressor::StreamCompressor(const Codec &codec, util::ByteSink &sink,
                                   size_t block_size, FrameFormat format)
    : codec_(codec), sink_(sink), block_size_(block_size), format_(format)
{
    ATC_ASSERT(block_size_ > 0);
    buffer_.reserve(block_size_);
}

StreamCompressor::~StreamCompressor()
{
    // finish() is the caller's job (it can throw); destructor tolerates
    // abandoned streams.
}

void
StreamCompressor::write(const uint8_t *data, size_t n)
{
    ATC_ASSERT(!finished_);
    raw_bytes_ += n;
    crc_.update(data, n);
    while (n > 0) {
        size_t room = block_size_ - buffer_.size();
        size_t take = n < room ? n : room;
        buffer_.insert(buffer_.end(), data, data + take);
        data += take;
        n -= take;
        if (buffer_.size() == block_size_)
            emitBlock();
    }
}

void
StreamCompressor::emitBlock()
{
    FrameMetrics &m = encodeFrameMetrics();
    obs::LatencyTimer frame_t(m.frame_us);
    if (format_ == FrameFormat::Legacy) {
        // Direct write — no frame-sized staging buffer on the hot
        // path. (comp_bytes is not tracked here: the codec writes
        // straight into the sink, which need not be seekable.)
        util::writeVarint(sink_, buffer_.size() + 1);
        codec_.compressBlock(buffer_.data(), buffer_.size(), sink_);
    } else {
        // Stage only the payload (its length goes in the header), then
        // write header + payload straight to the sink — same bytes as
        // encodeFrame without the second frame-sized copy. The parallel
        // writer uses encodeFrame because its pooled tasks must return
        // self-contained frames.
        std::vector<uint8_t> payload;
        util::VectorSink payload_sink(payload);
        codec_.compressBlock(buffer_.data(), buffer_.size(),
                             payload_sink);
        util::writeVarint(sink_, buffer_.size() + 1);
        util::writeVarint(sink_, payload.size());
        sink_.write(payload.data(), payload.size());
        index_.push_back({buffer_.size(), payload.size()});
        m.comp_bytes.add(static_cast<int64_t>(payload.size()));
    }
    frame_t.stop();
    m.frames.inc();
    m.raw_bytes.add(static_cast<int64_t>(buffer_.size()));
    buffer_.clear();
}

void
StreamCompressor::finish()
{
    if (finished_)
        return;
    if (!buffer_.empty())
        emitBlock();
    writeStreamEnd(sink_, format_, index_);
    finished_ = true;
}

StreamDecompressor::StreamDecompressor(const Codec &codec,
                                       util::ByteSource &src,
                                       FrameFormat format)
    : codec_(codec), src_(src), format_(format)
{
}

bool
StreamDecompressor::refillSeekable()
{
    FrameIndexEntry entry;
    switch (readSeekableFrameHeader(src_, entry)) {
    case FrameScan::EndOfData:
        // Clean end-of-source without terminator: accepted, like the
        // legacy format (no index to validate in that case).
        done_ = true;
        return false;
    case FrameScan::Terminator:
        readFrameIndex(src_, seen_);
        done_ = true;
        return false;
    case FrameScan::Frame:
        break;
    }

    size_t comp_size = static_cast<size_t>(entry.comp_size);
    if (const uint8_t *span = src_.view(comp_size)) {
        // Zero-copy: decode straight from the source's storage (mmap
        // page cache or a memory chunk); the source outlives this call.
        decodeSeekableFrame(codec_, span, comp_size,
                            static_cast<size_t>(entry.raw_size), block_);
    } else {
        comp_buf_.resize(comp_size);
        src_.readExact(comp_buf_.data(), comp_buf_.size());
        decodeSeekableFrame(codec_, comp_buf_.data(), comp_buf_.size(),
                            static_cast<size_t>(entry.raw_size), block_);
    }
    seen_.push_back(entry);
    crc_.update(block_.data(), block_.size());
    pos_ = 0;
    return true;
}

bool
StreamDecompressor::refill()
{
    if (done_)
        return false;
    if (format_ == FrameFormat::Seekable)
        return refillSeekable();

    // Read the frame header; a clean EOF also terminates the stream.
    uint8_t first;
    if (src_.read(&first, 1) == 0) {
        done_ = true;
        return false;
    }
    uint64_t header = first & 0x7F;
    int shift = 7;
    while (first & 0x80) {
        src_.readExact(&first, 1);
        header |= static_cast<uint64_t>(first & 0x7F) << shift;
        shift += 7;
        ATC_CHECK(shift <= 63, "corrupt frame header");
    }
    if (header == 0) {
        done_ = true;
        return false;
    }

    size_t raw_size = static_cast<size_t>(header - 1);
    FrameMetrics &m = decodeFrameMetrics();
    {
        // Legacy frames carry no compressed length, so only frames,
        // raw bytes, and latency are tracked on this path.
        obs::LatencyTimer frame_t(m.frame_us);
        codec_.decompressBlock(src_, raw_size, block_);
    }
    m.frames.inc();
    m.raw_bytes.add(static_cast<int64_t>(raw_size));
    ATC_CHECK(block_.size() == raw_size, "frame size mismatch");
    crc_.update(block_.data(), block_.size());
    pos_ = 0;
    return true;
}

size_t
StreamDecompressor::read(uint8_t *data, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (pos_ == block_.size()) {
            if (!refill())
                break;
            if (block_.empty())
                continue;
        }
        size_t avail = block_.size() - pos_;
        size_t take = (n - got) < avail ? (n - got) : avail;
        std::memcpy(data + got, block_.data() + pos_, take);
        got += take;
        pos_ += take;
    }
    return got;
}

std::vector<uint8_t>
compressAll(const Codec &codec, const uint8_t *data, size_t n,
            size_t block_size, FrameFormat format)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    StreamCompressor sc(codec, sink, block_size, format);
    sc.write(data, n);
    sc.finish();
    return out;
}

std::vector<uint8_t>
decompressAll(const Codec &codec, const uint8_t *data, size_t n,
              FrameFormat format)
{
    util::MemorySource src(data, n);
    StreamDecompressor sd(codec, src, format);
    std::vector<uint8_t> out;
    uint8_t buf[64 * 1024];
    for (;;) {
        size_t got = sd.read(buf, sizeof(buf));
        if (got == 0)
            break;
        out.insert(out.end(), buf, buf + got);
    }
    return out;
}

} // namespace atc::comp
