#include "compress/stream.hpp"

#include <cstring>

#include "util/status.hpp"

namespace atc::comp {

StreamCompressor::StreamCompressor(const Codec &codec, util::ByteSink &sink,
                                   size_t block_size)
    : codec_(codec), sink_(sink), block_size_(block_size)
{
    ATC_ASSERT(block_size_ > 0);
    buffer_.reserve(block_size_);
}

StreamCompressor::~StreamCompressor()
{
    // finish() is the caller's job (it can throw); destructor tolerates
    // abandoned streams.
}

void
StreamCompressor::write(const uint8_t *data, size_t n)
{
    ATC_ASSERT(!finished_);
    raw_bytes_ += n;
    crc_.update(data, n);
    while (n > 0) {
        size_t room = block_size_ - buffer_.size();
        size_t take = n < room ? n : room;
        buffer_.insert(buffer_.end(), data, data + take);
        data += take;
        n -= take;
        if (buffer_.size() == block_size_)
            emitBlock();
    }
}

void
StreamCompressor::emitBlock()
{
    util::writeVarint(sink_, buffer_.size() + 1);
    codec_.compressBlock(buffer_.data(), buffer_.size(), sink_);
    buffer_.clear();
}

void
StreamCompressor::finish()
{
    if (finished_)
        return;
    if (!buffer_.empty())
        emitBlock();
    util::writeVarint(sink_, 0);
    finished_ = true;
}

StreamDecompressor::StreamDecompressor(const Codec &codec,
                                       util::ByteSource &src)
    : codec_(codec), src_(src)
{
}

bool
StreamDecompressor::refill()
{
    if (done_)
        return false;

    // Read the frame header; a clean EOF also terminates the stream.
    uint8_t first;
    if (src_.read(&first, 1) == 0) {
        done_ = true;
        return false;
    }
    uint64_t header = first & 0x7F;
    int shift = 7;
    while (first & 0x80) {
        src_.readExact(&first, 1);
        header |= static_cast<uint64_t>(first & 0x7F) << shift;
        shift += 7;
        ATC_CHECK(shift <= 63, "corrupt frame header");
    }
    if (header == 0) {
        done_ = true;
        return false;
    }

    size_t raw_size = static_cast<size_t>(header - 1);
    codec_.decompressBlock(src_, raw_size, block_);
    ATC_CHECK(block_.size() == raw_size, "frame size mismatch");
    crc_.update(block_.data(), block_.size());
    pos_ = 0;
    return true;
}

size_t
StreamDecompressor::read(uint8_t *data, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (pos_ == block_.size()) {
            if (!refill())
                break;
            if (block_.empty())
                continue;
        }
        size_t avail = block_.size() - pos_;
        size_t take = (n - got) < avail ? (n - got) : avail;
        std::memcpy(data + got, block_.data() + pos_, take);
        got += take;
        pos_ += take;
    }
    return got;
}

std::vector<uint8_t>
compressAll(const Codec &codec, const uint8_t *data, size_t n,
            size_t block_size)
{
    std::vector<uint8_t> out;
    util::VectorSink sink(out);
    StreamCompressor sc(codec, sink, block_size);
    sc.write(data, n);
    sc.finish();
    return out;
}

std::vector<uint8_t>
decompressAll(const Codec &codec, const uint8_t *data, size_t n)
{
    util::MemorySource src(data, n);
    StreamDecompressor sd(codec, src);
    std::vector<uint8_t> out;
    uint8_t buf[64 * 1024];
    for (;;) {
        size_t got = sd.read(buf, sizeof(buf));
        if (got == 0)
            break;
        out.insert(out.end(), buf, buf + got);
    }
    return out;
}

} // namespace atc::comp
