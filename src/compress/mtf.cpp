#include "compress/mtf.hpp"

#include <cstring>

namespace atc::comp {

MtfCoder::MtfCoder()
{
    reset();
}

void
MtfCoder::reset()
{
    for (int i = 0; i < 256; ++i)
        order_[i] = static_cast<uint8_t>(i);
}

uint8_t
MtfCoder::encode(uint8_t value)
{
    if (order_[0] == value)
        return 0;
    // Locate the rank with a vectorized scan, then shift the prefix
    // down in one memmove — the table always contains all 256 values,
    // so the search cannot miss.
    const uint8_t *pos = static_cast<const uint8_t *>(
        std::memchr(order_, value, sizeof(order_)));
    size_t rank = static_cast<size_t>(pos - order_);
    std::memmove(order_ + 1, order_, rank);
    order_[0] = value;
    return static_cast<uint8_t>(rank);
}

uint8_t
MtfCoder::decode(uint8_t rank)
{
    uint8_t value = order_[rank];
    std::memmove(order_ + 1, order_, rank);
    order_[0] = value;
    return value;
}

std::vector<uint8_t>
mtfEncode(const uint8_t *data, size_t n)
{
    MtfCoder coder;
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = coder.encode(data[i]);
    return out;
}

std::vector<uint8_t>
mtfDecode(const uint8_t *data, size_t n)
{
    MtfCoder coder;
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = coder.decode(data[i]);
    return out;
}

} // namespace atc::comp
