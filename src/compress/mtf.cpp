#include "compress/mtf.hpp"

namespace atc::comp {

MtfCoder::MtfCoder()
{
    reset();
}

void
MtfCoder::reset()
{
    for (int i = 0; i < 256; ++i)
        order_[i] = static_cast<uint8_t>(i);
}

uint8_t
MtfCoder::encode(uint8_t value)
{
    // Find the rank of value, shifting everything in front of it down.
    uint8_t prev = order_[0];
    if (prev == value)
        return 0;
    int rank = 1;
    for (;; ++rank) {
        uint8_t cur = order_[rank];
        order_[rank] = prev;
        prev = cur;
        if (cur == value)
            break;
    }
    order_[0] = value;
    return static_cast<uint8_t>(rank);
}

uint8_t
MtfCoder::decode(uint8_t rank)
{
    uint8_t value = order_[rank];
    for (int i = rank; i > 0; --i)
        order_[i] = order_[i - 1];
    order_[0] = value;
    return value;
}

std::vector<uint8_t>
mtfEncode(const uint8_t *data, size_t n)
{
    MtfCoder coder;
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = coder.encode(data[i]);
    return out;
}

std::vector<uint8_t>
mtfDecode(const uint8_t *data, size_t n)
{
    MtfCoder coder;
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = coder.decode(data[i]);
    return out;
}

} // namespace atc::comp
