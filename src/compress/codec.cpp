#include "compress/codec.hpp"

#include <algorithm>
#include <cctype>
#include <mutex>

#include "compress/bwc.hpp"
#include "compress/lzh.hpp"

namespace atc::comp {

void
StoreCodec::compressBlock(const uint8_t *data, size_t n,
                          util::ByteSink &out) const
{
    out.write(data, n);
}

void
StoreCodec::decompressBlock(util::ByteSource &in, size_t raw_size,
                            std::vector<uint8_t> &out) const
{
    out.resize(raw_size);
    in.readExact(out.data(), raw_size);
}

namespace {

bool
validToken(const std::string &s, bool allow_plus = false)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-' && c != '.' && !(allow_plus && c == '+'))
            return false;
    }
    return true;
}

/** Factory for stateless parameterless codecs: one shared instance. */
CodecRegistry::Factory
statelessFactory(std::shared_ptr<const Codec> instance)
{
    return [instance](const CodecSpec &spec)
               -> util::StatusOr<std::shared_ptr<const Codec>> {
        if (!spec.params.empty()) {
            return util::Status::error(
                "codec '" + spec.name + "' accepts no parameter '" +
                spec.params.front().first + "'");
        }
        return instance;
    };
}

} // namespace

util::StatusOr<CodecSpec>
CodecSpec::parse(const std::string &spec)
{
    CodecSpec out;
    size_t colon = spec.find(':');
    out.name = spec.substr(0, colon);
    if (!validToken(out.name))
        return util::Status::error("malformed codec spec '" + spec +
                                   "': bad codec name");
    if (colon == std::string::npos)
        return out;

    std::string rest = spec.substr(colon + 1);
    size_t pos = 0;
    while (true) {
        size_t comma = rest.find(',', pos);
        std::string item = rest.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        size_t eq = item.find('=');
        if (eq == std::string::npos)
            return util::Status::error("malformed codec spec '" + spec +
                                       "': parameter '" + item +
                                       "' is not key=value");
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        // Values additionally admit '+' so list-valued parameters can
        // ride the same grammar (the sampling plan's at=A+B+C starts).
        if (!validToken(key) || !validToken(value, /*allow_plus=*/true))
            return util::Status::error("malformed codec spec '" + spec +
                                       "': bad parameter '" + item + "'");
        if (out.find(key) != nullptr)
            return util::Status::error("malformed codec spec '" + spec +
                                       "': duplicate key '" + key + "'");
        out.params.emplace_back(std::move(key), std::move(value));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::string
CodecSpec::toString() const
{
    std::string out = name;
    char sep = ':';
    for (const auto &[key, value] : params) {
        out += sep;
        out += key;
        out += '=';
        out += value;
        sep = ',';
    }
    return out;
}

const std::string *
CodecSpec::find(const std::string &key) const
{
    for (const auto &[k, v] : params) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

util::StatusOr<size_t>
CodecSpec::sizeParam(const std::string &key, size_t fallback) const
{
    const std::string *raw = find(key);
    if (raw == nullptr)
        return fallback;

    uint64_t value = 0;
    size_t i = 0;
    for (; i < raw->size() &&
           std::isdigit(static_cast<unsigned char>((*raw)[i]));
         ++i) {
        value = value * 10 + static_cast<uint64_t>((*raw)[i] - '0');
        if (value > (uint64_t(1) << 48))
            return util::Status::error("codec parameter '" + key + "=" +
                                       *raw + "' is out of range");
    }
    if (i == 0)
        return util::Status::error("codec parameter '" + key + "=" + *raw +
                                   "' is not a size");
    int shift = 0;
    if (i + 1 == raw->size()) {
        switch (std::tolower(static_cast<unsigned char>((*raw)[i]))) {
          case 'k': shift = 10; break;
          case 'm': shift = 20; break;
          case 'g': shift = 30; break;
          default:
            return util::Status::error("codec parameter '" + key + "=" +
                                       *raw + "' has an unknown suffix");
        }
    } else if (i != raw->size()) {
        return util::Status::error("codec parameter '" + key + "=" + *raw +
                                   "' is not a size");
    }
    if (value > (uint64_t(1) << 48) >> shift)
        return util::Status::error("codec parameter '" + key + "=" + *raw +
                                   "' is out of range");
    value <<= shift;
    if (value == 0)
        return util::Status::error("codec parameter '" + key + "=" + *raw +
                                   "' must be positive");
    return static_cast<size_t>(value);
}

CodecRegistry::CodecRegistry()
{
    add("bwc", statelessFactory(std::make_shared<BwcCodec>()));
    add("lzh", statelessFactory(std::make_shared<LzhCodec>()));
    add("store", statelessFactory(std::make_shared<StoreCodec>()));
}

CodecRegistry &
CodecRegistry::instance()
{
    static CodecRegistry registry;
    return registry;
}

void
CodecRegistry::add(const std::string &name, Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    factories_[name] = std::move(factory);
}

bool
CodecRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
}

std::vector<std::string>
CodecRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

util::StatusOr<ConfiguredCodec>
CodecRegistry::create(const std::string &spec) const
{
    auto parsed = CodecSpec::parse(spec);
    if (!parsed.ok())
        return parsed.status();
    return create(parsed.value());
}

util::StatusOr<ConfiguredCodec>
CodecRegistry::create(const CodecSpec &spec) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = factories_.find(spec.name);
        if (it == factories_.end())
            return util::Status::error("unknown codec: " + spec.name);
        factory = it->second;
    }

    ConfiguredCodec out;
    out.spec = spec.toString();

    // The `block=` framing parameter is common to every codec; strip it
    // before handing the rest to the factory.
    auto block = spec.sizeParam("block", 0);
    if (!block.ok())
        return block.status();
    out.block_size = block.value();

    CodecSpec rest;
    rest.name = spec.name;
    for (const auto &kv : spec.params) {
        if (kv.first != "block")
            rest.params.push_back(kv);
    }

    auto codec = factory(rest);
    if (!codec.ok())
        return codec.status();
    out.codec = codec.take();
    return out;
}

ConfiguredCodec
makeCodec(const std::string &spec)
{
    auto cc = CodecRegistry::instance().create(spec);
    if (!cc.ok())
        util::raise(cc.status().message());
    return cc.take();
}

const Codec &
codecByName(const std::string &name)
{
    // Cache default-configured instances so references stay valid for
    // the process lifetime, matching the old hardcoded-singleton
    // behaviour this shim replaces (including its concurrent-lookup
    // safety, hence the lock).
    static std::mutex mutex;
    static std::map<std::string, ConfiguredCodec> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(name);
    if (it == cache.end()) {
        CodecSpec spec;
        spec.name = name;
        auto cc = CodecRegistry::instance().create(spec);
        if (!cc.ok())
            util::raise(cc.status().message());
        it = cache.emplace(name, cc.take()).first;
    }
    return *it->second.codec;
}

} // namespace atc::comp
