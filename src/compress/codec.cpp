#include "compress/codec.hpp"

#include "compress/bwc.hpp"
#include "compress/lzh.hpp"
#include "util/status.hpp"

namespace atc::comp {

void
StoreCodec::compressBlock(const uint8_t *data, size_t n,
                          util::ByteSink &out) const
{
    out.write(data, n);
}

void
StoreCodec::decompressBlock(util::ByteSource &in, size_t raw_size,
                            std::vector<uint8_t> &out) const
{
    out.resize(raw_size);
    in.readExact(out.data(), raw_size);
}

const Codec &
codecByName(const std::string &name)
{
    static const BwcCodec bwc;
    static const LzhCodec lzh;
    static const StoreCodec store;
    if (name == "bwc")
        return bwc;
    if (name == "lzh")
        return lzh;
    if (name == "store")
        return store;
    util::raise("unknown codec: " + name);
}

} // namespace atc::comp
