#include "compress/lzh.hpp"

#include <cstring>

#include "compress/huffman.hpp"
#include "util/bitio.hpp"
#include "util/crc32.hpp"
#include "util/status.hpp"

namespace atc::comp {

namespace {

constexpr int kMinMatch = 4;
constexpr int kMaxMatch = 258;
constexpr uint32_t kWindow = 1u << 16;
constexpr int kHashBits = 16;
constexpr int kMaxChain = 64;

// Litlen alphabet: 0..255 literals, 256 EOB, 257+ length buckets.
constexpr int kEobSym = 256;
constexpr int kLenBase = 257;
constexpr int kNumLenBuckets = 16; // covers length-kMinMatch in [0, 254]
constexpr int kLitLenAlphabet = kLenBase + kNumLenBuckets;
constexpr int kNumDistBuckets = 32; // covers dist-1 in [0, 65535]

/**
 * Geometric bucketing of v >= 0: buckets 0 and 1 are exact, then two
 * buckets per power of two with (e-1) extra bits.
 */
struct Bucket
{
    int id;
    int extra_bits;
    uint32_t extra_val;
};

Bucket
bucketOf(uint32_t v)
{
    if (v < 2)
        return {static_cast<int>(v), 0, 0};
    int e = 31 - __builtin_clz(v); // floor(log2 v), >= 1
    int half = (v >> (e - 1)) & 1;
    return {2 * e + half, e - 1, v & ((1u << (e - 1)) - 1)};
}

/** Lower bound of a bucket (inverse of bucketOf without extra bits). */
uint32_t
bucketBase(int id)
{
    if (id < 2)
        return static_cast<uint32_t>(id);
    int e = id / 2;
    int half = id & 1;
    return (1u << e) | (static_cast<uint32_t>(half) << (e - 1));
}

uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

} // namespace

void
LzhCodec::compressBlock(const uint8_t *data, size_t n,
                        util::ByteSink &out) const
{
    util::writeLE<uint32_t>(out, util::crc32(data, n));

    // Tokenize with a hash-chain matcher.
    struct Token
    {
        bool is_match;
        uint8_t literal;
        uint32_t length; // match length
        uint32_t dist;   // match distance, >= 1
    };
    std::vector<Token> tokens;
    tokens.reserve(n / 3 + 16);

    std::vector<int32_t> head(1u << kHashBits, -1);
    std::vector<int32_t> prev(kWindow, -1);

    size_t pos = 0;
    while (pos < n) {
        uint32_t best_len = 0;
        uint32_t best_dist = 0;
        if (pos + kMinMatch <= n) {
            uint32_t h = hash4(data + pos);
            int32_t cand = head[h];
            int chain = 0;
            while (cand >= 0 && pos - cand <= kWindow - 1 &&
                   chain < kMaxChain) {
                size_t limit = n - pos;
                if (limit > kMaxMatch)
                    limit = kMaxMatch;
                uint32_t len = 0;
                while (len < limit && data[cand + len] == data[pos + len])
                    ++len;
                if (len >= kMinMatch && len > best_len) {
                    best_len = len;
                    best_dist = static_cast<uint32_t>(pos - cand);
                    if (len == limit)
                        break;
                }
                cand = prev[cand % kWindow];
                ++chain;
            }
        }

        if (best_len >= kMinMatch) {
            tokens.push_back({true, 0, best_len, best_dist});
            // Insert hash entries for the covered positions.
            size_t end = pos + best_len;
            while (pos < end) {
                if (pos + 4 <= n) {
                    uint32_t h = hash4(data + pos);
                    prev[pos % kWindow] = head[h];
                    head[h] = static_cast<int32_t>(pos);
                }
                ++pos;
            }
        } else {
            tokens.push_back({false, data[pos], 0, 0});
            if (pos + 4 <= n) {
                uint32_t h = hash4(data + pos);
                prev[pos % kWindow] = head[h];
                head[h] = static_cast<int32_t>(pos);
            }
            ++pos;
        }
    }

    // Histogram the two alphabets.
    std::vector<uint64_t> ll_freq(kLitLenAlphabet, 0);
    std::vector<uint64_t> d_freq(kNumDistBuckets, 0);
    for (const Token &t : tokens) {
        if (t.is_match) {
            Bucket lb = bucketOf(t.length - kMinMatch);
            ATC_ASSERT(lb.id < kNumLenBuckets);
            ll_freq[kLenBase + lb.id]++;
            Bucket db = bucketOf(t.dist - 1);
            ATC_ASSERT(db.id < kNumDistBuckets);
            d_freq[db.id]++;
        } else {
            ll_freq[t.literal]++;
        }
    }
    ll_freq[kEobSym]++;

    HuffmanEncoder ll_enc(ll_freq);
    HuffmanEncoder d_enc(d_freq);

    util::BitWriter bw(out);
    ll_enc.writeTable(bw);
    d_enc.writeTable(bw);
    for (const Token &t : tokens) {
        if (t.is_match) {
            Bucket lb = bucketOf(t.length - kMinMatch);
            ll_enc.writeSymbol(bw, kLenBase + lb.id);
            bw.writeBits(lb.extra_val, lb.extra_bits);
            Bucket db = bucketOf(t.dist - 1);
            d_enc.writeSymbol(bw, db.id);
            bw.writeBits(db.extra_val, db.extra_bits);
        } else {
            ll_enc.writeSymbol(bw, t.literal);
        }
    }
    ll_enc.writeSymbol(bw, kEobSym);
    bw.alignAndFlush();
}

void
LzhCodec::decompressBlock(util::ByteSource &in, size_t raw_size,
                          std::vector<uint8_t> &out) const
{
    uint32_t crc = util::readLE<uint32_t>(in);

    util::BitReader br(in);
    HuffmanDecoder ll_dec = HuffmanDecoder::readTable(br, kLitLenAlphabet);
    HuffmanDecoder d_dec = HuffmanDecoder::readTable(br, kNumDistBuckets);

    out.clear();
    out.reserve(raw_size);
    for (;;) {
        int sym = ll_dec.decode(br);
        if (sym == kEobSym)
            break;
        if (sym < 256) {
            out.push_back(static_cast<uint8_t>(sym));
            continue;
        }
        int id = sym - kLenBase;
        int e = id < 2 ? 0 : id / 2 - 1;
        uint32_t length =
            bucketBase(id) + (e > 0 ? br.readBits(e) : 0) + kMinMatch;
        int did = d_dec.decode(br);
        int de = did < 2 ? 0 : did / 2 - 1;
        uint32_t dist = bucketBase(did) + (de > 0 ? br.readBits(de) : 0) + 1;
        ATC_CHECK(dist <= out.size(), "LZH distance beyond output");
        size_t from = out.size() - dist;
        for (uint32_t i = 0; i < length; ++i)
            out.push_back(out[from + i]);
    }
    br.align();
    ATC_CHECK(out.size() == raw_size, "LZH block size mismatch");
    ATC_CHECK(util::crc32(out.data(), out.size()) == crc,
              "LZH block CRC mismatch");
}

} // namespace atc::comp
