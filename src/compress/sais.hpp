/**
 * @file
 * Linear-time suffix array construction (SA-IS).
 *
 * Nong/Zhang/Chan induced-sorting algorithm. This is the engine behind
 * the Burrows-Wheeler transform used by the BWC codec (the stand-in for
 * the paper's bzip2 back end). Complexity is O(n) time and space.
 */

#ifndef ATC_COMPRESS_SAIS_HPP_
#define ATC_COMPRESS_SAIS_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc::comp {

/**
 * Compute the suffix array of @p data.
 *
 * Suffix i is data[i..n-1]; suffixes are compared as if the string were
 * followed by a sentinel strictly smaller than every byte value.
 *
 * @param data input bytes (may be null when n == 0)
 * @param n    input length
 * @return permutation sa of [0, n) with suffix sa[0] < suffix sa[1] < ...
 */
std::vector<int32_t> suffixArray(const uint8_t *data, size_t n);

/**
 * Core SA-IS recursion over an integer string.
 *
 * @param t  input symbols; t.back() must be 0, the unique minimum
 * @param k  alphabet size (all symbols in [0, k))
 * @param sa output, resized to t.size(); sa[0] is the sentinel suffix
 */
void saisCore(const std::vector<int32_t> &t, int32_t k,
              std::vector<int32_t> &sa);

} // namespace atc::comp

#endif // ATC_COMPRESS_SAIS_HPP_
