/**
 * @file
 * BWC — the Burrows-Wheeler block codec.
 *
 * From-scratch stand-in for the paper's bzip2 back end, same algorithm
 * family: BWT (via SA-IS) -> move-to-front -> zero-run RLE -> canonical
 * Huffman, with a CRC-32 integrity check per block.
 *
 * Block layout (after the stream framing's size header):
 *   u32  crc32 of the raw block
 *   varint BWT primary index
 *   huffman table (258 x 5 bits) + coded symbols, byte-aligned at end
 */

#ifndef ATC_COMPRESS_BWC_HPP_
#define ATC_COMPRESS_BWC_HPP_

#include "compress/codec.hpp"

namespace atc::comp {

/** Burrows-Wheeler codec; stateless and thread-compatible. */
class BwcCodec : public Codec
{
  public:
    std::string name() const override { return "bwc"; }
    void compressBlock(const uint8_t *data, size_t n,
                       util::ByteSink &out) const override;
    void decompressBlock(util::ByteSource &in, size_t raw_size,
                         std::vector<uint8_t> &out) const override;
};

} // namespace atc::comp

#endif // ATC_COMPRESS_BWC_HPP_
