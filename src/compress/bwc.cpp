#include "compress/bwc.hpp"

#include "compress/bwt.hpp"
#include "compress/huffman.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "util/bitio.hpp"
#include "util/crc32.hpp"

namespace atc::comp {

void
BwcCodec::compressBlock(const uint8_t *data, size_t n,
                        util::ByteSink &out) const
{
    util::writeLE<uint32_t>(out, util::crc32(data, n));

    BwtResult bwt = bwtForward(data, n);
    util::writeVarint(out, bwt.primary);

    std::vector<uint8_t> mtf = mtfEncode(bwt.data.data(), bwt.data.size());
    bwt.data.clear();
    bwt.data.shrink_to_fit();
    std::vector<uint16_t> symbols = rleEncode(mtf.data(), mtf.size());
    mtf.clear();
    mtf.shrink_to_fit();

    std::vector<uint64_t> freq(kRleAlphabet, 0);
    for (uint16_t s : symbols)
        freq[s]++;
    HuffmanEncoder enc(freq);

    util::BitWriter bw(out);
    enc.writeTable(bw);
    for (uint16_t s : symbols)
        enc.writeSymbol(bw, s);
    bw.alignAndFlush();
}

void
BwcCodec::decompressBlock(util::ByteSource &in, size_t raw_size,
                          std::vector<uint8_t> &out) const
{
    uint32_t crc = util::readLE<uint32_t>(in);
    uint64_t primary = util::readVarint(in);

    util::BitReader br(in);
    HuffmanDecoder dec = HuffmanDecoder::readTable(br, kRleAlphabet);

    std::vector<uint16_t> symbols;
    symbols.reserve(raw_size / 2 + 16);
    for (;;) {
        int sym = dec.decode(br);
        symbols.push_back(static_cast<uint16_t>(sym));
        if (sym == kEob)
            break;
    }
    br.align();

    std::vector<uint8_t> mtf = rleDecode(symbols);
    ATC_CHECK(mtf.size() == raw_size, "BWC block size mismatch");
    std::vector<uint8_t> bwt = mtfDecode(mtf.data(), mtf.size());
    out = bwtInverse(bwt.data(), bwt.size(),
                     static_cast<uint32_t>(primary));
    ATC_CHECK(util::crc32(out.data(), out.size()) == crc,
              "BWC block CRC mismatch");
}

} // namespace atc::comp
