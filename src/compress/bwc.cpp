#include "compress/bwc.hpp"

#include "compress/bwt.hpp"
#include "compress/huffman.hpp"
#include "compress/mtf.hpp"
#include "compress/rle.hpp"
#include "obs/metrics.hpp"
#include "util/bitio.hpp"
#include "util/crc32.hpp"

namespace atc::comp {

namespace {

// Stage-split codec accounting: aggregate micros per pipeline stage,
// both directions. Handles cached once; hot loops pay one relaxed
// add per block per stage.
struct CodecStageMetrics {
    obs::Counter &bwt_us;
    obs::Counter &mtf_rle_us;
    obs::Counter &entropy_us;
};

CodecStageMetrics &
encodeStages()
{
    static CodecStageMetrics m{
        obs::Registry::global().counter("codec.encode.bwt_us"),
        obs::Registry::global().counter("codec.encode.mtf_rle_us"),
        obs::Registry::global().counter("codec.encode.entropy_us"),
    };
    return m;
}

CodecStageMetrics &
decodeStages()
{
    static CodecStageMetrics m{
        obs::Registry::global().counter("codec.decode.bwt_us"),
        obs::Registry::global().counter("codec.decode.mtf_rle_us"),
        obs::Registry::global().counter("codec.decode.entropy_us"),
    };
    return m;
}

}  // namespace

void
BwcCodec::compressBlock(const uint8_t *data, size_t n,
                        util::ByteSink &out) const
{
    CodecStageMetrics &m = encodeStages();
    util::writeLE<uint32_t>(out, util::crc32(data, n));

    obs::StageTimer bwt_t(m.bwt_us);
    BwtResult bwt = bwtForward(data, n);
    bwt_t.stop();
    util::writeVarint(out, bwt.primary);

    obs::StageTimer mtf_t(m.mtf_rle_us);
    std::vector<uint8_t> mtf = mtfEncode(bwt.data.data(), bwt.data.size());
    bwt.data.clear();
    bwt.data.shrink_to_fit();
    std::vector<uint16_t> symbols = rleEncode(mtf.data(), mtf.size());
    mtf.clear();
    mtf.shrink_to_fit();
    mtf_t.stop();

    obs::StageTimer entropy_t(m.entropy_us);
    std::vector<uint64_t> freq(kRleAlphabet, 0);
    for (uint16_t s : symbols)
        freq[s]++;
    HuffmanEncoder enc(freq);

    util::BitWriter bw(out);
    enc.writeTable(bw);
    for (uint16_t s : symbols)
        enc.writeSymbol(bw, s);
    bw.alignAndFlush();
}

void
BwcCodec::decompressBlock(util::ByteSource &in, size_t raw_size,
                          std::vector<uint8_t> &out) const
{
    CodecStageMetrics &m = decodeStages();
    uint32_t crc = util::readLE<uint32_t>(in);
    uint64_t primary = util::readVarint(in);

    obs::StageTimer entropy_t(m.entropy_us);
    util::BitReader br(in);
    HuffmanDecoder dec = HuffmanDecoder::readTable(br, kRleAlphabet);

    std::vector<uint16_t> symbols;
    symbols.reserve(raw_size / 2 + 16);
    for (;;) {
        int sym = dec.decode(br);
        symbols.push_back(static_cast<uint16_t>(sym));
        if (sym == kEob)
            break;
    }
    br.align();
    entropy_t.stop();

    obs::StageTimer mtf_t(m.mtf_rle_us);
    std::vector<uint8_t> mtf = rleDecode(symbols);
    ATC_CHECK(mtf.size() == raw_size, "BWC block size mismatch");
    std::vector<uint8_t> bwt = mtfDecode(mtf.data(), mtf.size());
    mtf_t.stop();

    obs::StageTimer bwt_t(m.bwt_us);
    out = bwtInverse(bwt.data(), bwt.size(),
                     static_cast<uint32_t>(primary));
    bwt_t.stop();
    ATC_CHECK(util::crc32(out.data(), out.size()) == crc,
              "BWC block CRC mismatch");
}

} // namespace atc::comp
