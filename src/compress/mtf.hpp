/**
 * @file
 * Move-to-front recoding over the byte alphabet.
 *
 * Applied after the BWT: local symbol reuse becomes runs of small
 * values (mostly zeros), which the zero-run RLE and the entropy coder
 * then squeeze. Both directions are exact inverses.
 */

#ifndef ATC_COMPRESS_MTF_HPP_
#define ATC_COMPRESS_MTF_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atc::comp {

/** Stateful move-to-front coder (alphabet of 256 byte values). */
class MtfCoder
{
  public:
    /** Start from the identity alphabet ordering 0,1,...,255. */
    MtfCoder();

    /** Encode one byte: emit its rank and move it to the front. */
    uint8_t encode(uint8_t value);

    /** Decode one rank back to the byte value, updating the ordering. */
    uint8_t decode(uint8_t rank);

    /** Reset to the identity ordering. */
    void reset();

  private:
    uint8_t order_[256];
};

/** Encode a whole buffer (fresh coder state). */
std::vector<uint8_t> mtfEncode(const uint8_t *data, size_t n);

/** Decode a whole buffer (fresh coder state). */
std::vector<uint8_t> mtfDecode(const uint8_t *data, size_t n);

} // namespace atc::comp

#endif // ATC_COMPRESS_MTF_HPP_
