/**
 * @file
 * LZH — LZ77 + canonical Huffman block codec (gzip-class).
 *
 * Provided as a second, faster-but-weaker back end behind the Codec
 * interface, mirroring the original tool's ability to swap bzip2 for
 * gzip. Hash-chain match finder, 64 KiB window, geometric length and
 * distance buckets with extra bits (deflate-style).
 *
 * Block layout (after the stream framing's size header):
 *   u32 crc32 of the raw block
 *   litlen huffman table (273 x 5 bits), dist table (32 x 5 bits)
 *   token stream, terminated by EOB, byte-aligned at end
 */

#ifndef ATC_COMPRESS_LZH_HPP_
#define ATC_COMPRESS_LZH_HPP_

#include "compress/codec.hpp"

namespace atc::comp {

/** LZ77+Huffman codec; stateless and thread-compatible. */
class LzhCodec : public Codec
{
  public:
    std::string name() const override { return "lzh"; }
    void compressBlock(const uint8_t *data, size_t n,
                       util::ByteSink &out) const override;
    void decompressBlock(util::ByteSource &in, size_t raw_size,
                         std::vector<uint8_t> &out) const override;
};

} // namespace atc::comp

#endif // ATC_COMPRESS_LZH_HPP_
