/**
 * @file
 * Canonical, length-limited Huffman coding.
 *
 * Entropy back end for both the BWC and LZH codecs. Code lengths are
 * derived from symbol frequencies with a standard Huffman tree, then
 * adjusted (Kraft-sum rebalancing, as in zlib) so no code exceeds the
 * length limit. Codes are canonical, so only the length of each symbol
 * needs to be stored in the stream.
 */

#ifndef ATC_COMPRESS_HUFFMAN_HPP_
#define ATC_COMPRESS_HUFFMAN_HPP_

#include <cstdint>
#include <vector>

#include "util/bitio.hpp"

namespace atc::comp {

/** Maximum supported code length (5-bit length fields in the stream). */
constexpr int kMaxCodeLen = 24;

/**
 * Compute canonical code lengths for @p freq (0 length = unused symbol).
 *
 * @param freq  per-symbol occurrence counts
 * @param limit maximum code length, <= kMaxCodeLen
 * @return per-symbol code lengths forming a prefix-free code
 */
std::vector<uint8_t> huffmanLengths(const std::vector<uint64_t> &freq,
                                    int limit = kMaxCodeLen);

/** Encoder table mapping symbols to canonical codes. */
class HuffmanEncoder
{
  public:
    /** Build codes directly from frequencies. */
    explicit HuffmanEncoder(const std::vector<uint64_t> &freq,
                            int limit = kMaxCodeLen);

    /** Build codes from precomputed lengths. */
    explicit HuffmanEncoder(const std::vector<uint8_t> &lengths);

    /** Serialize the code lengths (5 bits each) into @p bw. */
    void writeTable(util::BitWriter &bw) const;

    /** Emit the code of @p symbol; the symbol must be in use. */
    void
    writeSymbol(util::BitWriter &bw, int symbol) const
    {
        bw.writeBits(codes_[symbol], lengths_[symbol]);
    }

    /** @return code length per symbol (0 = unused). */
    const std::vector<uint8_t> &lengths() const { return lengths_; }

  private:
    void buildCodes();

    std::vector<uint8_t> lengths_;
    std::vector<uint32_t> codes_;
};

/** Decoder for canonical codes. */
class HuffmanDecoder
{
  public:
    /** Build from explicit code lengths. */
    explicit HuffmanDecoder(const std::vector<uint8_t> &lengths);

    /** Read a table serialized by HuffmanEncoder::writeTable. */
    static HuffmanDecoder readTable(util::BitReader &br, int alphabet);

    /** Decode one symbol; throws on invalid codes or truncation. */
    int decode(util::BitReader &br) const;

  private:
    // first_code_[l] is the canonical code value of the first code of
    // length l; first_index_[l] indexes sorted_symbols_.
    uint32_t first_code_[kMaxCodeLen + 2] = {};
    int32_t first_index_[kMaxCodeLen + 2] = {};
    uint16_t count_[kMaxCodeLen + 2] = {};
    std::vector<uint16_t> sorted_symbols_;
};

} // namespace atc::comp

#endif // ATC_COMPRESS_HUFFMAN_HPP_
