#include "compress/bwt.hpp"

#include "compress/sais.hpp"
#include "util/status.hpp"

namespace atc::comp {

BwtResult
bwtForward(const uint8_t *data, size_t n)
{
    BwtResult result;
    if (n == 0)
        return result;

    std::vector<int32_t> sa = suffixArray(data, n);

    // Conceptual matrix rows: row 0 is the sentinel suffix (BWT char is
    // the last input byte); rows 1..n are the suffixes in sa order, each
    // contributing the byte preceding it. The row of suffix 0 would
    // contribute the sentinel itself; it is skipped and recorded.
    result.data.resize(n);
    result.data[0] = data[n - 1];
    size_t out = 1;
    for (size_t i = 0; i < n; ++i) {
        if (sa[i] == 0) {
            result.primary = static_cast<uint32_t>(i + 1);
        } else {
            result.data[out++] = data[sa[i] - 1];
        }
    }
    ATC_ASSERT(out == n);
    ATC_ASSERT(result.primary >= 1 && result.primary <= n);
    return result;
}

std::vector<uint8_t>
bwtInverse(const uint8_t *data, size_t n, uint32_t primary)
{
    if (n == 0)
        return {};
    ATC_CHECK(primary >= 1 && primary <= n, "BWT primary index out of range");

    // Conceptual array B of n+1 symbols: the given bytes with the
    // sentinel re-inserted at position `primary`. base[c] is the first
    // row whose rotation starts with c; the sentinel row is row 0.
    std::vector<uint32_t> cnt(256, 0);
    for (size_t i = 0; i < n; ++i)
        cnt[data[i]]++;
    std::vector<uint32_t> base(256);
    uint32_t sum = 1; // row 0 is the sentinel row
    for (int c = 0; c < 256; ++c) {
        base[c] = sum;
        sum += cnt[c];
    }

    // LF mapping over the n+1 conceptual rows.
    std::vector<uint32_t> lf(n + 1);
    std::vector<uint32_t> running(256, 0);
    for (size_t i = 0; i <= n; ++i) {
        if (i == primary) {
            lf[i] = 0;
        } else {
            uint8_t c = data[i - (i > primary ? 1 : 0)];
            lf[i] = base[c] + running[c]++;
        }
    }

    // Walk the cycle backwards from the row of rotation 0, skipping the
    // sentinel emission.
    std::vector<uint8_t> out(n);
    uint32_t row = lf[primary];
    for (size_t k = n; k-- > 0;) {
        ATC_CHECK(row != primary, "corrupt BWT stream");
        uint8_t c = data[row - (row > primary ? 1 : 0)];
        out[k] = c;
        row = lf[row];
    }
    ATC_CHECK(row == primary, "corrupt BWT stream (cycle mismatch)");
    return out;
}

} // namespace atc::comp
