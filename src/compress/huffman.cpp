#include "compress/huffman.hpp"

#include <algorithm>
#include <queue>

#include "util/status.hpp"

namespace atc::comp {

namespace {

/** Tree-derived (unlimited) depths for each used symbol. */
std::vector<uint8_t>
treeDepths(const std::vector<uint64_t> &freq)
{
    const int n = static_cast<int>(freq.size());
    std::vector<uint8_t> depth(n, 0);

    std::vector<int> used;
    for (int i = 0; i < n; ++i) {
        if (freq[i] > 0)
            used.push_back(i);
    }
    if (used.empty())
        return depth;
    if (used.size() == 1) {
        depth[used[0]] = 1;
        return depth;
    }

    // Node ids: [0, n) leaves, internal nodes appended.
    struct Item
    {
        uint64_t weight;
        int node;
        bool operator>(const Item &o) const
        {
            // Tie-break on node id for deterministic trees.
            return weight != o.weight ? weight > o.weight : node > o.node;
        }
    };
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    std::vector<int> parent;
    parent.reserve(2 * used.size());
    parent.assign(n, -1);
    for (int i : used)
        heap.push({freq[i], i});

    while (heap.size() > 1) {
        Item a = heap.top();
        heap.pop();
        Item b = heap.top();
        heap.pop();
        int id = static_cast<int>(parent.size());
        parent.push_back(-1);
        parent[a.node] = id;
        parent[b.node] = id;
        heap.push({a.weight + b.weight, id});
    }

    for (int i : used) {
        int d = 0;
        for (int v = i; parent[v] >= 0; v = parent[v])
            ++d;
        ATC_ASSERT(d >= 1 && d < 64);
        depth[i] = static_cast<uint8_t>(d);
    }
    return depth;
}

} // namespace

std::vector<uint8_t>
huffmanLengths(const std::vector<uint64_t> &freq, int limit)
{
    ATC_ASSERT(limit >= 1 && limit <= kMaxCodeLen);
    std::vector<uint8_t> len = treeDepths(freq);

    // Clamp over-long codes, then restore the Kraft inequality
    // sum 2^-len <= 1 by deepening the shallowest fixable codes.
    std::vector<int> used;
    uint64_t kraft = 0; // scaled by 2^limit
    for (size_t i = 0; i < len.size(); ++i) {
        if (len[i] == 0)
            continue;
        if (len[i] > limit)
            len[i] = static_cast<uint8_t>(limit);
        used.push_back(static_cast<int>(i));
        kraft += 1ull << (limit - len[i]);
    }
    ATC_ASSERT(used.size() <= (1ull << limit));

    const uint64_t budget = 1ull << limit;
    while (kraft > budget) {
        // Deepen a symbol with the largest length below the limit; that
        // is the smallest possible step toward a valid code.
        int best = -1;
        for (int i : used) {
            if (len[i] < limit && (best < 0 || len[i] > len[best]))
                best = i;
        }
        ATC_ASSERT(best >= 0);
        kraft -= 1ull << (limit - len[best] - 1);
        ++len[best];
    }
    return len;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint64_t> &freq, int limit)
    : lengths_(huffmanLengths(freq, limit))
{
    buildCodes();
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t> &lengths)
    : lengths_(lengths)
{
    buildCodes();
}

void
HuffmanEncoder::buildCodes()
{
    codes_.assign(lengths_.size(), 0);

    // Canonical assignment: codes ordered by (length, symbol).
    std::vector<int> order;
    for (size_t i = 0; i < lengths_.size(); ++i) {
        if (lengths_[i] > 0)
            order.push_back(static_cast<int>(i));
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return lengths_[a] != lengths_[b] ? lengths_[a] < lengths_[b]
                                          : a < b;
    });

    uint32_t code = 0;
    int prev_len = 0;
    for (int sym : order) {
        code <<= (lengths_[sym] - prev_len);
        prev_len = lengths_[sym];
        codes_[sym] = code++;
    }
}

void
HuffmanEncoder::writeTable(util::BitWriter &bw) const
{
    for (uint8_t l : lengths_)
        bw.writeBits(l, 5);
}

HuffmanDecoder::HuffmanDecoder(const std::vector<uint8_t> &lengths)
{
    for (size_t i = 0; i < lengths.size(); ++i) {
        ATC_CHECK(lengths[i] <= kMaxCodeLen, "huffman length out of range");
        if (lengths[i] > 0) {
            count_[lengths[i]]++;
            sorted_symbols_.push_back(static_cast<uint16_t>(i));
        }
    }
    std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
              [&](uint16_t a, uint16_t b) {
                  return lengths[a] != lengths[b] ? lengths[a] < lengths[b]
                                                  : a < b;
              });

    uint32_t code = 0;
    int32_t index = 0;
    uint64_t kraft = 0;
    for (int l = 1; l <= kMaxCodeLen; ++l) {
        code <<= 1;
        first_code_[l] = code;
        first_index_[l] = index;
        code += count_[l];
        index += count_[l];
        kraft += static_cast<uint64_t>(count_[l]) << (kMaxCodeLen - l);
    }
    ATC_CHECK(kraft <= (1ull << kMaxCodeLen), "invalid huffman table");
}

HuffmanDecoder
HuffmanDecoder::readTable(util::BitReader &br, int alphabet)
{
    std::vector<uint8_t> lengths(alphabet);
    for (int i = 0; i < alphabet; ++i)
        lengths[i] = static_cast<uint8_t>(br.readBits(5));
    return HuffmanDecoder(lengths);
}

int
HuffmanDecoder::decode(util::BitReader &br) const
{
    uint32_t code = 0;
    for (int l = 1; l <= kMaxCodeLen; ++l) {
        code = (code << 1) | br.readBit();
        uint32_t offset = code - first_code_[l];
        if (code >= first_code_[l] && offset < count_[l])
            return sorted_symbols_[first_index_[l] + offset];
    }
    util::raise("invalid huffman code in stream");
}

} // namespace atc::comp
