#include "tcgen/tcgen.hpp"

#include "util/status.hpp"

namespace atc::tcg {

PredictorBank::PredictorBank(const TcgenConfig &config)
{
    // Priority order follows the paper's TCgen specification: the
    // first matching slot wins, so stronger predictors come first.
    if (config.dfcm3_ways > 0) {
        predictors_.push_back(std::make_unique<pred::DfcmPredictor>(
            3, config.dfcm3_ways, config.log2_lines));
    }
    if (config.fcm3_ways > 0) {
        predictors_.push_back(std::make_unique<pred::FcmPredictor>(
            3, config.fcm3_ways, config.log2_lines));
    }
    if (config.fcm2_ways > 0) {
        predictors_.push_back(std::make_unique<pred::FcmPredictor>(
            2, config.fcm2_ways, config.log2_lines));
    }
    if (config.fcm1_ways > 0) {
        predictors_.push_back(std::make_unique<pred::FcmPredictor>(
            1, config.fcm1_ways, config.log2_lines));
    }
    for (const auto &p : predictors_)
        total_slots_ += p->ways();
    ATC_CHECK(total_slots_ >= 1, "predictor bank is empty");
    ATC_CHECK(total_slots_ < kTcgenEscape,
              "too many prediction slots for 1-byte codes");
}

void
PredictorBank::predictAll(uint64_t *out) const
{
    int offset = 0;
    for (const auto &p : predictors_) {
        p->predict(out + offset);
        offset += p->ways();
    }
}

void
PredictorBank::updateAll(uint64_t actual)
{
    for (const auto &p : predictors_)
        p->update(actual);
}

uint64_t
PredictorBank::memoryBytes() const
{
    uint64_t total = 0;
    for (const auto &p : predictors_) {
        if (auto *fcm = dynamic_cast<const pred::FcmPredictor *>(p.get()))
            total += fcm->tableBytes();
        else if (auto *dfcm =
                     dynamic_cast<const pred::DfcmPredictor *>(p.get()))
            total += dfcm->tableBytes();
    }
    return total;
}

TcgenEncoder::TcgenEncoder(const TcgenConfig &config,
                           util::ByteSink &code_out,
                           util::ByteSink &data_out)
    : bank_(config), scratch_(bank_.slots()),
      codec_(comp::makeCodec(config.codec)),
      code_stream_(*codec_.codec, code_out,
                   codec_.blockOr(config.codec_block)),
      data_stream_(*codec_.codec, data_out,
                   codec_.blockOr(config.codec_block))
{
}

void
TcgenEncoder::write(const uint64_t *vals, size_t n)
{
    for (size_t k = 0; k < n; ++k) {
        uint64_t value = vals[k];
        bank_.predictAll(scratch_.data());
        int hit = -1;
        for (int i = 0; i < bank_.slots(); ++i) {
            if (scratch_[i] == value) {
                hit = i;
                break;
            }
        }
        if (hit >= 0) {
            code_stream_.writeByte(static_cast<uint8_t>(hit));
        } else {
            code_stream_.writeByte(kTcgenEscape);
            util::writeLE<uint64_t>(data_stream_, value);
            ++escapes_;
        }
        bank_.updateAll(value);
        ++count_;
    }
}

void
TcgenEncoder::finish()
{
    code_stream_.finish();
    data_stream_.finish();
}

TcgenDecoder::TcgenDecoder(const TcgenConfig &config,
                           util::ByteSource &code_in,
                           util::ByteSource &data_in)
    : bank_(config), scratch_(bank_.slots()),
      codec_(comp::makeCodec(config.codec)),
      code_stream_(*codec_.codec, code_in),
      data_stream_(*codec_.codec, data_in)
{
}

size_t
TcgenDecoder::read(uint64_t *out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        uint8_t code;
        if (code_stream_.read(&code, 1) == 0)
            break;

        uint64_t value;
        if (code == kTcgenEscape) {
            value = util::readLE<uint64_t>(data_stream_);
        } else {
            ATC_CHECK(code < bank_.slots(), "invalid predictor code");
            bank_.predictAll(scratch_.data());
            value = scratch_[code];
        }
        bank_.updateAll(value);
        out[got++] = value;
    }
    return got;
}

TcgenResult
tcgenCompress(const std::vector<uint64_t> &trace, const TcgenConfig &config)
{
    TcgenResult result;
    util::VectorSink code_sink(result.code_bytes);
    util::VectorSink data_sink(result.data_bytes);
    TcgenEncoder enc(config, code_sink, data_sink);
    enc.write(trace.data(), trace.size());
    enc.finish();
    return result;
}

std::vector<uint64_t>
tcgenDecompress(const TcgenResult &compressed, const TcgenConfig &config)
{
    util::MemorySource code_src(compressed.code_bytes);
    util::MemorySource data_src(compressed.data_bytes);
    TcgenDecoder dec(config, code_src, data_src);
    std::vector<uint64_t> out;
    uint64_t v;
    while (dec.decode(&v))
        out.push_back(v);
    return out;
}

} // namespace atc::tcg
