/**
 * @file
 * Adversarial/realistic trace-generator corpus for codec evaluation.
 *
 * The paper evaluates ATC on SPEC-like miss traces only; the corpus
 * here deliberately covers workload shapes that evaluation never
 * exercised, so `bench/matrix` can measure how codec x block size x
 * lossy parameters behave *outside* the paper's comfort zone:
 *
 *  - ptrchase  : dependent-load chain over a permutation cycle with a
 *                tunable footprint — the classic latency-bound pattern
 *                with near-zero spatial locality
 *  - gcphase   : GC-like phase shifts — bump-allocating mutator bursts
 *                over a drifting nursery alternating with full-heap
 *                collector sweeps, the abrupt-phase-change stressor
 *                for the lossy imitation decision
 *  - stream    : large sequential sweeps that defeat locality
 *                transforms (every address is seen once per lap)
 *  - multicore : N per-core access streams merged round-robin or in
 *                random bursts — the interleaving ATC's address
 *                transform was never exercised on; per-core address
 *                spaces are disjoint so the merge is analyzable
 *  - queue     : producer/consumer ring alternating fill and drain
 *                phases with a ~5*depth-record period — the
 *                phase-biased workload that makes sampling-window
 *                placement error visible (see docs/sampling.md)
 *
 * Every generator sits behind trace::TraceSource, is deterministic
 * given (spec, count, seed), and is addressed by a parseable spec
 * string using the codec-spec grammar, e.g.
 * "ptrchase:nodes=1m,stride=rand". describe() returns the canonical
 * spec with every parameter explicit, and parse(describe()) round-trips
 * to an identical generator.
 */

#ifndef ATC_TCGEN_CORPUS_HPP_
#define ATC_TCGEN_CORPUS_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/pipeline.hpp"
#include "util/status.hpp"

namespace atc::tcg {

/**
 * A bounded, deterministic, self-describing trace source.
 *
 * read() produces exactly the count the source was built with, then
 * returns 0. Two sources built from equal (spec, count, seed) produce
 * identical streams.
 */
class CorpusSource : public trace::TraceSource
{
  public:
    /** @return the canonical spec string (parse(describe()) == this). */
    virtual std::string describe() const = 0;

    /** @return records this source will produce in total. */
    virtual uint64_t count() const = 0;
};

/** Owned corpus-source handle. */
using CorpusSourcePtr = std::unique_ptr<CorpusSource>;

/**
 * Byte spacing between per-core address spaces of the `multicore`
 * generator. Core c's addresses all lie in
 * [c * kMulticoreCoreSpan, (c+1) * kMulticoreCoreSpan), so a consumer
 * (or a test) can attribute every merged record to its core.
 */
constexpr uint64_t kMulticoreCoreSpan = 1ull << 40;

/** @return the core index a multicore-generator address belongs to. */
inline uint32_t
multicoreCoreOf(uint64_t addr)
{
    return static_cast<uint32_t>(addr / kMulticoreCoreSpan);
}

/**
 * Build a corpus generator from a spec string.
 *
 * Grammar is the codec-spec grammar: `name[:key=value[,key=value]...]`;
 * size-valued parameters accept k/m/g binary suffixes. Unknown
 * generator names, unknown keys, and out-of-range values come back as
 * an error status naming the offender.
 *
 * @param spec  generator spec, e.g. "multicore:cores=4,mode=rr"
 * @param count records the source will produce
 * @param seed  determinism seed (same spec+count+seed => same stream)
 */
util::StatusOr<CorpusSourcePtr> makeCorpusSource(const std::string &spec,
                                                 uint64_t count,
                                                 uint64_t seed = 1);

/**
 * The default evaluation corpus: one representative spec per generator
 * family, sized so even small-N CI sweeps produce meaningful cells.
 */
const std::vector<std::string> &corpusCatalog();

/** @return the registered generator family names, sorted. */
std::vector<std::string> corpusFamilies();

} // namespace atc::tcg

#endif // ATC_TCGEN_CORPUS_HPP_
