#include "tcgen/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

#include "compress/codec.hpp"
#include "util/rng.hpp"

namespace atc::tcg {
namespace {

using util::Status;
using util::StatusOr;

/** Reject spec keys the generator does not understand. */
Status
checkKeys(const comp::CodecSpec &spec,
          std::initializer_list<const char *> known)
{
    for (const auto &[key, value] : spec.params) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            return Status::error("corpus spec '" + spec.name +
                                 "': unknown parameter '" + key + "'");
    }
    return Status();
}

std::string
sizeString(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Pointer chasing: a dependent-load chain over `nodes` cache-line-sized
 * nodes. stride=rand builds a random single-cycle permutation (the
 * classic latency benchmark, zero spatial locality); stride=<bytes>
 * hops a fixed distance, giving a perfectly regular chain that a delta
 * transform should crush — the two extremes of the same access shape.
 */
class PtrChaseSource : public CorpusSource
{
  public:
    PtrChaseSource(uint64_t nodes, uint64_t stride_bytes, bool random,
                   uint64_t count, uint64_t seed)
        : nodes_(nodes), stride_(stride_bytes), random_(random),
          total_(count), remaining_(count)
    {
        if (random_) {
            // Sattolo's algorithm: a uniform random single cycle, so
            // the chain visits every node before repeating.
            succ_.resize(nodes_);
            std::iota(succ_.begin(), succ_.end(), 0u);
            util::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
            for (uint64_t i = nodes_ - 1; i > 0; --i)
                std::swap(succ_[i], succ_[rng.below(i)]);
        }
    }

    size_t
    read(uint64_t *out, size_t n) override
    {
        size_t produce = static_cast<size_t>(
            std::min<uint64_t>(n, remaining_));
        for (size_t i = 0; i < produce; ++i) {
            out[i] = kBase + cur_ * kNodeBytes;
            cur_ = random_ ? succ_[cur_]
                           : (cur_ + stride_ / kNodeBytes) % nodes_;
        }
        remaining_ -= produce;
        return produce;
    }

    std::string
    describe() const override
    {
        return "ptrchase:nodes=" + sizeString(nodes_) + ",stride=" +
               (random_ ? "rand" : sizeString(stride_));
    }

    uint64_t count() const override { return total_; }

  private:
    static constexpr uint64_t kBase = 0x10000000ull;
    static constexpr uint64_t kNodeBytes = 64;

    uint64_t nodes_;
    uint64_t stride_;
    bool random_;
    uint64_t total_;
    uint64_t remaining_;
    std::vector<uint64_t> succ_;
    uint64_t cur_ = 0;
};

/**
 * GC-like phase shifts: a mutator phase bump-allocates through a
 * drifting nursery while randomly touching the live heap, then a
 * collector phase sweeps the whole heap sequentially (mark/sweep
 * scan). The abrupt alternation between a locality-rich small
 * footprint and a full-heap scan is exactly the phase structure the
 * lossy imitation decision has to detect — and the drifting nursery
 * keeps the phases from ever being byte-identical.
 */
class GcPhaseSource : public CorpusSource
{
  public:
    GcPhaseSource(uint64_t heap_bytes, uint64_t mutator_len,
                  uint64_t collector_len, uint64_t count, uint64_t seed)
        : heap_(heap_bytes), mutator_len_(mutator_len),
          collector_len_(collector_len), total_(count),
          remaining_(count),
          rng_(seed ^ 0xda3e39cb94b95bdbull), left_(mutator_len)
    {}

    size_t
    read(uint64_t *out, size_t n) override
    {
        size_t produce = static_cast<size_t>(
            std::min<uint64_t>(n, remaining_));
        for (size_t i = 0; i < produce; ++i) {
            if (left_ == 0) {
                collecting_ = !collecting_;
                left_ = collecting_ ? collector_len_ : mutator_len_;
                sweep_ = 0;
            }
            --left_;
            if (collecting_) {
                // Sequential full-heap sweep, one line at a time.
                out[i] = kBase + sweep_;
                sweep_ = (sweep_ + kLine) % heap_;
            } else if (rng_.below(2) == 0) {
                // Bump allocation through the drifting nursery.
                out[i] = kBase + alloc_;
                alloc_ = (alloc_ + kLine) % heap_;
            } else {
                // Random touch of a live object anywhere in the heap.
                out[i] = kBase + (rng_.below(heap_ / kLine)) * kLine;
            }
        }
        remaining_ -= produce;
        return produce;
    }

    std::string
    describe() const override
    {
        return "gcphase:heap=" + sizeString(heap_) +
               ",mutator=" + sizeString(mutator_len_) +
               ",collector=" + sizeString(collector_len_);
    }

    uint64_t count() const override { return total_; }

  private:
    static constexpr uint64_t kBase = 0x40000000ull;
    static constexpr uint64_t kLine = 64;

    uint64_t heap_;
    uint64_t mutator_len_;
    uint64_t collector_len_;
    uint64_t total_;
    uint64_t remaining_;
    util::Rng rng_;
    bool collecting_ = false;
    uint64_t left_;
    uint64_t alloc_ = 0;
    uint64_t sweep_ = 0;
};

/**
 * Streaming scan: a strided sequential sweep over a footprint far
 * larger than any cache, wrapping at the end. Every lap touches every
 * address exactly once — no temporal reuse for a locality transform to
 * exploit, but perfectly predictable deltas.
 */
class StreamSource : public CorpusSource
{
  public:
    StreamSource(uint64_t footprint, uint64_t stride, uint64_t count)
        : footprint_(footprint), stride_(stride), total_(count),
          remaining_(count)
    {}

    size_t
    read(uint64_t *out, size_t n) override
    {
        size_t produce = static_cast<size_t>(
            std::min<uint64_t>(n, remaining_));
        for (size_t i = 0; i < produce; ++i) {
            out[i] = kBase + offset_;
            offset_ += stride_;
            if (offset_ >= footprint_)
                offset_ = 0;
        }
        remaining_ -= produce;
        return produce;
    }

    std::string
    describe() const override
    {
        return "stream:footprint=" + sizeString(footprint_) +
               ",stride=" + sizeString(stride_);
    }

    uint64_t count() const override { return total_; }

  private:
    static constexpr uint64_t kBase = 0x80000000ull;

    uint64_t footprint_;
    uint64_t stride_;
    uint64_t total_;
    uint64_t remaining_;
    uint64_t offset_ = 0;
};

/**
 * Interleaved multicore trace: N per-core streams merged into one
 * record sequence. Each core walks its own disjoint address space
 * (kMulticoreCoreSpan apart) with a core-specific strided sweep, so
 * the merged stream's deltas jump between spaces constantly — the
 * interleaving ATC's per-stream address transform was never exercised
 * on. mode=rr merges exact `burst`-sized turns round-robin; mode=bursty
 * picks the next core uniformly at random and draws the burst length
 * in [1, 2*burst), modelling cores that drift in and out of phase.
 */
class MulticoreSource : public CorpusSource
{
  public:
    MulticoreSource(uint32_t cores, bool bursty, uint64_t burst,
                    uint64_t footprint, uint64_t count, uint64_t seed)
        : cores_(cores), bursty_(bursty), burst_(burst),
          footprint_(footprint), total_(count), remaining_(count),
          rng_(seed ^ 0xc2b2ae3d27d4eb4full), offsets_(cores, 0)
    {
        // Per-core stride: distinct odd line multiples keep the
        // per-core streams structurally different from each other.
        strides_.reserve(cores_);
        for (uint32_t c = 0; c < cores_; ++c)
            strides_.push_back(64 * (2 * c + 1));
    }

    size_t
    read(uint64_t *out, size_t n) override
    {
        size_t produce = static_cast<size_t>(
            std::min<uint64_t>(n, remaining_));
        for (size_t i = 0; i < produce; ++i) {
            if (left_ == 0) {
                if (bursty_) {
                    cur_ = static_cast<uint32_t>(rng_.below(cores_));
                    left_ = 1 + rng_.below(2 * burst_ - 1);
                } else {
                    cur_ = (cur_ + 1) % cores_;
                    left_ = burst_;
                }
            }
            --left_;
            uint64_t &off = offsets_[cur_];
            out[i] = cur_ * kMulticoreCoreSpan + off;
            off += strides_[cur_];
            if (off >= footprint_)
                off -= footprint_;
        }
        remaining_ -= produce;
        return produce;
    }

    std::string
    describe() const override
    {
        return "multicore:cores=" + sizeString(cores_) + ",mode=" +
               (bursty_ ? "bursty" : "rr") +
               ",burst=" + sizeString(burst_) +
               ",footprint=" + sizeString(footprint_);
    }

    uint64_t count() const override { return total_; }

  private:
    uint32_t cores_;
    bool bursty_;
    uint64_t burst_;
    uint64_t footprint_;
    uint64_t total_;
    uint64_t remaining_;
    util::Rng rng_;
    std::vector<uint64_t> offsets_;
    std::vector<uint64_t> strides_;
    uint32_t cur_ = 0;
    uint64_t left_ = 0; // forces a turn selection on the first record
};

/**
 * Producer/consumer ring: N producers fill a `depth`-slot ring until
 * it is full, then the consumer drains it empty, forever. Every
 * produce touches the shared tail-counter line, the slot's line, and
 * the producer's private stamp line; every consume touches the shared
 * head-counter line and the slot's line. The trace therefore
 * alternates between a fill phase (3 records per item, stamp lines
 * scattered across producers) and a drain phase (2 records per item,
 * pure ring sweep) with a period of ~5*depth records — short sampling
 * windows land inside one phase and see a biased miss ratio, which is
 * exactly the phase structure that makes sampling error visible.
 */
class QueueSource : public CorpusSource
{
  public:
    QueueSource(uint32_t producers, uint64_t depth, uint64_t count,
                uint64_t seed)
        : producers_(producers), depth_(depth), total_(count),
          remaining_(count), rng_(seed ^ 0x6b49d5ca35a9fa21ull)
    {}

    size_t
    read(uint64_t *out, size_t n) override
    {
        size_t produce = static_cast<size_t>(
            std::min<uint64_t>(n, remaining_));
        for (size_t i = 0; i < produce; ++i) {
            if (pend_n_ == 0)
                nextOp();
            out[i] = pend_[pend_i_++];
            --pend_n_;
        }
        remaining_ -= produce;
        return produce;
    }

    std::string
    describe() const override
    {
        return "queue:producers=" + sizeString(producers_) +
               ",depth=" + sizeString(depth_);
    }

    uint64_t count() const override { return total_; }

  private:
    static constexpr uint64_t kBase = 0xC0000000ull;
    static constexpr uint64_t kLine = 64;

    uint64_t headLine() const { return kBase; }
    uint64_t tailLine() const { return kBase + kLine; }
    uint64_t slotLine(uint64_t s) const
    {
        return kBase + (2 + s % depth_) * kLine;
    }
    uint64_t stampLine(uint32_t p) const
    {
        return kBase + (2 + depth_ + p) * kLine;
    }

    /** Stage the records of the next produce or consume operation. */
    void
    nextOp()
    {
        pend_i_ = 0;
        if (draining_) {
            pend_[0] = headLine();
            pend_[1] = slotLine(head_);
            pend_n_ = 2;
            ++head_;
            if (head_ == tail_)
                draining_ = false;
        } else {
            uint32_t p = static_cast<uint32_t>(rng_.below(producers_));
            pend_[0] = tailLine();
            pend_[1] = slotLine(tail_);
            pend_[2] = stampLine(p);
            pend_n_ = 3;
            ++tail_;
            if (tail_ - head_ == depth_)
                draining_ = true;
        }
    }

    uint32_t producers_;
    uint64_t depth_;
    uint64_t total_;
    uint64_t remaining_;
    util::Rng rng_;
    uint64_t head_ = 0;
    uint64_t tail_ = 0;
    bool draining_ = false;
    uint64_t pend_[3] = {0, 0, 0};
    size_t pend_i_ = 0;
    size_t pend_n_ = 0;
};

StatusOr<CorpusSourcePtr>
makePtrChase(const comp::CodecSpec &spec, uint64_t count, uint64_t seed)
{
    Status keys = checkKeys(spec, {"nodes", "stride"});
    if (!keys.ok())
        return keys;
    auto nodes = spec.sizeParam("nodes", 1u << 16);
    if (!nodes.ok())
        return nodes.status();
    if (nodes.value() < 2)
        return Status::error("ptrchase: nodes must be >= 2");
    bool random = true;
    uint64_t stride = 64;
    if (const std::string *s = spec.find("stride"); s && *s != "rand") {
        auto parsed = spec.sizeParam("stride", 64);
        if (!parsed.ok())
            return parsed.status();
        stride = parsed.value();
        if (stride % 64 != 0)
            return Status::error(
                "ptrchase: stride must be 'rand' or a multiple of 64");
        random = false;
    }
    return CorpusSourcePtr(std::make_unique<PtrChaseSource>(
        nodes.value(), stride, random, count, seed));
}

StatusOr<CorpusSourcePtr>
makeGcPhase(const comp::CodecSpec &spec, uint64_t count, uint64_t seed)
{
    Status keys = checkKeys(spec, {"heap", "mutator", "collector"});
    if (!keys.ok())
        return keys;
    auto heap = spec.sizeParam("heap", 8u << 20);
    auto mutator = spec.sizeParam("mutator", 1u << 16);
    auto collector = spec.sizeParam("collector", 1u << 15);
    for (const auto *p : {&heap, &mutator, &collector})
        if (!p->ok())
            return p->status();
    if (heap.value() < 4096 || heap.value() % 64 != 0)
        return Status::error(
            "gcphase: heap must be a multiple of 64, >= 4096");
    return CorpusSourcePtr(std::make_unique<GcPhaseSource>(
        heap.value(), mutator.value(), collector.value(), count, seed));
}

StatusOr<CorpusSourcePtr>
makeStream(const comp::CodecSpec &spec, uint64_t count, uint64_t /*seed*/)
{
    Status keys = checkKeys(spec, {"footprint", "stride"});
    if (!keys.ok())
        return keys;
    auto footprint = spec.sizeParam("footprint", 16u << 20);
    auto stride = spec.sizeParam("stride", 64);
    for (const auto *p : {&footprint, &stride})
        if (!p->ok())
            return p->status();
    if (stride.value() >= footprint.value())
        return Status::error("stream: stride must be < footprint");
    return CorpusSourcePtr(std::make_unique<StreamSource>(
        footprint.value(), stride.value(), count));
}

StatusOr<CorpusSourcePtr>
makeMulticore(const comp::CodecSpec &spec, uint64_t count, uint64_t seed)
{
    Status keys = checkKeys(spec, {"cores", "mode", "burst", "footprint"});
    if (!keys.ok())
        return keys;
    auto cores = spec.sizeParam("cores", 4);
    auto burst = spec.sizeParam("burst", 16);
    auto footprint = spec.sizeParam("footprint", 4u << 20);
    for (const auto *p : {&cores, &burst, &footprint})
        if (!p->ok())
            return p->status();
    if (cores.value() < 2 || cores.value() > 1024)
        return Status::error("multicore: cores must be in [2, 1024]");
    if (footprint.value() > kMulticoreCoreSpan)
        return Status::error("multicore: footprint exceeds the per-core "
                             "address span");
    bool bursty = false;
    if (const std::string *m = spec.find("mode")) {
        if (*m == "bursty")
            bursty = true;
        else if (*m != "rr")
            return Status::error("multicore: mode must be rr or bursty");
    }
    return CorpusSourcePtr(std::make_unique<MulticoreSource>(
        static_cast<uint32_t>(cores.value()), bursty, burst.value(),
        footprint.value(), count, seed));
}

StatusOr<CorpusSourcePtr>
makeQueue(const comp::CodecSpec &spec, uint64_t count, uint64_t seed)
{
    Status keys = checkKeys(spec, {"producers", "depth"});
    if (!keys.ok())
        return keys;
    auto producers = spec.sizeParam("producers", 4);
    auto depth = spec.sizeParam("depth", 1024);
    for (const auto *p : {&producers, &depth})
        if (!p->ok())
            return p->status();
    if (producers.value() < 1 || producers.value() > 1024)
        return Status::error("queue: producers must be in [1, 1024]");
    if (depth.value() < 2 || depth.value() > (1u << 20))
        return Status::error("queue: depth must be in [2, 1m] slots");
    return CorpusSourcePtr(std::make_unique<QueueSource>(
        static_cast<uint32_t>(producers.value()), depth.value(), count,
        seed));
}

struct Family
{
    const char *name;
    StatusOr<CorpusSourcePtr> (*make)(const comp::CodecSpec &, uint64_t,
                                      uint64_t);
};

const Family kFamilies[] = {
    {"gcphase", makeGcPhase},
    {"multicore", makeMulticore},
    {"ptrchase", makePtrChase},
    {"queue", makeQueue},
    {"stream", makeStream},
};

} // namespace

StatusOr<CorpusSourcePtr>
makeCorpusSource(const std::string &spec_string, uint64_t count,
                 uint64_t seed)
{
    auto spec = comp::CodecSpec::parse(spec_string);
    if (!spec.ok())
        return spec.status();
    for (const Family &f : kFamilies)
        if (spec.value().name == f.name)
            return f.make(spec.value(), count, seed);
    return Status::error("unknown corpus generator '" +
                         spec.value().name + "' (known: gcphase, "
                         "multicore, ptrchase, queue, stream)");
}

const std::vector<std::string> &
corpusCatalog()
{
    static const std::vector<std::string> catalog = {
        "ptrchase:nodes=64k,stride=rand",
        "gcphase:heap=8m,mutator=64k,collector=32k",
        "stream:footprint=16m,stride=64",
        "multicore:cores=4,mode=rr,burst=16,footprint=4m",
        "queue:producers=4,depth=1024",
    };
    return catalog;
}

std::vector<std::string>
corpusFamilies()
{
    std::vector<std::string> names;
    for (const Family &f : kFamilies)
        names.push_back(f.name);
    return names;
}

} // namespace atc::tcg
