/**
 * @file
 * TCgen/VPC-style predictor-based trace compressor — the paper's
 * lossless baseline.
 *
 * Implements the compressor the paper specifies via TCgen:
 * "64-Bit Field 1: DFCM3[2], FCM3[3], FCM2[3], FCM1[3]" with a bzip2
 * back end. Coding follows the VPC scheme: if any prediction slot
 * matches the next value, emit that slot's id (1 byte) to the *code
 * stream*; otherwise emit an escape byte to the code stream and the
 * raw value (8 bytes) to the *data stream*. Both streams then go
 * through a byte-level codec. The decompressor maintains an identical
 * predictor bank, so the prediction slots resolve to the same values.
 */

#ifndef ATC_TCGEN_TCGEN_HPP_
#define ATC_TCGEN_TCGEN_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "compress/stream.hpp"
#include "predict/value_predictors.hpp"
#include "trace/pipeline.hpp"

namespace atc::tcg {

/** Predictor-bank and back-end configuration. */
struct TcgenConfig
{
    int dfcm3_ways = 2;
    int fcm3_ways = 3;
    int fcm2_ways = 3;
    int fcm1_ways = 3;
    /** log2 of table lines per predictor (paper: 2^20 lines). */
    int log2_lines = 20;
    /** Back-end codec spec (see comp::CodecSpec). */
    std::string codec = "bwc";
    /** Back-end block size; a `block=` spec parameter overrides this. */
    size_t codec_block = comp::kDefaultBlockSize;
};

/** Shared predictor bank (identical on both sides). */
class PredictorBank
{
  public:
    explicit PredictorBank(const TcgenConfig &config);

    /** @return total prediction slots across all predictors. */
    int slots() const { return total_slots_; }

    /** Fill @p out with slots() candidate predictions. */
    void predictAll(uint64_t *out) const;

    /** Update every predictor with the actual value. */
    void updateAll(uint64_t actual);

    /** @return approximate table memory in bytes. */
    uint64_t memoryBytes() const;

  private:
    std::vector<std::unique_ptr<pred::MultiPredictor>> predictors_;
    int total_slots_ = 0;
};

/** Escape byte marking an unpredicted value in the code stream. */
constexpr uint8_t kTcgenEscape = 0xFF;

/** Streaming compressor writing code and data streams to two sinks. */
class TcgenEncoder : public trace::TraceSink
{
  public:
    /**
     * @param config   predictor and codec configuration
     * @param code_out sink for the compressed code stream
     * @param data_out sink for the compressed escape-value stream
     */
    TcgenEncoder(const TcgenConfig &config, util::ByteSink &code_out,
                 util::ByteSink &data_out);

    /** Compress a batch of 64-bit values. */
    void write(const uint64_t *vals, size_t n) override;

    /** Compress one 64-bit value. */
    void code(uint64_t value) { write(&value, 1); }

    /** Flush both streams; call exactly once. */
    void finish();

    /** TraceSink finalization: flushes both streams. */
    void close() override { finish(); }

    /** @return values coded so far. */
    uint64_t count() const { return count_; }

    /** @return values that required an escape. */
    uint64_t escapes() const { return escapes_; }

    /** @return predictor-bank memory in bytes. */
    uint64_t memoryBytes() const { return bank_.memoryBytes(); }

  private:
    PredictorBank bank_;
    std::vector<uint64_t> scratch_;
    comp::ConfiguredCodec codec_;
    comp::StreamCompressor code_stream_;
    comp::StreamCompressor data_stream_;
    uint64_t count_ = 0;
    uint64_t escapes_ = 0;
};

/** Streaming decompressor reading the two streams back. */
class TcgenDecoder : public trace::TraceSource
{
  public:
    /**
     * @param config  configuration used to compress
     * @param code_in compressed code stream
     * @param data_in compressed escape-value stream
     */
    TcgenDecoder(const TcgenConfig &config, util::ByteSource &code_in,
                 util::ByteSource &data_in);

    /**
     * Decompress up to @p n values.
     * @return values produced; 0 means end of trace
     */
    size_t read(uint64_t *out, size_t n) override;

    /**
     * Decompress the next value.
     * @param out receives the value
     * @return false at end of trace
     */
    bool decode(uint64_t *out) { return read(out, 1) == 1; }

  private:
    PredictorBank bank_;
    std::vector<uint64_t> scratch_;
    comp::ConfiguredCodec codec_;
    comp::StreamDecompressor code_stream_;
    comp::StreamDecompressor data_stream_;
};

/** Result of whole-trace compression. */
struct TcgenResult
{
    std::vector<uint8_t> code_bytes;
    std::vector<uint8_t> data_bytes;

    /** @return total compressed size. */
    uint64_t
    totalBytes() const
    {
        return code_bytes.size() + data_bytes.size();
    }
};

/** One-shot convenience: compress a whole trace. */
TcgenResult tcgenCompress(const std::vector<uint64_t> &trace,
                          const TcgenConfig &config = TcgenConfig());

/** One-shot convenience: decompress a whole trace. */
std::vector<uint64_t> tcgenDecompress(const TcgenResult &compressed,
                                      const TcgenConfig &config =
                                          TcgenConfig());

} // namespace atc::tcg

#endif // ATC_TCGEN_TCGEN_HPP_
