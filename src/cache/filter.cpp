#include "cache/filter.hpp"

#include "util/status.hpp"

namespace atc::cache {

CacheFilter::CacheFilter(const CacheConfig &l1) : icache_(l1), dcache_(l1) {}

CacheFilter::CacheFilter(const CacheConfig &l1, const CacheConfig &l2)
    : icache_(l1), dcache_(l1), l2_(CacheModel(l2))
{
    // The L2 is fed block addresses in L1 granularity.
    ATC_CHECK(l1.block_bytes == l2.block_bytes,
              "filter levels must share a block size");
}

std::optional<uint64_t>
CacheFilter::access(uint64_t byte_addr, bool is_instr)
{
    CacheModel &l1 = is_instr ? icache_ : dcache_;
    if (l1.access(byte_addr))
        return std::nullopt;
    uint64_t block = l1.blockAddr(byte_addr);
    if (l2_ && l2_->accessBlock(block))
        return std::nullopt;
    return block;
}

void
CacheFilter::accessTagged(uint64_t byte_addr, bool is_instr, bool is_write,
                          std::vector<uint64_t> &out)
{
    CacheModel &l1 = is_instr ? icache_ : dcache_;
    uint64_t block = l1.blockAddr(byte_addr);
    std::optional<uint64_t> evicted_dirty;
    bool hit = l1.accessBlock(block, !is_instr && is_write, evicted_dirty);

    if (!hit) {
        // Demand miss, possibly absorbed by the L2.
        if (!l2_ || !l2_->accessBlock(block))
            out.push_back(block);
    }
    if (evicted_dirty) {
        // Write-backs go below the L1 regardless of the L2's contents;
        // with an L2 present the write-back is emitted only if the L2
        // does not hold the block (victim write-allocate model).
        if (!l2_ || !l2_->accessBlock(*evicted_dirty))
            out.push_back(*evicted_dirty | kWriteBackTag);
    }
}

void
FilterStage::write(const uint64_t *vals, size_t n)
{
    // Batch the surviving misses so the downstream stage sees spans,
    // not single values.
    batch_.clear();
    for (size_t i = 0; i < n; ++i) {
        if (auto miss = filter_.access(vals[i], is_instr_))
            batch_.push_back(*miss);
    }
    if (!batch_.empty())
        down_.write(batch_.data(), batch_.size());
}

} // namespace atc::cache
