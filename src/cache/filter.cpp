#include "cache/filter.hpp"

#include <algorithm>
#include <future>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace atc::cache {

namespace {

// Stage accounting for the filter front-end: wall time on the caller
// thread (sharded or not), access/miss volume, and how many batches
// actually fanned out.
struct FilterMetrics {
    obs::Counter &filter_us;
    obs::Counter &accesses;
    obs::Counter &misses;
    obs::Counter &sharded_batches;
};

FilterMetrics &
filterMetrics()
{
    auto &r = obs::Registry::global();
    static FilterMetrics m{
        r.counter("cache.filter_us"),
        r.counter("cache.filter.accesses"),
        r.counter("cache.filter.misses"),
        r.counter("cache.filter.sharded_batches"),
    };
    return m;
}

/** Below this batch size the fan-out overhead beats the win; the
 *  shard replicas still run (inline) so state stays consistent. */
constexpr size_t kMinParallelBatch = 8192;

} // namespace

CacheFilter::CacheFilter(const CacheConfig &l1) : icache_(l1), dcache_(l1) {}

CacheFilter::CacheFilter(const CacheConfig &l1, const CacheConfig &l2)
    : icache_(l1), dcache_(l1), l2_(CacheModel(l2))
{
    // The L2 is fed block addresses in L1 granularity.
    ATC_CHECK(l1.block_bytes == l2.block_bytes,
              "filter levels must share a block size");
}

std::optional<uint64_t>
CacheFilter::access(uint64_t byte_addr, bool is_instr)
{
    CacheModel &l1 = is_instr ? icache_ : dcache_;
    if (l1.access(byte_addr))
        return std::nullopt;
    uint64_t block = l1.blockAddr(byte_addr);
    if (l2_ && l2_->accessBlock(block))
        return std::nullopt;
    return block;
}

void
CacheFilter::accessTagged(uint64_t byte_addr, bool is_instr, bool is_write,
                          std::vector<uint64_t> &out)
{
    CacheModel &l1 = is_instr ? icache_ : dcache_;
    uint64_t block = l1.blockAddr(byte_addr);
    std::optional<uint64_t> evicted_dirty;
    bool hit = l1.accessBlock(block, !is_instr && is_write, evicted_dirty);

    if (!hit) {
        // Demand miss, possibly absorbed by the L2.
        if (!l2_ || !l2_->accessBlock(block))
            out.push_back(block);
    }
    if (evicted_dirty) {
        // Write-backs go below the L1 regardless of the L2's contents;
        // with an L2 present the write-back is emitted only if the L2
        // does not hold the block (victim write-allocate model).
        if (!l2_ || !l2_->accessBlock(*evicted_dirty))
            out.push_back(*evicted_dirty | kWriteBackTag);
    }
}

void
FilterStage::shard(parallel::ThreadPool &pool, size_t shards)
{
    ATC_CHECK(!started_, "shard() must precede the first write()");
    if (has_l2_ || l1_.policy == ReplPolicy::RANDOM)
        return; // not decomposable by L1 set index — stay serial
    size_t count = shards != 0 ? shards : pool.size();
    count = std::min<size_t>(std::max<size_t>(count, 1), l1_.sets);
    if (count <= 1)
        return;
    pool_ = &pool;
    shards_.clear();
    for (size_t s = 0; s < count; ++s)
        shards_.emplace_back(l1_);
    shard_idx_.resize(count);
    block_shift_ = 0;
    while ((1u << block_shift_) < l1_.block_bytes)
        ++block_shift_;
    set_mask_ = l1_.sets - 1;
}

void
FilterStage::writeSharded(const uint64_t *vals, size_t n)
{
    // Partition input positions by owning shard (cheap, caller
    // thread), replay each shard's subsequence through its replica —
    // recording per-position verdicts into disjoint slots — then emit
    // the misses in input order: the identical stream, assembled from
    // per-set simulations that ran concurrently.
    size_t count = shards_.size();
    for (auto &idx : shard_idx_)
        idx.clear();
    for (size_t i = 0; i < n; ++i) {
        uint32_t set = static_cast<uint32_t>(vals[i] >> block_shift_) &
                       set_mask_;
        shard_idx_[set % count].push_back(static_cast<uint32_t>(i));
    }
    is_miss_.assign(n, 0);
    miss_vals_.resize(n);

    auto runShard = [this, vals](size_t s) {
        CacheFilter &f = shards_[s];
        for (uint32_t i : shard_idx_[s]) {
            if (auto miss = f.access(vals[i], is_instr_)) {
                is_miss_[i] = 1;
                miss_vals_[i] = *miss;
            }
        }
    };

    if (n >= kMinParallelBatch) {
        filterMetrics().sharded_batches.inc();
        std::vector<std::future<void>> done;
        done.reserve(count - 1);
        for (size_t s = 1; s < count; ++s)
            done.push_back(pool_->async([&runShard, s] { runShard(s); }));
        runShard(0);
        // Drain every future before touching the verdicts (and before
        // the deque unwinds on error) — the tasks borrow this stage.
        std::exception_ptr error;
        for (auto &f : done) {
            try {
                f.get();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
    } else {
        for (size_t s = 0; s < count; ++s)
            runShard(s);
    }

    batch_.clear();
    for (size_t i = 0; i < n; ++i) {
        if (is_miss_[i])
            batch_.push_back(miss_vals_[i]);
    }
}

void
FilterStage::write(const uint64_t *vals, size_t n)
{
    started_ = true;
    FilterMetrics &m = filterMetrics();
    obs::StageTimer t(m.filter_us);
    if (!shards_.empty()) {
        writeSharded(vals, n);
    } else {
        // Batch the surviving misses so the downstream stage sees
        // spans, not single values.
        batch_.clear();
        for (size_t i = 0; i < n; ++i) {
            if (auto miss = filter_.access(vals[i], is_instr_))
                batch_.push_back(*miss);
        }
    }
    t.stop();
    m.accesses.add(static_cast<int64_t>(n));
    m.misses.add(static_cast<int64_t>(batch_.size()));
    if (!batch_.empty())
        down_.write(batch_.data(), batch_.size());
}

CacheStats
FilterStage::icacheStats() const
{
    if (shards_.empty())
        return filter_.icacheStats();
    CacheStats sum;
    for (const CacheFilter &f : shards_) {
        sum.accesses += f.icacheStats().accesses;
        sum.misses += f.icacheStats().misses;
    }
    return sum;
}

CacheStats
FilterStage::dcacheStats() const
{
    if (shards_.empty())
        return filter_.dcacheStats();
    CacheStats sum;
    for (const CacheFilter &f : shards_) {
        sum.accesses += f.dcacheStats().accesses;
        sum.misses += f.dcacheStats().misses;
    }
    return sum;
}

} // namespace atc::cache
