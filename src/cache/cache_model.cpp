#include "cache/cache_model.hpp"

#include "util/status.hpp"

namespace atc::cache {

namespace {

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2u(uint64_t v)
{
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace

CacheModel::CacheModel(const CacheConfig &config) : config_(config)
{
    ATC_CHECK(isPow2(config.sets), "cache sets must be a power of two");
    ATC_CHECK(isPow2(config.block_bytes),
              "cache block size must be a power of two");
    ATC_CHECK(config.ways >= 1, "cache needs at least one way");
    block_shift_ = log2u(config.block_bytes);
    set_mask_ = config.sets - 1;
    lines_.resize(static_cast<size_t>(config.sets) * config.ways);
    rand_state_ = 0x853C49E6748FEA9BULL;
}

void
CacheModel::reset()
{
    for (Line &l : lines_)
        l = Line{};
    tick_ = 0;
    stats_ = CacheStats{};
}

bool
CacheModel::access(uint64_t byte_addr)
{
    return accessBlock(byte_addr >> block_shift_);
}

bool
CacheModel::accessBlock(uint64_t block_addr)
{
    std::optional<uint64_t> ignored;
    return accessBlock(block_addr, false, ignored);
}

bool
CacheModel::accessBlock(uint64_t block_addr, bool is_write,
                        std::optional<uint64_t> &evicted_dirty)
{
    evicted_dirty.reset();
    ++stats_.accesses;
    ++tick_;
    uint32_t set = static_cast<uint32_t>(block_addr) & set_mask_;
    uint64_t tag = block_addr >> log2u(config_.sets);
    Line *base = &lines_[static_cast<size_t>(set) * config_.ways];

    // Hit path.
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            if (config_.policy == ReplPolicy::LRU)
                base[w].order = tick_;
            base[w].dirty |= is_write;
            return true;
        }
    }

    // Miss: pick a victim.
    ++stats_.misses;
    uint32_t victim = 0;
    bool found_invalid = false;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
            victim = w;
            found_invalid = true;
            break;
        }
    }
    if (!found_invalid) {
        switch (config_.policy) {
          case ReplPolicy::LRU:
          case ReplPolicy::FIFO:
            for (uint32_t w = 1; w < config_.ways; ++w) {
                if (base[w].order < base[victim].order)
                    victim = w;
            }
            break;
          case ReplPolicy::RANDOM:
            // xorshift64* draw
            rand_state_ ^= rand_state_ >> 12;
            rand_state_ ^= rand_state_ << 25;
            rand_state_ ^= rand_state_ >> 27;
            victim = static_cast<uint32_t>(
                (rand_state_ * 0x2545F4914F6CDD1DULL) % config_.ways);
            break;
        }
        if (base[victim].dirty) {
            evicted_dirty =
                (base[victim].tag << log2u(config_.sets)) | set;
        }
    }
    base[victim] = {tag, tick_, true, is_write};
    return false;
}

} // namespace atc::cache
