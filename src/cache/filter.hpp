/**
 * @file
 * Cache filtering: turning raw access streams into miss traces.
 *
 * Reproduces the paper's trace-collection step: instruction and data
 * byte-address streams go through separate L1 caches (32 KB, 4-way,
 * LRU, 64 B blocks by default); the filtered trace is the in-order
 * sequence of missing *block* addresses from both caches. An optional
 * unified L2 can filter further ("one or more cache levels", §2).
 */

#ifndef ATC_CACHE_FILTER_HPP_
#define ATC_CACHE_FILTER_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache_model.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/pipeline.hpp"

namespace atc::cache {

/**
 * Tag placed in the otherwise-null MSBs of a block address to mark a
 * write-back record (paper §2 suggests exactly this use of the free
 * bits). Demand misses carry no tag.
 */
constexpr uint64_t kWriteBackTag = 1ull << 58;

/** Two-level I/D cache filter producing block-address miss streams. */
class CacheFilter
{
  public:
    /**
     * L1-only filter with identical I and D configurations.
     * @param l1 configuration for both L1 caches
     */
    explicit CacheFilter(const CacheConfig &l1 = CacheConfig::paperL1());

    /**
     * Filter with an additional unified L2 behind the L1s.
     * @param l1 configuration for both L1 caches
     * @param l2 configuration of the unified second level
     */
    CacheFilter(const CacheConfig &l1, const CacheConfig &l2);

    /**
     * Feed one access.
     * @param byte_addr accessed byte address
     * @param is_instr  true for instruction fetches (routes to the
     *                  I-cache), false for data accesses
     * @return the missing block address if the access missed all
     *         filtering levels, otherwise std::nullopt
     */
    std::optional<uint64_t> access(uint64_t byte_addr, bool is_instr);

    /**
     * Feed one access with write-back modelling (paper §2: the 6 null
     * MSBs of a block address may tag the record kind). Data writes
     * mark D-cache lines dirty; evicting a dirty line emits an extra
     * record tagged with kWriteBackTag. Instruction fetches are
     * read-only.
     *
     * @param byte_addr accessed byte address
     * @param is_instr  instruction fetch (I-cache, never dirty)
     * @param is_write  data write (marks the block dirty)
     * @param out       demand-miss and write-back records are appended
     */
    void accessTagged(uint64_t byte_addr, bool is_instr, bool is_write,
                      std::vector<uint64_t> &out);

    /** @return statistics of the instruction cache. */
    const CacheStats &icacheStats() const { return icache_.stats(); }

    /** @return statistics of the data cache. */
    const CacheStats &dcacheStats() const { return dcache_.stats(); }

    /** @return true if an L2 is configured. */
    bool hasL2() const { return l2_.has_value(); }

  private:
    CacheModel icache_;
    CacheModel dcache_;
    std::optional<CacheModel> l2_;
};

/**
 * Composable pipeline stage wrapping a CacheFilter: consumes raw byte
 * addresses and forwards the missing block addresses to a downstream
 * sink (paper Figure 8: generator -> filter -> compressor as one
 * chain). close() propagates downstream, sealing the pipeline.
 *
 * shard() parallelizes the filtering across a thread pool by L1 set
 * index. Cache sets under a deterministic per-set policy (LRU/FIFO)
 * evolve independently — the access subsequence hitting one set is the
 * same whether it was replayed through a global filter or a shard
 * replica — so per-access verdicts, and therefore the emitted miss
 * stream (reassembled in input order), are identical to the serial
 * stage's at any worker count.
 */
class FilterStage : public trace::TraceSink
{
  public:
    /**
     * @param down     downstream sink; must outlive the stage
     * @param l1       configuration for both L1 caches
     * @param is_instr route accesses to the I-cache instead of the D-cache
     */
    explicit FilterStage(trace::TraceSink &down,
                         const CacheConfig &l1 = CacheConfig::paperL1(),
                         bool is_instr = false)
        : down_(down), filter_(l1), l1_(l1), is_instr_(is_instr)
    {}

    /** As above, with a unified L2 behind the L1s. */
    FilterStage(trace::TraceSink &down, const CacheConfig &l1,
                const CacheConfig &l2, bool is_instr = false)
        : down_(down), filter_(l1, l2), l1_(l1), is_instr_(is_instr),
          has_l2_(true)
    {}

    /**
     * Split the filter by L1 set index across @p pool. No-op (stays
     * serial) when the configuration is not decomposable: an L2 uses a
     * different set mask, and RANDOM replacement draws from one RNG
     * stream shared across sets. Must be called before the first
     * write(); @p pool must outlive the stage.
     * @param shards replica count; 0 = pool size (capped at L1 sets)
     */
    void shard(parallel::ThreadPool &pool, size_t shards = 0);

    void write(const uint64_t *vals, size_t n) override;

    void close() override { down_.close(); }

    /** @return I-cache statistics, aggregated across shard replicas. */
    CacheStats icacheStats() const;

    /** @return D-cache statistics, aggregated across shard replicas. */
    CacheStats dcacheStats() const;

    /** @return shard replica count; 0 while serial. */
    size_t shardCount() const { return shards_.size(); }

  private:
    void writeSharded(const uint64_t *vals, size_t n);

    trace::TraceSink &down_;
    CacheFilter filter_; // serial mode; unused once sharded
    CacheConfig l1_;
    bool is_instr_;
    bool has_l2_ = false;
    bool started_ = false;
    std::vector<uint64_t> batch_;

    // Sharded mode: shard s owns the sets with index ≡ s (mod count).
    parallel::ThreadPool *pool_ = nullptr;
    std::vector<CacheFilter> shards_;
    uint32_t block_shift_ = 0;
    uint32_t set_mask_ = 0;
    std::vector<std::vector<uint32_t>> shard_idx_; // input positions
    std::vector<uint8_t> is_miss_;                 // per input position
    std::vector<uint64_t> miss_vals_;
};

} // namespace atc::cache

#endif // ATC_CACHE_FILTER_HPP_
