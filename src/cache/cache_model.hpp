/**
 * @file
 * Set-associative cache model.
 *
 * Substrate for the trace-collection pipeline (the paper filters its
 * address streams through 32 KB 4-way LRU L1 I/D caches) and for
 * validating the stack-distance simulator. Tag-only: no data storage.
 */

#ifndef ATC_CACHE_CACHE_MODEL_HPP_
#define ATC_CACHE_CACHE_MODEL_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atc::cache {

/** Replacement policies supported by CacheModel. */
enum class ReplPolicy
{
    LRU,
    FIFO,
    RANDOM,
};

/** Geometry and policy of one cache level. */
struct CacheConfig
{
    /** Number of sets; must be a power of two. */
    uint32_t sets = 128;
    /** Associativity (ways per set). */
    uint32_t ways = 4;
    /** Block size in bytes; must be a power of two. */
    uint32_t block_bytes = 64;
    /** Replacement policy. */
    ReplPolicy policy = ReplPolicy::LRU;

    /** @return total capacity in bytes. */
    uint64_t
    capacityBytes() const
    {
        return static_cast<uint64_t>(sets) * ways * block_bytes;
    }

    /** 32 KB, 4-way, 64 B blocks, LRU — the paper's L1 configuration. */
    static CacheConfig
    paperL1()
    {
        return {128, 4, 64, ReplPolicy::LRU};
    }
};

/** Hit/miss counters. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    /** @return miss ratio, 0 when no accesses were made. */
    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** One set-associative, tag-only cache. */
class CacheModel
{
  public:
    /** @param config geometry; sets and block size must be powers of 2 */
    explicit CacheModel(const CacheConfig &config);

    /**
     * Access a byte address.
     * @return true on hit; on miss the block is filled (allocate-always)
     */
    bool access(uint64_t byte_addr);

    /**
     * Access a block address directly (already shifted by block bits).
     */
    bool accessBlock(uint64_t block_addr);

    /**
     * Access a block address, tracking dirtiness for write-back
     * modelling.
     *
     * @param block_addr    block address
     * @param is_write      marks the block dirty on hit or fill
     * @param evicted_dirty receives the block address of a dirty line
     *                      evicted by this access, if any
     * @return true on hit
     */
    bool accessBlock(uint64_t block_addr, bool is_write,
                     std::optional<uint64_t> &evicted_dirty);

    /** @return block address for @p byte_addr under this geometry. */
    uint64_t
    blockAddr(uint64_t byte_addr) const
    {
        return byte_addr >> block_shift_;
    }

    /** @return accumulated statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Invalidate all blocks and reset statistics. */
    void reset();

    /** @return the configuration this model was built with. */
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t order = 0; // LRU timestamp or FIFO insertion index
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    uint32_t block_shift_;
    uint32_t set_mask_;
    std::vector<Line> lines_; // sets * ways, row-major by set
    uint64_t tick_ = 0;
    uint64_t rand_state_;
    CacheStats stats_;
};

} // namespace atc::cache

#endif // ATC_CACHE_CACHE_MODEL_HPP_
