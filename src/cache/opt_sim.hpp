/**
 * @file
 * Miss-ratio simulation under optimal (Belady/MIN) replacement.
 *
 * The Cheetah simulator the paper uses for Figure 3 (Sugumar &
 * Abraham, "Efficient simulation of caches under optimal replacement")
 * is built around exactly this capability: OPT miss ratios expose how
 * much of a miss curve is replacement-policy artefact vs. inherent
 * reuse. This implementation is offline (two passes): a first pass
 * records each reference's next-use time, a second simulates MIN by
 * evicting the block in the set whose next use is farthest away.
 *
 * Complexity: O(N log A) with a per-set ordered structure over at most
 * `ways` resident blocks.
 */

#ifndef ATC_CACHE_OPT_SIM_HPP_
#define ATC_CACHE_OPT_SIM_HPP_

#include <cstdint>
#include <vector>

namespace atc::cache {

/** Result of an OPT simulation over one geometry. */
struct OptResult
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t cold_misses = 0;

    /** @return miss ratio, 0 when empty. */
    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * Simulate a set-associative cache with MIN replacement over a
 * block-address trace.
 *
 * @param trace block addresses in reference order
 * @param sets  number of sets (power of two)
 * @param ways  associativity
 * @return miss counters
 */
OptResult simulateOpt(const std::vector<uint64_t> &trace, uint32_t sets,
                      uint32_t ways);

} // namespace atc::cache

#endif // ATC_CACHE_OPT_SIM_HPP_
