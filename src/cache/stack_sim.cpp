#include "cache/stack_sim.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atc::cache {

StackSimulator::StackSimulator(uint32_t sets, uint32_t max_ways)
    : sets_(sets), max_ways_(max_ways), set_mask_(sets - 1),
      stacks_(sets), hist_(max_ways, 0)
{
    ATC_CHECK(sets_ != 0 && (sets_ & (sets_ - 1)) == 0,
              "stack simulator set count must be a power of two");
    ATC_CHECK(max_ways_ >= 1, "stack simulator needs max_ways >= 1");
}

void
StackSimulator::access(uint64_t block_addr)
{
    if (warmup_)
        ++warmup_accesses_;
    else
        ++accesses_;
    uint32_t set = static_cast<uint32_t>(block_addr) & set_mask_;
    uint64_t tag = block_addr >> __builtin_ctz(sets_);
    std::vector<uint64_t> &stack = stacks_[set];

    // Find the tag's depth (1-based); an access at depth d hits in any
    // cache of this set count with associativity >= d.
    for (size_t d = 0; d < stack.size(); ++d) {
        if (stack[d] == tag) {
            if (!warmup_)
                hist_[d]++;
            // Move to front.
            for (size_t i = d; i > 0; --i)
                stack[i] = stack[i - 1];
            stack[0] = tag;
            return;
        }
    }

    // Not in the tracked window: cold miss if we've never truncated this
    // deep, otherwise a reuse beyond max_ways; both miss at every
    // tracked associativity, so the distinction is informational.
    if (!warmup_) {
        if (stack.size() < max_ways_)
            ++cold_;
        else
            ++deep_;
    }
    stack.insert(stack.begin(), tag);
    if (stack.size() > max_ways_)
        stack.pop_back();
}

void
StackSimulator::resetStacks()
{
    for (std::vector<uint64_t> &stack : stacks_)
        stack.clear();
}

void
StackSimulator::merge(const StackSimulator &other)
{
    ATC_CHECK(sets_ == other.sets_ && max_ways_ == other.max_ways_,
              "merging stack simulators of different geometries");
    for (uint32_t d = 0; d < max_ways_; ++d)
        hist_[d] += other.hist_[d];
    cold_ += other.cold_;
    deep_ += other.deep_;
    accesses_ += other.accesses_;
    warmup_accesses_ += other.warmup_accesses_;
}

uint64_t
StackSimulator::missCount(uint32_t ways) const
{
    ATC_CHECK(ways >= 1 && ways <= max_ways_,
              "associativity outside simulated range");
    uint64_t hits = 0;
    for (uint32_t d = 0; d < ways; ++d)
        hits += hist_[d];
    return accesses_ - hits;
}

double
StackSimulator::missRatio(uint32_t ways) const
{
    return accesses_ ? static_cast<double>(missCount(ways)) / accesses_
                     : 0.0;
}

std::vector<double>
lruMissRatios(const std::vector<uint64_t> &block_addrs, uint32_t sets,
              uint32_t max_ways)
{
    StackSimulator sim(sets, max_ways);
    for (uint64_t addr : block_addrs)
        sim.access(addr);
    std::vector<double> ratios(max_ways);
    for (uint32_t w = 1; w <= max_ways; ++w)
        ratios[w - 1] = sim.missRatio(w);
    return ratios;
}

double
missRatioError(const std::vector<uint64_t> &reference,
               const std::vector<uint64_t> &approximation, uint32_t sets,
               uint32_t max_ways)
{
    std::vector<double> ref = lruMissRatios(reference, sets, max_ways);
    std::vector<double> approx =
        lruMissRatios(approximation, sets, max_ways);
    double worst = 0.0;
    for (uint32_t w = 0; w < max_ways; ++w) {
        double d = ref[w] - approx[w];
        worst = std::max(worst, d < 0 ? -d : d);
    }
    return worst;
}

} // namespace atc::cache
