#include "cache/opt_sim.hpp"

#include <set>
#include <unordered_map>

#include "util/status.hpp"

namespace atc::cache {

OptResult
simulateOpt(const std::vector<uint64_t> &trace, uint32_t sets,
            uint32_t ways)
{
    ATC_CHECK(sets != 0 && (sets & (sets - 1)) == 0,
              "OPT simulator set count must be a power of two");
    ATC_CHECK(ways >= 1, "OPT simulator needs ways >= 1");

    OptResult result;
    result.accesses = trace.size();
    const size_t n = trace.size();
    const uint64_t kNever = ~0ull;

    // Pass 1: next_use[i] = index of the next reference to trace[i]'s
    // block, or kNever. Built by scanning backwards with a last-seen
    // map.
    std::vector<uint64_t> next_use(n);
    {
        std::unordered_map<uint64_t, uint64_t> last_seen;
        last_seen.reserve(n / 4 + 16);
        for (size_t i = n; i-- > 0;) {
            auto it = last_seen.find(trace[i]);
            next_use[i] = it == last_seen.end() ? kNever : it->second;
            last_seen[trace[i]] = i;
        }
    }

    // Pass 2: per-set simulation. Each set keeps its resident blocks in
    // an ordered set keyed by (next_use, block), so the victim under
    // MIN is simply the largest key.
    struct SetState
    {
        // (next use index, block) ordered ascending; resident blocks.
        std::set<std::pair<uint64_t, uint64_t>> order;
        std::unordered_map<uint64_t, uint64_t> resident; // block -> key
    };
    std::vector<SetState> state(sets);
    const uint32_t set_mask = sets - 1;

    for (size_t i = 0; i < n; ++i) {
        uint64_t block = trace[i];
        SetState &s = state[static_cast<uint32_t>(block) & set_mask];

        auto it = s.resident.find(block);
        if (it != s.resident.end()) {
            // Hit: re-key the block to its new next use.
            s.order.erase({it->second, block});
            s.order.insert({next_use[i], block});
            it->second = next_use[i];
            continue;
        }

        ++result.misses;
        if (s.resident.size() < ways) {
            ++result.cold_misses;
        } else {
            // Evict the block whose next use is farthest in the future
            // (kNever sorts last, so never-reused blocks go first).
            auto victim = std::prev(s.order.end());
            s.resident.erase(victim->second);
            s.order.erase(victim);
        }
        s.order.insert({next_use[i], block});
        s.resident[block] = next_use[i];
    }
    return result;
}

} // namespace atc::cache
