/**
 * @file
 * Single-pass multi-associativity LRU simulation (Cheetah-style).
 *
 * For a fixed number of sets, one pass over a block-address trace
 * yields the miss ratio of *every* associativity 1..max_ways at once,
 * via per-set LRU stack distances — the inclusion property the Cheetah
 * simulator exploits. Used to regenerate Figures 3 and 4.
 */

#ifndef ATC_CACHE_STACK_SIM_HPP_
#define ATC_CACHE_STACK_SIM_HPP_

#include <cstdint>
#include <vector>

namespace atc::cache {

/** Per-set LRU stack simulator for associativities 1..max_ways. */
class StackSimulator
{
  public:
    /**
     * @param sets     number of cache sets (power of two)
     * @param max_ways largest associativity of interest
     */
    StackSimulator(uint32_t sets, uint32_t max_ways);

    /** Feed one block address. */
    void access(uint64_t block_addr);

    /**
     * Warm-up discard seam for sampled simulation: while on, access()
     * still updates the recency stacks (the cache state warms) and
     * tallies warmupAccesses(), but records nothing into the
     * histogram, miss, or access statistics. Windows fed as
     * warmup-then-measure report only the measured region.
     */
    void setWarmup(bool on) { warmup_ = on; }

    /** @return accesses consumed while setWarmup(true) was active. */
    uint64_t warmupAccesses() const { return warmup_accesses_; }

    /**
     * Forget all recency state (per-set stacks) while keeping every
     * recorded statistic. This is the state-reset seam that makes
     * per-window results combine exactly: simulating windows A and B
     * independently and merge()-ing equals one pass over A+B with a
     * resetStacks() at the boundary.
     */
    void resetStacks();

    /**
     * Fold @p other's recorded statistics into this simulator.
     * Geometries must match. Recency stacks are not merged (they are
     * transient state, not statistics); per-window simulators each
     * start cold, so merged counts equal a single boundary-reset pass.
     */
    void merge(const StackSimulator &other);

    /**
     * Miss ratio for a cache of this set count and @p ways ways.
     * @param ways associativity in [1, max_ways]
     */
    double missRatio(uint32_t ways) const;

    /** @return misses for associativity @p ways (incl. cold misses). */
    uint64_t missCount(uint32_t ways) const;

    /** @return total accesses observed. */
    uint64_t accesses() const { return accesses_; }

    /** @return stack distance histogram; index d = hits at depth d+1. */
    const std::vector<uint64_t> &distanceHistogram() const { return hist_; }

    /** @return number of cold (first-reference) misses. */
    uint64_t coldMisses() const { return cold_; }

  private:
    uint32_t sets_;
    uint32_t max_ways_;
    uint32_t set_mask_;
    // Per-set MRU-ordered tag stacks, truncated at max_ways entries.
    std::vector<std::vector<uint64_t>> stacks_;
    // hist_[d] = number of accesses whose LRU stack distance was d+1.
    std::vector<uint64_t> hist_;
    uint64_t cold_ = 0;     // first-touch misses
    uint64_t deep_ = 0;     // reuses deeper than max_ways
    uint64_t accesses_ = 0;
    bool warmup_ = false;   // suppress stats, keep warming the stacks
    uint64_t warmup_accesses_ = 0;
};

/**
 * One-shot convenience over StackSimulator: miss ratios of an LRU
 * cache with @p sets sets for every associativity 1..max_ways, from a
 * single pass over @p block_addrs. Index w-1 holds the w-way ratio.
 */
std::vector<double> lruMissRatios(const std::vector<uint64_t> &block_addrs,
                                  uint32_t sets, uint32_t max_ways);

/**
 * Largest absolute miss-ratio difference between two block-address
 * traces, across associativities 1..max_ways at @p sets sets — the
 * matrix bench's lossy-fidelity metric: simulate the original and the
 * regenerated trace, and report how far the worst cache configuration
 * drifts. 0.0 means the traces are indistinguishable to every
 * simulated cache.
 */
double missRatioError(const std::vector<uint64_t> &reference,
                      const std::vector<uint64_t> &approximation,
                      uint32_t sets, uint32_t max_ways);

} // namespace atc::cache

#endif // ATC_CACHE_STACK_SIM_HPP_
