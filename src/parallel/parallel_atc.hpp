/**
 * @file
 * Parallel chunked compression engine.
 *
 * ParallelAtcWriter / ParallelAtcReader are drop-in TraceSink /
 * TraceSource stages producing and consuming the exact container
 * format of the serial AtcWriter/AtcReader — for any thread count the
 * emitted bytes (INFO preamble and every chunk file) are identical to
 * the serial path, so containers stay interchangeable.
 *
 * Writer: the caller thread runs the cheap, order-dependent work (the
 * bytesort transform in lossless mode; interval signatures and the
 * imitation decision in lossy mode) and dispatches the dominant cost —
 * per-block codec compression (BWT/suffix array) or whole-chunk
 * compression — to a fixed thread pool. Results come back as futures
 * kept in submission order and are reassembled in order into the
 * container, with a bounded in-flight window for backpressure.
 *
 * Reader: opens a shared core::AtcIndex snapshot (INFO + per-chunk v3
 * frame layouts) and drives everything off it. In lossy mode upcoming
 * chunks are decoded ahead concurrently (distinct chunks only;
 * imitated intervals reuse the decoded chunk). In lossless mode the
 * path depends on the container version: v3's seekable framing gets
 * true block-parallel decode — a scanner thread walks the indexed
 * frames and dispatches compressed payloads to the pool, with ordered
 * reassembly and the CRC trailer verified across the reassembled
 * stream — while v1/v2 fall back to a single background decoder
 * pipelining batches through a bounded channel. cursor() mints
 * seekable random-access cursors whose readRange() fans frame decodes
 * out on the same pool. Abandoning either side mid-stream never
 * deadlocks: destruction closes the channels, which unblocks every
 * worker.
 */

#ifndef ATC_PARALLEL_PARALLEL_ATC_HPP_
#define ATC_PARALLEL_PARALLEL_ATC_HPP_

#include <deque>
#include <exception>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "atc/atc.hpp"
#include "parallel/channel.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/pipeline.hpp"
#include "util/status.hpp"

namespace atc::parallel {

/** Knobs of the parallel drivers. */
struct ParallelOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    size_t threads = 0;
    /** In-flight blocks/chunks ahead of the reassembly point;
     *  0 = 2 * threads. Bounds memory and provides backpressure. */
    size_t lookahead = 0;
    /** Budget of the reader's shared decoded-block cache (forwarded
     *  to core::IndexOptions::cache_bytes; 0 disables it). The
     *  sequential decode consults it but never populates it — a full
     *  scan must not churn the seek working set — while cursors
     *  minted via cursor() both consult and populate. */
    size_t cache_bytes = core::kDefaultDecodedCacheBytes;
};

/** Compressing side; byte-identical to AtcWriter for any thread count. */
class ParallelAtcWriter : public trace::TraceSink
{
  public:
    /**
     * Write into an existing store. The store is only touched from the
     * caller thread (ordered reassembly), so any ChunkStore works.
     * @throws util::Error on a malformed or unknown codec spec
     */
    ParallelAtcWriter(core::ChunkStore &store,
                      const core::AtcOptions &options,
                      const ParallelOptions &popt = {});

    /** Write into a directory container (created if needed). */
    ParallelAtcWriter(const std::string &dir,
                      const core::AtcOptions &options,
                      const ParallelOptions &popt = {});

    /** Non-throwing constructor wrapper. */
    static util::StatusOr<std::unique_ptr<ParallelAtcWriter>> open(
        core::ChunkStore &store, const core::AtcOptions &options,
        const ParallelOptions &popt = {});

    /** Non-throwing constructor wrapper (directory layout). */
    static util::StatusOr<std::unique_ptr<ParallelAtcWriter>> open(
        const std::string &dir, const core::AtcOptions &options,
        const ParallelOptions &popt = {});

    /** Abandons cleanly (no deadlock) when close() was never called. */
    ~ParallelAtcWriter() override;

    ParallelAtcWriter(const ParallelAtcWriter &) = delete;
    ParallelAtcWriter &operator=(const ParallelAtcWriter &) = delete;

    /** Compress a batch of values — the primary entry point. */
    void write(const uint64_t *vals, size_t n) override;

    /** Compress one 64-bit value. */
    void code(uint64_t value) { write(&value, 1); }

    /** Drain the pool, reassemble, and write INFO. */
    void close() override;

    /** close(), reporting failures as a Status instead of throwing. */
    util::Status tryClose();

    /** @return values coded so far. */
    uint64_t count() const { return count_; }

    /** @return worker threads in the pool. */
    size_t threads() const { return pool_.size(); }

    /** @return lossy counters; valid after close() in lossy mode. */
    const core::LossyStats &lossyStats() const;

  private:
    friend class LosslessBlockSink;

    void init();
    void onTransformedBytes(const uint8_t *data, size_t n);
    void dispatchBlock();
    void dispatchChunk(uint32_t id, std::vector<uint64_t> payload);
    void drainBlocks(size_t keep);
    void drainChunks(size_t keep);
    void writeLossy(const uint64_t *vals, size_t n);
    void dispatchInterval();
    void drainSignatures(size_t keep);

    std::unique_ptr<core::ChunkStore> owned_store_;
    core::ChunkStore *store_;
    core::AtcOptions options_;
    comp::ConfiguredCodec codec_;
    size_t lookahead_;
    ThreadPool pool_;
    uint64_t count_ = 0;
    bool closed_ = false;

    // Lossless mode: transform on the caller thread, codec blocks in
    // the pool, frames reassembled in submission order. Each pooled
    // task returns the encoded frame plus its index entry so the
    // writer can emit the v3 frame index at close.
    using EncodedFrame =
        std::pair<std::vector<uint8_t>, comp::FrameIndexEntry>;
    std::unique_ptr<util::ByteSink> chunk_sink_;
    std::unique_ptr<util::ByteSink> block_sink_; // feeds onTransformedBytes
    std::unique_ptr<core::TransformEncoder> transform_;
    size_t block_size_ = 0;
    std::vector<uint8_t> block_buf_;
    util::Crc32 raw_crc_;
    std::deque<std::future<EncodedFrame>> pending_blocks_;
    std::vector<comp::FrameIndexEntry> frame_index_;

    // Lossy mode: the caller thread slices input into interval-sized
    // payloads and pools the signature computation (pure, per-payload);
    // signatures drain in submission order into the encoder's
    // order-dependent decision stage (writeInterval), so records and
    // chunks come out byte-identical to the serial path. Chunk
    // compression pools through the ChunkFn seam as before. Tasks own
    // their payload via shared_ptr, so an abandoned writer (queue
    // outliving the deque) never leaves a worker on freed memory.
    struct PendingInterval
    {
        std::shared_ptr<std::vector<uint64_t>> payload;
        std::future<core::IntervalSignature> sig;
    };
    std::unique_ptr<core::LossyEncoder> lossy_;
    std::vector<uint64_t> interval_buf_;
    std::deque<PendingInterval> pending_sigs_;
    std::deque<std::pair<uint32_t, std::future<std::vector<uint8_t>>>>
        pending_chunks_;
};

/** Decompressing side with concurrent chunk prefetch. */
class ParallelAtcReader : public trace::TraceSource
{
  public:
    /**
     * Read from an existing store. The store must stay immutable while
     * the reader lives; chunks are opened from worker threads.
     * @throws util::Error on missing/corrupt INFO
     */
    explicit ParallelAtcReader(core::ChunkStore &store,
                               const ParallelOptions &popt = {});

    /** Read from a directory container (suffix auto-detected). */
    explicit ParallelAtcReader(const std::string &dir,
                               const ParallelOptions &popt = {});

    /** Non-throwing constructor wrapper. */
    static util::StatusOr<std::unique_ptr<ParallelAtcReader>> open(
        core::ChunkStore &store, const ParallelOptions &popt = {});

    /** Non-throwing constructor wrapper (directory, auto-detect). */
    static util::StatusOr<std::unique_ptr<ParallelAtcReader>> open(
        const std::string &dir, const ParallelOptions &popt = {});

    /** Abandons cleanly (no deadlock) mid-stream. */
    ~ParallelAtcReader() override;

    ParallelAtcReader(const ParallelAtcReader &) = delete;
    ParallelAtcReader &operator=(const ParallelAtcReader &) = delete;

    /**
     * Decompress up to @p n values — the primary entry point.
     * @return values produced; 0 means end of trace
     * @throws util::Error on truncated/corrupt chunk data
     */
    size_t read(uint64_t *out, size_t n) override;

    /** read(), reporting corruption as a Status instead of throwing. */
    util::StatusOr<size_t> tryRead(uint64_t *out, size_t n);

    /** @return the container's compression mode. */
    core::Mode mode() const { return index_->mode(); }

    /** @return the codec spec recorded in INFO. */
    const std::string &codecSpec() const
    {
        return index_->info().codec_spec;
    }

    /** @return total values in the trace, from INFO. */
    uint64_t count() const { return index_->size(); }

    /** @return the container format version recorded in INFO. */
    uint8_t containerVersion() const { return index_->version(); }

    /** @return the shared seek-metadata snapshot of this container. */
    const std::shared_ptr<const core::AtcIndex> &index() const
    {
        return index_;
    }

    /**
     * Mint an independent seekable cursor wired to this reader's
     * thread pool, so readRange() decodes the covering frames in
     * parallel. The cursor shares the immutable index but must not
     * outlive this reader (it borrows the pool).
     */
    std::unique_ptr<core::AtcCursor> cursor() const;

  private:
    friend class DecodedFrameSource;

    using ChunkPtr = std::shared_ptr<const std::vector<uint64_t>>;

    void start();
    void startSeekableLossless();
    void scanFrames();
    void scheduleAhead();
    ChunkPtr loadChunk(uint32_t id);
    bool nextInterval();
    size_t readLossless(uint64_t *out, size_t n);
    size_t readSeekableLossless(uint64_t *out, size_t n);
    size_t readLossy(uint64_t *out, size_t n);

    /** Shared seek-metadata snapshot; also the scanner's frame map.
     *  Owns the store for directory-opened readers, so index() and
     *  cursors survive the reader itself. */
    std::shared_ptr<const core::AtcIndex> index_;
    core::ChunkStore *store_;
    size_t lookahead_;
    uint64_t delivered_ = 0;

    /** @return the parsed INFO held by the index. */
    const core::ContainerInfo &info() const { return index_->info(); }

    // Lossless mode, legacy framing (v1/v2): one background decoder
    // feeding a bounded channel — frames cannot be located without
    // decoding, so the stream is pipeline-parallel only.
    std::unique_ptr<Channel<std::vector<uint64_t>>> batches_;
    std::future<void> producer_;
    std::vector<uint64_t> batch_;
    size_t batch_pos_ = 0;
    bool drained_ = false;

    // Lossless mode, seekable framing (v3): a scanner thread walks
    // frame headers (compressed extents make that possible without
    // decoding) and dispatches each compressed frame to the pool; the
    // caller thread reassembles decoded frames in scan order through
    // the bounded channel, runs the cheap inverse transform, and
    // verifies the CRC trailer across the reassembled stream.
    std::unique_ptr<Channel<std::future<std::vector<uint8_t>>>> frames_;
    std::thread scanner_;
    std::exception_ptr scan_error_;
    uint32_t stored_crc_ = 0;
    std::unique_ptr<util::ByteSource> frame_source_;
    std::unique_ptr<core::TransformDecoder> transform_dec_;
    bool stream_verified_ = false;

    // Lossy mode: concurrent decode of upcoming distinct chunks.
    std::unordered_map<uint32_t, std::shared_future<ChunkPtr>> decodes_;
    std::list<uint32_t> lru_; // front = most recent
    size_t cache_cap_ = 0;
    size_t record_idx_ = 0;
    std::vector<uint64_t> interval_;
    size_t pos_ = 0;

    // Joined (after channel close) before the members above die.
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace atc::parallel

#endif // ATC_PARALLEL_PARALLEL_ATC_HPP_
