/**
 * @file
 * Bounded MPMC channel: the work/result conduit of the parallel
 * subsystem.
 *
 * A Channel<T> is a fixed-capacity FIFO safe for any number of
 * producers and consumers. push() blocks while the channel is full;
 * pop() blocks while it is empty. close() wakes every waiter: further
 * push() calls fail, and pop() drains the remaining items before
 * reporting end-of-channel. Either side may close, which is what makes
 * mid-stream cancellation deadlock-free — a producer blocked in push()
 * unblocks the moment the consumer closes, and vice versa.
 */

#ifndef ATC_PARALLEL_CHANNEL_HPP_
#define ATC_PARALLEL_CHANNEL_HPP_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace atc::parallel {

namespace detail {

// Blocked-wait histograms, shared by every Channel<T> instantiation.
// The uncontended fast path never reads a clock: time is taken only
// when the wait predicate is already unsatisfied under the lock, i.e.
// the caller is about to block regardless.
inline obs::Histogram &
channelPushWaitHist()
{
    static obs::Histogram &h =
        obs::Registry::global().histogram("channel.push_wait_us");
    return h;
}

inline obs::Histogram &
channelPopWaitHist()
{
    static obs::Histogram &h =
        obs::Registry::global().histogram("channel.pop_wait_us");
    return h;
}

}  // namespace detail

/** Fixed-capacity multi-producer multi-consumer queue. */
template <typename T>
class Channel
{
  public:
    /** @param capacity maximum queued items; must be positive. */
    explicit Channel(size_t capacity) : capacity_(capacity)
    {
        ATC_ASSERT(capacity_ > 0);
    }

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /**
     * Enqueue @p item, blocking while the channel is full.
     * @return false if the channel was closed (item dropped)
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!closed_ && queue_.size() >= capacity_) {
            obs::LatencyTimer wait_t(detail::channelPushWaitHist());
            not_full_.wait(lock, [this] {
                return closed_ || queue_.size() < capacity_;
            });
        }
        if (closed_)
            return false;
        queue_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while the channel is empty.
     * A closed channel still drains its remaining items.
     * @return false when the channel is closed and empty
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!closed_ && queue_.empty()) {
            obs::LatencyTimer wait_t(detail::channelPopWaitHist());
            not_empty_.wait(lock, [this] {
                return closed_ || !queue_.empty();
            });
        }
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /**
     * Non-blocking enqueue: the admission-control primitive — a caller
     * that must never block (e.g. a poll loop) parks the item itself
     * when the channel is full instead of stalling inside push().
     * @return false when the channel is full or closed (item dropped)
     */
    bool
    tryPush(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_ || queue_.size() >= capacity_)
            return false;
        queue_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Non-blocking dequeue.
     * @return false when no item was immediately available
     */
    bool
    tryPop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /** Close the channel, waking all blocked producers and consumers. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    /** @return true once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** @return items currently queued. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> queue_;
    size_t capacity_;
    bool closed_ = false;
};

} // namespace atc::parallel

#endif // ATC_PARALLEL_CHANNEL_HPP_
