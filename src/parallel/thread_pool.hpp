/**
 * @file
 * Fixed-size thread pool over a bounded MPMC task channel.
 *
 * submit() enqueues a task, blocking when the queue is full — bounded
 * submission is the backpressure mechanism that keeps a fast producer
 * (e.g. a trace generator) from buffering unbounded work. async() wraps
 * submit() with a std::future for the task's result; callers that need
 * ordered reassembly keep their futures in a deque and resolve them in
 * submission order.
 *
 * Destruction closes the task channel, runs the tasks already queued,
 * and joins the workers; abandoned futures never deadlock because
 * workers block only on the channel, never on callers.
 */

#ifndef ATC_PARALLEL_THREAD_POOL_HPP_
#define ATC_PARALLEL_THREAD_POOL_HPP_

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/channel.hpp"

namespace atc::parallel {

/** @return a sensible worker count: @p requested, or the hardware
 *  concurrency when @p requested is 0 (at least 1). */
size_t resolveThreads(size_t requested);

/** Fixed-size worker pool consuming a bounded task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads        worker count; 0 = hardware concurrency
     * @param queue_capacity bounded task-queue depth; 0 = 2 * threads
     */
    explicit ThreadPool(size_t threads = 0, size_t queue_capacity = 0);

    /** Close the queue, finish queued tasks, join the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return worker count. */
    size_t size() const { return workers_.size(); }

    /**
     * Enqueue @p task; blocks while the queue is full.
     * @return false if the pool is shutting down (task dropped)
     */
    bool submit(std::function<void()> task);

    /**
     * Enqueue @p fn and expose its result (or exception) as a future.
     * @throws util::Error when the pool is shutting down
     */
    template <typename F>
    auto
    async(F fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // packaged_task is move-only; std::function requires copyable
        // targets, so the task rides in a shared_ptr.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> future = task->get_future();
        if (!submit([task] { (*task)(); }))
            util::raise("thread pool is shut down");
        return future;
    }

    /** Close the queue, finish queued tasks, and join (idempotent). */
    void shutdown();

  private:
    // Tasks carry their enqueue timestamp so the worker that dequeues
    // one can record queue latency (pool.queue_wait_us) before running
    // it; execution time lands in pool.worker_busy_us. Note the serve
    // daemon's attachWorkers drain loops are single long-lived tasks,
    // so for the daemon busy time covers the whole drain, not one
    // request (the serve layer has its own per-request histograms).
    struct Task {
        std::function<void()> fn;
        uint64_t enqueue_ns = 0;
    };
    Channel<Task> tasks_;
    std::vector<std::thread> workers_;
};

} // namespace atc::parallel

#endif // ATC_PARALLEL_THREAD_POOL_HPP_
