/**
 * @file
 * Typed job queues over the thread pool: the job-server seam.
 *
 * ThreadPool's own task channel is untyped (std::function) and shared
 * by every subsystem borrowing the pool. A server wants the opposite:
 * a *typed* queue it controls — bounded for backpressure, inspectable
 * for admission control, closable for shutdown — with the pool merely
 * supplying the threads. attachWorkers() bridges the two: it parks N
 * pool workers in a drain loop over a caller-owned Channel<Job>, so
 * jobs are plain structs, the queue depth is the caller's knob, and
 * closing the channel releases the workers back to the pool.
 *
 * Lifetime: the channel and the handler must outlive the drain loops,
 * i.e. survive until the channel is closed AND the pool has finished
 * the attached tasks (pool shutdown/destruction joins them). The
 * conventional order — channel member declared before the pool member
 * — gets this right by construction.
 */

#ifndef ATC_PARALLEL_JOB_QUEUE_HPP_
#define ATC_PARALLEL_JOB_QUEUE_HPP_

#include <cstddef>

#include "parallel/channel.hpp"
#include "parallel/thread_pool.hpp"

namespace atc::parallel {

/**
 * Park @p workers pool workers in a drain loop over @p queue: each
 * pops jobs and runs @p handler(job) until the channel is closed and
 * empty. The handler is copied per worker and may be called
 * concurrently from all of them.
 *
 * @return workers actually attached (less than requested only when
 *         the pool is shutting down)
 */
template <typename T, typename F>
size_t
attachWorkers(ThreadPool &pool, Channel<T> &queue, size_t workers,
              F handler)
{
    size_t attached = 0;
    for (size_t i = 0; i < workers; ++i) {
        bool ok = pool.submit([&queue, handler]() mutable {
            T job;
            while (queue.pop(job))
                handler(job);
        });
        if (!ok)
            break;
        ++attached;
    }
    return attached;
}

} // namespace atc::parallel

#endif // ATC_PARALLEL_JOB_QUEUE_HPP_
