#include "parallel/thread_pool.hpp"

namespace atc::parallel {

size_t
resolveThreads(size_t requested)
{
    if (requested != 0)
        return requested;
    size_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads, size_t queue_capacity)
    : tasks_(queue_capacity != 0 ? queue_capacity
                                 : 2 * resolveThreads(threads))
{
    size_t n = resolveThreads(threads);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] {
            std::function<void()> task;
            while (tasks_.pop(task))
                task();
        });
    }
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

bool
ThreadPool::submit(std::function<void()> task)
{
    return tasks_.push(std::move(task));
}

void
ThreadPool::shutdown()
{
    tasks_.close();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

} // namespace atc::parallel
