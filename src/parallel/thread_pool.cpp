#include "parallel/thread_pool.hpp"

namespace atc::parallel {

size_t
resolveThreads(size_t requested)
{
    if (requested != 0)
        return requested;
    size_t hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads, size_t queue_capacity)
    : tasks_(queue_capacity != 0 ? queue_capacity
                                 : 2 * resolveThreads(threads))
{
    size_t n = resolveThreads(threads);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] {
            auto &reg = obs::Registry::global();
            static obs::Histogram &queue_wait =
                reg.histogram("pool.queue_wait_us");
            static obs::Counter &busy_us =
                reg.counter("pool.worker_busy_us");
            static obs::Counter &tasks_run = reg.counter("pool.tasks");
            Task task;
            while (tasks_.pop(task)) {
                if (task.enqueue_ns != 0) {
                    uint64_t now = obs::nowNs();
                    if (now != 0)
                        queue_wait.record(
                            (now - task.enqueue_ns) / 1000);
                }
                tasks_run.inc();
                obs::StageTimer busy_t(busy_us);
                task.fn();
            }
        });
    }
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

bool
ThreadPool::submit(std::function<void()> task)
{
    return tasks_.push(Task{std::move(task), obs::nowNs()});
}

void
ThreadPool::shutdown()
{
    tasks_.close();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

} // namespace atc::parallel
