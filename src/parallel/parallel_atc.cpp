#include "parallel/parallel_atc.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "atc/info.hpp"
#include "obs/metrics.hpp"

namespace atc::parallel {

namespace {

/** Addresses per batch pushed by the lossless prefetch worker. */
constexpr size_t kReadBatch = 64 * 1024;

size_t
resolveLookahead(const ParallelOptions &popt)
{
    if (popt.lookahead != 0)
        return popt.lookahead;
    return 2 * resolveThreads(popt.threads);
}

core::IndexOptions
indexOptions(const ParallelOptions &popt)
{
    core::IndexOptions iopt;
    iopt.cache_bytes = popt.cache_bytes;
    return iopt;
}

} // namespace

/** ByteSink adapter routing transform output into the block slicer. */
class LosslessBlockSink : public util::ByteSink
{
  public:
    explicit LosslessBlockSink(ParallelAtcWriter &writer)
        : writer_(writer)
    {}

    void
    write(const uint8_t *data, size_t n) override
    {
        writer_.onTransformedBytes(data, n);
    }

  private:
    ParallelAtcWriter &writer_;
};

ParallelAtcWriter::ParallelAtcWriter(core::ChunkStore &store,
                                     const core::AtcOptions &options,
                                     const ParallelOptions &popt)
    : store_(&store), options_(options),
      codec_(comp::makeCodec(options.pipeline.codec)),
      lookahead_(resolveLookahead(popt)),
      pool_(popt.threads, std::max<size_t>(lookahead_, 1))
{
    init();
}

ParallelAtcWriter::ParallelAtcWriter(const std::string &dir,
                                     const core::AtcOptions &options,
                                     const ParallelOptions &popt)
    : owned_store_(std::make_unique<core::DirectoryStore>(
          dir, core::containerSuffix(options.pipeline.codec))),
      store_(owned_store_.get()), options_(options),
      codec_(comp::makeCodec(options.pipeline.codec)),
      lookahead_(resolveLookahead(popt)),
      pool_(popt.threads, std::max<size_t>(lookahead_, 1))
{
    init();
}

void
ParallelAtcWriter::init()
{
    ATC_CHECK(codec_.spec.size() < 256,
              "codec spec too long for INFO preamble");
    core::applyContainerVersion(options_.container_version,
                                options_.pipeline);
    options_.lossy.chunk_params = options_.pipeline;
    if (options_.mode == core::Mode::Lossless) {
        chunk_sink_ = store_->createChunk(0);
        block_size_ = codec_.blockOr(options_.pipeline.codec_block);
        block_buf_.reserve(block_size_);
        block_sink_ = std::make_unique<LosslessBlockSink>(*this);
        transform_ = std::make_unique<core::TransformEncoder>(
            options_.pipeline.transform, options_.pipeline.buffer_addrs,
            *block_sink_);
    } else {
        lossy_ = std::make_unique<core::LossyEncoder>(
            options_.lossy, *store_,
            [this](uint32_t id, std::vector<uint64_t> payload) {
                dispatchChunk(id, std::move(payload));
            });
    }
}

util::StatusOr<std::unique_ptr<ParallelAtcWriter>>
ParallelAtcWriter::open(core::ChunkStore &store,
                        const core::AtcOptions &options,
                        const ParallelOptions &popt)
{
    try {
        return std::make_unique<ParallelAtcWriter>(store, options, popt);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::unique_ptr<ParallelAtcWriter>>
ParallelAtcWriter::open(const std::string &dir,
                        const core::AtcOptions &options,
                        const ParallelOptions &popt)
{
    try {
        return std::make_unique<ParallelAtcWriter>(dir, options, popt);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

ParallelAtcWriter::~ParallelAtcWriter()
{
    // Abandoned without close(): drop the pending futures and let the
    // pool run out its queue. Workers never wait on the caller, so the
    // join in ~ThreadPool cannot deadlock.
}

void
ParallelAtcWriter::write(const uint64_t *vals, size_t n)
{
    ATC_ASSERT(!closed_);
    if (transform_)
        transform_->write(vals, n);
    else
        writeLossy(vals, n);
    count_ += n;
}

void
ParallelAtcWriter::writeLossy(const uint64_t *vals, size_t n)
{
    size_t interval = static_cast<size_t>(options_.lossy.interval_len);
    while (n > 0) {
        size_t room = interval - interval_buf_.size();
        size_t take = n < room ? n : room;
        interval_buf_.insert(interval_buf_.end(), vals, vals + take);
        vals += take;
        n -= take;
        if (interval_buf_.size() == interval)
            dispatchInterval();
    }
}

void
ParallelAtcWriter::dispatchInterval()
{
    auto payload = std::make_shared<std::vector<uint64_t>>(
        std::move(interval_buf_));
    interval_buf_ = std::vector<uint64_t>();
    interval_buf_.reserve(
        static_cast<size_t>(options_.lossy.interval_len));

    PendingInterval pending;
    pending.payload = payload;
    pending.sig = pool_.async([payload]() {
        return core::LossyEncoder::signatureOf(payload->data(),
                                               payload->size());
    });
    pending_sigs_.push_back(std::move(pending));
    drainSignatures(lookahead_);
}

void
ParallelAtcWriter::drainSignatures(size_t keep)
{
    while (pending_sigs_.size() > keep) {
        PendingInterval &front = pending_sigs_.front();
        core::IntervalSignature sig = front.sig.get();
        // The pooled task is resolved, so this thread owns the payload
        // again; writeInterval runs the serial decision stage and may
        // emit a chunk through dispatchChunk.
        lossy_->writeInterval(std::move(*front.payload), sig);
        pending_sigs_.pop_front();
    }
}

void
ParallelAtcWriter::onTransformedBytes(const uint8_t *data, size_t n)
{
    raw_crc_.update(data, n);
    while (n > 0) {
        size_t room = block_size_ - block_buf_.size();
        size_t take = n < room ? n : room;
        block_buf_.insert(block_buf_.end(), data, data + take);
        data += take;
        n -= take;
        if (block_buf_.size() == block_size_)
            dispatchBlock();
    }
}

void
ParallelAtcWriter::dispatchBlock()
{
    std::vector<uint8_t> raw = std::move(block_buf_);
    block_buf_ = std::vector<uint8_t>();
    block_buf_.reserve(block_size_);

    // The shared_ptr keeps the codec alive for the task even if the
    // writer is torn down before the pool drains. Frames go through
    // comp::encodeFrame — the same serialization the serial
    // StreamCompressor uses — so containers stay byte-identical.
    std::shared_ptr<const comp::Codec> codec = codec_.codec;
    comp::FrameFormat format = options_.pipeline.frame_format;
    pending_blocks_.push_back(
        pool_.async([codec, format, raw = std::move(raw)]() {
            comp::FrameIndexEntry entry;
            std::vector<uint8_t> frame = comp::encodeFrame(
                *codec, raw.data(), raw.size(), format, &entry);
            return EncodedFrame{std::move(frame), entry};
        }));
    drainBlocks(lookahead_);
}

void
ParallelAtcWriter::drainBlocks(size_t keep)
{
    while (pending_blocks_.size() > keep) {
        EncodedFrame frame = pending_blocks_.front().get();
        pending_blocks_.pop_front();
        chunk_sink_->write(frame.first.data(), frame.first.size());
        if (options_.pipeline.frame_format == comp::FrameFormat::Seekable)
            frame_index_.push_back(frame.second);
    }
}

void
ParallelAtcWriter::dispatchChunk(uint32_t id,
                                 std::vector<uint64_t> payload)
{
    pending_chunks_.emplace_back(
        id, pool_.async([params = options_.lossy.chunk_params,
                         payload = std::move(payload)]() {
            // Same stage counter the serial emitChunk path uses, so
            // lossy.chunk_compress_us is pool-vs-caller comparable
            // against lossy.signature_us/decision_us.
            static obs::Counter &chunk_us =
                obs::Registry::global().counter(
                    "lossy.chunk_compress_us");
            obs::StageTimer t(chunk_us);
            std::vector<uint8_t> bytes;
            util::VectorSink sink(bytes);
            core::LosslessWriter writer(params, sink);
            writer.write(payload.data(), payload.size());
            writer.finish();
            return bytes;
        }));
    drainChunks(lookahead_);
}

void
ParallelAtcWriter::drainChunks(size_t keep)
{
    // Chunk ids are dense and dispatched in increasing order, so
    // resolving the deque front-first reassembles the container in
    // exactly the serial path's order.
    while (pending_chunks_.size() > keep) {
        auto &[id, future] = pending_chunks_.front();
        std::vector<uint8_t> bytes = future.get();
        auto sink = store_->createChunk(id);
        sink->write(bytes.data(), bytes.size());
        sink->flush();
        pending_chunks_.pop_front();
    }
}

void
ParallelAtcWriter::close()
{
    if (closed_)
        return;
    if (transform_) {
        transform_->finish();
        if (!block_buf_.empty())
            dispatchBlock();
        drainBlocks(0);
        // Stream terminator, frame index (v3) and CRC trailer (v2+),
        // exactly as the serial LosslessWriter emits them.
        comp::writeStreamEnd(*chunk_sink_,
                             options_.pipeline.frame_format,
                             frame_index_);
        if (options_.pipeline.crc_trailer)
            util::writeLE<uint32_t>(*chunk_sink_, raw_crc_.value());
        chunk_sink_->flush();
        core::writeContainerInfo(*store_, codec_,
                                 options_.container_version,
                                 options_.mode, options_.pipeline,
                                 count_, nullptr, 0, nullptr);
    } else {
        // The trailing partial interval (if any) goes through the same
        // pooled-signature path; draining in order first keeps the
        // record sequence identical to the serial encoder's.
        if (!interval_buf_.empty())
            dispatchInterval();
        drainSignatures(0);
        lossy_->finish();
        drainChunks(0);
        core::writeContainerInfo(*store_, codec_,
                                 options_.container_version,
                                 options_.mode, options_.pipeline,
                                 count_, &options_.lossy,
                                 lossy_->stats().chunks_created,
                                 &lossy_->records());
    }
    closed_ = true;
}

util::Status
ParallelAtcWriter::tryClose()
{
    try {
        close();
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

const core::LossyStats &
ParallelAtcWriter::lossyStats() const
{
    ATC_CHECK(lossy_ != nullptr, "lossyStats requires lossy mode");
    return lossy_->stats();
}

ParallelAtcReader::ParallelAtcReader(core::ChunkStore &store,
                                     const ParallelOptions &popt)
    : index_(core::AtcIndex::openOrThrow(store, indexOptions(popt))),
      store_(&store), lookahead_(resolveLookahead(popt)),
      pool_(std::make_unique<ThreadPool>(
          popt.threads, std::max<size_t>(lookahead_, 1)))
{
    start();
}

ParallelAtcReader::ParallelAtcReader(const std::string &dir,
                                     const ParallelOptions &popt)
    : index_(core::AtcIndex::openOrThrow(
          std::make_unique<core::DirectoryStore>(
              dir, core::detectContainerSuffix(dir)),
          indexOptions(popt))),
      store_(&index_->store()), lookahead_(resolveLookahead(popt)),
      pool_(std::make_unique<ThreadPool>(
          popt.threads, std::max<size_t>(lookahead_, 1)))
{
    start();
}

std::unique_ptr<core::AtcCursor>
ParallelAtcReader::cursor() const
{
    core::CursorOptions copt;
    copt.pool = pool_.get();
    return index_->cursor(copt);
}

util::StatusOr<std::unique_ptr<ParallelAtcReader>>
ParallelAtcReader::open(core::ChunkStore &store,
                        const ParallelOptions &popt)
{
    try {
        return std::make_unique<ParallelAtcReader>(store, popt);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::unique_ptr<ParallelAtcReader>>
ParallelAtcReader::open(const std::string &dir,
                        const ParallelOptions &popt)
{
    try {
        return std::make_unique<ParallelAtcReader>(dir, popt);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

ParallelAtcReader::~ParallelAtcReader()
{
    // Unblock a prefetch worker stuck in push() before joining: either
    // side closing the channel is enough to end the stream. The v3
    // scanner joins before the pool so its pending async() submissions
    // resolve while workers are still alive.
    if (batches_)
        batches_->close();
    if (frames_)
        frames_->close();
    if (scanner_.joinable())
        scanner_.join();
    pool_.reset();
}

/**
 * ByteSource serving the decoded frames of a seekable stream in scan
 * order: pops one future at a time from the reader's bounded channel,
 * accumulating the CRC of the reassembled raw stream. Decode-worker
 * exceptions rethrow here (on the consuming thread) via future::get;
 * scanner-side errors rethrow through the reader's scan_error_ once
 * the channel drains.
 */
class DecodedFrameSource : public util::ByteSource
{
  public:
    explicit DecodedFrameSource(ParallelAtcReader &reader)
        : reader_(reader)
    {}

    size_t
    read(uint8_t *data, size_t n) override
    {
        size_t got = 0;
        while (got < n) {
            if (pos_ == current_.size()) {
                if (done_)
                    break;
                std::future<std::vector<uint8_t>> next;
                if (!reader_.frames_->pop(next)) {
                    done_ = true;
                    if (reader_.scan_error_)
                        std::rethrow_exception(reader_.scan_error_);
                    break;
                }
                current_ = next.get(); // rethrows decode-worker errors
                crc_.update(current_.data(), current_.size());
                pos_ = 0;
                continue;
            }
            size_t avail = current_.size() - pos_;
            size_t take = (n - got) < avail ? (n - got) : avail;
            std::memcpy(data + got, current_.data() + pos_, take);
            got += take;
            pos_ += take;
        }
        return got;
    }

    /** @return CRC-32 of the reassembled raw stream so far. */
    uint32_t crc() const { return crc_.value(); }

  private:
    ParallelAtcReader &reader_;
    std::vector<uint8_t> current_;
    size_t pos_ = 0;
    util::Crc32 crc_;
    bool done_ = false;
};

void
ParallelAtcReader::startSeekableLossless()
{
    frames_ = std::make_unique<
        Channel<std::future<std::vector<uint8_t>>>>(
        std::max<size_t>(lookahead_, 1));
    auto source = std::make_unique<DecodedFrameSource>(*this);
    transform_dec_ = std::make_unique<core::TransformDecoder>(
        info().pipeline.transform, *source);
    frame_source_ = std::move(source);
    // The index captured (and validated) the end-of-stream frame
    // index and CRC trailer at open, so the scanner never has to read
    // past the last frame.
    const comp::StreamLayout *layout = index_->chunkLayout(0);
    if (layout != nullptr && layout->has_crc)
        stored_crc_ = layout->crc;
    // A dedicated scanner thread (not a pool worker): it blocks on
    // decode-task futures and channel pushes, so parking it in the
    // pool could starve the decoders it feeds.
    scanner_ = std::thread([this] { scanFrames(); });
}

void
ParallelAtcReader::scanFrames()
{
    try {
        // Thin driver over the shared index: walk the scanned layout,
        // re-reading each header only as a cheap cross-check that the
        // stream still matches the snapshot.
        const comp::StreamLayout &layout = *index_->chunkLayout(0);
        auto src = store_->openChunk(0);
        core::BlockCache<uint8_t> &cache = index_->frameCache();
        for (size_t f = 0; f < layout.frames.size(); ++f) {
            // Consult (but never populate — a full scan would churn
            // the cursors' working set) the shared decoded-frame
            // cache: a hit skips the payload and ships a ready future.
            if (core::BlockCache<uint8_t>::Ptr hit = cache.get(
                    core::BlockCache<uint8_t>::frameKey(0, f))) {
                src->skip(layout.comp_starts[f + 1] -
                          layout.comp_starts[f]);
                std::promise<std::vector<uint8_t>> ready;
                ready.set_value(std::vector<uint8_t>(*hit));
                if (!frames_->push(ready.get_future()))
                    return; // consumer abandoned the stream
                continue;
            }
            // Zero-copy on mapped chunks: the payload borrows the
            // mapping, which the FramePayload's keepalive pins past
            // this scanner's source (the futures outlive it, crossing
            // the channel to the consumer thread). Memory-store
            // payloads borrow the store, which the documented reader
            // contract keeps alive and immutable.
            comp::FramePayload payload =
                comp::fetchIndexedFramePayload(*src, layout, f);

            std::shared_ptr<const comp::Codec> c = index_->codec().codec;
            size_t raw_size =
                static_cast<size_t>(layout.frames[f].raw_size);
            auto decoded =
                pool_->async([c, raw_size,
                              payload = std::move(payload)]() {
                    std::vector<uint8_t> raw;
                    comp::decodeSeekableFrame(*c, payload.data,
                                              payload.size,
                                              raw_size, raw);
                    return raw;
                });
            if (!frames_->push(std::move(decoded)))
                return; // consumer abandoned the stream
        }
    } catch (...) {
        // Published before close(): the channel mutex orders it ahead
        // of the consumer observing end-of-channel.
        scan_error_ = std::current_exception();
    }
    frames_->close();
}

void
ParallelAtcReader::start()
{
    if (info().mode == core::Mode::Lossless) {
        if (info().pipeline.frame_format == comp::FrameFormat::Seekable) {
            startSeekableLossless();
            return;
        }
        batches_ = std::make_unique<Channel<std::vector<uint64_t>>>(
            std::max<size_t>(lookahead_, 1));
        producer_ = pool_->async([this] {
            try {
                auto src = store_->openChunk(0);
                core::LosslessReader reader(info().pipeline, *src);
                std::vector<uint64_t> buf(kReadBatch);
                for (;;) {
                    size_t got = reader.read(buf.data(), buf.size());
                    if (got == 0)
                        break;
                    std::vector<uint64_t> batch(buf.begin(),
                                                buf.begin() + got);
                    if (!batches_->push(std::move(batch)))
                        return; // consumer abandoned the stream
                }
            } catch (...) {
                // Wake the consumer before surfacing the error via the
                // producer future.
                batches_->close();
                throw;
            }
            batches_->close();
        });
        return;
    }
    cache_cap_ = std::max<size_t>(8, lookahead_ + 1);
    scheduleAhead();
}

void
ParallelAtcReader::scheduleAhead()
{
    size_t end = std::min(record_idx_ + lookahead_ + 1,
                          info().records.size());
    for (size_t i = record_idx_; i < end; ++i) {
        uint32_t id = info().records[i].chunk_id;
        auto it = decodes_.find(id);
        if (it == decodes_.end()) {
            // Consult the shared decoded-chunk cache first (a cursor
            // may have warmed it); like the lossless scanner, the
            // sequential pass never populates it.
            if (core::BlockCache<uint64_t>::Ptr hit =
                    index_->chunkCache().get(id)) {
                // ChunkPtr and the cache's Ptr are the same type, so
                // the immutable block is shared, never copied.
                std::promise<ChunkPtr> ready;
                ready.set_value(std::move(hit));
                decodes_.emplace(id, ready.get_future().share());
            } else {
                decodes_.emplace(
                    id, pool_->async([this, id]() -> ChunkPtr {
                                return std::make_shared<
                                    std::vector<uint64_t>>(
                                    core::decodeChunkPayload(
                                        info().pipeline, *store_, id));
                            }).share());
            }
        }
        // Keep everything in the window at the recent end of the LRU so
        // eviction only ever hits chunks outside it.
        lru_.remove(id);
        lru_.push_front(id);
    }
    while (decodes_.size() > cache_cap_ && !lru_.empty()) {
        uint32_t victim = lru_.back();
        lru_.pop_back();
        decodes_.erase(victim);
    }
}

ParallelAtcReader::ChunkPtr
ParallelAtcReader::loadChunk(uint32_t id)
{
    auto it = decodes_.find(id);
    ATC_ASSERT(it != decodes_.end()); // scheduleAhead covers the window
    return it->second.get();          // rethrows worker-side errors
}

bool
ParallelAtcReader::nextInterval()
{
    if (record_idx_ >= info().records.size())
        return false;
    scheduleAhead();
    const core::IntervalRecord &rec = info().records[record_idx_++];
    ChunkPtr chunk = loadChunk(rec.chunk_id);
    ATC_CHECK(chunk->size() == rec.length,
              "interval record length mismatch");

    interval_.resize(rec.length);
    if (rec.kind == core::IntervalRecord::Kind::Chunk ||
        rec.trans.plane_mask == 0) {
        std::copy(chunk->begin(), chunk->end(), interval_.begin());
    } else {
        for (size_t i = 0; i < chunk->size(); ++i)
            interval_[i] = rec.trans.apply((*chunk)[i]);
    }
    pos_ = 0;
    return true;
}

size_t
ParallelAtcReader::readSeekableLossless(uint64_t *out, size_t n)
{
    // The caller thread runs only the cheap inverse transform; frame
    // decode happens in the pool, ordered by the scan sequence.
    size_t got = transform_dec_->read(out, n);
    if (got == 0 && n > 0 && !stream_verified_) {
        uint8_t extra;
        ATC_CHECK(frame_source_->read(&extra, 1) == 0,
                  "trailing data after the transform terminator");
        if (info().pipeline.crc_trailer) {
            auto &fs = static_cast<DecodedFrameSource &>(*frame_source_);
            ATC_CHECK(fs.crc() == stored_crc_,
                      "chunk payload CRC mismatch (corrupt container)");
        }
        stream_verified_ = true;
    }
    return got;
}

size_t
ParallelAtcReader::readLossless(uint64_t *out, size_t n)
{
    if (transform_dec_)
        return readSeekableLossless(out, n);
    size_t got = 0;
    while (got < n) {
        if (batch_pos_ == batch_.size()) {
            if (drained_)
                break;
            if (!batches_->pop(batch_)) {
                drained_ = true;
                batch_.clear();
                batch_pos_ = 0;
                if (producer_.valid())
                    producer_.get(); // surface decode errors
                break;
            }
            batch_pos_ = 0;
            continue;
        }
        size_t avail = batch_.size() - batch_pos_;
        size_t take = (n - got) < avail ? (n - got) : avail;
        std::copy(batch_.begin() +
                      static_cast<std::ptrdiff_t>(batch_pos_),
                  batch_.begin() +
                      static_cast<std::ptrdiff_t>(batch_pos_ + take),
                  out + got);
        got += take;
        batch_pos_ += take;
    }
    return got;
}

size_t
ParallelAtcReader::readLossy(uint64_t *out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (pos_ == interval_.size()) {
            if (!nextInterval())
                break;
            continue; // an empty interval record is possible
        }
        size_t avail = interval_.size() - pos_;
        size_t take = (n - got) < avail ? (n - got) : avail;
        std::copy(interval_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  interval_.begin() +
                      static_cast<std::ptrdiff_t>(pos_ + take),
                  out + got);
        got += take;
        pos_ += take;
    }
    return got;
}

size_t
ParallelAtcReader::read(uint64_t *out, size_t n)
{
    size_t got = info().mode == core::Mode::Lossless
                     ? readLossless(out, n)
                     : readLossy(out, n);
    delivered_ += got;
    if (got == 0 && n > 0)
        ATC_CHECK(delivered_ == info().count,
                  "container truncated: INFO records " +
                      std::to_string(info().count) +
                      " values but only " + std::to_string(delivered_) +
                      " could be decoded");
    return got;
}

util::StatusOr<size_t>
ParallelAtcReader::tryRead(uint64_t *out, size_t n)
{
    try {
        return read(out, n);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

} // namespace atc::parallel
