/**
 * @file
 * Process-wide observability: a registry of named counters, gauges,
 * and log2-bucketed latency histograms, designed so that record sites
 * on hot paths cost a relaxed atomic add (or nothing at all).
 *
 * Two kill switches:
 *  - compile-time: configure with -DATC_OBS_OFF=ON and every record
 *    site compiles down to a branch on `false` that the optimizer
 *    deletes; `snapshot()` is always empty.
 *  - runtime: `obs::setEnabled(false)` makes record sites return
 *    after one relaxed atomic load; timers skip their clock reads.
 *
 * Counters shard their cells across cache-line-padded atomics indexed
 * by a per-thread slot, so concurrent increments from pool workers
 * never bounce one line. Histograms shard the same way; `record()` is
 * a relaxed add into a log2 bucket (bucket b holds values in
 * [2^(b-1), 2^b), bucket 0 holds zero). `Registry::snapshot()` merges
 * shards into plain structs; readers never block writers.
 *
 * Handles returned by `counter()/gauge()/histogram()` are stable for
 * the registry's lifetime — hot sites cache them in function-local
 * statics and never touch the name map again.
 */
#ifndef ATC_OBS_METRICS_HPP
#define ATC_OBS_METRICS_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace atc::obs {

#ifdef ATC_OBS_OFF
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Runtime master switch; true by default. Record sites check it with
/// one relaxed load. Compile-time ATC_OBS_OFF overrides it to false.
inline bool
enabled()
{
    if constexpr (!kCompiledIn)
        return false;
    else
        return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds; 0 when recording is off so callers can use
/// "stamp != 0" as the was-enabled-at-start test.
inline uint64_t
nowNs()
{
    if (!enabled())
        return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace detail {

inline constexpr size_t kShards = 16;

struct alignas(64) PaddedCell {
    std::atomic<int64_t> v{0};
};

/// Stable small integer per thread, used to pick a shard. Threads are
/// striped round-robin so a pool of N workers spreads over the shards
/// even when N > kShards.
size_t threadSlot();

}  // namespace detail

/// Monotonic (by convention) event/byte/micros counter.
class Counter {
  public:
    void add(int64_t n)
    {
        if (!enabled())
            return;
        cells_[detail::threadSlot() % detail::kShards].v.fetch_add(
            n, std::memory_order_relaxed);
    }
    void inc() { add(1); }

    /// Merged value; approximate while writers are live (each shard is
    /// read with a relaxed load).
    int64_t value() const
    {
        int64_t total = 0;
        for (const auto &c : cells_)
            total += c.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    detail::PaddedCell cells_[detail::kShards];
};

/// Instantaneous level (queue depth, inflight ops). Unsharded: gauges
/// move at admission-control frequency, not per-record frequency.
class Gauge {
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t n)
    {
        if (!enabled())
            return;
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    void inc() { add(1); }
    void dec() { add(-1); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative values (we use micros).
/// 65 buckets: bucket 0 holds exactly 0, bucket b>=1 holds
/// [2^(b-1), 2^b). record() is lock-free: one relaxed add into the
/// bucket plus count/sum, all on this thread's shard.
class Histogram {
  public:
    static constexpr size_t kBuckets = 65;

    static size_t bucketOf(uint64_t v);
    /// Inclusive lower bound of bucket b.
    static uint64_t bucketLow(size_t b);

    void record(uint64_t v)
    {
        if (!enabled())
            return;
        Shard &s = shards_[detail::threadSlot() % kHistShards];
        s.buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(static_cast<int64_t>(v),
                        std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    // Fewer shards than Counter: each shard is ~67 cache lines, and
    // record sites are already spread across the bucket array.
    static constexpr size_t kHistShards = 4;
    struct Shard {
        std::atomic<uint64_t> buckets[kBuckets]{};
        alignas(64) std::atomic<uint64_t> count{0};
        std::atomic<int64_t> sum{0};
    };
    Shard shards_[kHistShards];
};

/// Merged histogram state at snapshot time.
struct HistogramValue {
    uint64_t count = 0;
    int64_t sum = 0;
    std::vector<uint64_t> buckets;  // kBuckets entries

    /// Approximate quantile (q in [0,1]) from the bucket boundaries;
    /// returns the lower bound of the bucket holding the q-th value.
    uint64_t quantile(double q) const;
};

/// Point-in-time merged view of a registry. Plain data, safe to keep.
struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramValue> histograms;

    bool empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }
    /// Counter (or gauge) value by name, 0 when absent.
    int64_t value(const std::string &name) const;
    /// Histogram sum by name, 0 when absent.
    int64_t histSum(const std::string &name) const;
    uint64_t histCount(const std::string &name) const;

    /**
     * Difference of two snapshots of one registry: every counter and
     * histogram count/sum/bucket of *this minus its value in
     * @p earlier (absent-in-earlier means unchanged). Gauges keep
     * their current level — deltas of instantaneous values are
     * meaningless. This is how a bounded piece of work (a sampled
     * window sweep, one bench section) is attributed its share of the
     * process-wide counters, e.g. the study's decoded-bytes
     * accounting over codec.decode.raw_bytes.
     */
    Snapshot since(const Snapshot &earlier) const;
};

/// Named-metric registry. `global()` is the process instance every
/// instrumented subsystem records into; standalone instances exist
/// for tests. Lookup takes a mutex — callers cache the returned
/// reference (stable for the registry's lifetime; metrics are never
/// removed).
class Registry {
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /// Merge every shard into plain structs. Empty when observability
    /// is disabled (either switch): disabled means "not observed".
    Snapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    // Heap-allocated cells: handed-out references survive later
    // registrations growing the vectors.
    std::map<std::string, Counter *> counter_names_;
    std::map<std::string, Gauge *> gauge_names_;
    std::map<std::string, Histogram *> hist_names_;
    std::vector<std::unique_ptr<Counter>> counters_;
    std::vector<std::unique_ptr<Gauge>> gauges_;
    std::vector<std::unique_ptr<Histogram>> hists_;
};

/// RAII: adds elapsed microseconds to a Counter (aggregate stage
/// time). No clock reads when disabled.
class StageTimer {
  public:
    explicit StageTimer(Counter &c) : c_(c), t0_(nowNs()) {}
    ~StageTimer() { stop(); }
    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;
    /// Record early (before other work the caller doesn't want timed).
    void stop()
    {
        if (t0_ == 0)
            return;
        c_.add(static_cast<int64_t>((nowNs() - t0_) / 1000));
        t0_ = 0;
    }

  private:
    Counter &c_;
    uint64_t t0_;
};

/// RAII: records elapsed microseconds into a Histogram.
class LatencyTimer {
  public:
    explicit LatencyTimer(Histogram &h) : h_(h), t0_(nowNs()) {}
    ~LatencyTimer() { stop(); }
    LatencyTimer(const LatencyTimer &) = delete;
    LatencyTimer &operator=(const LatencyTimer &) = delete;
    void stop()
    {
        if (t0_ == 0)
            return;
        h_.record((nowNs() - t0_) / 1000);
        t0_ = 0;
    }

  private:
    Histogram &h_;
    uint64_t t0_;
};

/// Text encoding shared by the serve METRICS op, `atcclient metrics`,
/// and `atcinfo --metrics`. First line is `atc_metrics 1`; every
/// following line is `<key> <int64>`, sorted by key. Histograms
/// flatten to `<name>.count`, `<name>.sum`, and one
/// `<name>.bucket<i>` per non-empty bucket.
std::string snapshotToText(const Snapshot &snap);

/// Inverse of snapshotToText into a flat key->value map. Returns
/// false on a malformed header or line (flattened histogram keys are
/// not re-nested).
bool parseMetricsText(const std::string &text,
                      std::map<std::string, int64_t> &out);

/// Same flattening as the text form, as a single JSON object
/// `{"atc_metrics": 1, "<key>": <value>, ...}` — the `--metrics-json`
/// payload.
std::string snapshotToJson(const Snapshot &snap);

/// Dump the global registry's snapshot as JSON to @p path (the
/// `--metrics-json` implementation shared by the CLI tools).
/// @return false when the file cannot be written.
bool writeMetricsJson(const std::string &path);

}  // namespace atc::obs

#endif  // ATC_OBS_METRICS_HPP
