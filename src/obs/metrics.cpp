#include "obs/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace atc::obs {

namespace detail {

std::atomic<bool> g_enabled{true};

size_t
threadSlot()
{
    static std::atomic<size_t> next{0};
    thread_local size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

}  // namespace detail

size_t
Histogram::bucketOf(uint64_t v)
{
    if (v == 0)
        return 0;
    return static_cast<size_t>(std::bit_width(v));  // 1..64
}

uint64_t
Histogram::bucketLow(size_t b)
{
    if (b == 0)
        return 0;
    return uint64_t{1} << (b - 1);
}

uint64_t
HistogramValue::quantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * double(count - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen > rank)
            return Histogram::bucketLow(b);
    }
    return Histogram::bucketLow(buckets.empty() ? 0
                                                : buckets.size() - 1);
}

int64_t
Snapshot::value(const std::string &name) const
{
    auto it = counters.find(name);
    if (it != counters.end())
        return it->second;
    auto git = gauges.find(name);
    if (git != gauges.end())
        return git->second;
    return 0;
}

int64_t
Snapshot::histSum(const std::string &name) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? 0 : it->second.sum;
}

uint64_t
Snapshot::histCount(const std::string &name) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? 0 : it->second.count;
}

Snapshot
Snapshot::since(const Snapshot &earlier) const
{
    Snapshot d = *this;
    for (auto &[name, v] : d.counters) {
        auto it = earlier.counters.find(name);
        if (it != earlier.counters.end())
            v -= it->second;
    }
    for (auto &[name, h] : d.histograms) {
        auto it = earlier.histograms.find(name);
        if (it == earlier.histograms.end())
            continue;
        const HistogramValue &e = it->second;
        h.count -= e.count;
        h.sum -= e.sum;
        for (size_t b = 0;
             b < h.buckets.size() && b < e.buckets.size(); ++b)
            h.buckets[b] -= e.buckets[b];
    }
    return d;
}

Registry &
Registry::global()
{
    static Registry *g = new Registry();  // intentionally leaked:
    return *g;  // instrumented statics may record during exit
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counter_names_.find(name);
    if (it != counter_names_.end())
        return *it->second;
    counters_.push_back(std::make_unique<Counter>());
    Counter &c = *counters_.back();
    counter_names_.emplace(name, &c);
    return c;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauge_names_.find(name);
    if (it != gauge_names_.end())
        return *it->second;
    gauges_.push_back(std::make_unique<Gauge>());
    Gauge &g = *gauges_.back();
    gauge_names_.emplace(name, &g);
    return g;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hist_names_.find(name);
    if (it != hist_names_.end())
        return *it->second;
    hists_.push_back(std::make_unique<Histogram>());
    Histogram &h = *hists_.back();
    hist_names_.emplace(name, &h);
    return h;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    if (!enabled())
        return snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counter_names_)
        snap.counters.emplace(name, c->value());
    for (const auto &[name, g] : gauge_names_)
        snap.gauges.emplace(name, g->value());
    for (const auto &[name, h] : hist_names_) {
        HistogramValue hv;
        hv.buckets.assign(Histogram::kBuckets, 0);
        for (const auto &shard : h->shards_) {
            hv.count += shard.count.load(std::memory_order_relaxed);
            hv.sum += shard.sum.load(std::memory_order_relaxed);
            for (size_t b = 0; b < Histogram::kBuckets; ++b)
                hv.buckets[b] +=
                    shard.buckets[b].load(std::memory_order_relaxed);
        }
        snap.histograms.emplace(name, std::move(hv));
    }
    return snap;
}

namespace {

/// Flatten a snapshot into sorted `key -> value` pairs — the single
/// source of truth for both the text and JSON encodings.
std::map<std::string, int64_t>
flatten(const Snapshot &snap)
{
    std::map<std::string, int64_t> flat;
    for (const auto &[name, v] : snap.counters)
        flat[name] = v;
    for (const auto &[name, v] : snap.gauges)
        flat[name] = v;
    for (const auto &[name, hv] : snap.histograms) {
        flat[name + ".count"] = static_cast<int64_t>(hv.count);
        flat[name + ".sum"] = hv.sum;
        for (size_t b = 0; b < hv.buckets.size(); ++b) {
            if (hv.buckets[b] == 0)
                continue;
            flat[name + ".bucket" + std::to_string(b)] =
                static_cast<int64_t>(hv.buckets[b]);
        }
    }
    return flat;
}

}  // namespace

std::string
snapshotToText(const Snapshot &snap)
{
    std::string out = "atc_metrics 1\n";
    char line[160];
    for (const auto &[key, value] : flatten(snap)) {
        std::snprintf(line, sizeof(line), "%s %" PRId64 "\n",
                      key.c_str(), value);
        out += line;
    }
    return out;
}

bool
parseMetricsText(const std::string &text,
                 std::map<std::string, int64_t> &out)
{
    out.clear();
    size_t pos = 0;
    bool saw_header = false;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        std::string line = text.substr(
            pos, eol == std::string::npos ? std::string::npos
                                          : eol - pos);
        pos = eol == std::string::npos ? text.size() : eol + 1;
        if (line.empty())
            continue;
        if (!saw_header) {
            if (line != "atc_metrics 1")
                return false;
            saw_header = true;
            continue;
        }
        size_t sp = line.find(' ');
        if (sp == std::string::npos || sp == 0)
            return false;
        errno = 0;
        char *end = nullptr;
        long long v = std::strtoll(line.c_str() + sp + 1, &end, 10);
        if (errno != 0 || end == line.c_str() + sp + 1 ||
            *end != '\0')
            return false;
        out[line.substr(0, sp)] = static_cast<int64_t>(v);
    }
    return saw_header;
}

std::string
snapshotToJson(const Snapshot &snap)
{
    std::string out = "{\n  \"atc_metrics\": 1";
    char line[160];
    for (const auto &[key, value] : flatten(snap)) {
        std::snprintf(line, sizeof(line), ",\n  \"%s\": %" PRId64,
                      key.c_str(), value);
        out += line;
    }
    out += "\n}\n";
    return out;
}

bool
writeMetricsJson(const std::string &path)
{
    std::string json = snapshotToJson(Registry::global().snapshot());
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    bool closed = std::fclose(f) == 0;
    return written == json.size() && closed;
}

}  // namespace atc::obs
