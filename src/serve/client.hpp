/**
 * @file
 * Client library for the trace-serving daemon.
 *
 * ServeClient wraps one TCP connection and the wire protocol of
 * serve/protocol.hpp behind Status-returning calls. Two styles:
 *
 *  - Synchronous: ping(), open(), seekRead(), readRange(), stat(),
 *    closeHandle(), shutdownServer() — one request, one matched
 *    response.
 *  - Pipelined: sendSeekRead()/sendReadRange() enqueue requests
 *    without waiting; receive() pops the next response (matched to a
 *    request by its echoed request id). This is how the bench's
 *    hostile-scanner client floods the server.
 *
 * A ServeClient is confined to one thread; open handles are scoped to
 * the connection and vanish with it. Record payloads are decoded from
 * the little-endian wire format into host uint64_t vectors.
 */

#ifndef ATC_SERVE_CLIENT_HPP_
#define ATC_SERVE_CLIENT_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/status.hpp"

namespace atc::serve {

/** Metadata of a remotely opened container. */
struct RemoteTrace
{
    uint32_t handle = 0;
    uint64_t records = 0;
    bool lossy = false;
    uint8_t container_version = 0;
};

/** A decoded response to a pipelined request. */
struct ClientResponse
{
    uint32_t request_id = 0;
    Op op = Op::Ping;
    Wire status = Wire::kOk;
    std::string error;  ///< server message when status != kOk
    uint64_t actual_pos = 0; ///< Seek: where the cursor landed
    std::vector<uint64_t> records; ///< Seek / ReadRange payload
    std::string text; ///< Stat payload
};

/** One connection to a TraceServer; see the file comment. */
class ServeClient
{
  public:
    /** Connect to @p host : @p port. */
    static util::StatusOr<ServeClient> connect(const std::string &host,
                                               uint16_t port);

    ServeClient(ServeClient &&) = default;
    ServeClient &operator=(ServeClient &&) = default;
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Liveness probe. */
    util::Status ping();

    /** Open container @p name; the handle lives on this connection. */
    util::StatusOr<RemoteTrace> open(const std::string &name);

    /** Release @p handle server-side. */
    util::Status closeHandle(uint32_t handle);

    /**
     * Seek @p handle to @p pos and read up to @p count records (short
     * only at end of trace). Lossy containers land on the containing
     * interval boundary; @p actual_pos (optional) reports where.
     */
    util::Status seekRead(uint32_t handle, uint64_t pos, uint32_t count,
                          std::vector<uint64_t> &out,
                          uint64_t *actual_pos = nullptr);

    /** Record-exact extraction of [@p begin, @p end); mirrors
     *  core::AtcCursor::readRange over the wire. */
    util::Status readRange(uint32_t handle, uint64_t begin,
                           uint64_t end, std::vector<uint64_t> &out);

    /** @return the server's STAT text (key=value lines). */
    util::StatusOr<std::string> statText();

    /** @return the server's METRICS text: the process-wide obs
     *  registry snapshot (`atc_metrics 1` header + `key value` lines;
     *  parse with obs::parseMetricsText). */
    util::StatusOr<std::string> metricsText();

    /** Parse STAT text into numeric key -> value. */
    static std::map<std::string, uint64_t>
    parseStat(const std::string &text);

    /** Ask the server to stop (responds before stopping). */
    util::Status shutdownServer();

    // ---- pipelined interface ---------------------------------------

    /** Enqueue a SEEK without waiting. @return the request id. */
    util::StatusOr<uint32_t> sendSeekRead(uint32_t handle, uint64_t pos,
                                          uint32_t count);

    /** Enqueue a READ_RANGE without waiting. @return the request id. */
    util::StatusOr<uint32_t> sendReadRange(uint32_t handle,
                                           uint64_t begin, uint64_t end);

    /** Block for the next response (any pipelined request). */
    util::Status receive(ClientResponse &out);

    /** Close the connection (handles die with it). */
    void disconnect() { sock_.close(); }

  private:
    explicit ServeClient(Socket sock) : sock_(std::move(sock)) {}

    util::Status sendRequest(const Request &req);
    /** Round-trip: send @p req, wait for its response, surface
     *  non-kOk statuses as Status errors. */
    util::Status call(const Request &req, ClientResponse &resp);

    Socket sock_;
    uint32_t next_id_ = 1;
    std::vector<uint8_t> frame_; ///< scratch encode buffer
};

} // namespace atc::serve

#endif // ATC_SERVE_CLIENT_HPP_
