/**
 * @file
 * Wire protocol of the trace-serving daemon (see docs/protocol.md for
 * the normative spec).
 *
 * Every message is a length-prefixed frame: a little-endian u32 byte
 * count followed by that many payload bytes. The payload opens with a
 * fixed 8-byte header — version, opcode, a u16 that carries flags on
 * requests and a status code on responses, and a u32 request id the
 * server echoes verbatim so clients may pipeline requests and match
 * responses out of order. Integers are little-endian throughout;
 * records travel as packed u64s.
 *
 * The protocol is versioned by the header byte: a server rejects
 * frames whose version it does not speak with kBadVersion and closes
 * the connection (framing itself may change across versions, so
 * resynchronization is not attempted). Within one version, message
 * bodies may only grow by appending fields — the length prefix tells
 * a reader where a peer's body ends.
 *
 * This header is shared by the server, the client library, and the
 * protocol tests; it has no socket dependencies, so the codecs can be
 * exercised against in-memory buffers.
 */

#ifndef ATC_SERVE_PROTOCOL_HPP_
#define ATC_SERVE_PROTOCOL_HPP_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace atc::serve {

/** Protocol version this build speaks. */
constexpr uint8_t kProtocolVersion = 1;

/** Bytes of the fixed payload header (version, opcode, status/flags,
 *  request id). */
constexpr size_t kHeaderLen = 8;

/** Hard ceiling on a *request* payload. Requests are tiny (the largest
 *  is OPEN with a container name); a declared length beyond this is a
 *  malformed or hostile frame and the connection is dropped after an
 *  error response — there is no way to resynchronize a stream whose
 *  framing cannot be trusted. */
constexpr uint32_t kMaxRequestPayload = 4096;

/** Request opcodes. */
enum class Op : uint8_t {
    Ping = 0,      ///< liveness probe; empty body both ways
    Open = 1,      ///< body: u16 name_len + name -> handle + metadata
    Seek = 2,      ///< body: u32 handle, u64 pos, u32 count -> records
    ReadRange = 3, ///< body: u32 handle, u64 begin, u64 end -> records
    Stat = 4,      ///< empty body -> key=value text
    Close = 5,     ///< body: u32 handle -> empty
    Shutdown = 6,  ///< empty body -> empty; server then stops
    Metrics = 7,   ///< empty body -> obs registry text (atc_metrics 1)
};

/** Number of opcodes (for per-opcode counter arrays). */
constexpr size_t kOpCount = static_cast<size_t>(Op::Metrics) + 1;

/** @return a stable lowercase name for @p op ("ping", "read_range"). */
const char *opName(Op op);

/** Response status codes (the u16 header field of a response). */
enum class Wire : uint16_t {
    kOk = 0,
    kBadRequest = 1,   ///< malformed body; connection is closed
    kBadVersion = 2,   ///< unsupported header version; closed
    kUnknownOp = 3,    ///< unrecognized opcode; connection survives
    kNotFound = 4,     ///< OPEN of an unserved container name
    kBadHandle = 5,    ///< handle not open on this connection
    kOutOfRange = 6,   ///< seek/range past end of trace, begin > end
    kTooLarge = 7,     ///< request exceeds max_range_records / framing
    kOverloaded = 8,   ///< admission control rejected the request
    kShuttingDown = 9, ///< server is stopping
    kInternal = 10,    ///< unexpected server-side failure
};

/** @return a stable lowercase name for @p status ("ok", "bad_handle"). */
const char *wireName(Wire status);

/** A parsed request, one variant per opcode (unused fields zero). */
struct Request
{
    Op op = Op::Ping;
    uint32_t request_id = 0;
    uint32_t handle = 0; ///< Seek / ReadRange / Close
    uint64_t begin = 0;  ///< Seek: position; ReadRange: first record
    uint64_t end = 0;    ///< ReadRange: one past the last record
    uint32_t count = 0;  ///< Seek: records to read after seeking
    std::string name;    ///< Open: container name

    /** Server-side arrival stamp (obs::nowNs() at parse time; 0 when
     *  observability is off). Never on the wire — it exists so queue
     *  wait and end-to-end latency can be measured per request. */
    uint64_t arrival_ns = 0;

    /** @return decoded records this request will pin while in flight
     *  (the admission-control unit); 0 for cheap ops. */
    uint64_t records() const;
};

// ---- little-endian primitives over byte vectors --------------------

void putU16(std::vector<uint8_t> &out, uint16_t v);
void putU32(std::vector<uint8_t> &out, uint32_t v);
void putU64(std::vector<uint8_t> &out, uint64_t v);
uint16_t getU16(const uint8_t *p);
uint32_t getU32(const uint8_t *p);
uint64_t getU64(const uint8_t *p);

// ---- request encoding (client side) --------------------------------

/** Append the framed request for @p req to @p out (length prefix,
 *  header, body). */
void encodeRequest(const Request &req, std::vector<uint8_t> &out);

/**
 * Parse one request payload (the bytes after the length prefix).
 * @param payload payload bytes
 * @param n       payload length
 * @param out     receives the parsed request on success
 * @param err     receives a description when parsing fails
 * @return Wire::kOk, or the status the server should respond with
 *         (kBadVersion / kUnknownOp / kBadRequest)
 */
Wire parseRequest(const uint8_t *payload, size_t n, Request &out,
                  std::string &err);

// ---- response encoding (server side) -------------------------------

/** Start a response frame: length placeholder + header. Body bytes are
 *  appended by the caller, then finishResponse patches the length. */
void beginResponse(std::vector<uint8_t> &out, Op op, Wire status,
                   uint32_t request_id);

/** Patch the length prefix of a frame started by beginResponse. */
void finishResponse(std::vector<uint8_t> &out);

/** Build a complete error response whose body is a UTF-8 message. */
void encodeErrorResponse(std::vector<uint8_t> &out, Op op, Wire status,
                         uint32_t request_id, const std::string &msg);

// ---- response decoding (client side) -------------------------------

/** A response payload split into header fields and body bytes. */
struct Response
{
    uint8_t version = 0;
    Op op = Op::Ping;
    Wire status = Wire::kOk;
    uint32_t request_id = 0;
    std::vector<uint8_t> body;

    /** @return the body interpreted as a UTF-8 string (error message
     *  or STAT text). */
    std::string text() const
    {
        return std::string(body.begin(), body.end());
    }
};

/**
 * Parse a response payload (the bytes after the length prefix).
 * @return false when the payload is too short to carry a header
 */
bool parseResponse(const uint8_t *payload, size_t n, Response &out);

} // namespace atc::serve

#endif // ATC_SERVE_PROTOCOL_HPP_
