#include "serve/client.hpp"

#include <cstdlib>

namespace atc::serve {

namespace {

/** Client-side sanity bound on a response payload: the server never
 *  sends more than a few bytes of header around 8 * max_range_records
 *  record bytes; anything bigger means a corrupt or hostile stream. */
constexpr uint32_t kMaxResponsePayload = 1u << 30;

} // namespace

util::StatusOr<ServeClient>
ServeClient::connect(const std::string &host, uint16_t port)
{
    auto sock = connectTo(host, port);
    if (!sock.ok())
        return sock.status();
    return ServeClient(sock.take());
}

util::Status
ServeClient::sendRequest(const Request &req)
{
    frame_.clear();
    encodeRequest(req, frame_);
    std::string err;
    IoResult r = sock_.writeFull(frame_.data(), frame_.size(), &err);
    if (r == IoResult::kOk)
        return util::Status();
    return util::Status::error(r == IoResult::kEof
                                   ? "server closed the connection"
                                   : "send failed: " + err);
}

util::Status
ServeClient::receive(ClientResponse &out)
{
    uint8_t len_bytes[4];
    std::string err;
    IoResult r = sock_.readFull(len_bytes, 4, &err);
    if (r != IoResult::kOk)
        return util::Status::error(r == IoResult::kEof
                                       ? "server closed the connection"
                                       : "receive failed: " + err);
    uint32_t len = getU32(len_bytes);
    if (len < kHeaderLen || len > kMaxResponsePayload)
        return util::Status::error("implausible response length " +
                                   std::to_string(len));
    std::vector<uint8_t> payload(len);
    r = sock_.readFull(payload.data(), len, &err);
    if (r != IoResult::kOk)
        return util::Status::error("response truncated: " + err);

    Response resp;
    if (!parseResponse(payload.data(), payload.size(), resp))
        return util::Status::error("malformed response header");
    out = ClientResponse();
    out.request_id = resp.request_id;
    out.op = resp.op;
    out.status = resp.status;
    if (resp.status != Wire::kOk) {
        out.error = resp.text();
        return util::Status();
    }
    const uint8_t *body = resp.body.data();
    size_t n = resp.body.size();
    switch (resp.op) {
    case Op::Ping:
    case Op::Close:
    case Op::Shutdown:
        break;
    case Op::Open:
        // Fixed 14-byte body; open() decodes the scalars from the raw
        // bytes stashed in `text`.
        if (n < 14)
            return util::Status::error("OPEN response truncated");
        out.text = resp.text();
        break;
    case Op::Stat:
    case Op::Metrics:
        out.text = resp.text();
        break;
    case Op::Seek: {
        if (n < 12)
            return util::Status::error("SEEK response truncated");
        out.actual_pos = getU64(body);
        uint32_t count = getU32(body + 8);
        if (n != 12u + 8ull * count)
            return util::Status::error(
                "SEEK record payload disagrees with its count");
        out.records.resize(count);
        for (uint32_t i = 0; i < count; ++i)
            out.records[i] = getU64(body + 12 + 8ull * i);
        break;
    }
    case Op::ReadRange: {
        if (n < 4)
            return util::Status::error("READ_RANGE response truncated");
        uint32_t count = getU32(body);
        if (n != 4u + 8ull * count)
            return util::Status::error(
                "READ_RANGE record payload disagrees with its count");
        out.records.resize(count);
        for (uint32_t i = 0; i < count; ++i)
            out.records[i] = getU64(body + 4 + 8ull * i);
        break;
    }
    }
    return util::Status();
}

util::Status
ServeClient::call(const Request &req, ClientResponse &resp)
{
    util::Status sent = sendRequest(req);
    if (!sent.ok())
        return sent;
    util::Status got = receive(resp);
    if (!got.ok())
        return got;
    if (resp.request_id != req.request_id)
        return util::Status::error(
            "response id mismatch (pipelining mixed with sync calls?)");
    if (resp.status != Wire::kOk)
        return util::Status::error(std::string(wireName(resp.status)) +
                                   ": " + resp.error);
    return util::Status();
}

util::Status
ServeClient::ping()
{
    Request req;
    req.op = Op::Ping;
    req.request_id = next_id_++;
    ClientResponse resp;
    return call(req, resp);
}

util::StatusOr<RemoteTrace>
ServeClient::open(const std::string &name)
{
    Request req;
    req.op = Op::Open;
    req.request_id = next_id_++;
    req.name = name;
    ClientResponse resp;
    util::Status st = call(req, resp);
    if (!st.ok())
        return st;
    if (resp.text.size() < 14)
        return util::Status::error("OPEN response truncated");
    const uint8_t *body =
        reinterpret_cast<const uint8_t *>(resp.text.data());
    RemoteTrace out;
    out.handle = getU32(body);
    out.records = getU64(body + 4);
    out.lossy = body[12] != 0;
    out.container_version = body[13];
    return out;
}

util::Status
ServeClient::closeHandle(uint32_t handle)
{
    Request req;
    req.op = Op::Close;
    req.request_id = next_id_++;
    req.handle = handle;
    ClientResponse resp;
    return call(req, resp);
}

util::Status
ServeClient::seekRead(uint32_t handle, uint64_t pos, uint32_t count,
                      std::vector<uint64_t> &out, uint64_t *actual_pos)
{
    Request req;
    req.op = Op::Seek;
    req.request_id = next_id_++;
    req.handle = handle;
    req.begin = pos;
    req.count = count;
    ClientResponse resp;
    util::Status st = call(req, resp);
    if (!st.ok())
        return st;
    out = std::move(resp.records);
    if (actual_pos)
        *actual_pos = resp.actual_pos;
    return util::Status();
}

util::Status
ServeClient::readRange(uint32_t handle, uint64_t begin, uint64_t end,
                       std::vector<uint64_t> &out)
{
    Request req;
    req.op = Op::ReadRange;
    req.request_id = next_id_++;
    req.handle = handle;
    req.begin = begin;
    req.end = end;
    ClientResponse resp;
    util::Status st = call(req, resp);
    if (!st.ok())
        return st;
    out = std::move(resp.records);
    return util::Status();
}

util::StatusOr<std::string>
ServeClient::statText()
{
    Request req;
    req.op = Op::Stat;
    req.request_id = next_id_++;
    ClientResponse resp;
    util::Status st = call(req, resp);
    if (!st.ok())
        return st;
    return resp.text;
}

util::StatusOr<std::string>
ServeClient::metricsText()
{
    Request req;
    req.op = Op::Metrics;
    req.request_id = next_id_++;
    ClientResponse resp;
    util::Status st = call(req, resp);
    if (!st.ok())
        return st;
    return resp.text;
}

std::map<std::string, uint64_t>
ServeClient::parseStat(const std::string &text)
{
    std::map<std::string, uint64_t> out;
    size_t line = 0;
    while (line < text.size()) {
        size_t nl = text.find('\n', line);
        if (nl == std::string::npos)
            nl = text.size();
        size_t eq = text.find('=', line);
        if (eq != std::string::npos && eq < nl) {
            std::string key = text.substr(line, eq - line);
            const char *val = text.c_str() + eq + 1;
            char *end = nullptr;
            uint64_t v = std::strtoull(val, &end, 10);
            if (end != val)
                out[key] = v;
        }
        line = nl + 1;
    }
    return out;
}

util::Status
ServeClient::shutdownServer()
{
    Request req;
    req.op = Op::Shutdown;
    req.request_id = next_id_++;
    ClientResponse resp;
    return call(req, resp);
}

util::StatusOr<uint32_t>
ServeClient::sendSeekRead(uint32_t handle, uint64_t pos, uint32_t count)
{
    Request req;
    req.op = Op::Seek;
    req.request_id = next_id_++;
    req.handle = handle;
    req.begin = pos;
    req.count = count;
    util::Status st = sendRequest(req);
    if (!st.ok())
        return st;
    return req.request_id;
}

util::StatusOr<uint32_t>
ServeClient::sendReadRange(uint32_t handle, uint64_t begin, uint64_t end)
{
    Request req;
    req.op = Op::ReadRange;
    req.request_id = next_id_++;
    req.handle = handle;
    req.begin = begin;
    req.end = end;
    util::Status st = sendRequest(req);
    if (!st.ok())
        return st;
    return req.request_id;
}

} // namespace atc::serve
