#include "serve/protocol.hpp"

namespace atc::serve {

const char *
wireName(Wire status)
{
    switch (status) {
    case Wire::kOk:
        return "ok";
    case Wire::kBadRequest:
        return "bad_request";
    case Wire::kBadVersion:
        return "bad_version";
    case Wire::kUnknownOp:
        return "unknown_opcode";
    case Wire::kNotFound:
        return "not_found";
    case Wire::kBadHandle:
        return "bad_handle";
    case Wire::kOutOfRange:
        return "out_of_range";
    case Wire::kTooLarge:
        return "too_large";
    case Wire::kOverloaded:
        return "overloaded";
    case Wire::kShuttingDown:
        return "shutting_down";
    case Wire::kInternal:
        return "internal";
    }
    return "unknown_status";
}

const char *
opName(Op op)
{
    switch (op) {
    case Op::Ping:
        return "ping";
    case Op::Open:
        return "open";
    case Op::Seek:
        return "seek";
    case Op::ReadRange:
        return "read_range";
    case Op::Stat:
        return "stat";
    case Op::Close:
        return "close";
    case Op::Shutdown:
        return "shutdown";
    case Op::Metrics:
        return "metrics";
    }
    return "unknown_op";
}

uint64_t
Request::records() const
{
    switch (op) {
    case Op::Seek:
        return count;
    case Op::ReadRange:
        return end - begin;
    default:
        return 0;
    }
}

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t
getU16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

namespace {

/** Append the fixed payload header. The u16 slot carries flags (0) on
 *  requests and the status code on responses. */
void
putHeader(std::vector<uint8_t> &out, Op op, uint16_t status_or_flags,
          uint32_t request_id)
{
    out.push_back(kProtocolVersion);
    out.push_back(static_cast<uint8_t>(op));
    putU16(out, status_or_flags);
    putU32(out, request_id);
}

} // namespace

void
encodeRequest(const Request &req, std::vector<uint8_t> &out)
{
    size_t len_at = out.size();
    putU32(out, 0); // length patched below
    putHeader(out, req.op, 0, req.request_id);
    switch (req.op) {
    case Op::Ping:
    case Op::Stat:
    case Op::Shutdown:
    case Op::Metrics:
        break;
    case Op::Open:
        putU16(out, static_cast<uint16_t>(req.name.size()));
        out.insert(out.end(), req.name.begin(), req.name.end());
        break;
    case Op::Seek:
        putU32(out, req.handle);
        putU64(out, req.begin);
        putU32(out, req.count);
        break;
    case Op::ReadRange:
        putU32(out, req.handle);
        putU64(out, req.begin);
        putU64(out, req.end);
        break;
    case Op::Close:
        putU32(out, req.handle);
        break;
    }
    uint32_t len = static_cast<uint32_t>(out.size() - len_at - 4);
    for (int i = 0; i < 4; ++i)
        out[len_at + i] = static_cast<uint8_t>(len >> (8 * i));
}

Wire
parseRequest(const uint8_t *payload, size_t n, Request &out,
             std::string &err)
{
    if (n < kHeaderLen) {
        err = "request payload shorter than the 8-byte header";
        return Wire::kBadRequest;
    }
    uint8_t version = payload[0];
    out.request_id = getU32(payload + 4);
    if (version != kProtocolVersion) {
        err = "unsupported protocol version " + std::to_string(version);
        return Wire::kBadVersion;
    }
    uint8_t op_byte = payload[1];
    if (op_byte > static_cast<uint8_t>(Op::Metrics)) {
        err = "unknown opcode " + std::to_string(op_byte);
        return Wire::kUnknownOp;
    }
    out.op = static_cast<Op>(op_byte);
    const uint8_t *body = payload + kHeaderLen;
    size_t body_len = n - kHeaderLen;
    // Exact body sizes: a trailing-garbage frame means the peer and we
    // disagree about the message layout — reject rather than guess.
    switch (out.op) {
    case Op::Ping:
    case Op::Stat:
    case Op::Shutdown:
    case Op::Metrics:
        if (body_len != 0) {
            err = "unexpected body on a bodyless request";
            return Wire::kBadRequest;
        }
        break;
    case Op::Open: {
        if (body_len < 2) {
            err = "OPEN body truncated";
            return Wire::kBadRequest;
        }
        uint16_t name_len = getU16(body);
        if (body_len != 2u + name_len || name_len == 0) {
            err = "OPEN name length disagrees with the body";
            return Wire::kBadRequest;
        }
        out.name.assign(reinterpret_cast<const char *>(body + 2),
                        name_len);
        break;
    }
    case Op::Seek:
        if (body_len != 16) {
            err = "SEEK body must be 16 bytes";
            return Wire::kBadRequest;
        }
        out.handle = getU32(body);
        out.begin = getU64(body + 4);
        out.count = getU32(body + 12);
        break;
    case Op::ReadRange:
        if (body_len != 20) {
            err = "READ_RANGE body must be 20 bytes";
            return Wire::kBadRequest;
        }
        out.handle = getU32(body);
        out.begin = getU64(body + 4);
        out.end = getU64(body + 12);
        break;
    case Op::Close:
        if (body_len != 4) {
            err = "CLOSE body must be 4 bytes";
            return Wire::kBadRequest;
        }
        out.handle = getU32(body);
        break;
    }
    return Wire::kOk;
}

void
beginResponse(std::vector<uint8_t> &out, Op op, Wire status,
              uint32_t request_id)
{
    out.clear();
    putU32(out, 0); // patched by finishResponse
    putHeader(out, op, static_cast<uint16_t>(status), request_id);
}

void
finishResponse(std::vector<uint8_t> &out)
{
    uint32_t len = static_cast<uint32_t>(out.size() - 4);
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<uint8_t>(len >> (8 * i));
}

void
encodeErrorResponse(std::vector<uint8_t> &out, Op op, Wire status,
                    uint32_t request_id, const std::string &msg)
{
    beginResponse(out, op, status, request_id);
    out.insert(out.end(), msg.begin(), msg.end());
    finishResponse(out);
}

bool
parseResponse(const uint8_t *payload, size_t n, Response &out)
{
    if (n < kHeaderLen)
        return false;
    out.version = payload[0];
    out.op = static_cast<Op>(payload[1]);
    out.status = static_cast<Wire>(getU16(payload + 2));
    out.request_id = getU32(payload + 4);
    out.body.assign(payload + kHeaderLen, payload + n);
    return true;
}

} // namespace atc::serve
