/**
 * @file
 * TraceServer: a concurrent trace-serving daemon over the
 * random-access read stack.
 *
 * One server opens N containers once — one shared AtcIndex (and
 * therefore one shared decoded-block cache) per container, with a
 * global cache budget partitioned across them — and serves thousands
 * of range/seek clients over the length-prefixed binary protocol of
 * serve/protocol.hpp.
 *
 * Architecture (the job-server pattern):
 *
 *   acceptor/poll thread ──parse──▶ bounded Channel<Job> ──▶ pool
 *                                                            workers
 *
 * A single I/O thread polls the listener and every client socket,
 * accumulates bytes, slices frames, parses them into typed requests,
 * and *admits* them into the bounded job channel. ThreadPool workers
 * (parked in a drain loop via parallel::attachWorkers) execute
 * requests — each OPEN handle owns a private AtcCursor over the
 * container's shared index, so concurrent clients share decoded
 * blocks through the index's BlockCache while keeping their own seek
 * state — and write responses directly to the session socket.
 *
 * Admission control is what keeps the daemon fair: each session may
 * have at most max_inflight_per_client heavy requests (SEEK /
 * READ_RANGE) executing, pinning at most
 * max_inflight_records_per_client decoded records between them.
 * Requests beyond the budget wait in a per-session pending queue (and
 * count as admission_deferred in STAT); a pending queue past
 * max_pending_per_client pauses *reading* that session's socket, so
 * the flood backs up into the client's TCP window. A greedy scanner
 * therefore occupies a bounded slice of the worker pool and the job
 * channel no matter how hard it pipelines, and seek-heavy clients keep
 * their latency (the serve_latency bench reports exactly this p50/p99
 * under a hostile scanner; tests/serve_test.cpp proves the bound).
 *
 * Thread-safety: the I/O thread owns session read buffers and the
 * poll set; admission state is mutex-guarded per session (workers
 * release budget on completion and wake the I/O thread through a
 * self-pipe to admit more); socket writes serialize on a per-session
 * mutex; handle tables are mutex-guarded per session with per-handle
 * locks around cursor use. A session is reference-counted by its
 * in-flight jobs, so teardown never races an executing request — the
 * descriptor closes when the last reference drops.
 */

#ifndef ATC_SERVE_SERVER_HPP_
#define ATC_SERVE_SERVER_HPP_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "atc/block_cache.hpp"
#include "atc/index.hpp"
#include "parallel/channel.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/status.hpp"

namespace atc::serve {

/** Verbosity of the daemon's structured stderr log. */
enum class LogLevel : int {
    kOff = 0,   ///< silent (default)
    kInfo = 1,  ///< session lifecycle + non-ok requests
    kDebug = 2, ///< every request, including ok ones
};

/** Knobs of a TraceServer. */
struct ServeOptions
{
    /** Loopback port to listen on; 0 = kernel-assigned (see port()). */
    uint16_t port = 0;

    /** Worker threads executing requests; 0 = hardware concurrency. */
    size_t threads = 0;

    /** Depth of the global request channel. Admission parks requests
     *  per session once this fills, so the value bounds server-side
     *  queueing delay, not correctness. */
    size_t queue_capacity = 256;

    /** Global decoded-block cache budget, partitioned evenly across
     *  the served containers' AtcIndex instances (0 disables). */
    size_t cache_bytes = core::kDefaultDecodedCacheBytes;

    /** Max heavy requests (SEEK/READ_RANGE) of one session executing
     *  or queued in the job channel at once. */
    uint32_t max_inflight_per_client = 4;

    /** Max decoded records one session may pin across its in-flight
     *  heavy requests. A single request within max_range_records is
     *  always admissible once the session is otherwise idle. */
    uint64_t max_inflight_records_per_client = 1u << 18;

    /** Hard per-request ceiling on requested records; beyond it the
     *  request fails with kTooLarge (clients must split). */
    uint64_t max_range_records = 1u << 22;

    /** Parsed-but-unadmitted requests tolerated per session before the
     *  server stops reading that session's socket (TCP backpressure). */
    size_t max_pending_per_client = 64;

    /** Bound on waiting for a client to drain its socket before the
     *  session is declared dead and disconnected. */
    int write_timeout_ms = 30'000;

    /** Structured stderr logging verbosity: one line per session
     *  lifecycle event and per non-ok request at kInfo, every request
     *  at kDebug. */
    LogLevel log_level = LogLevel::kOff;
};

/** Monotonic server counters (a racy but self-consistent snapshot). */
struct ServerStats
{
    uint64_t connections_accepted = 0;
    uint64_t sessions_active = 0;
    uint64_t disconnects = 0;
    uint64_t requests_ping = 0;
    uint64_t requests_open = 0;
    uint64_t requests_seek = 0;
    uint64_t requests_read_range = 0;
    uint64_t requests_stat = 0;
    uint64_t requests_close = 0;
    uint64_t requests_shutdown = 0;
    uint64_t requests_metrics = 0;
    uint64_t protocol_errors = 0;
    uint64_t request_errors = 0;
    uint64_t admission_deferred = 0;
    uint64_t records_served = 0;
    uint64_t bytes_sent = 0;
    uint64_t queue_depth = 0;
    /** Heavy requests admitted but not yet finished (gauge). */
    uint64_t inflight_heavy = 0;
    /** Whole seconds since start() (0 before start). */
    uint64_t uptime_seconds = 0;
};

/** The daemon; see the file comment. */
class TraceServer
{
  public:
    explicit TraceServer(ServeOptions opt = {});
    ~TraceServer();

    TraceServer(const TraceServer &) = delete;
    TraceServer &operator=(const TraceServer &) = delete;

    /**
     * Serve @p store under @p name (borrowed; must outlive the
     * server). Must be called before start(); the index opens inside
     * start(), once the final container count — and therefore each
     * container's even share of the global cache budget — is known.
     */
    util::Status addContainer(const std::string &name,
                              core::ChunkStore &store);

    /** Serve the container directory @p dir under @p name (suffix
     *  auto-detected; the store is owned by the server). */
    util::Status addContainer(const std::string &name,
                              const std::string &dir);

    /** Open every registered container (an even cache_bytes share
     *  each), bind, spawn the I/O thread, park the workers. */
    util::Status start();

    /** @return the bound port (valid after start()). */
    uint16_t port() const { return port_; }

    /**
     * Request asynchronous shutdown. Callable from any thread —
     * including a pool worker executing the SHUTDOWN opcode — it only
     * signals; the teardown runs in stop()/the destructor.
     */
    void requestStop();

    /** Block until shutdown has been requested (SHUTDOWN opcode,
     *  requestStop(), or stop()). */
    void wait();

    /** wait() with a timeout. @return true when shutdown was
     *  requested, false on timeout. */
    bool waitFor(int timeout_ms);

    /** Full teardown: signal, join the I/O thread, drain and release
     *  the workers, close every session. Idempotent. Must not be
     *  called from a pool worker (use requestStop() there). */
    void stop();

    /** @return a snapshot of the server counters. */
    ServerStats stats() const;

    /** @return the STAT payload: one `key=value` line per counter,
     *  plus per-container records/cache lines (see docs/protocol.md). */
    std::string statText() const;

    /** @return the METRICS payload: the process-wide obs registry
     *  snapshot in the shared `atc_metrics 1` text encoding. */
    static std::string metricsText();

    /** @return the shared index serving @p name, or nullptr. */
    std::shared_ptr<const core::AtcIndex>
    containerIndex(const std::string &name) const;

  private:
    struct Container
    {
        std::string name;
        std::shared_ptr<const core::AtcIndex> index;
        core::ChunkStore *store = nullptr; ///< borrowed registration
        std::string dir; ///< directory registration (store == nullptr)
    };

    /** One OPEN handle: a cursor plus the lock serializing it (a
     *  client may pipeline two requests against one handle; cursors
     *  are single-threaded by contract). */
    struct Handle
    {
        std::unique_ptr<core::AtcCursor> cursor;
        const Container *container = nullptr;
        std::mutex mu;
    };

    struct Session;
    struct Job
    {
        std::shared_ptr<Session> session;
        Request req;
    };

    // I/O-thread internals (all called on io_thread_ unless noted).
    void ioLoop();
    void pollOnce();
    void acceptPending();
    void readSession(const std::shared_ptr<Session> &session);
    void parseFrames(const std::shared_ptr<Session> &session);
    /** Admission loop; requires @p session.adm_mu held. Callable from
     *  the I/O thread and from workers releasing budget. */
    void admitLocked(Session &session);
    void admitSession(const std::shared_ptr<Session> &session);
    void admitAll();
    void reapSessions();
    void wakeIo();

    // Worker-side request execution.
    void handleJob(const Job &job);
    void executeOpen(Session &session, const Request &req,
                     std::vector<uint8_t> &frame);
    void executeSeek(Session &session, const Request &req,
                     std::vector<uint8_t> &frame);
    void executeReadRange(Session &session, const Request &req,
                          std::vector<uint8_t> &frame);
    void executeClose(Session &session, const Request &req,
                      std::vector<uint8_t> &frame);
    void finishHeavy(const std::shared_ptr<Session> &session,
                     uint64_t records);
    void sendFrame(Session &session, const std::vector<uint8_t> &frame);
    void countRequest(Op op);

    /** printf-style structured stderr log line, emitted when
     *  opt_.log_level >= @p level (timestamped, single write). */
    void logf(LogLevel level, const char *fmt, ...) const
        __attribute__((format(printf, 3, 4)));

    ServeOptions opt_;
    uint16_t port_ = 0;
    std::vector<std::unique_ptr<Container>> containers_;
    std::map<std::string, const Container *> by_name_;

    Socket listener_;
    // Self-pipe: workers and requestStop() nudge the poll loop.
    Socket wake_rd_, wake_wr_;
    std::map<int, std::shared_ptr<Session>> sessions_; // io thread only

    // Declaration order matters: the channel must outlive the pool
    // (workers drain it until pool shutdown joins them).
    parallel::Channel<Job> jobs_;
    std::unique_ptr<parallel::ThreadPool> pool_;
    std::thread io_thread_;

    /** Set by start(); statText() derives uptime from it. */
    std::chrono::steady_clock::time_point start_tp_{};

    std::atomic<bool> started_{false};
    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> stopped_{false};
    mutable std::mutex stop_mu_;
    std::condition_variable stop_cv_;

    // Counters (relaxed atomics; STAT assembles a snapshot).
    struct Counters
    {
        std::atomic<uint64_t> connections_accepted{0};
        std::atomic<uint64_t> sessions_active{0};
        std::atomic<uint64_t> disconnects{0};
        std::atomic<uint64_t> requests[kOpCount] = {};
        std::atomic<uint64_t> protocol_errors{0};
        std::atomic<uint64_t> request_errors{0};
        std::atomic<uint64_t> admission_deferred{0};
        std::atomic<uint64_t> records_served{0};
        std::atomic<uint64_t> bytes_sent{0};
        /** Heavy requests admitted, not yet released (per-server; the
         *  obs serve.inflight gauge is its process-wide mirror). */
        std::atomic<uint64_t> inflight_heavy{0};
    };
    mutable Counters counters_;
};

} // namespace atc::serve

#endif // ATC_SERVE_SERVER_HPP_
