/**
 * @file
 * Minimal POSIX TCP wrapper for the trace-serving daemon.
 *
 * Socket is an RAII file descriptor with EINTR-safe exact-length I/O.
 * The daemon's sessions run their descriptors non-blocking (the poll
 * loop demands it), so writeFull() transparently waits for POLLOUT
 * with a bounded timeout instead of failing with EAGAIN — a client
 * that stops draining its socket eventually times out and is
 * disconnected rather than pinning a worker forever.
 *
 * Peer-initiated teardown is a normal event for a server, not an
 * error: readFull()/writeFull() report EOF (clean close, ECONNRESET,
 * EPIPE) distinctly from genuine I/O failures so callers can reap the
 * session silently. All sends use MSG_NOSIGNAL and the daemon
 * additionally ignores SIGPIPE (ignoreSigpipe()) — a dying peer must
 * never kill the process.
 */

#ifndef ATC_SERVE_SOCKET_HPP_
#define ATC_SERVE_SOCKET_HPP_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace atc::serve {

/** Outcome of an exact-length I/O operation. */
enum class IoResult {
    kOk,    ///< all bytes transferred
    kEof,   ///< peer closed the connection (clean or reset)
    kError, ///< genuine I/O failure (message in *err)
};

/** RAII TCP socket (movable, non-copyable). */
class Socket
{
  public:
    Socket() = default;
    /** Adopt @p fd (already open; -1 = empty). */
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close the descriptor (idempotent, EINTR-safe). */
    void close();

    /** Put the descriptor in non-blocking mode. */
    util::Status setNonBlocking();

    /**
     * Read exactly @p n bytes, retrying short reads and EINTR, and
     * waiting for readability on non-blocking descriptors.
     * kEof means the peer closed before the *first* byte; a close in
     * the middle of the span is a truncation and reports kError.
     * @param timeout_ms bound on each readability wait; <= 0 = forever
     */
    IoResult readFull(void *buf, size_t n, std::string *err,
                      int timeout_ms = -1) const;

    /**
     * Write exactly @p n bytes (MSG_NOSIGNAL), retrying EINTR and
     * waiting for writability on non-blocking descriptors. EPIPE and
     * ECONNRESET report kEof — a vanished peer, not a failure.
     * @param timeout_ms bound on each writability wait; <= 0 = forever
     */
    IoResult writeFull(const void *buf, size_t n, std::string *err,
                       int timeout_ms = -1) const;

  private:
    int fd_ = -1;
};

/**
 * Open a loopback listener on @p port (0 = kernel-assigned). The
 * socket is non-blocking (for the poll loop) with SO_REUSEADDR.
 */
util::StatusOr<Socket> listenLoopback(uint16_t port, int backlog = 128);

/** @return the locally bound port of @p listener. */
util::StatusOr<uint16_t> boundPort(const Socket &listener);

/**
 * Accept one pending connection on non-blocking @p listener.
 * @return an empty (invalid) Socket when no connection is pending
 */
util::StatusOr<Socket> acceptConnection(const Socket &listener);

/** Connect to @p host (numeric or name) : @p port; blocking socket. */
util::StatusOr<Socket> connectTo(const std::string &host, uint16_t port);

/** Ignore SIGPIPE process-wide (idempotent); a peer that disappears
 *  mid-write must surface as EPIPE, never as a fatal signal. */
void ignoreSigpipe();

} // namespace atc::serve

#endif // ATC_SERVE_SOCKET_HPP_
