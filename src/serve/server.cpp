#include "serve/server.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "parallel/job_queue.hpp"

namespace atc::serve {

namespace {

/** Heavy requests decode records and are subject to admission
 *  control; everything else is bookkeeping. */
bool
isHeavy(Op op)
{
    return op == Op::Seek || op == Op::ReadRange;
}

/** Request-lifecycle metrics on the process registry. Gauges move at
 *  admission/completion frequency; histograms record micros. */
struct ServeObs
{
    obs::Gauge &queue_depth;    ///< jobs admitted, not yet picked up
    obs::Gauge &inflight;       ///< heavy requests admitted, unreleased
    obs::Histogram &queue_wait_us; ///< parse -> worker pickup
    obs::Histogram &decode_us;     ///< cursor seek/read inside a worker
    obs::Histogram &write_us;      ///< socket writeFull
};

ServeObs &
serveObs()
{
    auto &r = obs::Registry::global();
    static ServeObs m{
        r.gauge("serve.queue_depth"),
        r.gauge("serve.inflight"),
        r.histogram("serve.queue_wait_us"),
        r.histogram("serve.decode_us"),
        r.histogram("serve.write_us"),
    };
    return m;
}

/** Per-opcode end-to-end latency (parse -> response written). */
obs::Histogram &
reqHist(Op op)
{
    static std::array<obs::Histogram *, kOpCount> hists = [] {
        std::array<obs::Histogram *, kOpCount> a{};
        for (size_t i = 0; i < kOpCount; ++i)
            a[i] = &obs::Registry::global().histogram(
                std::string("serve.req.") +
                opName(static_cast<Op>(i)) + "_us");
        return a;
    }();
    return *hists[static_cast<size_t>(op)];
}

/** Status code of a response frame built by beginResponse (u16 at
 *  payload offset 2, i.e. frame offset 6). */
Wire
frameStatus(const std::vector<uint8_t> &frame)
{
    if (frame.size() < 4 + kHeaderLen)
        return Wire::kOk;
    return static_cast<Wire>(getU16(frame.data() + 6));
}

void
appendStat(std::string &out, const std::string &key, uint64_t value)
{
    out += key;
    out += '=';
    out += std::to_string(value);
    out += '\n';
}

} // namespace

/**
 * Per-connection state. Ownership: the I/O thread's sessions_ map
 * holds one reference; every in-flight Job holds another, so the
 * socket cannot close under an executing request. Field groups and
 * their guards are annotated below.
 */
struct TraceServer::Session
    : public std::enable_shared_from_this<TraceServer::Session>
{
    explicit Session(Socket s) : sock(std::move(s)) {}

    Socket sock;

    /** Stable session number for log lines (1-based accept order). */
    uint64_t id = 0;

    /** Set once (by either side) when the connection is finished; the
     *  I/O thread sweeps flagged sessions out of the poll set. */
    std::atomic<bool> closed{false};

    // ---- I/O thread only: unparsed input bytes.
    std::vector<uint8_t> inbuf;
    size_t inbuf_consumed = 0;

    // ---- Admission state, guarded by adm_mu (I/O thread admits,
    // workers release budget and re-admit).
    std::mutex adm_mu;
    std::deque<Request> pending;
    uint32_t inflight = 0;
    uint64_t inflight_records = 0;

    // ---- Handle table, guarded by h_mu.
    std::mutex h_mu;
    uint32_t next_handle = 1;
    std::map<uint32_t, std::shared_ptr<Handle>> handles;

    // ---- Response writes serialize here (pipelined requests may
    // complete on several workers at once).
    std::mutex write_mu;

    size_t
    pendingSize()
    {
        std::lock_guard<std::mutex> lock(adm_mu);
        return pending.size();
    }
};

TraceServer::TraceServer(ServeOptions opt)
    : opt_(opt),
      jobs_(std::max<size_t>(1, opt.queue_capacity))
{}

TraceServer::~TraceServer()
{
    stop();
}

util::Status
TraceServer::addContainer(const std::string &name,
                          core::ChunkStore &store)
{
    if (started_.load())
        return util::Status::error(
            "containers must be added before start()");
    if (name.empty() || by_name_.count(name))
        return util::Status::error("bad or duplicate container name: " +
                                   name);
    auto container = std::make_unique<Container>();
    container->name = name;
    container->store = &store;
    by_name_[name] = container.get();
    containers_.push_back(std::move(container));
    return util::Status();
}

util::Status
TraceServer::addContainer(const std::string &name, const std::string &dir)
{
    if (started_.load())
        return util::Status::error(
            "containers must be added before start()");
    if (name.empty() || by_name_.count(name))
        return util::Status::error("bad or duplicate container name: " +
                                   name);
    auto container = std::make_unique<Container>();
    container->name = name;
    container->dir = dir;
    by_name_[name] = container.get();
    containers_.push_back(std::move(container));
    return util::Status();
}

util::Status
TraceServer::start()
{
    if (started_.exchange(true))
        return util::Status::error("server already started");
    ignoreSigpipe();

    // Open every registered container now that the final count is
    // known: each index gets an even share of the global decoded-block
    // cache budget. A corrupt container fails start(), not the first
    // request that touches it.
    core::IndexOptions iopt;
    iopt.cache_bytes =
        containers_.empty() ? 0
                            : opt_.cache_bytes / containers_.size();
    for (auto &container : containers_) {
        auto index = container->store
                         ? core::AtcIndex::open(*container->store, iopt)
                         : core::AtcIndex::open(container->dir, iopt);
        if (!index.ok())
            return util::Status::error("container '" + container->name +
                                       "': " +
                                       index.status().message());
        container->index = index.take();
    }

    auto listener = listenLoopback(opt_.port);
    if (!listener.ok())
        return listener.status();
    listener_ = listener.take();
    auto port = boundPort(listener_);
    if (!port.ok())
        return port.status();
    port_ = port.value();

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        return util::Status::error(std::string("pipe: ") +
                                   std::strerror(errno));
    wake_rd_ = Socket(pipe_fds[0]);
    wake_wr_ = Socket(pipe_fds[1]);
    util::Status nb = wake_rd_.setNonBlocking();
    if (nb.ok())
        nb = wake_wr_.setNonBlocking();
    if (!nb.ok())
        return nb;

    pool_ = std::make_unique<parallel::ThreadPool>(
        parallel::resolveThreads(opt_.threads));
    size_t attached = parallel::attachWorkers(
        *pool_, jobs_, pool_->size(),
        [this](const Job &job) { handleJob(job); });
    if (attached != pool_->size())
        return util::Status::error("could not park the pool workers");

    start_tp_ = std::chrono::steady_clock::now();
    io_thread_ = std::thread([this] { ioLoop(); });
    logf(LogLevel::kInfo, "listening port=%u containers=%zu threads=%zu",
         unsigned(port_), containers_.size(), pool_->size());
    return util::Status();
}

void
TraceServer::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mu_);
        stop_requested_.store(true);
    }
    stop_cv_.notify_all();
    wakeIo();
}

void
TraceServer::wait()
{
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stop_requested_.load(); });
}

bool
TraceServer::waitFor(int timeout_ms)
{
    std::unique_lock<std::mutex> lock(stop_mu_);
    return stop_cv_.wait_for(lock,
                             std::chrono::milliseconds(timeout_ms),
                             [this] { return stop_requested_.load(); });
}

void
TraceServer::stop()
{
    requestStop();
    if (stopped_.exchange(true))
        return;
    if (io_thread_.joinable())
        io_thread_.join();
    jobs_.close();
    if (pool_)
        pool_->shutdown();
    // Workers are joined: in-flight jobs are done, the last session
    // references drop here and the descriptors close.
    sessions_.clear();
    listener_.close();
}

void
TraceServer::wakeIo()
{
    if (!wake_wr_.valid())
        return;
    uint8_t b = 1;
    // Nonblocking; a full pipe already guarantees a pending wakeup.
    ssize_t r = ::write(wake_wr_.fd(), &b, 1);
    (void)r;
}

// ------------------------------------------------------- I/O thread

void
TraceServer::ioLoop()
{
    while (!stop_requested_.load())
        pollOnce();
}

void
TraceServer::pollOnce()
{
    std::vector<struct pollfd> fds;
    std::vector<std::shared_ptr<Session>> polled;
    fds.push_back({wake_rd_.fd(), POLLIN, 0});
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (auto &entry : sessions_) {
        const std::shared_ptr<Session> &session = entry.second;
        if (session->closed.load())
            continue;
        // Backpressure: a session with too many unadmitted requests is
        // not read — the flood backs up into its TCP window instead of
        // this process's memory.
        if (session->pendingSize() >= opt_.max_pending_per_client)
            continue;
        fds.push_back({session->sock.fd(), POLLIN, 0});
        polled.push_back(session);
    }

    int r = ::poll(fds.data(), fds.size(), 500);
    if (r < 0 && errno != EINTR)
        return; // transient; loop re-enters
    if (r > 0) {
        if (fds[0].revents & POLLIN) {
            uint8_t drain[256];
            while (::read(wake_rd_.fd(), drain, sizeof(drain)) > 0) {
            }
        }
        if (fds[1].revents & (POLLIN | POLLERR))
            acceptPending();
        for (size_t i = 2; i < fds.size(); ++i)
            if (fds[i].revents != 0)
                readSession(polled[i - 2]);
    }
    admitAll();
    reapSessions();
}

void
TraceServer::acceptPending()
{
    for (;;) {
        auto accepted = acceptConnection(listener_);
        if (!accepted.ok())
            return; // listener broken; poll loop continues
        Socket sock = accepted.take();
        if (!sock.valid())
            return; // drained the backlog
        int fd = sock.fd();
        auto session = std::make_shared<Session>(std::move(sock));
        session->id = counters_.connections_accepted.fetch_add(
                          1, std::memory_order_relaxed) +
                      1;
        logf(LogLevel::kInfo, "session=%llu accepted fd=%d",
             static_cast<unsigned long long>(session->id), fd);
        sessions_.emplace(fd, std::move(session));
        counters_.sessions_active.fetch_add(1,
                                            std::memory_order_relaxed);
    }
}

void
TraceServer::readSession(const std::shared_ptr<Session> &session)
{
    uint8_t buf[64 * 1024];
    for (;;) {
        ssize_t r = ::recv(session->sock.fd(), buf, sizeof(buf), 0);
        if (r > 0) {
            session->inbuf.insert(session->inbuf.end(), buf, buf + r);
            // One read burst may overshoot max_pending_per_client by
            // however many tiny frames fit the burst; the *next* poll
            // pass pauses the socket, so the overshoot is bounded by
            // sizeof(buf) / min-frame-size parsed requests.
            if (static_cast<size_t>(r) < sizeof(buf))
                break;
            continue;
        }
        if (r == 0) { // orderly peer close
            session->closed.store(true);
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        // ECONNRESET and friends: the peer vanished — a clean
        // disconnect from the server's perspective, not an error.
        session->closed.store(true);
        break;
    }
    if (!session->closed.load())
        parseFrames(session);
}

void
TraceServer::parseFrames(const std::shared_ptr<Session> &session)
{
    std::vector<uint8_t> &inbuf = session->inbuf;
    size_t &pos = session->inbuf_consumed;
    while (!session->closed.load()) {
        if (inbuf.size() - pos < 4)
            break;
        uint32_t len = getU32(inbuf.data() + pos);
        if (len > kMaxRequestPayload) {
            // Framing can no longer be trusted; answer (echoing the
            // request id when the header already arrived) and drop
            // the connection.
            uint32_t id = inbuf.size() - pos >= 4 + kHeaderLen
                              ? getU32(inbuf.data() + pos + 8)
                              : 0;
            std::vector<uint8_t> frame;
            encodeErrorResponse(frame, Op::Ping, Wire::kTooLarge, id,
                                "request frame exceeds " +
                                    std::to_string(kMaxRequestPayload) +
                                    " bytes");
            counters_.protocol_errors.fetch_add(
                1, std::memory_order_relaxed);
            logf(LogLevel::kInfo,
                 "session=%llu protocol_error status=too_large "
                 "frame_len=%u",
                 static_cast<unsigned long long>(session->id), len);
            sendFrame(*session, frame);
            session->closed.store(true);
            break;
        }
        if (inbuf.size() - pos < 4u + len)
            break; // incomplete frame; wait for more bytes
        Request req;
        std::string err;
        Wire verdict =
            parseRequest(inbuf.data() + pos + 4, len, req, err);
        pos += 4u + len;
        req.arrival_ns = obs::nowNs();
        if (verdict != Wire::kOk) {
            std::vector<uint8_t> frame;
            encodeErrorResponse(frame, Op::Ping, verdict,
                                req.request_id, err);
            counters_.protocol_errors.fetch_add(
                1, std::memory_order_relaxed);
            logf(LogLevel::kInfo,
                 "session=%llu protocol_error status=%s detail=\"%s\"",
                 static_cast<unsigned long long>(session->id),
                 wireName(verdict), err.c_str());
            sendFrame(*session, frame);
            // Unknown opcodes inside a well-formed frame are
            // survivable (forward compatibility); bad versions and
            // malformed bodies are not.
            if (verdict != Wire::kUnknownOp)
                session->closed.store(true);
            continue;
        }
        countRequest(req.op);
        // Validate request-level bounds here so admission arithmetic
        // never sees nonsense (underflowed ranges, absurd counts).
        if (req.op == Op::ReadRange && req.begin > req.end) {
            std::vector<uint8_t> frame;
            encodeErrorResponse(frame, req.op, Wire::kOutOfRange,
                                req.request_id,
                                "range begin exceeds end");
            counters_.request_errors.fetch_add(
                1, std::memory_order_relaxed);
            logf(LogLevel::kInfo,
                 "session=%llu op=%s status=out_of_range us=0",
                 static_cast<unsigned long long>(session->id),
                 opName(req.op));
            sendFrame(*session, frame);
            continue;
        }
        if (isHeavy(req.op) && req.records() > opt_.max_range_records) {
            std::vector<uint8_t> frame;
            encodeErrorResponse(
                frame, req.op, Wire::kTooLarge, req.request_id,
                "request asks for " + std::to_string(req.records()) +
                    " records; max_range_records is " +
                    std::to_string(opt_.max_range_records) +
                    " (split the range)");
            counters_.request_errors.fetch_add(
                1, std::memory_order_relaxed);
            logf(LogLevel::kInfo,
                 "session=%llu op=%s status=too_large us=0",
                 static_cast<unsigned long long>(session->id),
                 opName(req.op));
            sendFrame(*session, frame);
            continue;
        }
        bool deferred;
        {
            std::lock_guard<std::mutex> lock(session->adm_mu);
            session->pending.push_back(std::move(req));
            admitLocked(*session);
            deferred = !session->pending.empty();
        }
        if (deferred)
            counters_.admission_deferred.fetch_add(
                1, std::memory_order_relaxed);
    }
    // Compact the consumed prefix (cheap: at most one partial frame
    // plus unread burst remains).
    if (pos > 0) {
        inbuf.erase(inbuf.begin(),
                    inbuf.begin() + static_cast<ptrdiff_t>(pos));
        pos = 0;
    }
}

void
TraceServer::admitLocked(Session &session)
{
    while (!session.pending.empty()) {
        Request &req = session.pending.front();
        if (isHeavy(req.op)) {
            if (session.inflight >= opt_.max_inflight_per_client)
                break;
            uint64_t rec = req.records();
            // A single in-budget request must always be able to run;
            // the records budget only gates *additional* pipelined
            // work on top of it.
            if (session.inflight > 0 &&
                session.inflight_records + rec >
                    opt_.max_inflight_records_per_client)
                break;
            Job job{session.shared_from_this(), req};
            if (!jobs_.tryPush(std::move(job)))
                break; // global queue full; retried on next wakeup
            session.inflight += 1;
            session.inflight_records += rec;
            counters_.inflight_heavy.fetch_add(
                1, std::memory_order_relaxed);
            serveObs().inflight.inc();
            serveObs().queue_depth.inc();
        } else {
            Job job{session.shared_from_this(), req};
            if (!jobs_.tryPush(std::move(job)))
                break;
            serveObs().queue_depth.inc();
        }
        session.pending.pop_front();
    }
}

void
TraceServer::admitSession(const std::shared_ptr<Session> &session)
{
    std::lock_guard<std::mutex> lock(session->adm_mu);
    admitLocked(*session);
}

void
TraceServer::admitAll()
{
    for (auto &entry : sessions_)
        if (!entry.second->closed.load())
            admitSession(entry.second);
}

void
TraceServer::reapSessions()
{
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second->closed.load()) {
            counters_.disconnects.fetch_add(1,
                                            std::memory_order_relaxed);
            counters_.sessions_active.fetch_sub(
                1, std::memory_order_relaxed);
            logf(LogLevel::kInfo, "session=%llu disconnected",
                 static_cast<unsigned long long>(it->second->id));
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

// ------------------------------------------------------- workers

void
TraceServer::countRequest(Op op)
{
    counters_.requests[static_cast<size_t>(op)].fetch_add(
        1, std::memory_order_relaxed);
}

void
TraceServer::handleJob(const Job &job)
{
    Session &session = *job.session;
    const Request &req = job.req;
    serveObs().queue_depth.dec();
    if (req.arrival_ns != 0) {
        uint64_t now = obs::nowNs();
        if (now != 0)
            serveObs().queue_wait_us.record(
                (now - req.arrival_ns) / 1000);
    }
    std::vector<uint8_t> frame;
    try {
        switch (req.op) {
        case Op::Ping:
            beginResponse(frame, req.op, Wire::kOk, req.request_id);
            finishResponse(frame);
            break;
        case Op::Stat: {
            beginResponse(frame, req.op, Wire::kOk, req.request_id);
            std::string text = statText();
            frame.insert(frame.end(), text.begin(), text.end());
            finishResponse(frame);
            break;
        }
        case Op::Metrics: {
            beginResponse(frame, req.op, Wire::kOk, req.request_id);
            std::string text = metricsText();
            frame.insert(frame.end(), text.begin(), text.end());
            finishResponse(frame);
            break;
        }
        case Op::Shutdown:
            beginResponse(frame, req.op, Wire::kOk, req.request_id);
            finishResponse(frame);
            break;
        case Op::Open:
            executeOpen(session, req, frame);
            break;
        case Op::Seek:
            executeSeek(session, req, frame);
            break;
        case Op::ReadRange:
            executeReadRange(session, req, frame);
            break;
        case Op::Close:
            executeClose(session, req, frame);
            break;
        }
    } catch (const util::Error &e) {
        encodeErrorResponse(frame, req.op, Wire::kInternal,
                            req.request_id, e.what());
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
    }
    sendFrame(session, frame);
    Wire status = frameStatus(frame);
    uint64_t total_us = 0;
    if (req.arrival_ns != 0) {
        uint64_t now = obs::nowNs();
        if (now != 0) {
            total_us = (now - req.arrival_ns) / 1000;
            reqHist(req.op).record(total_us);
        }
    }
    logf(status == Wire::kOk ? LogLevel::kDebug : LogLevel::kInfo,
         "session=%llu op=%s status=%s us=%llu",
         static_cast<unsigned long long>(session.id), opName(req.op),
         wireName(status),
         static_cast<unsigned long long>(total_us));
    if (isHeavy(req.op))
        finishHeavy(job.session, req.records());
    else
        wakeIo(); // a drained slot may unblock globally-parked work
    if (req.op == Op::Shutdown)
        requestStop();
}

void
TraceServer::executeOpen(Session &session, const Request &req,
                         std::vector<uint8_t> &frame)
{
    auto it = by_name_.find(req.name);
    if (it == by_name_.end()) {
        encodeErrorResponse(frame, req.op, Wire::kNotFound,
                            req.request_id,
                            "no container named '" + req.name + "'");
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    const Container *container = it->second;
    auto handle = std::make_shared<Handle>();
    handle->cursor = container->index->cursor();
    handle->container = container;
    uint32_t id;
    {
        std::lock_guard<std::mutex> lock(session.h_mu);
        id = session.next_handle++;
        session.handles.emplace(id, std::move(handle));
    }
    beginResponse(frame, req.op, Wire::kOk, req.request_id);
    putU32(frame, id);
    putU64(frame, container->index->size());
    frame.push_back(container->index->mode() == core::Mode::Lossy ? 1
                                                                  : 0);
    frame.push_back(container->index->version());
    finishResponse(frame);
}

void
TraceServer::executeSeek(Session &session, const Request &req,
                         std::vector<uint8_t> &frame)
{
    std::shared_ptr<Handle> handle;
    {
        std::lock_guard<std::mutex> lock(session.h_mu);
        auto it = session.handles.find(req.handle);
        if (it != session.handles.end())
            handle = it->second;
    }
    if (!handle) {
        encodeErrorResponse(frame, req.op, Wire::kBadHandle,
                            req.request_id,
                            "handle " + std::to_string(req.handle) +
                                " is not open");
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(handle->mu);
    obs::LatencyTimer decode_t(serveObs().decode_us);
    util::Status st = handle->cursor->seek(req.begin);
    if (!st.ok()) {
        encodeErrorResponse(frame, req.op, Wire::kOutOfRange,
                            req.request_id, st.message());
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    uint64_t actual = handle->cursor->tell();
    std::vector<uint64_t> records(req.count);
    size_t n = req.count == 0
                   ? 0
                   : handle->cursor->read(records.data(), req.count);
    decode_t.stop();
    beginResponse(frame, req.op, Wire::kOk, req.request_id);
    putU64(frame, actual);
    putU32(frame, static_cast<uint32_t>(n));
    frame.reserve(frame.size() + 8 * n);
    for (size_t i = 0; i < n; ++i)
        putU64(frame, records[i]);
    finishResponse(frame);
    counters_.records_served.fetch_add(n, std::memory_order_relaxed);
}

void
TraceServer::executeReadRange(Session &session, const Request &req,
                              std::vector<uint8_t> &frame)
{
    std::shared_ptr<Handle> handle;
    {
        std::lock_guard<std::mutex> lock(session.h_mu);
        auto it = session.handles.find(req.handle);
        if (it != session.handles.end())
            handle = it->second;
    }
    if (!handle) {
        encodeErrorResponse(frame, req.op, Wire::kBadHandle,
                            req.request_id,
                            "handle " + std::to_string(req.handle) +
                                " is not open");
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(handle->mu);
    if (req.end > handle->cursor->size()) {
        encodeErrorResponse(frame, req.op, Wire::kOutOfRange,
                            req.request_id,
                            "range end " + std::to_string(req.end) +
                                " exceeds trace size " +
                                std::to_string(handle->cursor->size()));
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    std::vector<uint64_t> records;
    obs::LatencyTimer decode_t(serveObs().decode_us);
    util::Status st =
        handle->cursor->readRange(req.begin, req.end, records);
    decode_t.stop();
    if (!st.ok()) {
        encodeErrorResponse(frame, req.op, Wire::kInternal,
                            req.request_id, st.message());
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    beginResponse(frame, req.op, Wire::kOk, req.request_id);
    putU32(frame, static_cast<uint32_t>(records.size()));
    frame.reserve(frame.size() + 8 * records.size());
    for (uint64_t v : records)
        putU64(frame, v);
    finishResponse(frame);
    counters_.records_served.fetch_add(records.size(),
                                       std::memory_order_relaxed);
}

void
TraceServer::executeClose(Session &session, const Request &req,
                          std::vector<uint8_t> &frame)
{
    size_t erased;
    {
        std::lock_guard<std::mutex> lock(session.h_mu);
        erased = session.handles.erase(req.handle);
    }
    if (erased == 0) {
        encodeErrorResponse(frame, req.op, Wire::kBadHandle,
                            req.request_id,
                            "handle " + std::to_string(req.handle) +
                                " is not open");
        counters_.request_errors.fetch_add(1,
                                           std::memory_order_relaxed);
        return;
    }
    beginResponse(frame, req.op, Wire::kOk, req.request_id);
    finishResponse(frame);
}

void
TraceServer::finishHeavy(const std::shared_ptr<Session> &session,
                         uint64_t records)
{
    counters_.inflight_heavy.fetch_sub(1, std::memory_order_relaxed);
    serveObs().inflight.dec();
    {
        std::lock_guard<std::mutex> lock(session->adm_mu);
        session->inflight -= 1;
        session->inflight_records -= records;
        // Fast path: admit this session's own parked work without an
        // I/O-thread round trip.
        admitLocked(*session);
    }
    // The freed channel slot may unblock *other* sessions parked on a
    // full queue, and a shrunken pending queue may resume a paused
    // socket — both decisions belong to the I/O thread.
    wakeIo();
}

void
TraceServer::sendFrame(Session &session,
                       const std::vector<uint8_t> &frame)
{
    if (frame.empty() || session.closed.load())
        return;
    std::lock_guard<std::mutex> lock(session.write_mu);
    if (session.closed.load())
        return;
    std::string err;
    obs::LatencyTimer write_t(serveObs().write_us);
    IoResult r = session.sock.writeFull(frame.data(), frame.size(),
                                        &err, opt_.write_timeout_ms);
    write_t.stop();
    if (r == IoResult::kOk) {
        counters_.bytes_sent.fetch_add(frame.size(),
                                       std::memory_order_relaxed);
        return;
    }
    // kEof: the peer went away — clean disconnect. kError: timeout or
    // genuine failure — same remedy, drop the session.
    session.closed.store(true);
    wakeIo();
}

// ------------------------------------------------------- stats

ServerStats
TraceServer::stats() const
{
    ServerStats out;
    out.connections_accepted =
        counters_.connections_accepted.load(std::memory_order_relaxed);
    out.sessions_active =
        counters_.sessions_active.load(std::memory_order_relaxed);
    out.disconnects =
        counters_.disconnects.load(std::memory_order_relaxed);
    auto req = [this](Op op) {
        return counters_.requests[static_cast<size_t>(op)].load(
            std::memory_order_relaxed);
    };
    out.requests_ping = req(Op::Ping);
    out.requests_open = req(Op::Open);
    out.requests_seek = req(Op::Seek);
    out.requests_read_range = req(Op::ReadRange);
    out.requests_stat = req(Op::Stat);
    out.requests_close = req(Op::Close);
    out.requests_shutdown = req(Op::Shutdown);
    out.requests_metrics = req(Op::Metrics);
    out.protocol_errors =
        counters_.protocol_errors.load(std::memory_order_relaxed);
    out.request_errors =
        counters_.request_errors.load(std::memory_order_relaxed);
    out.admission_deferred =
        counters_.admission_deferred.load(std::memory_order_relaxed);
    out.records_served =
        counters_.records_served.load(std::memory_order_relaxed);
    out.bytes_sent = counters_.bytes_sent.load(std::memory_order_relaxed);
    out.queue_depth = jobs_.size();
    out.inflight_heavy =
        counters_.inflight_heavy.load(std::memory_order_relaxed);
    if (started_.load() &&
        start_tp_ != std::chrono::steady_clock::time_point{})
        out.uptime_seconds = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - start_tp_)
                .count());
    return out;
}

std::string
TraceServer::statText() const
{
    ServerStats s = stats();
    std::string out;
    appendStat(out, "server.protocol_version", kProtocolVersion);
    appendStat(out, "server.containers", containers_.size());
    appendStat(out, "server.threads", pool_ ? pool_->size() : 0);
    appendStat(out, "server.queue_capacity",
               std::max<size_t>(1, opt_.queue_capacity));
    appendStat(out, "server.queue_depth", s.queue_depth);
    appendStat(out, "server.max_inflight_per_client",
               opt_.max_inflight_per_client);
    appendStat(out, "server.max_inflight_records_per_client",
               opt_.max_inflight_records_per_client);
    appendStat(out, "server.max_range_records", opt_.max_range_records);
    appendStat(out, "server.connections_accepted",
               s.connections_accepted);
    appendStat(out, "server.sessions_active", s.sessions_active);
    appendStat(out, "server.disconnects", s.disconnects);
    appendStat(out, "server.requests.ping", s.requests_ping);
    appendStat(out, "server.requests.open", s.requests_open);
    appendStat(out, "server.requests.seek", s.requests_seek);
    appendStat(out, "server.requests.read_range",
               s.requests_read_range);
    appendStat(out, "server.requests.stat", s.requests_stat);
    appendStat(out, "server.requests.close", s.requests_close);
    appendStat(out, "server.requests.shutdown", s.requests_shutdown);
    appendStat(out, "server.requests.metrics", s.requests_metrics);
    appendStat(out, "server.uptime_seconds", s.uptime_seconds);
    appendStat(out, "server.inflight_heavy", s.inflight_heavy);
    appendStat(out, "server.protocol_errors", s.protocol_errors);
    appendStat(out, "server.request_errors", s.request_errors);
    appendStat(out, "server.admission_deferred", s.admission_deferred);
    appendStat(out, "server.records_served", s.records_served);
    appendStat(out, "server.bytes_sent", s.bytes_sent);
    for (const auto &container : containers_) {
        const std::string prefix = "container." + container->name;
        appendStat(out, prefix + ".records",
                   container->index->size());
        appendStat(out, prefix + ".mode",
                   container->index->mode() == core::Mode::Lossy ? 1
                                                                 : 0);
        appendStat(out, prefix + ".container_version",
                   container->index->version());
        core::BlockCacheStats cs = container->index->cacheStats();
        appendStat(out, prefix + ".cache.capacity_bytes",
                   container->index->mode() == core::Mode::Lossy
                       ? container->index->chunkCache().capacityBytes()
                       : container->index->frameCache().capacityBytes());
        appendStat(out, prefix + ".cache.hits", cs.hits);
        appendStat(out, prefix + ".cache.misses", cs.misses);
        appendStat(out, prefix + ".cache.insertions", cs.insertions);
        appendStat(out, prefix + ".cache.evictions", cs.evictions);
        appendStat(out, prefix + ".cache.bytes", cs.bytes);
        appendStat(out, prefix + ".cache.entries", cs.entries);
    }
    return out;
}

std::string
TraceServer::metricsText()
{
    return obs::snapshotToText(obs::Registry::global().snapshot());
}

void
TraceServer::logf(LogLevel level, const char *fmt, ...) const
{
    if (static_cast<int>(opt_.log_level) < static_cast<int>(level))
        return;
    // Wall-clock stamp with millisecond resolution; one fputs so
    // lines from the I/O thread and workers do not interleave.
    auto now = std::chrono::system_clock::now();
    std::time_t secs = std::chrono::system_clock::to_time_t(now);
    int millis = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000);
    struct tm tm_utc;
    gmtime_r(&secs, &tm_utc);
    char line[512];
    size_t n = std::strftime(line, sizeof(line),
                             "[atcserved] %Y-%m-%dT%H:%M:%S", &tm_utc);
    n += static_cast<size_t>(std::snprintf(
        line + n, sizeof(line) - n, ".%03dZ %s ", millis,
        level == LogLevel::kDebug ? "debug" : "info"));
    va_list ap;
    va_start(ap, fmt);
    n += static_cast<size_t>(
        std::vsnprintf(line + n, sizeof(line) - n, fmt, ap));
    va_end(ap);
    if (n >= sizeof(line) - 1)
        n = sizeof(line) - 2;
    line[n] = '\n';
    line[n + 1] = '\0';
    std::fputs(line, stderr);
}

std::shared_ptr<const core::AtcIndex>
TraceServer::containerIndex(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second->index;
}

} // namespace atc::serve
