#include "serve/socket.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace atc::serve {

namespace {

std::string
errnoMessage(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Wait for @p events on @p fd; EINTR-safe.
 *  @return 1 ready, 0 timeout, -1 error */
int
waitFd(int fd, short events, int timeout_ms)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        int r = ::poll(&pfd, 1, timeout_ms);
        if (r >= 0)
            return r > 0 ? 1 : 0;
        if (errno != EINTR)
            return -1;
    }
}

} // namespace

void
Socket::close()
{
    if (fd_ < 0)
        return;
    // POSIX leaves the descriptor state unspecified on EINTR from
    // close(); retrying risks closing a recycled fd, so don't.
    ::close(fd_);
    fd_ = -1;
}

util::Status
Socket::setNonBlocking()
{
    int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0)
        return util::Status::error(errnoMessage("fcntl(O_NONBLOCK)"));
    return util::Status();
}

IoResult
Socket::readFull(void *buf, size_t n, std::string *err,
                 int timeout_ms) const
{
    uint8_t *p = static_cast<uint8_t *>(buf);
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd_, p + got, n - got, 0);
        if (r > 0) {
            got += static_cast<size_t>(r);
            continue;
        }
        if (r == 0 || (r < 0 && errno == ECONNRESET)) {
            if (got == 0)
                return IoResult::kEof;
            if (err)
                *err = "connection closed mid-message";
            return IoResult::kError;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            int w = waitFd(fd_, POLLIN, timeout_ms);
            if (w == 1)
                continue;
            if (err)
                *err = w == 0 ? "read timed out"
                              : errnoMessage("poll(POLLIN)");
            return IoResult::kError;
        }
        if (err)
            *err = errnoMessage("recv");
        return IoResult::kError;
    }
    return IoResult::kOk;
}

IoResult
Socket::writeFull(const void *buf, size_t n, std::string *err,
                  int timeout_ms) const
{
#ifdef MSG_NOSIGNAL
    constexpr int kSendFlags = MSG_NOSIGNAL;
#else
    constexpr int kSendFlags = 0;
#endif
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    size_t sent = 0;
    while (sent < n) {
        ssize_t r = ::send(fd_, p + sent, n - sent, kSendFlags);
        if (r > 0) {
            sent += static_cast<size_t>(r);
            continue;
        }
        if (r < 0 && (errno == EPIPE || errno == ECONNRESET))
            return IoResult::kEof;
        if (r < 0 && errno == EINTR)
            continue;
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            int w = waitFd(fd_, POLLOUT, timeout_ms);
            if (w == 1)
                continue;
            if (err)
                *err = w == 0 ? "write timed out (peer not draining)"
                              : errnoMessage("poll(POLLOUT)");
            return IoResult::kError;
        }
        if (err)
            *err = errnoMessage("send");
        return IoResult::kError;
    }
    return IoResult::kOk;
}

util::StatusOr<Socket>
listenLoopback(uint16_t port, int backlog)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return util::Status::error(errnoMessage("socket"));
    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return util::Status::error(errnoMessage("bind"));
    if (::listen(sock.fd(), backlog) != 0)
        return util::Status::error(errnoMessage("listen"));
    util::Status nb = sock.setNonBlocking();
    if (!nb.ok())
        return nb;
    return sock;
}

util::StatusOr<uint16_t>
boundPort(const Socket &listener)
{
    struct sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(),
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        return util::Status::error(errnoMessage("getsockname"));
    return static_cast<uint16_t>(ntohs(addr.sin_port));
}

util::StatusOr<Socket>
acceptConnection(const Socket &listener)
{
    for (;;) {
        int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            Socket sock(fd);
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            util::Status nb = sock.setNonBlocking();
            if (!nb.ok())
                return nb;
            return sock;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return Socket(); // nothing pending right now
        return util::Status::error(errnoMessage("accept"));
    }
}

util::StatusOr<Socket>
connectTo(const std::string &host, uint16_t port)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    std::string port_str = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
    if (rc != 0)
        return util::Status::error("getaddrinfo(" + host +
                                   "): " + ::gai_strerror(rc));
    Socket sock;
    std::string err = "no addresses for " + host;
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        Socket candidate(
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!candidate.valid()) {
            err = errnoMessage("socket");
            continue;
        }
        // An EINTR-interrupted connect keeps progressing in the
        // background; a blind retry reports EALREADY (in progress) or
        // EISCONN (done). Wait for writability and read SO_ERROR —
        // the one portable way to learn the real outcome.
        int r = ::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen);
        if (r != 0 && errno == EINTR) {
            if (waitFd(candidate.fd(), POLLOUT, -1) == 1) {
                int so_err = 0;
                socklen_t so_len = sizeof(so_err);
                if (::getsockopt(candidate.fd(), SOL_SOCKET, SO_ERROR,
                                 &so_err, &so_len) == 0 &&
                    so_err == 0)
                    r = 0;
                else
                    errno = so_err != 0 ? so_err : errno;
            }
        }
        if (r == 0) {
            int one = 1;
            ::setsockopt(candidate.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            sock = std::move(candidate);
            break;
        }
        err = errnoMessage("connect");
    }
    ::freeaddrinfo(res);
    if (!sock.valid())
        return util::Status::error(err);
    return sock;
}

void
ignoreSigpipe()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
}

} // namespace atc::serve
