/**
 * @file
 * The synthetic SPEC CPU2006-like workload suite.
 *
 * The paper evaluates on 22 SPEC CPU2006 benchmarks traced with Pin.
 * Neither SPEC nor Pin is available offline, so each benchmark is
 * modelled by a composition of access-pattern generators chosen to
 * match its qualitative memory-behaviour class (see DESIGN.md §2):
 *
 *  - stream  : large sequential sweeps; near-zero lossless BPA
 *              (410.bwaves, 433.milc, 462.libquantum, 470.lbm)
 *  - random  : random/pointer-chasing in a big footprint; lossless-hard
 *              but phase-stationary, so lossy-friendly (429, 458, 473)
 *  - regular : strided loop nests over several regions (401, 434, 435,
 *              444, 445, 456)
 *  - unstable: drifting footprints that defeat phase reuse (403, 447)
 *  - mixed   : combinations with code-stream influence (the rest)
 *
 * Every generator is deterministic given (benchmark, seed), so the
 * whole evaluation is reproducible.
 */

#ifndef ATC_TRACE_SUITE_HPP_
#define ATC_TRACE_SUITE_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/filter.hpp"
#include "trace/generators.hpp"

namespace atc::trace {

/** One synthetic benchmark: a named workload model. */
struct SyntheticBenchmark
{
    /** SPEC-style name, e.g. "429.mcf". */
    std::string name;
    /** Behaviour class tag: stream/random/regular/unstable/mixed. */
    std::string klass;
    /** Fraction of accesses that are instruction fetches (0..1). */
    double instr_fraction;

    /** Build the data-access generator for this benchmark. */
    GeneratorPtr makeData(uint64_t seed) const;

    /** Build the instruction-fetch generator for this benchmark. */
    GeneratorPtr makeCode(uint64_t seed) const;

  private:
    friend const std::vector<SyntheticBenchmark> &syntheticSuite();
    int model_ = 0; // index into the internal model table
};

/** @return the 22-entry suite, ordered as in the paper's Table 1. */
const std::vector<SyntheticBenchmark> &syntheticSuite();

/** Look up a suite entry by name; throws util::Error if unknown. */
const SyntheticBenchmark &benchmarkByName(const std::string &name);

/**
 * Run a benchmark through the L1 I/D filter and collect its
 * cache-filtered block-address trace — the paper's input format.
 *
 * @param bench benchmark model
 * @param count number of filtered addresses to collect
 * @param seed  determinism seed
 * @param l1    filter configuration (paper defaults)
 * @return `count` 64-bit block addresses (6 MSBs zero)
 */
std::vector<uint64_t> collectFilteredTrace(
    const SyntheticBenchmark &bench, size_t count, uint64_t seed = 1,
    const cache::CacheConfig &l1 = cache::CacheConfig::paperL1());

} // namespace atc::trace

#endif // ATC_TRACE_SUITE_HPP_
