/**
 * @file
 * Composable memory-access-pattern generators.
 *
 * These replace the paper's Pin-instrumented SPEC CPU2006 runs (not
 * available offline). Each generator emits an unbounded stream of byte
 * addresses; compositions of these primitives model the qualitative
 * classes of memory behaviour the paper's evaluation depends on:
 * streaming, strided loop nests, random access within a footprint,
 * pointer chasing, and phased mixtures (stable or drifting).
 */

#ifndef ATC_TRACE_GENERATORS_HPP_
#define ATC_TRACE_GENERATORS_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace atc::trace {

/** Abstract producer of byte addresses. */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** @return the next byte address of the access stream. */
    virtual uint64_t next() = 0;
};

/** Owned generator handle. */
using GeneratorPtr = std::unique_ptr<AccessGenerator>;

/**
 * Sequential streaming over a region, wrapping around at the end —
 * models vectorizable array sweeps (bwaves/milc/lbm-class behaviour).
 */
class SequentialStream : public AccessGenerator
{
  public:
    /**
     * @param base      region base address
     * @param footprint region size in bytes
     * @param stride    bytes between consecutive accesses
     */
    SequentialStream(uint64_t base, uint64_t footprint, uint64_t stride);

    uint64_t next() override;

  private:
    uint64_t base_;
    uint64_t footprint_;
    uint64_t stride_;
    uint64_t offset_ = 0;
};

/**
 * Loop nest: an inner block of addresses is swept repeatedly before the
 * window advances — models blocked/tiled kernels with heavy reuse.
 */
class LoopNest : public AccessGenerator
{
  public:
    /**
     * @param base       region base address
     * @param footprint  region size in bytes
     * @param inner      inner-block size in bytes
     * @param reuse      times each inner block is swept before advancing
     * @param stride     access stride inside a sweep
     */
    LoopNest(uint64_t base, uint64_t footprint, uint64_t inner,
             uint32_t reuse, uint64_t stride);

    uint64_t next() override;

  private:
    uint64_t base_;
    uint64_t footprint_;
    uint64_t inner_;
    uint32_t reuse_;
    uint64_t stride_;
    uint64_t window_ = 0;
    uint32_t sweep_ = 0;
    uint64_t offset_ = 0;
};

/**
 * Uniform random accesses within a footprint — models hash tables and
 * irregular graph/tree traversals (mcf/sjeng-class behaviour).
 */
class RandomAccess : public AccessGenerator
{
  public:
    /**
     * @param base      region base address
     * @param footprint region size in bytes
     * @param align     address alignment in bytes (power of two)
     * @param seed      RNG seed
     */
    RandomAccess(uint64_t base, uint64_t footprint, uint64_t align,
                 uint64_t seed);

    uint64_t next() override;

  private:
    uint64_t base_;
    uint64_t slots_;
    uint64_t align_;
    util::Rng rng_;
};

/**
 * Pointer chasing over a random permutation cycle — like RandomAccess
 * but with a deterministic, repeating order, which matters for
 * predictors and for lossy phase detection.
 */
class PointerChase : public AccessGenerator
{
  public:
    /**
     * @param base  region base address
     * @param nodes number of 64-byte nodes in the cycle
     * @param seed  permutation seed
     */
    PointerChase(uint64_t base, uint64_t nodes, uint64_t seed);

    uint64_t next() override;

  private:
    uint64_t base_;
    std::vector<uint32_t> succ_;
    uint32_t cur_ = 0;
};

/**
 * Weighted interleaving of several child streams — models a program
 * touching several data structures concurrently.
 */
class Interleave : public AccessGenerator
{
  public:
    /**
     * @param children child generators (takes ownership)
     * @param weights  relative pick weights, one per child
     * @param seed     RNG seed for the picks
     */
    Interleave(std::vector<GeneratorPtr> children,
               std::vector<uint32_t> weights, uint64_t seed);

    uint64_t next() override;

  private:
    std::vector<GeneratorPtr> children_;
    std::vector<uint32_t> cumulative_;
    uint32_t total_;
    util::Rng rng_;
};

/**
 * Deterministic round-robin interleaving with per-child burst lengths —
 * models lock-step multi-array kernels (unit-stride FP loops), whose
 * miss streams are near-perfectly regular.
 */
class RoundRobin : public AccessGenerator
{
  public:
    /**
     * @param children child generators (takes ownership)
     * @param bursts   consecutive accesses per child per turn
     */
    RoundRobin(std::vector<GeneratorPtr> children,
               std::vector<uint32_t> bursts);

    uint64_t next() override;

  private:
    std::vector<GeneratorPtr> children_;
    std::vector<uint32_t> bursts_;
    size_t cur_ = 0;
    uint32_t left_;
};

/**
 * Phase switching: each child runs exclusively for its phase length,
 * cycling forever — the structure the lossy compressor exploits.
 */
class Phased : public AccessGenerator
{
  public:
    /** One phase: a generator and how many accesses it runs for. */
    struct Phase
    {
        GeneratorPtr gen;
        uint64_t length;
    };

    /** @param phases phase list (takes ownership), cycled forever. */
    explicit Phased(std::vector<Phase> phases);

    uint64_t next() override;

  private:
    std::vector<Phase> phases_;
    size_t cur_ = 0;
    uint64_t left_;
};

/**
 * Drifting workload: like a phase, but every @p period accesses the
 * working region shifts to fresh memory — models allocation-heavy,
 * unstable programs (gcc/dealII-class) that defeat phase reuse.
 */
class Drift : public AccessGenerator
{
  public:
    /**
     * @param base     first region base
     * @param region   bytes per region
     * @param period   accesses before moving to the next region
     * @param stride   access stride within a region
     * @param reuse    sweeps per inner window (as LoopNest)
     * @param seed     randomization seed
     */
    Drift(uint64_t base, uint64_t region, uint64_t period, uint64_t stride,
          uint32_t reuse, uint64_t seed);

    uint64_t next() override;

  private:
    void advanceRegion();

    uint64_t base_;
    uint64_t region_;
    uint64_t period_;
    uint64_t stride_;
    uint32_t reuse_;
    util::Rng rng_;
    uint64_t region_idx_ = 0;
    uint64_t left_;
    GeneratorPtr inner_;
};

/**
 * Synthetic instruction-fetch stream: a small set of loop bodies with
 * phase-dependent switching, fed through the I-cache by the filter.
 */
class CodeStream : public AccessGenerator
{
  public:
    /**
     * @param base        code region base
     * @param bodies      number of distinct loop bodies
     * @param body_bytes  size of each body
     * @param switch_rate average accesses between body switches
     * @param seed        RNG seed
     */
    CodeStream(uint64_t base, uint32_t bodies, uint64_t body_bytes,
               uint64_t switch_rate, uint64_t seed);

    uint64_t next() override;

  private:
    uint64_t base_;
    uint32_t bodies_;
    uint64_t body_bytes_;
    uint64_t switch_rate_;
    util::Rng rng_;
    uint32_t cur_body_ = 0;
    uint64_t offset_ = 0;
};

} // namespace atc::trace

#endif // ATC_TRACE_GENERATORS_HPP_
