#include "trace/suite.hpp"

#include "util/status.hpp"

namespace atc::trace {

namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint64_t kKiB = 1ull << 10;

/** Code segment base (x86-64 style small-code-model text). */
constexpr uint64_t kCode = 0x400000;

/** @return base of heap-like region i (64 MiB apart). */
uint64_t
heap(int i)
{
    return 0x10000000ull + static_cast<uint64_t>(i) * 0x4000000ull;
}

/** @return base of mmap-like region i (4 GiB apart, high half). */
uint64_t
mmapRegion(int i)
{
    return 0x7F0000000000ull + static_cast<uint64_t>(i) * 0x100000000ull;
}

GeneratorPtr
seq(uint64_t base, uint64_t footprint, uint64_t stride)
{
    return std::make_unique<SequentialStream>(base, footprint, stride);
}

GeneratorPtr
nest(uint64_t base, uint64_t fp, uint64_t inner, uint32_t reuse,
     uint64_t stride)
{
    return std::make_unique<LoopNest>(base, fp, inner, reuse, stride);
}

GeneratorPtr
rnd(uint64_t base, uint64_t fp, uint64_t align, uint64_t seed)
{
    return std::make_unique<RandomAccess>(base, fp, align, seed);
}

GeneratorPtr
chase(uint64_t base, uint64_t nodes, uint64_t seed)
{
    return std::make_unique<PointerChase>(base, nodes, seed);
}

GeneratorPtr
mix(std::vector<GeneratorPtr> children, std::vector<uint32_t> weights,
    uint64_t seed)
{
    return std::make_unique<Interleave>(std::move(children),
                                        std::move(weights), seed);
}

GeneratorPtr
rrobin(std::vector<GeneratorPtr> children, std::vector<uint32_t> bursts)
{
    return std::make_unique<RoundRobin>(std::move(children),
                                        std::move(bursts));
}

GeneratorPtr
phased(std::vector<Phased::Phase> phases)
{
    return std::make_unique<Phased>(std::move(phases));
}

GeneratorPtr
drift(uint64_t base, uint64_t region, uint64_t period, uint64_t stride,
      uint32_t reuse, uint64_t seed)
{
    return std::make_unique<Drift>(base, region, period, stride, reuse,
                                   seed);
}

/** Helper to build a vector of generator children inline. */
std::vector<GeneratorPtr>
gens(GeneratorPtr a, GeneratorPtr b)
{
    std::vector<GeneratorPtr> v;
    v.push_back(std::move(a));
    v.push_back(std::move(b));
    return v;
}

std::vector<GeneratorPtr>
gens(GeneratorPtr a, GeneratorPtr b, GeneratorPtr c)
{
    std::vector<GeneratorPtr> v = gens(std::move(a), std::move(b));
    v.push_back(std::move(c));
    return v;
}

std::vector<GeneratorPtr>
gens(GeneratorPtr a, GeneratorPtr b, GeneratorPtr c, GeneratorPtr d)
{
    std::vector<GeneratorPtr> v = gens(std::move(a), std::move(b),
                                       std::move(c));
    v.push_back(std::move(d));
    return v;
}

std::vector<GeneratorPtr>
gens(GeneratorPtr a, GeneratorPtr b, GeneratorPtr c, GeneratorPtr d,
     GeneratorPtr e)
{
    std::vector<GeneratorPtr> v = gens(std::move(a), std::move(b),
                                       std::move(c), std::move(d));
    v.push_back(std::move(e));
    return v;
}

std::vector<Phased::Phase>
twoPhases(GeneratorPtr a, uint64_t la, GeneratorPtr b, uint64_t lb)
{
    std::vector<Phased::Phase> v;
    v.push_back({std::move(a), la});
    v.push_back({std::move(b), lb});
    return v;
}

/** Build the data generator for model index @p id. */
GeneratorPtr
buildData(int id, uint64_t s)
{
    // NOTE on weights: the cache filter amplifies high-miss-rate
    // components. A component's share of the *filtered* trace is
    // proportional to weight x miss-rate, where streams at stride s
    // miss about s/64 of accesses and random/chasing components with
    // large footprints miss almost always. Weights below are chosen for
    // the intended post-filter mix, not the access mix.
    switch (id) {
      case 0: // 400.perlbench — phased interpreter: nests + hashes
        return phased(twoPhases(
            rrobin(gens(nest(heap(0), 8 * kMiB, 256 * kKiB, 4, 8),
                        rnd(heap(1), 2 * kMiB, 16, s + 1),
                        seq(heap(2), kMiB, 8)),
                   {32, 1, 8}),
            3'000'000,
            rrobin(gens(nest(heap(0), 8 * kMiB, 64 * kKiB, 2, 16),
                        chase(heap(3), 32768, s + 3)),
                   {16, 2}),
            2'000'000));
      case 1: // 401.bzip2 — block sort I/O streams + work arrays
        return rrobin(gens(seq(heap(0), 8 * kMiB, 1),
                           seq(heap(1), 8 * kMiB, 1),
                           rnd(heap(2), 512 * kKiB, 4, s + 1)),
                      {64, 64, 1});
      case 2: // 403.gcc — allocation-heavy, drifting footprint
        return rrobin(gens(drift(mmapRegion(0), 2 * kMiB, 1'500'000, 16,
                                 2, s + 1),
                           rnd(heap(0), kMiB, 8, s + 2)),
                      {48, 1});
      case 3: // 410.bwaves — five large FP streams, lock-step
        return rrobin(gens(seq(mmapRegion(0), 8 * kMiB, 8),
                           seq(mmapRegion(1), 8 * kMiB, 8),
                           seq(mmapRegion(2), 8 * kMiB, 8),
                           seq(mmapRegion(3), 8 * kMiB, 8),
                           seq(mmapRegion(4), 8 * kMiB, 8)),
                      {8, 8, 8, 8, 8});
      case 4: // 429.mcf — pointer chasing over the arc network
        return rrobin(gens(chase(mmapRegion(0), 65536, s + 1),
                           chase(heap(0), 32768, s + 2),
                           seq(heap(1), 2 * kMiB, 8)),
                      {8, 1, 2});
      case 5: // 433.milc — lattice QCD streams, lock-step
        return rrobin(gens(seq(mmapRegion(0), 16 * kMiB, 16),
                           seq(mmapRegion(1), 16 * kMiB, 16),
                           seq(mmapRegion(2), 16 * kMiB, 16),
                           seq(mmapRegion(3), 16 * kMiB, 16),
                           rnd(heap(0), kMiB, 16, s + 1)),
                      {32, 32, 32, 32, 1});
      case 6: // 434.zeusmp — blocked stencil arrays, lock-step
        return rrobin(gens(nest(mmapRegion(0), 8 * kMiB, 512 * kKiB, 4, 8),
                           nest(mmapRegion(1), 8 * kMiB, 512 * kKiB, 4, 8),
                           nest(mmapRegion(2), 8 * kMiB, 512 * kKiB, 4, 8)),
                      {8, 8, 8});
      case 7: // 435.gromacs — wide-stride particle sweeps + local nest
        return rrobin(gens(seq(mmapRegion(0), 48 * kMiB, 192),
                           seq(mmapRegion(1), 24 * kMiB, 192),
                           nest(heap(0), 8 * kMiB, 32 * kKiB, 8, 4)),
                      {16, 16, 32});
      case 8: // 444.namd — particle interactions
        return mix(gens(rnd(heap(0), kMiB, 64, s + 1),
                        nest(heap(1), 2 * kMiB, 256 * kKiB, 2, 16),
                        chase(heap(2), 65536, s + 2)),
                   {1, 8, 1}, s + 3);
      case 9: // 445.gobmk — board evaluation, phased search
        return phased(twoPhases(
            mix(gens(rnd(heap(0), 512 * kKiB, 8, s + 1),
                     nest(heap(1), 2 * kMiB, 128 * kKiB, 4, 8)),
                {1, 16}, s + 2),
            2'500'000,
            chase(heap(2), 65536, s + 3), 1'500'000));
      case 10: // 447.dealII — adaptive meshes, slow drift
        return mix(gens(drift(mmapRegion(0), 4 * kMiB, 4'000'000, 8, 4,
                              s + 1),
                        nest(heap(0), 2 * kMiB, 256 * kKiB, 2, 8)),
                   {12, 2}, s + 2);
      case 11: // 450.soplex — sparse LP: row and column sweeps
        return phased(twoPhases(
            seq(mmapRegion(0), 16 * kMiB, 1024), 2'000'000,
            rrobin(gens(seq(mmapRegion(0), 16 * kMiB, 8),
                        rnd(heap(0), 4 * kMiB, 8, s + 1)),
                   {16, 1}),
            2'000'000));
      case 12: // 453.povray — tiny working set, periodic capacity misses
        return rrobin(gens(nest(heap(0), 128 * kKiB, 128 * kKiB, 64, 1),
                           rnd(heap(1), 16 * kKiB, 16, s + 1)),
                      {256, 4});
      case 13: // 456.hmmer — banded dynamic programming, lock-step
        return rrobin(gens(nest(heap(0), kMiB, 128 * kKiB, 4, 2),
                           seq(heap(1), 4 * kMiB, 4)),
                      {8, 8});
      case 14: // 458.sjeng — hash probes over a transposition table
        return mix(gens(rnd(mmapRegion(0), 2 * kMiB, 64, s + 1),
                        nest(heap(0), kMiB, 64 * kKiB, 4, 8)),
                   {1, 8}, s + 2);
      case 15: // 462.libquantum — one long vector stream
        return rrobin(gens(seq(mmapRegion(0), 32 * kMiB, 16),
                           seq(heap(0), 512 * kKiB, 16)),
                      {128, 2});
      case 16: // 464.h264ref — motion search blocks + frame streams
        return rrobin(gens(nest(heap(0), 2 * kMiB, 16 * kKiB, 8, 8),
                           seq(mmapRegion(0), 4 * kMiB, 8),
                           rnd(heap(1), 4 * kMiB, 16, s + 1)),
                      {32, 32, 1});
      case 17: // 470.lbm — two lattice streams, lock-step
        return rrobin(gens(seq(mmapRegion(0), 16 * kMiB, 8),
                           seq(mmapRegion(1), 16 * kMiB, 8)),
                      {16, 16});
      case 18: // 471.omnetpp — event queue pointer soup
        return rrobin(gens(chase(heap(0), 65536, s + 1),
                           rnd(heap(1), kMiB, 32, s + 2),
                           nest(heap(2), kMiB, 64 * kKiB, 8, 4)),
                      {8, 1, 16});
      case 19: // 473.astar — graph search over a grid
        return mix(gens(chase(mmapRegion(0), 131072, s + 1),
                        rnd(heap(0), 4 * kMiB, 32, s + 2)),
                   {3, 2}, s + 3);
      case 20: // 482.sphinx3 — acoustic model streams + senone lookups
        return rrobin(gens(seq(mmapRegion(0), 64 * kMiB, 4),
                           seq(mmapRegion(1), 32 * kMiB, 2)),
                      {64, 128});
      case 21: // 483.xalancbmk — DOM pointer chasing + string copies
        return phased(twoPhases(
            rrobin(gens(chase(heap(0), 131072, s + 1),
                        nest(heap(1), 4 * kMiB, 32 * kKiB, 2, 8)),
                   {4, 16}),
            2'000'000,
            rrobin(gens(seq(heap(2), 2 * kMiB, 8),
                        chase(heap(0), 131072, s + 3)),
                   {16, 2}),
            1'500'000));
      default:
        ATC_ASSERT(false && "unknown benchmark model");
        return nullptr;
    }
}

struct ModelSpec
{
    const char *name;
    const char *klass;
    double instr_fraction;
    uint32_t code_bodies;  // distinct loop bodies in the code stream
    uint64_t code_body_kb; // size of each body
};

const ModelSpec kModels[22] = {
    {"400.perlbench", "mixed", 0.35, 48, 24},
    {"401.bzip2", "regular", 0.20, 6, 8},
    {"403.gcc", "unstable", 0.35, 64, 32},
    {"410.bwaves", "stream", 0.10, 3, 8},
    {"429.mcf", "random", 0.15, 4, 8},
    {"433.milc", "stream", 0.10, 4, 8},
    {"434.zeusmp", "regular", 0.12, 5, 8},
    {"435.gromacs", "regular", 0.15, 8, 8},
    {"444.namd", "regular", 0.12, 6, 8},
    {"445.gobmk", "mixed", 0.40, 40, 24},
    {"447.dealII", "unstable", 0.25, 32, 16},
    {"450.soplex", "regular", 0.15, 8, 8},
    {"453.povray", "mixed", 0.30, 4, 8},
    {"456.hmmer", "regular", 0.15, 4, 8},
    {"458.sjeng", "random", 0.35, 24, 16},
    {"462.libquantum", "stream", 0.10, 2, 4},
    {"464.h264ref", "regular", 0.20, 12, 16},
    {"470.lbm", "stream", 0.08, 2, 4},
    {"471.omnetpp", "mixed", 0.30, 32, 16},
    {"473.astar", "random", 0.20, 8, 8},
    {"482.sphinx3", "stream", 0.15, 10, 8},
    {"483.xalancbmk", "mixed", 0.35, 48, 24},
};

} // namespace

GeneratorPtr
SyntheticBenchmark::makeData(uint64_t seed) const
{
    return buildData(model_, seed * 1000003ull + 17);
}

GeneratorPtr
SyntheticBenchmark::makeCode(uint64_t seed) const
{
    const ModelSpec &spec = kModels[model_];
    return std::make_unique<CodeStream>(kCode, spec.code_bodies,
                                        spec.code_body_kb * kKiB, 3000,
                                        seed * 2000003ull + 29);
}

const std::vector<SyntheticBenchmark> &
syntheticSuite()
{
    static const std::vector<SyntheticBenchmark> suite = [] {
        std::vector<SyntheticBenchmark> v;
        for (int i = 0; i < 22; ++i) {
            SyntheticBenchmark b;
            b.name = kModels[i].name;
            b.klass = kModels[i].klass;
            b.instr_fraction = kModels[i].instr_fraction;
            b.model_ = i;
            v.push_back(std::move(b));
        }
        return v;
    }();
    return suite;
}

const SyntheticBenchmark &
benchmarkByName(const std::string &name)
{
    for (const SyntheticBenchmark &b : syntheticSuite()) {
        if (b.name == name)
            return b;
    }
    util::raise("unknown benchmark: " + name);
}

std::vector<uint64_t>
collectFilteredTrace(const SyntheticBenchmark &bench, size_t count,
                     uint64_t seed, const cache::CacheConfig &l1)
{
    std::vector<uint64_t> out;
    out.reserve(count);

    cache::CacheFilter filter(l1);
    GeneratorPtr data = bench.makeData(seed);
    GeneratorPtr code = bench.makeCode(seed ^ 0x5DEECE66Dull);
    util::Rng pick(seed * 31 + 7);

    // Threshold for a 32-bit draw to select an instruction fetch.
    uint64_t threshold =
        static_cast<uint64_t>(bench.instr_fraction * 4294967296.0);

    // Safety valve: a benchmark whose miss ratio collapses would
    // otherwise spin forever.
    uint64_t max_accesses = static_cast<uint64_t>(count) * 8192 + (1 << 20);
    uint64_t accesses = 0;
    while (out.size() < count) {
        ATC_CHECK(accesses++ < max_accesses,
                  "benchmark miss rate too low to collect trace");
        bool is_instr = (pick.next() >> 32) < threshold;
        uint64_t addr = is_instr ? code->next() : data->next();
        if (auto miss = filter.access(addr, is_instr))
            out.push_back(*miss);
    }
    return out;
}

} // namespace atc::trace
