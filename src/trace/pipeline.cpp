#include "trace/pipeline.hpp"

#include <cstring>

namespace atc::trace {

uint64_t
pump(TraceSource &src, TraceSink &sink, size_t block)
{
    std::vector<uint64_t> buf(block);
    uint64_t moved = 0;
    size_t got;
    while ((got = src.read(buf.data(), buf.size())) != 0) {
        sink.write(buf.data(), got);
        moved += got;
    }
    return moved;
}

std::vector<uint64_t>
collect(TraceSource &src)
{
    std::vector<uint64_t> out;
    VectorTraceSink sink(out);
    pump(src, sink);
    return out;
}

size_t
VectorTraceSource::read(uint64_t *out, size_t n)
{
    size_t avail = in_.size() - pos_;
    size_t take = n < avail ? n : avail;
    if (take != 0)
        std::memcpy(out, in_.data() + pos_, take * sizeof(uint64_t));
    pos_ += take;
    return take;
}

size_t
GeneratorSource::read(uint64_t *out, size_t n)
{
    size_t take = n < remaining_ ? n : static_cast<size_t>(remaining_);
    for (size_t i = 0; i < take; ++i)
        out[i] = gen_.next();
    remaining_ -= take;
    return take;
}

} // namespace atc::trace
