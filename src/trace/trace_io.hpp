/**
 * @file
 * Raw address-trace I/O.
 *
 * The paper's uncompressed trace format: a flat sequence of 64-bit
 * little-endian values (8 bytes per address). These helpers move traces
 * between memory and byte streams/files.
 */

#ifndef ATC_TRACE_TRACE_IO_HPP_
#define ATC_TRACE_TRACE_IO_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytestream.hpp"

namespace atc::trace {

/** Serialize addresses as raw little-endian u64 into @p sink. */
void writeRaw(const std::vector<uint64_t> &addrs, util::ByteSink &sink);

/** Read every address from @p src until end of stream. */
std::vector<uint64_t> readRaw(util::ByteSource &src);

/** Write a raw trace file (8 bytes per address). */
void saveRawFile(const std::vector<uint64_t> &addrs,
                 const std::string &path);

/** Load a raw trace file; throws util::Error on short files. */
std::vector<uint64_t> loadRawFile(const std::string &path);

/** Reinterpret addresses as their raw byte image (for codecs). */
std::vector<uint8_t> toBytes(const std::vector<uint64_t> &addrs);

/** Inverse of toBytes; @p bytes must be a multiple of 8 long. */
std::vector<uint64_t> fromBytes(const std::vector<uint8_t> &bytes);

} // namespace atc::trace

#endif // ATC_TRACE_TRACE_IO_HPP_
