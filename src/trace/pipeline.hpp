/**
 * @file
 * Composable trace-pipeline interfaces.
 *
 * A trace pipeline moves 64-bit address records between stages in
 * batches. TraceSink consumes batches; TraceSource produces them.
 * AtcWriter/AtcReader, the cache filter stage, the TCgen codec and the
 * synthetic generators all speak these interfaces, so the paper's
 * workflows (e.g. Figure 8: generator -> cache filter -> compressor)
 * compose as chains of objects instead of hand-written loops.
 *
 * Ownership is borrowed throughout: a stage must outlive the stages
 * that reference it. close() finalizes a sink and propagates down the
 * chain, so closing the head of a pipeline seals the whole thing.
 */

#ifndef ATC_TRACE_PIPELINE_HPP_
#define ATC_TRACE_PIPELINE_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/generators.hpp"
#include "util/status.hpp"

namespace atc::trace {

/** Abstract batch consumer of 64-bit trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume @p n records starting at @p vals. */
    virtual void write(const uint64_t *vals, size_t n) = 0;

    /** Consume a single record. */
    void put(uint64_t v) { write(&v, 1); }

    /** Finalize this stage and everything downstream (default no-op). */
    virtual void close() {}
};

/** Abstract batch producer of 64-bit trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce up to @p n records into @p out.
     * @return records produced; 0 means end of trace
     */
    virtual size_t read(uint64_t *out, size_t n) = 0;

    /** Produce a single record. @return false at end of trace. */
    bool get(uint64_t *out) { return read(out, 1) == 1; }
};

/**
 * A seekable batch producer: a TraceSource over a trace of known
 * length that can reposition in O(log n) instead of decoding from the
 * start. Implementations (e.g. core::AtcCursor) are cheap to create,
 * so a consumer that wants several independent read positions opens
 * several cursors rather than multiplexing one.
 *
 * Thread-safety contract: one cursor is confined to one thread, but
 * any number of cursors over the same underlying container may be
 * used concurrently.
 */
class TraceCursor : public TraceSource
{
  public:
    /**
     * Reposition so the next read() starts at record @p record_index
     * (0-based; seeking to size() positions at end of trace). Lossy
     * containers land on the nearest containing interval boundary at
     * or before the request — check tell() for the actual position.
     * @return error (mentioning "out of range") past end of trace
     */
    virtual util::Status seek(uint64_t record_index) = 0;

    /** @return the record index the next read() will produce. */
    virtual uint64_t tell() const = 0;

    /** @return total records in the trace. */
    virtual uint64_t size() const = 0;

    /**
     * Decode exactly the records [@p begin, @p end) into @p out,
     * independent of — and without disturbing — the cursor's seek
     * position. Unlike seek(), the extraction is record-exact in every
     * mode (lossy intervals are sliced). Bad ranges (begin > end or
     * end > size()) and decode failures come back as a Status.
     */
    virtual util::Status readRange(uint64_t begin, uint64_t end,
                                   std::vector<uint64_t> &out) = 0;
};

/**
 * Drive @p src into @p sink until the source is dry, moving records in
 * blocks of @p block. Does NOT close the sink — callers decide when a
 * pipeline is sealed (several sources may feed one sink).
 * @return records moved
 */
uint64_t pump(TraceSource &src, TraceSink &sink, size_t block = 65536);

/** Drain @p src completely into a vector. */
std::vector<uint64_t> collect(TraceSource &src);

/** Sink appending into a borrowed vector. */
class VectorTraceSink : public TraceSink
{
  public:
    explicit VectorTraceSink(std::vector<uint64_t> &out) : out_(out) {}

    void
    write(const uint64_t *vals, size_t n) override
    {
        out_.insert(out_.end(), vals, vals + n);
    }

  private:
    std::vector<uint64_t> &out_;
};

/** Source reading from a borrowed vector. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(const std::vector<uint64_t> &in)
        : in_(in)
    {}

    size_t read(uint64_t *out, size_t n) override;

  private:
    const std::vector<uint64_t> &in_;
    size_t pos_ = 0;
};

/**
 * Source adapting an (unbounded) AccessGenerator into a bounded trace
 * of @p count records.
 */
class GeneratorSource : public TraceSource
{
  public:
    /** @param gen borrowed generator; must outlive the source. */
    GeneratorSource(AccessGenerator &gen, uint64_t count)
        : gen_(gen), remaining_(count)
    {}

    size_t read(uint64_t *out, size_t n) override;

  private:
    AccessGenerator &gen_;
    uint64_t remaining_;
};

/**
 * A sink that forwards every record to several downstream sinks —
 * e.g. compress a trace and simulate it in one pass.
 */
class TeeSink : public TraceSink
{
  public:
    /** @param sinks borrowed downstream sinks. */
    explicit TeeSink(std::vector<TraceSink *> sinks)
        : sinks_(std::move(sinks))
    {}

    void
    write(const uint64_t *vals, size_t n) override
    {
        for (TraceSink *s : sinks_)
            s->write(vals, n);
    }

    void
    close() override
    {
        for (TraceSink *s : sinks_)
            s->close();
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace atc::trace

#endif // ATC_TRACE_PIPELINE_HPP_
