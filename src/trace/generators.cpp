#include "trace/generators.hpp"

#include <numeric>

#include "util/status.hpp"

namespace atc::trace {

SequentialStream::SequentialStream(uint64_t base, uint64_t footprint,
                                   uint64_t stride)
    : base_(base), footprint_(footprint), stride_(stride)
{
    ATC_ASSERT(footprint_ > 0 && stride_ > 0);
}

uint64_t
SequentialStream::next()
{
    uint64_t addr = base_ + offset_;
    offset_ += stride_;
    if (offset_ >= footprint_)
        offset_ = 0;
    return addr;
}

LoopNest::LoopNest(uint64_t base, uint64_t footprint, uint64_t inner,
                   uint32_t reuse, uint64_t stride)
    : base_(base), footprint_(footprint), inner_(inner), reuse_(reuse),
      stride_(stride)
{
    ATC_ASSERT(footprint_ > 0 && inner_ > 0 && inner_ <= footprint_);
    ATC_ASSERT(reuse_ > 0 && stride_ > 0);
}

uint64_t
LoopNest::next()
{
    uint64_t addr = base_ + window_ + offset_;
    offset_ += stride_;
    if (offset_ >= inner_) {
        offset_ = 0;
        if (++sweep_ == reuse_) {
            sweep_ = 0;
            window_ += inner_;
            if (window_ + inner_ > footprint_)
                window_ = 0;
        }
    }
    return addr;
}

RandomAccess::RandomAccess(uint64_t base, uint64_t footprint, uint64_t align,
                           uint64_t seed)
    : base_(base), slots_(footprint / align), align_(align), rng_(seed)
{
    ATC_ASSERT(slots_ > 0);
}

uint64_t
RandomAccess::next()
{
    return base_ + rng_.below(slots_) * align_;
}

PointerChase::PointerChase(uint64_t base, uint64_t nodes, uint64_t seed)
    : base_(base), succ_(nodes)
{
    ATC_ASSERT(nodes >= 1 && nodes <= (1ull << 32));
    // Sattolo's algorithm: a uniform random single-cycle permutation.
    std::vector<uint32_t> perm(nodes);
    std::iota(perm.begin(), perm.end(), 0u);
    util::Rng rng(seed);
    for (uint64_t i = nodes - 1; i > 0; --i) {
        uint64_t j = rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    // succ[perm[i]] = perm[i+1] closes the cycle.
    for (uint64_t i = 0; i + 1 < nodes; ++i)
        succ_[perm[i]] = perm[i + 1];
    succ_[perm[nodes - 1]] = perm[0];
}

uint64_t
PointerChase::next()
{
    uint64_t addr = base_ + static_cast<uint64_t>(cur_) * 64;
    cur_ = succ_[cur_];
    return addr;
}

Interleave::Interleave(std::vector<GeneratorPtr> children,
                       std::vector<uint32_t> weights, uint64_t seed)
    : children_(std::move(children)), rng_(seed)
{
    ATC_ASSERT(!children_.empty());
    ATC_ASSERT(children_.size() == weights.size());
    uint32_t sum = 0;
    for (uint32_t w : weights) {
        ATC_ASSERT(w > 0);
        sum += w;
        cumulative_.push_back(sum);
    }
    total_ = sum;
}

uint64_t
Interleave::next()
{
    uint32_t pick = static_cast<uint32_t>(rng_.below(total_));
    size_t i = 0;
    while (pick >= cumulative_[i])
        ++i;
    return children_[i]->next();
}

RoundRobin::RoundRobin(std::vector<GeneratorPtr> children,
                       std::vector<uint32_t> bursts)
    : children_(std::move(children)), bursts_(std::move(bursts))
{
    ATC_ASSERT(!children_.empty());
    ATC_ASSERT(children_.size() == bursts_.size());
    for (uint32_t b : bursts_)
        ATC_ASSERT(b > 0);
    left_ = bursts_[0];
}

uint64_t
RoundRobin::next()
{
    if (left_ == 0) {
        cur_ = (cur_ + 1) % children_.size();
        left_ = bursts_[cur_];
    }
    --left_;
    return children_[cur_]->next();
}

Phased::Phased(std::vector<Phase> phases) : phases_(std::move(phases))
{
    ATC_ASSERT(!phases_.empty());
    for (const Phase &p : phases_)
        ATC_ASSERT(p.gen && p.length > 0);
    left_ = phases_[0].length;
}

uint64_t
Phased::next()
{
    if (left_ == 0) {
        cur_ = (cur_ + 1) % phases_.size();
        left_ = phases_[cur_].length;
    }
    --left_;
    return phases_[cur_].gen->next();
}

Drift::Drift(uint64_t base, uint64_t region, uint64_t period, uint64_t stride,
             uint32_t reuse, uint64_t seed)
    : base_(base), region_(region), period_(period), stride_(stride),
      reuse_(reuse), rng_(seed), left_(period)
{
    ATC_ASSERT(region_ > 0 && period_ > 0 && stride_ > 0 && reuse_ > 0);
    advanceRegion();
}

void
Drift::advanceRegion()
{
    uint64_t region_base = base_ + region_idx_ * region_;
    ++region_idx_;
    // Vary the inner structure a little between regions so successive
    // phases are similar in temporal structure but not identical.
    uint64_t inner = region_ / (2 + rng_.below(6));
    if (inner < stride_)
        inner = stride_;
    inner_ = std::make_unique<LoopNest>(region_base, region_, inner, reuse_,
                                        stride_);
}

uint64_t
Drift::next()
{
    if (left_ == 0) {
        advanceRegion();
        left_ = period_;
    }
    --left_;
    return inner_->next();
}

CodeStream::CodeStream(uint64_t base, uint32_t bodies, uint64_t body_bytes,
                       uint64_t switch_rate, uint64_t seed)
    : base_(base), bodies_(bodies), body_bytes_(body_bytes),
      switch_rate_(switch_rate), rng_(seed)
{
    ATC_ASSERT(bodies_ > 0 && body_bytes_ > 0 && switch_rate_ > 0);
}

uint64_t
CodeStream::next()
{
    // Sequential fetch within a body; occasionally jump to another body.
    uint64_t addr =
        base_ + static_cast<uint64_t>(cur_body_) * body_bytes_ + offset_;
    offset_ += 16; // one fetch group
    if (offset_ >= body_bytes_)
        offset_ = 0;
    if (rng_.below(switch_rate_) == 0) {
        cur_body_ = static_cast<uint32_t>(rng_.below(bodies_));
        offset_ = 0;
    }
    return addr;
}

} // namespace atc::trace
