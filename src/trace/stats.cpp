#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace atc::trace {

double
TraceStats::totalPlaneEntropy() const
{
    double sum = 0.0;
    for (double e : plane_entropy)
        sum += e;
    return sum;
}

TraceStats
computeStats(const std::vector<uint64_t> &trace)
{
    TraceStats stats;
    stats.length = trace.size();
    if (trace.empty())
        return stats;

    std::unordered_set<uint64_t> uniq;
    uniq.reserve(trace.size() * 2);
    stats.min_addr = trace[0];
    stats.max_addr = trace[0];

    std::array<std::array<uint64_t, 256>, 8> hist{};
    uint64_t sequential = 0;
    uint64_t prev = 0;
    bool have_prev = false;
    for (uint64_t a : trace) {
        uniq.insert(a);
        stats.min_addr = std::min(stats.min_addr, a);
        stats.max_addr = std::max(stats.max_addr, a);
        if (have_prev && a == prev + 1)
            ++sequential;
        prev = a;
        have_prev = true;
        for (int j = 0; j < 8; ++j)
            hist[j][(a >> (8 * j)) & 0xFF]++;
    }
    stats.unique = uniq.size();
    stats.sequential_fraction =
        trace.size() > 1
            ? static_cast<double>(sequential) / (trace.size() - 1)
            : 0.0;

    for (int j = 0; j < 8; ++j) {
        double h = 0.0;
        for (uint64_t c : hist[j]) {
            if (c == 0)
                continue;
            double p = static_cast<double>(c) / trace.size();
            h -= p * std::log2(p);
        }
        stats.plane_entropy[j] = h;
    }
    return stats;
}

} // namespace atc::trace
