#include "trace/trace_io.hpp"

#include "util/status.hpp"

namespace atc::trace {

void
writeRaw(const std::vector<uint64_t> &addrs, util::ByteSink &sink)
{
    for (uint64_t a : addrs)
        util::writeLE<uint64_t>(sink, a);
}

std::vector<uint64_t>
readRaw(util::ByteSource &src)
{
    std::vector<uint64_t> out;
    uint8_t buf[8];
    for (;;) {
        size_t got = src.read(buf, 8);
        if (got == 0)
            break;
        if (got < 8)
            src.readExact(buf + got, 8 - got);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(buf[i]) << (8 * i);
        out.push_back(v);
    }
    return out;
}

void
saveRawFile(const std::vector<uint64_t> &addrs, const std::string &path)
{
    util::FileSink sink(path);
    writeRaw(addrs, sink);
    sink.close();
}

std::vector<uint64_t>
loadRawFile(const std::string &path)
{
    util::FileSource src(path);
    return readRaw(src);
}

std::vector<uint8_t>
toBytes(const std::vector<uint64_t> &addrs)
{
    std::vector<uint8_t> out;
    out.reserve(addrs.size() * 8);
    util::VectorSink sink(out);
    writeRaw(addrs, sink);
    return out;
}

std::vector<uint64_t>
fromBytes(const std::vector<uint8_t> &bytes)
{
    ATC_CHECK(bytes.size() % 8 == 0, "trace byte image not a u64 multiple");
    util::MemorySource src(bytes);
    return readRaw(src);
}

} // namespace atc::trace
