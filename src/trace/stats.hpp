/**
 * @file
 * Descriptive statistics of address traces.
 *
 * Used by tests to validate that the synthetic suite spans the
 * behaviour classes the paper's evaluation depends on, and by the
 * benches to annotate their tables.
 */

#ifndef ATC_TRACE_STATS_HPP_
#define ATC_TRACE_STATS_HPP_

#include <array>
#include <cstdint>
#include <vector>

namespace atc::trace {

/** Summary of one address trace. */
struct TraceStats
{
    /** Number of addresses. */
    uint64_t length = 0;
    /** Number of distinct addresses. */
    uint64_t unique = 0;
    /** Smallest and largest address seen. */
    uint64_t min_addr = 0;
    uint64_t max_addr = 0;
    /** Fraction of addresses equal to previous+1 (sequential blocks). */
    double sequential_fraction = 0.0;
    /** Per-byte-plane zeroth-order entropy, bits (plane 0 = LSB). */
    std::array<double, 8> plane_entropy{};

    /** @return sum of plane entropies: a byte-level compressibility
     *  ceiling estimate in bits per address. */
    double totalPlaneEntropy() const;
};

/** Compute statistics for @p trace. */
TraceStats computeStats(const std::vector<uint64_t> &trace);

} // namespace atc::trace

#endif // ATC_TRACE_STATS_HPP_
