/**
 * @file
 * Value predictors for VPC/TCgen-style trace compression.
 *
 * The paper's baseline is a TCgen-generated compressor specified as
 * "DFCM3[2], FCM3[3], FCM2[3], FCM1[3]": order-3 differential FCM with
 * 2 predictions per line, plus order-3/2/1 finite-context-method
 * predictors with 3 predictions per line. Each prediction slot is a
 * separate sub-predictor in the VPC coding scheme.
 *
 * All predictors share the MultiPredictor interface: they expose a
 * fixed number of candidate predictions and are updated with the
 * actual value after each coding step, in lock-step on the compressor
 * and decompressor sides.
 */

#ifndef ATC_PREDICT_VALUE_PREDICTORS_HPP_
#define ATC_PREDICT_VALUE_PREDICTORS_HPP_

#include <cstdint>
#include <memory>
#include <vector>

namespace atc::pred {

/** A predictor producing several candidate next values. */
class MultiPredictor
{
  public:
    virtual ~MultiPredictor() = default;

    /** @return number of prediction slots this predictor exposes. */
    virtual int ways() const = 0;

    /**
     * Current predictions.
     * @param out receives ways() candidate values
     */
    virtual void predict(uint64_t *out) const = 0;

    /** Teach the predictor the value that actually occurred. */
    virtual void update(uint64_t actual) = 0;
};

/** Last-value predictor (1 way): predicts the previous value. */
class LastValuePredictor : public MultiPredictor
{
  public:
    int ways() const override { return 1; }
    void predict(uint64_t *out) const override { out[0] = last_; }
    void update(uint64_t actual) override { last_ = actual; }

  private:
    uint64_t last_ = 0;
};

/** Stride predictor (1 way): last value + last observed stride. */
class StridePredictor : public MultiPredictor
{
  public:
    int ways() const override { return 1; }

    void
    predict(uint64_t *out) const override
    {
        out[0] = last_ + stride_;
    }

    void
    update(uint64_t actual) override
    {
        stride_ = actual - last_;
        last_ = actual;
    }

  private:
    uint64_t last_ = 0;
    uint64_t stride_ = 0;
};

/**
 * Order-n finite context method: a hash of the last n values selects a
 * table line holding the `ways` most recent values seen in that
 * context (MRU-ordered).
 */
class FcmPredictor : public MultiPredictor
{
  public:
    /**
     * @param order      context length in values
     * @param ways       predictions per line
     * @param log2_lines log2 of the number of table lines
     */
    FcmPredictor(int order, int ways, int log2_lines);

    int ways() const override { return ways_; }
    void predict(uint64_t *out) const override;
    void update(uint64_t actual) override;

    /** @return table size in bytes (for memory-budget accounting). */
    uint64_t tableBytes() const;

  private:
    uint64_t lineIndex() const;

    int order_;
    int ways_;
    uint64_t mask_;
    std::vector<uint64_t> history_; // ring of the last `order` values
    int hist_pos_ = 0;
    std::vector<uint64_t> table_; // lines * ways, MRU first
};

/**
 * Order-n differential FCM: like FcmPredictor, but the table stores
 * strides relative to the last value, so one line can cover many
 * distinct address regions with the same access pattern.
 */
class DfcmPredictor : public MultiPredictor
{
  public:
    /**
     * @param order      context length in strides
     * @param ways       predictions per line
     * @param log2_lines log2 of the number of table lines
     */
    DfcmPredictor(int order, int ways, int log2_lines);

    int ways() const override { return ways_; }
    void predict(uint64_t *out) const override;
    void update(uint64_t actual) override;

    /** @return table size in bytes (for memory-budget accounting). */
    uint64_t tableBytes() const;

  private:
    uint64_t lineIndex() const;

    int order_;
    int ways_;
    uint64_t mask_;
    uint64_t last_ = 0;
    std::vector<uint64_t> stride_history_; // ring of last `order` strides
    int hist_pos_ = 0;
    std::vector<uint64_t> table_; // lines * ways of strides, MRU first
};

} // namespace atc::pred

#endif // ATC_PREDICT_VALUE_PREDICTORS_HPP_
