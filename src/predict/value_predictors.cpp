#include "predict/value_predictors.hpp"

#include "util/status.hpp"

namespace atc::pred {

namespace {

/** Mix a history window into a table index. */
uint64_t
hashHistory(const std::vector<uint64_t> &ring, int pos, int order,
            uint64_t mask)
{
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < order; ++i) {
        uint64_t v = ring[(pos + i) % order];
        h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        h *= 0xFF51AFD7ED558CCDull;
    }
    return (h >> 16) & mask;
}

/** MRU-insert @p value into line [base, base+ways). */
void
mruInsert(uint64_t *base, int ways, uint64_t value)
{
    int found = ways - 1;
    for (int i = 0; i < ways; ++i) {
        if (base[i] == value) {
            found = i;
            break;
        }
    }
    for (int i = found; i > 0; --i)
        base[i] = base[i - 1];
    base[0] = value;
}

} // namespace

FcmPredictor::FcmPredictor(int order, int ways, int log2_lines)
    : order_(order), ways_(ways), mask_((1ull << log2_lines) - 1),
      history_(order, 0),
      table_(static_cast<size_t>(1ull << log2_lines) * ways, 0)
{
    ATC_ASSERT(order >= 1 && ways >= 1 && log2_lines >= 1 &&
               log2_lines <= 30);
}

uint64_t
FcmPredictor::lineIndex() const
{
    return hashHistory(history_, hist_pos_, order_, mask_);
}

void
FcmPredictor::predict(uint64_t *out) const
{
    const uint64_t *line = &table_[lineIndex() * ways_];
    for (int i = 0; i < ways_; ++i)
        out[i] = line[i];
}

void
FcmPredictor::update(uint64_t actual)
{
    uint64_t *line = &table_[lineIndex() * ways_];
    mruInsert(line, ways_, actual);
    history_[hist_pos_] = actual;
    hist_pos_ = (hist_pos_ + 1) % order_;
}

uint64_t
FcmPredictor::tableBytes() const
{
    return table_.size() * sizeof(uint64_t);
}

DfcmPredictor::DfcmPredictor(int order, int ways, int log2_lines)
    : order_(order), ways_(ways), mask_((1ull << log2_lines) - 1),
      stride_history_(order, 0),
      table_(static_cast<size_t>(1ull << log2_lines) * ways, 0)
{
    ATC_ASSERT(order >= 1 && ways >= 1 && log2_lines >= 1 &&
               log2_lines <= 30);
}

uint64_t
DfcmPredictor::lineIndex() const
{
    return hashHistory(stride_history_, hist_pos_, order_, mask_);
}

void
DfcmPredictor::predict(uint64_t *out) const
{
    const uint64_t *line = &table_[lineIndex() * ways_];
    for (int i = 0; i < ways_; ++i)
        out[i] = last_ + line[i];
}

void
DfcmPredictor::update(uint64_t actual)
{
    uint64_t stride = actual - last_;
    uint64_t *line = &table_[lineIndex() * ways_];
    mruInsert(line, ways_, stride);
    stride_history_[hist_pos_] = stride;
    hist_pos_ = (hist_pos_ + 1) % order_;
    last_ = actual;
}

uint64_t
DfcmPredictor::tableBytes() const
{
    return table_.size() * sizeof(uint64_t);
}

} // namespace atc::pred
