/**
 * @file
 * C/DC-style address predictor (Nesbit, Dhodapkar & Smith).
 *
 * Reproduces the predictor the paper uses to validate lossy traces
 * (Figure 5): addresses are partitioned into CZones; a per-zone index
 * table points into a global history buffer (GHB); a 2-delta
 * correlation key predicts the next address in the same zone. Each
 * address is scored as non-predicted, correctly predicted, or
 * mispredicted against the prediction made at the zone's previous
 * access.
 */

#ifndef ATC_PREDICT_CDC_HPP_
#define ATC_PREDICT_CDC_HPP_

#include <cstdint>
#include <vector>

namespace atc::pred {

/** Configuration of the C/DC predictor. */
struct CdcConfig
{
    /** log2 of the CZone size in *blocks*; 10 = 64 KiB zones of 64 B
     *  blocks (the paper's configuration). */
    uint32_t czone_block_bits = 10;
    /** Index table entries (direct mapped). */
    uint32_t index_entries = 256;
    /** Global history buffer entries (circular). */
    uint32_t ghb_entries = 256;
    /** Number of deltas in the correlation key. */
    uint32_t key_deltas = 2;
};

/** Outcome counters (one of the three per processed address). */
struct CdcStats
{
    uint64_t non_predicted = 0;
    uint64_t correct = 0;
    uint64_t mispredicted = 0;

    /** @return total addresses scored. */
    uint64_t
    total() const
    {
        return non_predicted + correct + mispredicted;
    }
};

/** The predictor; feed block addresses in trace order. */
class CdcPredictor
{
  public:
    explicit CdcPredictor(const CdcConfig &config = CdcConfig());

    /** Process one block address, scoring the zone's prior prediction
     *  and forming a new prediction for the zone's next address. */
    void access(uint64_t block_addr);

    /** @return accumulated outcome counters. */
    const CdcStats &stats() const { return stats_; }

  private:
    struct GhbEntry
    {
        uint64_t addr = 0;
        // Global sequence number of the zone's previous entry, or 0.
        uint64_t prev_seq = 0;
    };

    struct IndexEntry
    {
        uint64_t zone_tag = 0;
        uint64_t head_seq = 0;  // newest GHB entry of this zone
        uint64_t predicted = 0; // prediction for the zone's next address
        bool valid = false;
        bool has_prediction = false;
    };

    /** @return entry for sequence number @p seq, or null if expired. */
    const GhbEntry *ghbAt(uint64_t seq) const;

    CdcConfig config_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    uint64_t next_seq_ = 1; // sequence numbers start at 1 (0 = none)
    CdcStats stats_;
};

} // namespace atc::pred

#endif // ATC_PREDICT_CDC_HPP_
