#include "predict/cdc.hpp"

#include "util/status.hpp"

namespace atc::pred {

CdcPredictor::CdcPredictor(const CdcConfig &config)
    : config_(config), ghb_(config.ghb_entries),
      index_(config.index_entries)
{
    ATC_ASSERT(config.index_entries > 0 && config.ghb_entries > 0);
    ATC_ASSERT(config.key_deltas >= 1);
}

const CdcPredictor::GhbEntry *
CdcPredictor::ghbAt(uint64_t seq) const
{
    if (seq == 0)
        return nullptr;
    // Entries are overwritten after ghb_entries further insertions.
    uint64_t newest = next_seq_ - 1;
    if (newest >= config_.ghb_entries &&
        seq <= newest - config_.ghb_entries)
        return nullptr;
    return &ghb_[seq % config_.ghb_entries];
}

void
CdcPredictor::access(uint64_t block_addr)
{
    uint64_t zone = block_addr >> config_.czone_block_bits;
    IndexEntry &entry = index_[zone % config_.index_entries];
    bool zone_match = entry.valid && entry.zone_tag == zone;

    // Score the prediction made at the zone's previous access.
    if (zone_match && entry.has_prediction) {
        if (entry.predicted == block_addr)
            ++stats_.correct;
        else
            ++stats_.mispredicted;
    } else {
        ++stats_.non_predicted;
    }

    // Append to the GHB, linking to the zone's previous entry.
    uint64_t seq = next_seq_++;
    ghb_[seq % config_.ghb_entries] = {block_addr,
                                       zone_match ? entry.head_seq : 0};
    entry.zone_tag = zone;
    entry.head_seq = seq;
    entry.valid = true;
    entry.has_prediction = false;

    // Gather the zone's recent addresses, newest first, following the
    // GHB links while entries are still live.
    std::vector<uint64_t> addrs;
    addrs.reserve(config_.ghb_entries);
    uint64_t cur = seq;
    while (addrs.size() < config_.ghb_entries) {
        const GhbEntry *g = ghbAt(cur);
        if (!g)
            break;
        addrs.push_back(g->addr);
        cur = g->prev_seq;
    }

    // Delta-correlation: deltas newest-first; the key is the newest
    // key_deltas of them. A match at offset j >= 1 predicts the delta
    // that followed that occurrence in time, i.e. delta j-1.
    const uint32_t k = config_.key_deltas;
    if (addrs.size() < k + 2)
        return;
    std::vector<uint64_t> deltas(addrs.size() - 1);
    for (size_t i = 0; i + 1 < addrs.size(); ++i)
        deltas[i] = addrs[i] - addrs[i + 1];

    for (size_t j = 1; j + k <= deltas.size(); ++j) {
        bool match = true;
        for (uint32_t d = 0; d < k; ++d) {
            if (deltas[j + d] != deltas[d]) {
                match = false;
                break;
            }
        }
        if (match) {
            entry.predicted = block_addr + deltas[j - 1];
            entry.has_prediction = true;
            return;
        }
    }
}

} // namespace atc::pred
