/**
 * @file
 * Random-access read API over ATC containers.
 *
 * AtcIndex is an immutable, open-once snapshot of everything needed to
 * locate a record without decoding the records before it: the parsed
 * INFO stream, every chunk's v3 frame index (scanned from the seekable
 * frame headers without touching payloads, then validated against the
 * stored end-of-stream index), and — in lossy mode — the cumulative
 * record offsets of the interval trace. One AtcIndex may be shared by
 * any number of threads; it never mutates after open().
 *
 * AtcCursor is the trace::TraceCursor implementation minted from an
 * AtcIndex. Cursors are cheap: each holds only its own decode state,
 * so a consumer wanting several independent read positions opens
 * several cursors. seek() on a lossless v3 container binary-searches
 * the frame index and decodes only from the containing frame onward;
 * on lossy containers it lands on the containing interval boundary
 * (the paper's lossy semantics make positions inside an imitated
 * interval approximations anyway — tell() reports where the cursor
 * actually landed). v1/v2 containers carry no frame index, so their
 * cursors fall back to decode-and-skip behind the same API.
 *
 * Thread-safety rules:
 *  - AtcIndex: immutable, share freely (its ChunkStore must stay
 *    readable and unmodified for the index's lifetime, and openChunk()
 *    must be callable concurrently — DirectoryStore and MemoryStore
 *    both qualify). The attached decoded-block cache (BlockCache) is
 *    internally synchronized mutable state and shared along with the
 *    index; see IndexOptions::cache_bytes.
 *  - AtcCursor: confined to one thread at a time; concurrent use of
 *    *different* cursors over one AtcIndex is supported and tested.
 *  - A cursor keeps its AtcIndex alive (shared ownership) but only
 *    borrows the optional thread pool — the pool must outlive the
 *    cursor.
 */

#ifndef ATC_ATC_INDEX_HPP_
#define ATC_ATC_INDEX_HPP_

#include <memory>
#include <string>
#include <vector>

#include "atc/block_cache.hpp"
#include "atc/container.hpp"
#include "atc/info.hpp"
#include "atc/lossless.hpp"
#include "atc/lossy.hpp"
#include "compress/stream.hpp"
#include "trace/pipeline.hpp"
#include "util/status.hpp"

namespace atc::parallel {
class ThreadPool;
} // namespace atc::parallel

namespace atc::core {

class AtcCursor;

/** Knobs of a cursor minted by AtcIndex::cursor(). */
struct CursorOptions
{
    /** Borrowed pool; when set, readRange() fans the decode of the
     *  covering frames (lossless v3) or covering chunks (lossy) out
     *  to it. Must outlive the cursor. */
    parallel::ThreadPool *pool = nullptr;
};

/** Knobs of the snapshot built by AtcIndex::open(). */
struct IndexOptions
{
    /** Budget of the shared decoded-block cache, in bytes (0 disables
     *  it). Lossless v3 indexes cache decoded codec frames keyed by
     *  (chunk, frame); lossy indexes cache decoded chunks keyed by
     *  chunk id. Every cursor minted from the index reads through the
     *  same cache, so repeated seeks into a cache-resident working set
     *  decode nothing. */
    size_t cache_bytes = kDefaultDecodedCacheBytes;
};

/** Immutable, shareable snapshot of a container's seek metadata. */
class AtcIndex : public std::enable_shared_from_this<AtcIndex>
{
  public:
    /**
     * Open over an existing store (borrowed; must outlive the index
     * and stay unmodified). Reads INFO and, on v3 containers, scans
     * and validates every chunk's frame index — payloads are skipped,
     * never decoded, so open cost is I/O over headers only.
     */
    static util::StatusOr<std::shared_ptr<const AtcIndex>> open(
        ChunkStore &store, const IndexOptions &iopt = {});

    /** Open a directory container, auto-detecting the suffix. */
    static util::StatusOr<std::shared_ptr<const AtcIndex>> open(
        const std::string &dir, const IndexOptions &iopt = {});

    /** Open a directory container with an explicit suffix. */
    static util::StatusOr<std::shared_ptr<const AtcIndex>> open(
        const std::string &dir, const std::string &suffix,
        const IndexOptions &iopt = {});

    /** Throwing variant of open() for internal callers. */
    static std::shared_ptr<const AtcIndex> openOrThrow(
        ChunkStore &store, const IndexOptions &iopt = {});

    /**
     * Throwing open() that takes ownership of @p store, making the
     * snapshot fully self-contained — the directory-opened readers use
     * this so their index() survives the reader itself.
     */
    static std::shared_ptr<const AtcIndex> openOrThrow(
        std::unique_ptr<ChunkStore> store, const IndexOptions &iopt = {});

    /**
     * Mint a new cursor positioned at record 0. Any number of cursors
     * may coexist; each is independent.
     */
    std::unique_ptr<AtcCursor> cursor(
        const CursorOptions &copt = {}) const;

    /** @return the parsed INFO (records included in lossy mode). */
    const ContainerInfo &info() const { return info_; }

    /** @return total records in the trace. */
    uint64_t size() const { return info_.count; }

    /** @return the container's compression mode. */
    Mode mode() const { return info_.mode; }

    /** @return the container format version. */
    uint8_t version() const { return info_.version; }

    /**
     * @return true when seeks resolve through the v3 frame index
     * (lossless) or the interval trace (lossy) without decoding
     * skipped data; false means cursors decode-and-skip (v1/v2
     * lossless).
     */
    bool nativeSeek() const;

    /** @return number of chunks in the container. */
    uint32_t chunkCount() const;

    /**
     * @return chunk @p id's scanned frame layout, or nullptr when the
     * container predates seekable framing (v1/v2).
     */
    const comp::StreamLayout *chunkLayout(uint32_t id) const;

    /** @return cumulative record start offsets of the interval trace
     *  (records().size() + 1 entries); empty in lossless mode. */
    const std::vector<uint64_t> &recordStarts() const
    {
        return record_starts_;
    }

    /** @return the backing store. */
    ChunkStore &store() const { return *store_; }

    /** @return the configured codec shared by every reader over this
     *  container (codecs are stateless and thread-safe). */
    const comp::ConfiguredCodec &codec() const { return codec_; }

    // ---- shared decoded-block cache (see IndexOptions::cache_bytes).
    // The caches are internally synchronized mutable state attached to
    // the otherwise-immutable snapshot; sharing the index across
    // threads shares them too.

    /** @return the decoded-frame cache (lossless v3 cursors). */
    BlockCache<uint8_t> &frameCache() const { return frame_cache_; }

    /** @return the decoded-chunk cache (lossy cursors). */
    BlockCache<uint64_t> &chunkCache() const { return chunk_cache_; }

    /**
     * @return the aggregate counters of whichever shared cache this
     * container's mode uses (decoded frames in lossless, decoded
     * chunks in lossy) — the one public window onto cache behaviour,
     * consumed by `atcinfo` and the serving daemon's STAT op.
     */
    BlockCacheStats
    cacheStats() const
    {
        return info_.mode == Mode::Lossy ? chunk_cache_.stats()
                                         : frame_cache_.stats();
    }

    /**
     * Fetch the decoded bytes of frame @p f of chunk @p chunk_id
     * through the shared cache: a hit skips the frame in @p src
     * without touching its payload; a miss decodes through
     * comp::decodeIndexedFrame and inserts the result. @p src must be
     * positioned at the frame's header and is left just past the
     * frame either way, so sequential callers stay aligned.
     */
    BlockCache<uint8_t>::Ptr decodedFrame(uint32_t chunk_id, size_t f,
                                          util::ByteSource &src) const;

    // ---- lossless transform-buffer geometry (derived from INFO) ----
    // The raw (pre-codec) stream is a sequence of self-contained
    // transform buffers — varint(n) + 8n bytes each — of exactly
    // buffer_addrs records apiece (the final one possibly shorter), so
    // the raw byte offset of any buffer is computable without I/O.

    /** @return the transform buffer containing record @p rec. */
    uint64_t bufferOf(uint64_t rec) const;

    /** @return records in transform buffer @p b. */
    uint64_t bufferLen(uint64_t b) const;

    /** @return raw-stream byte offset where buffer @p b starts. */
    uint64_t bufferRawOffset(uint64_t b) const;

    AtcIndex(const AtcIndex &) = delete;
    AtcIndex &operator=(const AtcIndex &) = delete;

  private:
    friend class AtcCursor;

    AtcIndex(ChunkStore &store, const IndexOptions &iopt);
    AtcIndex(std::unique_ptr<ChunkStore> owned, const IndexOptions &iopt);

    void load();

    std::unique_ptr<ChunkStore> owned_store_;
    ChunkStore *store_;
    ContainerInfo info_;
    comp::ConfiguredCodec codec_;
    /** v3 only: one scanned layout per chunk, indexed by chunk id. */
    std::vector<comp::StreamLayout> layouts_;
    /** Lossy only: record_starts_[i] = first record of interval i. */
    std::vector<uint64_t> record_starts_;
    /** Only the mode-appropriate cache is ever populated; the other
     *  stays an empty shell (see IndexOptions::cache_bytes). */
    mutable BlockCache<uint8_t> frame_cache_;
    mutable BlockCache<uint64_t> chunk_cache_;
};

/** Seekable reader over one AtcIndex; see the file comment. */
class AtcCursor : public trace::TraceCursor
{
  public:
    AtcCursor(std::shared_ptr<const AtcIndex> index,
              const CursorOptions &copt);
    ~AtcCursor() override;

    AtcCursor(const AtcCursor &) = delete;
    AtcCursor &operator=(const AtcCursor &) = delete;

    /** Produce up to @p n records from the current position. */
    size_t read(uint64_t *out, size_t n) override;

    util::Status seek(uint64_t record_index) override;
    uint64_t tell() const override { return pos_; }
    uint64_t size() const override { return index_->size(); }
    util::Status readRange(uint64_t begin, uint64_t end,
                           std::vector<uint64_t> &out) override;

    /** @return the shared index this cursor reads through. */
    const std::shared_ptr<const AtcIndex> &index() const { return index_; }

  private:
    void resetSequential();
    void seekLossless(uint64_t rec);
    void seekLosslessFallback(uint64_t rec);
    void seekLossy(uint64_t rec);
    void skipRecords(uint64_t n);
    size_t readImpl(uint64_t *out, size_t n);
    void rangeLossless(uint64_t begin, uint64_t end,
                       std::vector<uint64_t> &out);
    void rangeLossy(uint64_t begin, uint64_t end,
                    std::vector<uint64_t> &out);
    void prefetchLossyChunks(uint64_t begin, uint64_t end);
    std::vector<uint8_t> decodeFrames(size_t first, size_t last);

    std::shared_ptr<const AtcIndex> index_;
    parallel::ThreadPool *pool_;
    uint64_t pos_ = 0;

    // Lossless state: either the sequential pipeline (LosslessReader,
    // CRC-verifying — active from construction and after seek(0)) or
    // the mid-stream pipeline built by a v3 seek. The codec itself is
    // the index's (shared, stateless).
    std::unique_ptr<util::ByteSource> chunk_src_;
    std::unique_ptr<LosslessReader> sequential_;
    std::unique_ptr<util::ByteSource> frame_src_;
    std::unique_ptr<TransformDecoder> transform_;

    // Lossy state: shared interval trace, shared chunk cache (both
    // owned by the index).
    std::unique_ptr<LossyDecoder> lossy_;
};

} // namespace atc::core

#endif // ATC_ATC_INDEX_HPP_
