#include "atc/lossy.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace atc::core {

namespace {

// The signature+decision stage runs on the writer's caller thread
// even when chunk compression is pooled — the ROADMAP's suspected
// serial bottleneck. These counters make that fraction measurable.
struct LossyMetrics {
    obs::Counter &signature_us;
    obs::Counter &decision_us;
    obs::Counter &chunk_compress_us;
    obs::Counter &chunk_decode_us;
    obs::Counter &chunks;
    obs::Counter &imitations;
};

LossyMetrics &
lossyMetrics()
{
    auto &r = obs::Registry::global();
    static LossyMetrics m{
        r.counter("lossy.signature_us"),
        r.counter("lossy.decision_us"),
        r.counter("lossy.chunk_compress_us"),
        r.counter("lossy.chunk_decode_us"),
        r.counter("lossy.chunks"),
        r.counter("lossy.imitations"),
    };
    return m;
}

}  // namespace

LossyEncoder::LossyEncoder(const LossyParams &params, ChunkStore &store,
                           ChunkFn chunk_fn)
    : params_(params), store_(store), chunk_fn_(std::move(chunk_fn))
{
    ATC_CHECK(params_.interval_len > 0, "interval length must be positive");
    ATC_CHECK(params_.chunk_table > 0, "chunk table must be nonempty");
    buffer_.reserve(params_.interval_len);
}

void
LossyEncoder::write(const uint64_t *addrs, size_t n)
{
    ATC_ASSERT(!finished_);
    stats_.addresses += n;
    while (n > 0) {
        size_t room =
            static_cast<size_t>(params_.interval_len) - buffer_.size();
        size_t take = n < room ? n : room;
        buffer_.insert(buffer_.end(), addrs, addrs + take);
        addrs += take;
        n -= take;
        if (buffer_.size() == params_.interval_len)
            processInterval();
    }
}

void
LossyEncoder::emitChunk(const IntervalSignature &sig)
{
    uint32_t id = static_cast<uint32_t>(stats_.chunks_created++);
    uint64_t length = buffer_.size();
    bool full = buffer_.size() == params_.interval_len;

    lossyMetrics().chunks.inc();
    if (chunk_fn_) {
        // Pooled path: the parallel writer times the compression
        // inside its task, where it actually runs.
        std::vector<uint64_t> payload = std::move(buffer_);
        buffer_ = std::vector<uint64_t>();
        buffer_.reserve(params_.interval_len);
        chunk_fn_(id, std::move(payload));
    } else {
        obs::StageTimer t(lossyMetrics().chunk_compress_us);
        auto sink = store_.createChunk(id);
        LosslessWriter writer(params_.chunk_params, *sink);
        writer.write(buffer_.data(), buffer_.size());
        writer.finish();
        sink->flush();
    }

    records_.push_back(
        {IntervalRecord::Kind::Chunk, id, length, ByteTranslation{}});

    // Register the chunk's signature; evict the oldest when full. A
    // partial final chunk is not a candidate for imitation, so it is
    // not registered.
    if (full) {
        if (table_.size() == params_.chunk_table)
            table_.pop_front();
        table_.push_back({id, sig});
    }
}

IntervalSignature
LossyEncoder::signatureOf(const uint64_t *addrs, size_t n)
{
    obs::StageTimer sig_t(lossyMetrics().signature_us);
    return IntervalSignature::from(computeHistograms(addrs, n));
}

void
LossyEncoder::writeInterval(std::vector<uint64_t> payload,
                            const IntervalSignature &sig)
{
    ATC_ASSERT(!finished_);
    ATC_CHECK(buffer_.empty(),
              "writeInterval cannot mix with buffered write() input");
    ATC_CHECK(!payload.empty() &&
                  payload.size() <= params_.interval_len,
              "writeInterval payload must be 1..interval_len addresses");
    stats_.addresses += payload.size();
    buffer_ = std::move(payload);
    applyInterval(sig);
}

void
LossyEncoder::processInterval()
{
    applyInterval(signatureOf(buffer_.data(), buffer_.size()));
}

void
LossyEncoder::applyInterval(const IntervalSignature &sig)
{
    LossyMetrics &m = lossyMetrics();

    // Only full intervals may imitate: a shorter final interval has a
    // different temporal extent and is always stored exactly.
    bool full = buffer_.size() == params_.interval_len;

    obs::StageTimer dec_t(m.decision_us);
    const TableEntry *best = nullptr;
    double best_d = 0.0;
    if (full) {
        for (const TableEntry &entry : table_) {
            double d = signatureDistance(entry.sig, sig);
            if (!best || d < best_d) {
                best = &entry;
                best_d = d;
            }
        }
    }

    if (best && best_d < params_.epsilon) {
        IntervalRecord rec;
        rec.kind = IntervalRecord::Kind::Imitate;
        rec.chunk_id = best->chunk_id;
        rec.length = buffer_.size();
        if (params_.translate)
            rec.trans = makeTranslation(best->sig, sig, params_.epsilon);
        dec_t.stop();
        records_.push_back(std::move(rec));
        ++stats_.imitated;
        m.imitations.inc();
    } else {
        dec_t.stop();
        emitChunk(sig);
    }

    ++stats_.intervals;
    buffer_.clear();
}

void
LossyEncoder::finish()
{
    if (finished_)
        return;
    if (!buffer_.empty())
        processInterval();
    finished_ = true;
}

std::vector<uint64_t>
decodeChunkPayload(const LosslessParams &params, ChunkStore &store,
                   uint32_t id)
{
    obs::StageTimer t(lossyMetrics().chunk_decode_us);
    auto src = store.openChunk(id);
    LosslessReader reader(params, *src);
    std::vector<uint64_t> addrs;
    uint64_t buf[4096];
    size_t got;
    while ((got = reader.read(buf, 4096)) != 0)
        addrs.insert(addrs.end(), buf, buf + got);
    return addrs;
}

LossyDecoder::LossyDecoder(const LossyParams &params, ChunkStore &store,
                           std::vector<IntervalRecord> records,
                           ChunkCache *cache)
    : params_(params), store_(store), owned_records_(std::move(records)),
      records_(&owned_records_),
      owned_cache_(cache == nullptr ? std::make_unique<ChunkCache>(
                                          params.decoder_cache_bytes)
                                    : nullptr),
      cache_(cache == nullptr ? owned_cache_.get() : cache)
{
}

LossyDecoder::LossyDecoder(const LossyParams &params, ChunkStore &store,
                           const std::vector<IntervalRecord> *records,
                           ChunkCache *cache)
    : params_(params), store_(store), records_(records),
      owned_cache_(cache == nullptr ? std::make_unique<ChunkCache>(
                                          params.decoder_cache_bytes)
                                    : nullptr),
      cache_(cache == nullptr ? owned_cache_.get() : cache)
{
    ATC_ASSERT(records_ != nullptr);
}

void
LossyDecoder::seekRecord(size_t record_idx)
{
    ATC_ASSERT(record_idx <= records_->size());
    record_idx_ = record_idx;
    interval_.clear();
    pos_ = 0;
}

const std::vector<uint64_t> &
LossyDecoder::loadChunk(uint32_t id)
{
    // Consecutive intervals frequently imitate one chunk; serving the
    // pinned pointer skips even the cache's shard lock.
    if (current_chunk_ && current_id_ == id)
        return *current_chunk_;
    ChunkCache::Ptr chunk = cache_->get(id);
    if (!chunk)
        chunk = cache_->put(
            id, decodeChunkPayload(params_.chunk_params, store_, id));
    current_chunk_ = std::move(chunk);
    current_id_ = id;
    return *current_chunk_;
}

bool
LossyDecoder::nextInterval()
{
    if (record_idx_ >= records_->size())
        return false;
    const IntervalRecord &rec = (*records_)[record_idx_++];
    const std::vector<uint64_t> &chunk = loadChunk(rec.chunk_id);
    ATC_CHECK(chunk.size() == rec.length,
              "interval record length mismatch");

    interval_.resize(rec.length);
    if (rec.kind == IntervalRecord::Kind::Chunk ||
        rec.trans.plane_mask == 0) {
        std::copy(chunk.begin(), chunk.end(), interval_.begin());
    } else {
        for (size_t i = 0; i < chunk.size(); ++i)
            interval_[i] = rec.trans.apply(chunk[i]);
    }
    pos_ = 0;
    return true;
}

size_t
LossyDecoder::read(uint64_t *out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (pos_ == interval_.size()) {
            if (!nextInterval())
                break;
            continue; // an empty interval record is possible
        }
        size_t avail = interval_.size() - pos_;
        size_t take = (n - got) < avail ? (n - got) : avail;
        std::memcpy(out + got, interval_.data() + pos_,
                    take * sizeof(uint64_t));
        got += take;
        pos_ += take;
    }
    return got;
}

} // namespace atc::core
