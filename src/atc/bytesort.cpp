#include "atc/bytesort.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace atc::core {

namespace {

/** Extract the current top byte of each (shifted) address. */
void
topBytes(const uint64_t *a, size_t n, uint8_t *plane)
{
    for (size_t i = 0; i < n; ++i)
        plane[i] = static_cast<uint8_t>(a[i] >> 56);
}

/**
 * Stable counting sort of addresses by their top byte, shifting each
 * address left by 8 on the way (paper Figure 2's sort_bytes): the next
 * plane to emit is always the top byte.
 */
void
sortByTopByte(const uint64_t *src, size_t n, const uint8_t *plane,
              uint64_t *dst)
{
    uint32_t cnt[256] = {};
    for (size_t i = 0; i < n; ++i)
        cnt[plane[i]]++;
    uint32_t start[256];
    uint32_t sum = 0;
    for (int c = 0; c < 256; ++c) {
        start[c] = sum;
        sum += cnt[c];
    }
    for (size_t i = 0; i < n; ++i)
        dst[start[plane[i]]++] = src[i] << 8;
}

} // namespace

std::vector<uint8_t>
bytesortForward(const uint64_t *addrs, size_t n)
{
    std::vector<uint8_t> out(8 * n);
    if (n == 0)
        return out;

    std::vector<uint64_t> work[2];
    work[0].assign(addrs, addrs + n);
    work[1].resize(n);

    int x = 0;
    for (int j = 0; j < 8; ++j) {
        uint8_t *plane = out.data() + static_cast<size_t>(j) * n;
        topBytes(work[x].data(), n, plane);
        if (j < 7) {
            sortByTopByte(work[x].data(), n, plane, work[x ^ 1].data());
            x ^= 1;
        }
    }
    return out;
}

std::vector<uint64_t>
bytesortInverse(const uint8_t *bytes, size_t n)
{
    std::vector<uint64_t> addrs(n, 0);
    if (n == 0)
        return addrs;

    // idx[s] = original position of the address at rank s of the
    // current sorted order; plane j is stored in that order.
    std::vector<uint32_t> idx(n), next(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = static_cast<uint32_t>(i);

    for (int j = 0; j < 8; ++j) {
        const uint8_t *plane = bytes + static_cast<size_t>(j) * n;
        int shift = 8 * (7 - j);
        for (size_t s = 0; s < n; ++s)
            addrs[idx[s]] |= static_cast<uint64_t>(plane[s]) << shift;
        if (j < 7) {
            // Replay the encoder's stable sort on the index array.
            uint32_t cnt[256] = {};
            for (size_t s = 0; s < n; ++s)
                cnt[plane[s]]++;
            uint32_t start[256];
            uint32_t sum = 0;
            for (int c = 0; c < 256; ++c) {
                start[c] = sum;
                sum += cnt[c];
            }
            for (size_t s = 0; s < n; ++s)
                next[start[plane[s]]++] = idx[s];
            idx.swap(next);
        }
    }
    return addrs;
}

std::vector<uint8_t>
unshuffleForward(const uint64_t *addrs, size_t n)
{
    std::vector<uint8_t> out(8 * n);
    for (int j = 0; j < 8; ++j) {
        uint8_t *plane = out.data() + static_cast<size_t>(j) * n;
        int shift = 8 * (7 - j);
        for (size_t i = 0; i < n; ++i)
            plane[i] = static_cast<uint8_t>(addrs[i] >> shift);
    }
    return out;
}

std::vector<uint64_t>
unshuffleInverse(const uint8_t *bytes, size_t n)
{
    std::vector<uint64_t> addrs(n, 0);
    for (int j = 0; j < 8; ++j) {
        const uint8_t *plane = bytes + static_cast<size_t>(j) * n;
        int shift = 8 * (7 - j);
        for (size_t i = 0; i < n; ++i)
            addrs[i] |= static_cast<uint64_t>(plane[i]) << shift;
    }
    return addrs;
}

TransformEncoder::TransformEncoder(Transform transform, size_t buffer_addrs,
                                   util::ByteSink &out)
    : transform_(transform), capacity_(buffer_addrs), out_(out)
{
    ATC_CHECK(capacity_ > 0, "bytesort buffer must be nonempty");
    buffer_.reserve(capacity_);
}

void
TransformEncoder::write(const uint64_t *addrs, size_t n)
{
    ATC_ASSERT(!finished_);
    count_ += n;
    while (n > 0) {
        size_t room = capacity_ - buffer_.size();
        size_t take = n < room ? n : room;
        buffer_.insert(buffer_.end(), addrs, addrs + take);
        addrs += take;
        n -= take;
        if (buffer_.size() == capacity_)
            emitBuffer();
    }
}

namespace {

// Pure transform compute time, excluding the nested sink writes /
// source reads (those land in codec and io metrics — timing the whole
// body here would double-count them).
struct TransformMetrics {
    obs::Counter &encode_us;
    obs::Counter &decode_us;
    obs::Counter &encode_buffers;
    obs::Counter &decode_buffers;
};

TransformMetrics &
transformMetrics()
{
    auto &r = obs::Registry::global();
    static TransformMetrics m{
        r.counter("atc.transform.encode_us"),
        r.counter("atc.transform.decode_us"),
        r.counter("atc.transform.encode_buffers"),
        r.counter("atc.transform.decode_buffers"),
    };
    return m;
}

}  // namespace

void
TransformEncoder::emitBuffer()
{
    TransformMetrics &m = transformMetrics();
    m.encode_buffers.inc();
    size_t n = buffer_.size();
    util::writeVarint(out_, n);
    switch (transform_) {
      case Transform::None:
        // No transform: the LE serialization loop is I/O, not compute.
        for (uint64_t a : buffer_)
            util::writeLE<uint64_t>(out_, a);
        break;
      case Transform::Unshuffle: {
          obs::StageTimer t(m.encode_us);
          std::vector<uint8_t> planes = unshuffleForward(buffer_.data(), n);
          t.stop();
          out_.write(planes.data(), planes.size());
          break;
      }
      case Transform::Bytesort: {
          obs::StageTimer t(m.encode_us);
          std::vector<uint8_t> planes = bytesortForward(buffer_.data(), n);
          t.stop();
          out_.write(planes.data(), planes.size());
          break;
      }
      case Transform::Delta: {
          obs::StageTimer t(m.encode_us);
          std::vector<uint64_t> deltas(n);
          uint64_t prev = 0;
          for (size_t i = 0; i < n; ++i) {
              deltas[i] = buffer_[i] - prev;
              prev = buffer_[i];
          }
          std::vector<uint8_t> planes = unshuffleForward(deltas.data(), n);
          t.stop();
          out_.write(planes.data(), planes.size());
          break;
      }
    }
    buffer_.clear();
}

void
TransformEncoder::finish()
{
    if (finished_)
        return;
    if (!buffer_.empty())
        emitBuffer();
    util::writeVarint(out_, 0);
    finished_ = true;
}

TransformDecoder::TransformDecoder(Transform transform, util::ByteSource &in)
    : transform_(transform), in_(in)
{
}

bool
TransformDecoder::refill()
{
    if (done_)
        return false;

    uint8_t first;
    if (in_.read(&first, 1) == 0) {
        done_ = true;
        return false;
    }
    uint64_t n = first & 0x7F;
    int shift = 7;
    while (first & 0x80) {
        in_.readExact(&first, 1);
        n |= static_cast<uint64_t>(first & 0x7F) << shift;
        shift += 7;
        ATC_CHECK(shift <= 63, "corrupt bytesort frame header");
    }
    if (n == 0) {
        done_ = true;
        return false;
    }

    TransformMetrics &m = transformMetrics();
    m.decode_buffers.inc();
    if (transform_ == Transform::None) {
        buffer_.resize(n);
        for (uint64_t &a : buffer_)
            a = util::readLE<uint64_t>(in_);
    } else {
        std::vector<uint8_t> planes(8 * n);
        in_.readExact(planes.data(), planes.size());
        obs::StageTimer t(m.decode_us);
        switch (transform_) {
          case Transform::Unshuffle:
            buffer_ = unshuffleInverse(planes.data(), n);
            break;
          case Transform::Bytesort:
            buffer_ = bytesortInverse(planes.data(), n);
            break;
          case Transform::Delta: {
              buffer_ = unshuffleInverse(planes.data(), n);
              uint64_t prev = 0;
              for (uint64_t &a : buffer_) {
                  a += prev;
                  prev = a;
              }
              break;
          }
          default:
            ATC_ASSERT(false && "unreachable transform");
        }
    }
    pos_ = 0;
    return true;
}

size_t
TransformDecoder::read(uint64_t *out, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (pos_ == buffer_.size()) {
            if (!refill())
                break;
        }
        size_t avail = buffer_.size() - pos_;
        size_t take = (n - got) < avail ? (n - got) : avail;
        std::memcpy(out + got, buffer_.data() + pos_,
                    take * sizeof(uint64_t));
        got += take;
        pos_ += take;
    }
    return got;
}

} // namespace atc::core
