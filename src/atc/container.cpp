#include "atc/container.hpp"

#include <filesystem>

#include "util/status.hpp"

namespace atc::core {

namespace fs = std::filesystem;

DirectoryStore::DirectoryStore(const std::string &dir,
                               const std::string &suffix,
                               util::IoMode io)
    : dir_(dir), suffix_(suffix), io_(io)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    ATC_CHECK(!ec, "cannot create trace directory " + dir_);
}

std::string
DirectoryStore::chunkPath(uint32_t id) const
{
    // The original tool numbers chunk files from 1.
    return dir_ + "/" + std::to_string(id + 1) + "." + suffix_;
}

std::string
DirectoryStore::infoPath() const
{
    return dir_ + "/INFO." + suffix_;
}

std::unique_ptr<util::ByteSink>
DirectoryStore::createChunk(uint32_t id)
{
    return std::make_unique<util::FileSink>(chunkPath(id));
}

std::unique_ptr<util::ByteSource>
DirectoryStore::openChunk(uint32_t id)
{
    // A missing or empty chunk file is a partially written or truncated
    // container; fail here with a path-specific message instead of
    // letting the decoder report a generic truncation deeper down.
    std::string path = chunkPath(id);
    std::error_code ec;
    auto size = fs::file_size(path, ec);
    ATC_CHECK(!ec, "missing chunk file " + path +
                       " (truncated or partially written container?)");
    ATC_CHECK(size > 0, "chunk file " + path +
                            " is empty (truncated container?)");
    return util::openFileSource(path, io_);
}

std::unique_ptr<util::ByteSink>
DirectoryStore::createInfo()
{
    return std::make_unique<util::FileSink>(infoPath());
}

std::unique_ptr<util::ByteSource>
DirectoryStore::openInfo()
{
    return util::openFileSource(infoPath(), io_);
}

uint64_t
DirectoryStore::totalBytes() const
{
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (entry.is_regular_file())
            total += entry.file_size();
    }
    return total;
}

std::unique_ptr<util::ByteSink>
MemoryStore::createChunk(uint32_t id)
{
    return std::make_unique<util::VectorSink>(chunks_[id]);
}

std::unique_ptr<util::ByteSource>
MemoryStore::openChunk(uint32_t id)
{
    auto it = chunks_.find(id);
    ATC_CHECK(it != chunks_.end(),
              "unknown chunk " + std::to_string(id));
    ATC_CHECK(!it->second.empty(), "chunk " + std::to_string(id) +
                                       " is empty (truncated container?)");
    return std::make_unique<util::MemorySource>(it->second);
}

std::unique_ptr<util::ByteSink>
MemoryStore::createInfo()
{
    info_.clear();
    return std::make_unique<util::VectorSink>(info_);
}

std::unique_ptr<util::ByteSource>
MemoryStore::openInfo()
{
    return std::make_unique<util::MemorySource>(info_);
}

uint64_t
MemoryStore::totalBytes() const
{
    uint64_t total = info_.size();
    for (const auto &[id, bytes] : chunks_)
        total += bytes.size();
    return total;
}

const std::vector<uint8_t> &
MemoryStore::chunkBytes(uint32_t id) const
{
    auto it = chunks_.find(id);
    ATC_CHECK(it != chunks_.end(),
              "unknown chunk " + std::to_string(id));
    return it->second;
}

} // namespace atc::core
