#include "atc/index.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <future>

#include "parallel/thread_pool.hpp"

namespace atc::core {

namespace {

/**
 * Raw (pre-codec) byte size of a lossless stream holding @p count
 * records in transform buffers of @p buffer_addrs: each buffer is
 * varint(n) + 8n bytes, and the stream ends with a 1-byte 0 varint.
 * This is what lets the index cross-check a scanned frame layout
 * against the INFO-recorded count without decoding anything.
 */
uint64_t
expectedRawBytes(uint64_t count, uint64_t buffer_addrs)
{
    uint64_t full = count / buffer_addrs;
    uint64_t rem = count % buffer_addrs;
    uint64_t bytes = full * (util::varintLen(buffer_addrs) +
                             8 * buffer_addrs);
    if (rem != 0)
        bytes += util::varintLen(rem) + 8 * rem;
    return bytes + 1;
}

/**
 * Serves the decompressed bytes of frames [first, frames.size()) of a
 * scanned Seekable stream, one frame at a time, through the index's
 * shared decoded-frame cache: a cached frame is served without
 * touching its payload (the underlying source just skips it), a miss
 * decodes-and-inserts, so a working set of seek targets stays
 * decode-free across every cursor sharing the index. @p src must be
 * positioned at frame @p first's header (comp_starts[first]).
 */
class FrameStreamSource : public util::ByteSource
{
  public:
    FrameStreamSource(const AtcIndex &index, uint32_t chunk_id,
                      std::unique_ptr<util::ByteSource> src, size_t first)
        : index_(index), chunk_id_(chunk_id), src_(std::move(src)),
          next_(first)
    {}

    size_t
    read(uint8_t *data, size_t n) override
    {
        size_t got = 0;
        while (got < n) {
            if (!block_ || pos_ == block_->size()) {
                if (!refill())
                    break;
                continue;
            }
            size_t avail = block_->size() - pos_;
            size_t take = (n - got) < avail ? (n - got) : avail;
            std::memcpy(data + got, block_->data() + pos_, take);
            got += take;
            pos_ += take;
        }
        return got;
    }

  private:
    bool
    refill()
    {
        if (next_ >= index_.chunkLayout(chunk_id_)->frames.size())
            return false;
        block_ = index_.decodedFrame(chunk_id_, next_, *src_);
        ++next_;
        pos_ = 0;
        return true;
    }

    const AtcIndex &index_;
    uint32_t chunk_id_;
    std::unique_ptr<util::ByteSource> src_;
    size_t next_;
    BlockCache<uint8_t>::Ptr block_;
    size_t pos_ = 0;
};

/** @return the interval record containing record offset @p rec. */
size_t
recordContaining(const std::vector<uint64_t> &starts, uint64_t rec)
{
    auto it = std::upper_bound(starts.begin(), starts.end(), rec);
    return static_cast<size_t>(it - starts.begin()) - 1;
}

/**
 * Read-and-discard exactly @p n records through @p read (a callable
 * with TraceSource::read's signature), raising @p what if the source
 * dries first.
 */
template <typename ReadFn>
void
discardRecords(ReadFn &&read, uint64_t n, const char *what)
{
    uint64_t scratch[4096];
    while (n > 0) {
        size_t take = n < 4096 ? static_cast<size_t>(n) : 4096;
        size_t got = read(scratch, take);
        ATC_CHECK(got != 0, what);
        n -= got;
    }
}

/** Fill @p out completely through @p read, raising @p what if the
 *  source dries first. */
template <typename ReadFn>
void
fillRecords(ReadFn &&read, std::vector<uint64_t> &out, const char *what)
{
    size_t filled = 0;
    while (filled < out.size()) {
        size_t got = read(out.data() + filled, out.size() - filled);
        ATC_CHECK(got != 0, what);
        filled += got;
    }
}

} // namespace

namespace {

/** Frames are many and small (a codec block each) — shard for
 *  concurrency; chunks are few and large (interval_len * 8 bytes) and
 *  touched once per interval switch — a single shard avoids budget
 *  fragmentation entirely and makes the readRange prefetch planner's
 *  whole-budget arithmetic exact. */
constexpr size_t kFrameCacheShards = 8;
constexpr size_t kChunkCacheShards = 1;

} // namespace

AtcIndex::AtcIndex(ChunkStore &store, const IndexOptions &iopt)
    : store_(&store), frame_cache_(iopt.cache_bytes, kFrameCacheShards),
      chunk_cache_(iopt.cache_bytes, kChunkCacheShards)
{
}

AtcIndex::AtcIndex(std::unique_ptr<ChunkStore> owned,
                   const IndexOptions &iopt)
    : owned_store_(std::move(owned)), store_(owned_store_.get()),
      frame_cache_(iopt.cache_bytes, kFrameCacheShards),
      chunk_cache_(iopt.cache_bytes, kChunkCacheShards)
{
}

void
AtcIndex::load()
{
    info_ = readContainerInfo(*store_);
    codec_ = comp::makeCodec(info_.pipeline.codec);

    if (info_.mode == Mode::Lossy) {
        record_starts_.reserve(info_.records.size() + 1);
        record_starts_.push_back(0);
        uint64_t sum = 0;
        for (const IntervalRecord &rec : info_.records) {
            sum += rec.length;
            record_starts_.push_back(sum);
        }
        ATC_CHECK(sum == info_.count,
                  "interval trace length disagrees with the INFO "
                  "record count (corrupt container)");
    }

    if (info_.pipeline.frame_format != comp::FrameFormat::Seekable)
        return; // v1/v2: no frame index; cursors decode-and-skip

    uint32_t chunks = chunkCount();
    layouts_.reserve(chunks);
    for (uint32_t id = 0; id < chunks; ++id) {
        auto src = store_->openChunk(id);
        layouts_.push_back(
            comp::scanSeekableStream(*src, info_.pipeline.crc_trailer));
    }

    // Cross-check the scanned layouts against the INFO-recorded
    // lengths wherever the expected raw size is computable — a cheap,
    // decode-free probe for cross-linked or swapped chunk files.
    if (info_.mode == Mode::Lossless) {
        ATC_CHECK(!layouts_[0].indexed ||
                      layouts_[0].rawTotal() ==
                          expectedRawBytes(info_.count,
                                           info_.pipeline.buffer_addrs),
                  "chunk stream size disagrees with the INFO record "
                  "count (truncated or cross-linked container)");
    } else {
        for (const IntervalRecord &rec : info_.records) {
            if (rec.kind != IntervalRecord::Kind::Chunk)
                continue;
            const comp::StreamLayout &layout = layouts_[rec.chunk_id];
            ATC_CHECK(!layout.indexed ||
                          layout.rawTotal() ==
                              expectedRawBytes(
                                  rec.length,
                                  info_.pipeline.buffer_addrs),
                      "chunk " + std::to_string(rec.chunk_id) +
                          " size disagrees with its interval record "
                          "(corrupt container)");
        }
    }
}

util::StatusOr<std::shared_ptr<const AtcIndex>>
AtcIndex::open(ChunkStore &store, const IndexOptions &iopt)
{
    try {
        return openOrThrow(store, iopt);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::shared_ptr<const AtcIndex>>
AtcIndex::open(const std::string &dir, const IndexOptions &iopt)
{
    try {
        auto store = std::make_unique<DirectoryStore>(
            dir, detectContainerSuffix(dir));
        return std::shared_ptr<const AtcIndex>(
            openOrThrow(std::move(store), iopt));
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::shared_ptr<const AtcIndex>>
AtcIndex::open(const std::string &dir, const std::string &suffix,
               const IndexOptions &iopt)
{
    try {
        auto store = std::make_unique<DirectoryStore>(dir, suffix);
        return std::shared_ptr<const AtcIndex>(
            openOrThrow(std::move(store), iopt));
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

std::shared_ptr<const AtcIndex>
AtcIndex::openOrThrow(ChunkStore &store, const IndexOptions &iopt)
{
    std::shared_ptr<AtcIndex> index(new AtcIndex(store, iopt));
    index->load();
    return index;
}

std::shared_ptr<const AtcIndex>
AtcIndex::openOrThrow(std::unique_ptr<ChunkStore> store,
                      const IndexOptions &iopt)
{
    std::shared_ptr<AtcIndex> index(new AtcIndex(std::move(store), iopt));
    index->load();
    return index;
}

std::unique_ptr<AtcCursor>
AtcIndex::cursor(const CursorOptions &copt) const
{
    return std::make_unique<AtcCursor>(shared_from_this(), copt);
}

bool
AtcIndex::nativeSeek() const
{
    // Lossy seeks resolve through the interval trace alone, so every
    // version seeks natively at interval granularity; lossless needs
    // the v3 frame index.
    return info_.mode == Mode::Lossy || !layouts_.empty();
}

uint32_t
AtcIndex::chunkCount() const
{
    return info_.mode == Mode::Lossless
               ? 1
               : static_cast<uint32_t>(info_.chunk_count);
}

const comp::StreamLayout *
AtcIndex::chunkLayout(uint32_t id) const
{
    if (id >= layouts_.size())
        return nullptr;
    return &layouts_[id];
}

BlockCache<uint8_t>::Ptr
AtcIndex::decodedFrame(uint32_t chunk_id, size_t f,
                       util::ByteSource &src) const
{
    const comp::StreamLayout &layout = layouts_[chunk_id];
    ATC_ASSERT(f < layout.frames.size());
    uint64_t key = BlockCache<uint8_t>::frameKey(chunk_id, f);
    if (BlockCache<uint8_t>::Ptr hit = frame_cache_.get(key)) {
        src.skip(layout.comp_starts[f + 1] - layout.comp_starts[f]);
        return hit;
    }
    return frame_cache_.put(
        key, comp::decodeIndexedFrame(*codec_.codec, src, layout, f));
}

uint64_t
AtcIndex::bufferOf(uint64_t rec) const
{
    return rec / info_.pipeline.buffer_addrs;
}

uint64_t
AtcIndex::bufferLen(uint64_t b) const
{
    uint64_t buffer = info_.pipeline.buffer_addrs;
    uint64_t full = info_.count / buffer;
    return b < full ? buffer : info_.count % buffer;
}

uint64_t
AtcIndex::bufferRawOffset(uint64_t b) const
{
    uint64_t buffer = info_.pipeline.buffer_addrs;
    return b * (util::varintLen(buffer) + 8 * buffer);
}

AtcCursor::AtcCursor(std::shared_ptr<const AtcIndex> index,
                     const CursorOptions &copt)
    : index_(std::move(index)), pool_(copt.pool)
{
    const ContainerInfo &info = index_->info();
    if (info.mode == Mode::Lossless) {
        resetSequential();
    } else {
        LossyParams params;
        params.chunk_params = info.pipeline;
        params.interval_len = info.interval_len;
        params.epsilon = info.epsilon;
        // All cursors over one index decode chunks through the shared
        // cache, so a working set warmed by any of them serves all.
        lossy_ = std::make_unique<LossyDecoder>(params, index_->store(),
                                                &info.records,
                                                &index_->chunkCache());
    }
}

AtcCursor::~AtcCursor() = default;

void
AtcCursor::resetSequential()
{
    // The from-the-start pipeline is the plain LosslessReader, so a
    // cursor that never seeks (or re-seeks to 0) keeps the full
    // sequential behavior — including CRC-trailer verification, which
    // a mid-stream seek necessarily forfeits.
    transform_.reset();
    frame_src_.reset();
    sequential_.reset();
    chunk_src_ = index_->store().openChunk(0);
    sequential_ = std::make_unique<LosslessReader>(
        index_->info().pipeline, *chunk_src_);
    pos_ = 0;
}

size_t
AtcCursor::readImpl(uint64_t *out, size_t n)
{
    size_t got = 0;
    if (lossy_)
        got = lossy_->read(out, n);
    else if (sequential_)
        got = sequential_->read(out, n);
    else if (transform_)
        got = transform_->read(out, n);
    pos_ += got;
    // A clean end before the INFO-recorded count means chunk data is
    // missing — fail loudly rather than return a shortened trace.
    if (got == 0 && n > 0)
        ATC_CHECK(pos_ == index_->size(),
                  "container truncated: INFO records " +
                      std::to_string(index_->size()) +
                      " values but only " + std::to_string(pos_) +
                      " could be decoded");
    return got;
}

size_t
AtcCursor::read(uint64_t *out, size_t n)
{
    return readImpl(out, n);
}

void
AtcCursor::skipRecords(uint64_t n)
{
    discardRecords(
        [this](uint64_t *out, size_t take) { return readImpl(out, take); },
        n, "container truncated while seeking");
}

util::Status
AtcCursor::seek(uint64_t record_index)
{
    if (record_index > index_->size())
        return util::Status::error(
            "seek out of range: record " + std::to_string(record_index) +
            " exceeds trace size " + std::to_string(index_->size()));
    try {
        if (lossy_)
            seekLossy(record_index);
        else if (index_->chunkLayout(0) != nullptr)
            seekLossless(record_index);
        else
            seekLosslessFallback(record_index);
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

void
AtcCursor::seekLossless(uint64_t rec)
{
    if (rec == 0) {
        resetSequential();
        return;
    }
    if (rec == index_->size()) {
        // Positioned at end: nothing left to decode.
        transform_.reset();
        frame_src_.reset();
        sequential_.reset();
        chunk_src_.reset();
        pos_ = rec;
        return;
    }

    // Record -> containing transform buffer -> raw byte offset ->
    // containing frame (binary search) -> compressed byte offset.
    // Only the frames from there on are ever decoded.
    const comp::StreamLayout &layout = *index_->chunkLayout(0);
    uint64_t b = index_->bufferOf(rec);
    uint64_t raw_off = index_->bufferRawOffset(b);
    ATC_CHECK(raw_off < layout.rawTotal(),
              "container truncated: record " + std::to_string(rec) +
                  " lies past the indexed frames");
    size_t f = layout.frameContaining(raw_off);

    auto src = index_->store().openChunk(0);
    src->skip(layout.comp_starts[f]);
    auto frames = std::make_unique<FrameStreamSource>(
        *index_, 0, std::move(src), f);
    // Discard the tail of the frame that precedes the buffer start,
    // then the records that precede the target inside its buffer.
    frames->skip(raw_off - layout.raw_starts[f]);
    sequential_.reset();
    chunk_src_.reset();
    transform_ = std::make_unique<TransformDecoder>(
        index_->info().pipeline.transform, *frames);
    frame_src_ = std::move(frames);
    pos_ = b * index_->info().pipeline.buffer_addrs;
    skipRecords(rec - pos_);
}

void
AtcCursor::seekLosslessFallback(uint64_t rec)
{
    // v1/v2: frames carry no compressed extents, so the only way to
    // reach a record is to decode everything before it. Backward seeks
    // restart the stream; forward seeks decode-and-skip.
    if (rec < pos_ || !sequential_)
        resetSequential();
    skipRecords(rec - pos_);
}

void
AtcCursor::seekLossy(uint64_t rec)
{
    // Land on the boundary of the interval containing the request —
    // the documented lossy approximation. tell() reports the landing
    // point, which is never past the request.
    const std::vector<uint64_t> &starts = index_->recordStarts();
    if (rec == index_->size()) {
        lossy_->seekRecord(index_->info().records.size());
        pos_ = rec;
        return;
    }
    size_t i = recordContaining(starts, rec);
    lossy_->seekRecord(i);
    pos_ = starts[i];
}

std::vector<uint8_t>
AtcCursor::decodeFrames(size_t first, size_t last)
{
    const comp::StreamLayout &layout = *index_->chunkLayout(0);
    auto src = index_->store().openChunk(0);
    src->skip(layout.comp_starts[first]);

    // Every frame resolves through the shared cache: hits are served
    // in place (payload skipped), misses decode — on the pool when one
    // is borrowed — and are inserted so the next range or seek over
    // the same region decodes nothing.
    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(layout.raw_starts[last + 1] -
                                    layout.raw_starts[first]));
    if (pool_ == nullptr) {
        // Serial: append frame by frame; a block is released as soon
        // as it is copied out, so peak memory stays out + one frame
        // (plus whatever the cache itself retains, which is bounded).
        for (size_t f = first; f <= last; ++f) {
            BlockCache<uint8_t>::Ptr block =
                index_->decodedFrame(0, f, *src);
            out.insert(out.end(), block->begin(), block->end());
        }
        return out;
    }
    std::vector<BlockCache<uint8_t>::Ptr> blocks(last - first + 1);
    {
        // Fan only the misses out: the compressed bytes are read
        // serially (cheap), the per-frame codec decode — the dominant
        // cost — runs in the pool, and the futures resolve in
        // submission order for in-order reassembly.
        struct Pending
        {
            size_t slot;
            uint64_t key;
            std::future<std::vector<uint8_t>> decoded;
        };
        BlockCache<uint8_t> &cache = index_->frameCache();
        std::shared_ptr<const comp::Codec> codec = index_->codec().codec;
        std::deque<Pending> pending;
        for (size_t f = first; f <= last; ++f) {
            uint64_t key = BlockCache<uint8_t>::frameKey(0, f);
            if (BlockCache<uint8_t>::Ptr hit = cache.get(key)) {
                src->skip(layout.comp_starts[f + 1] -
                          layout.comp_starts[f]);
                blocks[f - first] = std::move(hit);
                continue;
            }
            // Zero-copy on mapped chunks: the payload borrows the
            // mapping (pinned by the FramePayload's keepalive), so the
            // pooled task decodes straight off the page cache.
            comp::FramePayload payload =
                comp::fetchIndexedFramePayload(*src, layout, f);
            size_t raw_size =
                static_cast<size_t>(layout.frames[f].raw_size);
            pending.push_back(
                {f - first, key,
                 pool_->async([codec, raw_size,
                               payload = std::move(payload)]() {
                     std::vector<uint8_t> block;
                     comp::decodeSeekableFrame(*codec, payload.data,
                                               payload.size, raw_size,
                                               block);
                     return block;
                 })});
        }
        for (Pending &p : pending)
            blocks[p.slot] = cache.put(p.key, p.decoded.get());
    }
    for (BlockCache<uint8_t>::Ptr &block : blocks) {
        out.insert(out.end(), block->begin(), block->end());
        block.reset(); // release as copied — bound peak memory
    }
    return out;
}

void
AtcCursor::rangeLossless(uint64_t begin, uint64_t end,
                         std::vector<uint64_t> &out)
{
    const ContainerInfo &info = index_->info();
    uint64_t want = end - begin;

    const comp::StreamLayout *layout = index_->chunkLayout(0);
    if (layout == nullptr) {
        // v1/v2 fallback: an independent decode-and-skip pass.
        auto src = index_->store().openChunk(0);
        LosslessReader reader(info.pipeline, *src);
        auto read = [&reader](uint64_t *o, size_t n) {
            return reader.read(o, n);
        };
        discardRecords(read, begin, "container truncated inside the range");
        out.resize(static_cast<size_t>(want));
        fillRecords(read, out, "container truncated inside the range");
        return;
    }

    // Covering transform buffers -> covering frames; decode exactly
    // those frames (in the pool when one is attached), inverse-
    // transform, and slice the requested records out.
    uint64_t b0 = index_->bufferOf(begin);
    uint64_t b1 = index_->bufferOf(end - 1);
    uint64_t raw0 = index_->bufferRawOffset(b0);
    uint64_t raw1 = index_->bufferRawOffset(b1) +
                    util::varintLen(index_->bufferLen(b1)) +
                    8 * index_->bufferLen(b1);
    ATC_CHECK(raw1 <= layout->rawTotal(),
              "container truncated: range lies past the indexed frames");
    size_t f0 = layout->frameContaining(raw0);
    size_t f1 = layout->frameContaining(raw1 - 1);

    std::vector<uint8_t> raw = decodeFrames(f0, f1);
    util::MemorySource mem(raw.data(), raw.size());
    mem.skip(raw0 - layout->raw_starts[f0]);
    TransformDecoder transform(info.pipeline.transform, mem);
    auto read = [&transform](uint64_t *o, size_t n) {
        return transform.read(o, n);
    };
    discardRecords(read, begin - b0 * info.pipeline.buffer_addrs,
                   "container truncated inside the range");
    out.resize(static_cast<size_t>(want));
    fillRecords(read, out, "container truncated inside the range");
}

void
AtcCursor::prefetchLossyChunks(uint64_t begin, uint64_t end)
{
    // Decode the distinct covering chunks the shared cache is missing
    // on the pool, mirroring the lossless pooled-frame path: chunk
    // payloads are independent, so only the insertion is serialized.
    // Skipped without a pool or with the cache disabled (nowhere to
    // publish a decode the assembly loop could reuse).
    if (pool_ == nullptr || !index_->chunkCache().enabled())
        return;
    const std::vector<uint64_t> &starts = index_->recordStarts();
    const std::vector<IntervalRecord> &records = index_->info().records;
    size_t i0 = recordContaining(starts, begin);
    size_t i1 = recordContaining(starts, end - 1);

    // Plan only as many distinct missing chunks as the cache can
    // retain: a chunk the budget cannot hold would be decoded on the
    // pool, dropped unstored by put(), and decoded a second time by
    // the assembly loop — worse than no prefetch. Whatever is skipped
    // here simply decodes on demand, exactly once. The planning is
    // exact because the chunk cache is single-shard (planned inserts
    // go to the LRU front, so they evict stale residents, never each
    // other) and an interval's length equals its chunk's decoded
    // length (validated on read).
    BlockCache<uint64_t> &cache = index_->chunkCache();
    std::vector<uint32_t> ids, counted;
    uint64_t budget = cache.capacityBytes();
    uint64_t planned = 0;
    for (size_t i = i0; i <= i1; ++i) {
        uint32_t id = records[i].chunk_id;
        if (std::find(counted.begin(), counted.end(), id) !=
            counted.end())
            continue;
        uint64_t bytes = records[i].length * sizeof(uint64_t);
        if (cache.get(id) != nullptr) {
            // Already-resident covering chunk: the get() refreshed it
            // to the LRU front, and counting it against the budget
            // keeps planned inserts from evicting it mid-assembly.
            counted.push_back(id);
            planned += bytes;
            continue;
        }
        if (planned + bytes > budget)
            continue;
        counted.push_back(id);
        ids.push_back(id);
        planned += bytes;
    }

    struct Pending
    {
        uint32_t id;
        std::future<std::vector<uint64_t>> decoded;
    };
    std::deque<Pending> pending;
    ChunkStore *store = &index_->store();
    for (uint32_t id : ids)
        pending.push_back(
            {id, pool_->async([store, id,
                               params = index_->info().pipeline]() {
                 return decodeChunkPayload(params, *store, id);
             })});
    // Drain every future even when one decode fails: the tasks borrow
    // the store through a raw pointer, and an abandoned future would
    // leave a queued task free to run after the index — and the store
    // it may own — is gone.
    std::exception_ptr error;
    for (Pending &p : pending) {
        try {
            cache.put(p.id, p.decoded.get());
        } catch (...) {
            if (!error)
                error = std::current_exception();
        }
    }
    if (error)
        std::rethrow_exception(error);
}

void
AtcCursor::rangeLossy(uint64_t begin, uint64_t end,
                      std::vector<uint64_t> &out)
{
    // Unlike seek(), extraction is record-exact: decode the intervals
    // covering the range (whole chunks — the lossy unit of decode) and
    // slice. The covering chunks are pool-decoded into the shared
    // cache first, so the cursor's decoder below mostly assembles from
    // cache hits; its position is restored afterwards.
    prefetchLossyChunks(begin, end);
    const std::vector<uint64_t> &starts = index_->recordStarts();
    uint64_t save = pos_;

    auto read = [this](uint64_t *o, size_t n) {
        return lossy_->read(o, n);
    };
    try {
        size_t i0 = recordContaining(starts, begin);
        lossy_->seekRecord(i0);
        discardRecords(read, begin - starts[i0],
                       "container truncated inside the range");
        out.resize(static_cast<size_t>(end - begin));
        fillRecords(read, out, "container truncated inside the range");

        // Restore the streaming position (boundary + in-interval skip).
        if (save == index_->size()) {
            lossy_->seekRecord(index_->info().records.size());
            return;
        }
        size_t ri = recordContaining(starts, save);
        lossy_->seekRecord(ri);
        discardRecords(read, save - starts[ri],
                       "container truncated restoring the cursor");
    } catch (...) {
        // Keep tell() truthful when the extraction (or the exact
        // restore) fails mid-way: park the decoder on the boundary of
        // the interval containing the saved position — a pure state
        // reset that cannot itself fail — and move pos_ there too.
        if (save == index_->size()) {
            lossy_->seekRecord(index_->info().records.size());
        } else {
            size_t ri = recordContaining(starts, save);
            lossy_->seekRecord(ri);
            pos_ = starts[ri];
        }
        throw;
    }
}

util::Status
AtcCursor::readRange(uint64_t begin, uint64_t end,
                     std::vector<uint64_t> &out)
{
    if (begin > end || end > index_->size())
        return util::Status::error(
            "range out of range: [" + std::to_string(begin) + ", " +
            std::to_string(end) + ") over trace size " +
            std::to_string(index_->size()));
    out.clear();
    if (begin == end)
        return util::Status();
    try {
        if (lossy_)
            rangeLossy(begin, end, out);
        else
            rangeLossless(begin, end, out);
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

} // namespace atc::core
