#include "atc/index.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <future>

#include "parallel/thread_pool.hpp"

namespace atc::core {

namespace {

/**
 * Raw (pre-codec) byte size of a lossless stream holding @p count
 * records in transform buffers of @p buffer_addrs: each buffer is
 * varint(n) + 8n bytes, and the stream ends with a 1-byte 0 varint.
 * This is what lets the index cross-check a scanned frame layout
 * against the INFO-recorded count without decoding anything.
 */
uint64_t
expectedRawBytes(uint64_t count, uint64_t buffer_addrs)
{
    uint64_t full = count / buffer_addrs;
    uint64_t rem = count % buffer_addrs;
    uint64_t bytes = full * (util::varintLen(buffer_addrs) +
                             8 * buffer_addrs);
    if (rem != 0)
        bytes += util::varintLen(rem) + 8 * rem;
    return bytes + 1;
}

/**
 * Serves the decompressed bytes of frames [first, frames.size()) of a
 * scanned Seekable stream, one frame at a time, validating each header
 * against the layout captured at open. @p src must be positioned at
 * frame @p first's header (comp_starts[first]).
 */
class FrameStreamSource : public util::ByteSource
{
  public:
    FrameStreamSource(const comp::Codec &codec,
                      const comp::StreamLayout &layout,
                      std::unique_ptr<util::ByteSource> src, size_t first)
        : codec_(codec), layout_(layout), src_(std::move(src)),
          next_(first)
    {}

    size_t
    read(uint8_t *data, size_t n) override
    {
        size_t got = 0;
        while (got < n) {
            if (pos_ == block_.size()) {
                if (!refill())
                    break;
                continue;
            }
            size_t avail = block_.size() - pos_;
            size_t take = (n - got) < avail ? (n - got) : avail;
            std::memcpy(data + got, block_.data() + pos_, take);
            got += take;
            pos_ += take;
        }
        return got;
    }

  private:
    bool
    refill()
    {
        if (next_ >= layout_.frames.size())
            return false;
        comp::readIndexedFramePayload(*src_, layout_, next_, comp_buf_);
        comp::decodeSeekableFrame(
            codec_, comp_buf_.data(), comp_buf_.size(),
            static_cast<size_t>(layout_.frames[next_].raw_size), block_);
        ++next_;
        pos_ = 0;
        return true;
    }

    const comp::Codec &codec_;
    const comp::StreamLayout &layout_;
    std::unique_ptr<util::ByteSource> src_;
    size_t next_;
    std::vector<uint8_t> block_;
    std::vector<uint8_t> comp_buf_;
    size_t pos_ = 0;
};

/** @return the interval record containing record offset @p rec. */
size_t
recordContaining(const std::vector<uint64_t> &starts, uint64_t rec)
{
    auto it = std::upper_bound(starts.begin(), starts.end(), rec);
    return static_cast<size_t>(it - starts.begin()) - 1;
}

/**
 * Read-and-discard exactly @p n records through @p read (a callable
 * with TraceSource::read's signature), raising @p what if the source
 * dries first.
 */
template <typename ReadFn>
void
discardRecords(ReadFn &&read, uint64_t n, const char *what)
{
    uint64_t scratch[4096];
    while (n > 0) {
        size_t take = n < 4096 ? static_cast<size_t>(n) : 4096;
        size_t got = read(scratch, take);
        ATC_CHECK(got != 0, what);
        n -= got;
    }
}

/** Fill @p out completely through @p read, raising @p what if the
 *  source dries first. */
template <typename ReadFn>
void
fillRecords(ReadFn &&read, std::vector<uint64_t> &out, const char *what)
{
    size_t filled = 0;
    while (filled < out.size()) {
        size_t got = read(out.data() + filled, out.size() - filled);
        ATC_CHECK(got != 0, what);
        filled += got;
    }
}

} // namespace

AtcIndex::AtcIndex(ChunkStore &store) : store_(&store) {}

AtcIndex::AtcIndex(std::unique_ptr<ChunkStore> owned)
    : owned_store_(std::move(owned)), store_(owned_store_.get())
{
}

void
AtcIndex::load()
{
    info_ = readContainerInfo(*store_);

    if (info_.mode == Mode::Lossy) {
        record_starts_.reserve(info_.records.size() + 1);
        record_starts_.push_back(0);
        uint64_t sum = 0;
        for (const IntervalRecord &rec : info_.records) {
            sum += rec.length;
            record_starts_.push_back(sum);
        }
        ATC_CHECK(sum == info_.count,
                  "interval trace length disagrees with the INFO "
                  "record count (corrupt container)");
    }

    if (info_.pipeline.frame_format != comp::FrameFormat::Seekable)
        return; // v1/v2: no frame index; cursors decode-and-skip

    uint32_t chunks = chunkCount();
    layouts_.reserve(chunks);
    for (uint32_t id = 0; id < chunks; ++id) {
        auto src = store_->openChunk(id);
        layouts_.push_back(
            comp::scanSeekableStream(*src, info_.pipeline.crc_trailer));
    }

    // Cross-check the scanned layouts against the INFO-recorded
    // lengths wherever the expected raw size is computable — a cheap,
    // decode-free probe for cross-linked or swapped chunk files.
    if (info_.mode == Mode::Lossless) {
        ATC_CHECK(!layouts_[0].indexed ||
                      layouts_[0].rawTotal() ==
                          expectedRawBytes(info_.count,
                                           info_.pipeline.buffer_addrs),
                  "chunk stream size disagrees with the INFO record "
                  "count (truncated or cross-linked container)");
    } else {
        for (const IntervalRecord &rec : info_.records) {
            if (rec.kind != IntervalRecord::Kind::Chunk)
                continue;
            const comp::StreamLayout &layout = layouts_[rec.chunk_id];
            ATC_CHECK(!layout.indexed ||
                          layout.rawTotal() ==
                              expectedRawBytes(
                                  rec.length,
                                  info_.pipeline.buffer_addrs),
                      "chunk " + std::to_string(rec.chunk_id) +
                          " size disagrees with its interval record "
                          "(corrupt container)");
        }
    }
}

util::StatusOr<std::shared_ptr<const AtcIndex>>
AtcIndex::open(ChunkStore &store)
{
    try {
        return openOrThrow(store);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::shared_ptr<const AtcIndex>>
AtcIndex::open(const std::string &dir)
{
    try {
        auto store = std::make_unique<DirectoryStore>(
            dir, detectContainerSuffix(dir));
        std::shared_ptr<AtcIndex> index(new AtcIndex(std::move(store)));
        index->load();
        return std::shared_ptr<const AtcIndex>(std::move(index));
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::shared_ptr<const AtcIndex>>
AtcIndex::open(const std::string &dir, const std::string &suffix)
{
    try {
        auto store = std::make_unique<DirectoryStore>(dir, suffix);
        std::shared_ptr<AtcIndex> index(new AtcIndex(std::move(store)));
        index->load();
        return std::shared_ptr<const AtcIndex>(std::move(index));
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

std::shared_ptr<const AtcIndex>
AtcIndex::openOrThrow(ChunkStore &store)
{
    std::shared_ptr<AtcIndex> index(new AtcIndex(store));
    index->load();
    return index;
}

std::shared_ptr<const AtcIndex>
AtcIndex::openOrThrow(std::unique_ptr<ChunkStore> store)
{
    std::shared_ptr<AtcIndex> index(new AtcIndex(std::move(store)));
    index->load();
    return index;
}

std::unique_ptr<AtcCursor>
AtcIndex::cursor(const CursorOptions &copt) const
{
    return std::make_unique<AtcCursor>(shared_from_this(), copt);
}

bool
AtcIndex::nativeSeek() const
{
    // Lossy seeks resolve through the interval trace alone, so every
    // version seeks natively at interval granularity; lossless needs
    // the v3 frame index.
    return info_.mode == Mode::Lossy || !layouts_.empty();
}

uint32_t
AtcIndex::chunkCount() const
{
    return info_.mode == Mode::Lossless
               ? 1
               : static_cast<uint32_t>(info_.chunk_count);
}

const comp::StreamLayout *
AtcIndex::chunkLayout(uint32_t id) const
{
    if (id >= layouts_.size())
        return nullptr;
    return &layouts_[id];
}

uint64_t
AtcIndex::bufferOf(uint64_t rec) const
{
    return rec / info_.pipeline.buffer_addrs;
}

uint64_t
AtcIndex::bufferLen(uint64_t b) const
{
    uint64_t buffer = info_.pipeline.buffer_addrs;
    uint64_t full = info_.count / buffer;
    return b < full ? buffer : info_.count % buffer;
}

uint64_t
AtcIndex::bufferRawOffset(uint64_t b) const
{
    uint64_t buffer = info_.pipeline.buffer_addrs;
    return b * (util::varintLen(buffer) + 8 * buffer);
}

AtcCursor::AtcCursor(std::shared_ptr<const AtcIndex> index,
                     const CursorOptions &copt)
    : index_(std::move(index)), pool_(copt.pool)
{
    const ContainerInfo &info = index_->info();
    if (info.mode == Mode::Lossless) {
        codec_ = comp::makeCodec(info.pipeline.codec);
        resetSequential();
    } else {
        LossyParams params;
        params.chunk_params = info.pipeline;
        params.decoder_cache = copt.decoder_cache;
        params.interval_len = info.interval_len;
        params.epsilon = info.epsilon;
        lossy_ = std::make_unique<LossyDecoder>(params, index_->store(),
                                                &info.records);
    }
}

AtcCursor::~AtcCursor() = default;

void
AtcCursor::resetSequential()
{
    // The from-the-start pipeline is the plain LosslessReader, so a
    // cursor that never seeks (or re-seeks to 0) keeps the full
    // sequential behavior — including CRC-trailer verification, which
    // a mid-stream seek necessarily forfeits.
    transform_.reset();
    frame_src_.reset();
    sequential_.reset();
    chunk_src_ = index_->store().openChunk(0);
    sequential_ = std::make_unique<LosslessReader>(
        index_->info().pipeline, *chunk_src_);
    pos_ = 0;
}

size_t
AtcCursor::readImpl(uint64_t *out, size_t n)
{
    size_t got = 0;
    if (lossy_)
        got = lossy_->read(out, n);
    else if (sequential_)
        got = sequential_->read(out, n);
    else if (transform_)
        got = transform_->read(out, n);
    pos_ += got;
    // A clean end before the INFO-recorded count means chunk data is
    // missing — fail loudly rather than return a shortened trace.
    if (got == 0 && n > 0)
        ATC_CHECK(pos_ == index_->size(),
                  "container truncated: INFO records " +
                      std::to_string(index_->size()) +
                      " values but only " + std::to_string(pos_) +
                      " could be decoded");
    return got;
}

size_t
AtcCursor::read(uint64_t *out, size_t n)
{
    return readImpl(out, n);
}

void
AtcCursor::skipRecords(uint64_t n)
{
    discardRecords(
        [this](uint64_t *out, size_t take) { return readImpl(out, take); },
        n, "container truncated while seeking");
}

util::Status
AtcCursor::seek(uint64_t record_index)
{
    if (record_index > index_->size())
        return util::Status::error(
            "seek out of range: record " + std::to_string(record_index) +
            " exceeds trace size " + std::to_string(index_->size()));
    try {
        if (lossy_)
            seekLossy(record_index);
        else if (index_->chunkLayout(0) != nullptr)
            seekLossless(record_index);
        else
            seekLosslessFallback(record_index);
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

void
AtcCursor::seekLossless(uint64_t rec)
{
    if (rec == 0) {
        resetSequential();
        return;
    }
    if (rec == index_->size()) {
        // Positioned at end: nothing left to decode.
        transform_.reset();
        frame_src_.reset();
        sequential_.reset();
        chunk_src_.reset();
        pos_ = rec;
        return;
    }

    // Record -> containing transform buffer -> raw byte offset ->
    // containing frame (binary search) -> compressed byte offset.
    // Only the frames from there on are ever decoded.
    const comp::StreamLayout &layout = *index_->chunkLayout(0);
    uint64_t b = index_->bufferOf(rec);
    uint64_t raw_off = index_->bufferRawOffset(b);
    ATC_CHECK(raw_off < layout.rawTotal(),
              "container truncated: record " + std::to_string(rec) +
                  " lies past the indexed frames");
    size_t f = layout.frameContaining(raw_off);

    auto src = index_->store().openChunk(0);
    src->skip(layout.comp_starts[f]);
    auto frames = std::make_unique<FrameStreamSource>(
        *codec_.codec, layout, std::move(src), f);
    // Discard the tail of the frame that precedes the buffer start,
    // then the records that precede the target inside its buffer.
    frames->skip(raw_off - layout.raw_starts[f]);
    sequential_.reset();
    chunk_src_.reset();
    transform_ = std::make_unique<TransformDecoder>(
        index_->info().pipeline.transform, *frames);
    frame_src_ = std::move(frames);
    pos_ = b * index_->info().pipeline.buffer_addrs;
    skipRecords(rec - pos_);
}

void
AtcCursor::seekLosslessFallback(uint64_t rec)
{
    // v1/v2: frames carry no compressed extents, so the only way to
    // reach a record is to decode everything before it. Backward seeks
    // restart the stream; forward seeks decode-and-skip.
    if (rec < pos_ || !sequential_)
        resetSequential();
    skipRecords(rec - pos_);
}

void
AtcCursor::seekLossy(uint64_t rec)
{
    // Land on the boundary of the interval containing the request —
    // the documented lossy approximation. tell() reports the landing
    // point, which is never past the request.
    const std::vector<uint64_t> &starts = index_->recordStarts();
    if (rec == index_->size()) {
        lossy_->seekRecord(index_->info().records.size());
        pos_ = rec;
        return;
    }
    size_t i = recordContaining(starts, rec);
    lossy_->seekRecord(i);
    pos_ = starts[i];
}

std::vector<uint8_t>
AtcCursor::decodeFrames(size_t first, size_t last)
{
    const comp::StreamLayout &layout = *index_->chunkLayout(0);
    auto src = index_->store().openChunk(0);
    src->skip(layout.comp_starts[first]);
    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(layout.raw_starts[last + 1] -
                                    layout.raw_starts[first]));

    if (pool_ == nullptr) {
        std::vector<uint8_t> comp, block;
        for (size_t f = first; f <= last; ++f) {
            comp::readIndexedFramePayload(*src, layout, f, comp);
            comp::decodeSeekableFrame(
                *codec_.codec, comp.data(), comp.size(),
                static_cast<size_t>(layout.frames[f].raw_size), block);
            out.insert(out.end(), block.begin(), block.end());
        }
        return out;
    }

    // Fan the dominant cost — per-frame codec decode — out to the
    // pool; the compressed bytes are read serially (cheap) and the
    // futures resolve in submission order for in-order reassembly.
    std::shared_ptr<const comp::Codec> codec = codec_.codec;
    std::deque<std::future<std::vector<uint8_t>>> pending;
    for (size_t f = first; f <= last; ++f) {
        std::vector<uint8_t> comp;
        comp::readIndexedFramePayload(*src, layout, f, comp);
        size_t raw_size = static_cast<size_t>(layout.frames[f].raw_size);
        pending.push_back(
            pool_->async([codec, raw_size, comp = std::move(comp)]() {
                std::vector<uint8_t> block;
                comp::decodeSeekableFrame(*codec, comp.data(),
                                          comp.size(), raw_size, block);
                return block;
            }));
    }
    while (!pending.empty()) {
        std::vector<uint8_t> block = pending.front().get();
        pending.pop_front();
        out.insert(out.end(), block.begin(), block.end());
    }
    return out;
}

void
AtcCursor::rangeLossless(uint64_t begin, uint64_t end,
                         std::vector<uint64_t> &out)
{
    const ContainerInfo &info = index_->info();
    uint64_t want = end - begin;

    const comp::StreamLayout *layout = index_->chunkLayout(0);
    if (layout == nullptr) {
        // v1/v2 fallback: an independent decode-and-skip pass.
        auto src = index_->store().openChunk(0);
        LosslessReader reader(info.pipeline, *src);
        auto read = [&reader](uint64_t *o, size_t n) {
            return reader.read(o, n);
        };
        discardRecords(read, begin, "container truncated inside the range");
        out.resize(static_cast<size_t>(want));
        fillRecords(read, out, "container truncated inside the range");
        return;
    }

    // Covering transform buffers -> covering frames; decode exactly
    // those frames (in the pool when one is attached), inverse-
    // transform, and slice the requested records out.
    uint64_t b0 = index_->bufferOf(begin);
    uint64_t b1 = index_->bufferOf(end - 1);
    uint64_t raw0 = index_->bufferRawOffset(b0);
    uint64_t raw1 = index_->bufferRawOffset(b1) +
                    util::varintLen(index_->bufferLen(b1)) +
                    8 * index_->bufferLen(b1);
    ATC_CHECK(raw1 <= layout->rawTotal(),
              "container truncated: range lies past the indexed frames");
    size_t f0 = layout->frameContaining(raw0);
    size_t f1 = layout->frameContaining(raw1 - 1);

    std::vector<uint8_t> raw = decodeFrames(f0, f1);
    util::MemorySource mem(raw.data(), raw.size());
    mem.skip(raw0 - layout->raw_starts[f0]);
    TransformDecoder transform(info.pipeline.transform, mem);
    auto read = [&transform](uint64_t *o, size_t n) {
        return transform.read(o, n);
    };
    discardRecords(read, begin - b0 * info.pipeline.buffer_addrs,
                   "container truncated inside the range");
    out.resize(static_cast<size_t>(want));
    fillRecords(read, out, "container truncated inside the range");
}

void
AtcCursor::rangeLossy(uint64_t begin, uint64_t end,
                      std::vector<uint64_t> &out)
{
    // Unlike seek(), extraction is record-exact: decode the intervals
    // covering the range (whole chunks — the lossy unit of decode) and
    // slice. The cursor's decoder does the work so its chunk cache is
    // shared; its position is restored afterwards.
    const std::vector<uint64_t> &starts = index_->recordStarts();
    uint64_t save = pos_;

    auto read = [this](uint64_t *o, size_t n) {
        return lossy_->read(o, n);
    };
    try {
        size_t i0 = recordContaining(starts, begin);
        lossy_->seekRecord(i0);
        discardRecords(read, begin - starts[i0],
                       "container truncated inside the range");
        out.resize(static_cast<size_t>(end - begin));
        fillRecords(read, out, "container truncated inside the range");

        // Restore the streaming position (boundary + in-interval skip).
        if (save == index_->size()) {
            lossy_->seekRecord(index_->info().records.size());
            return;
        }
        size_t ri = recordContaining(starts, save);
        lossy_->seekRecord(ri);
        discardRecords(read, save - starts[ri],
                       "container truncated restoring the cursor");
    } catch (...) {
        // Keep tell() truthful when the extraction (or the exact
        // restore) fails mid-way: park the decoder on the boundary of
        // the interval containing the saved position — a pure state
        // reset that cannot itself fail — and move pos_ there too.
        if (save == index_->size()) {
            lossy_->seekRecord(index_->info().records.size());
        } else {
            size_t ri = recordContaining(starts, save);
            lossy_->seekRecord(ri);
            pos_ = starts[ri];
        }
        throw;
    }
}

util::Status
AtcCursor::readRange(uint64_t begin, uint64_t end,
                     std::vector<uint64_t> &out)
{
    if (begin > end || end > index_->size())
        return util::Status::error(
            "range out of range: [" + std::to_string(begin) + ", " +
            std::to_string(end) + ") over trace size " +
            std::to_string(index_->size()));
    out.clear();
    if (begin == end)
        return util::Status();
    try {
        if (lossy_)
            rangeLossy(begin, end, out);
        else
            rangeLossless(begin, end, out);
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

} // namespace atc::core
