/**
 * @file
 * The container INFO wire format, factored out of the serial driver so
 * every pipeline driver (AtcWriter and the parallel writer/reader in
 * src/parallel/) produces and parses byte-identical metadata.
 *
 * Layout: an uncompressed preamble (magic, version, mode, codec spec)
 * followed by a codec-compressed payload holding the pipeline
 * parameters, the address count and — in lossy mode — the interval
 * trace (chunk/imitate records with byte translations).
 *
 * Version history:
 *  - v1: PR 1 layout.
 *  - v2: chunk streams carry a CRC-32 trailer of the decompressed
 *        payload (see LosslessWriter); INFO itself is unchanged, but
 *        the version byte is bumped so v1 readers do not misparse.
 *  - v3: chunk streams use seekable framing — every frame header also
 *        records the compressed byte length, and each stream ends with
 *        a frame index before the CRC trailer — so readers can locate
 *        frame boundaries without decoding and decode blocks in
 *        parallel. The INFO payload itself stays legacy-framed in all
 *        versions (it is tiny and always read serially).
 *
 * Readers accept every version in [kMinContainerVersion,
 * kContainerVersion]; writers pick one via AtcOptions.container_version
 * (default kContainerVersion).
 */

#ifndef ATC_ATC_INFO_HPP_
#define ATC_ATC_INFO_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "atc/container.hpp"
#include "atc/lossless.hpp"
#include "atc/lossy.hpp"
#include "compress/codec.hpp"

namespace atc::core {

/** Compression mode ('c' vs 'k' in the original tool). */
enum class Mode : uint8_t
{
    Lossless = 0,
    Lossy = 1,
};

/** Oldest container version readers still accept. */
constexpr uint8_t kMinContainerVersion = 1;

/** Newest container version; the default for writers. */
constexpr uint8_t kContainerVersion = 3;

/**
 * Map @p version onto the chunk-stream layout knobs of @p pipeline
 * (frame format, CRC trailer presence).
 * @throws util::Error on a version outside the supported range
 */
void applyContainerVersion(uint8_t version, LosslessParams &pipeline);

/** Everything a reader learns from a container's INFO stream. */
struct ContainerInfo
{
    /** Container format version (1..kContainerVersion). */
    uint8_t version = kContainerVersion;
    Mode mode = Mode::Lossless;
    /** Canonical codec spec recorded in the preamble. */
    std::string codec_spec;
    /** Transform + codec pipeline (codec holds the canonical spec). */
    LosslessParams pipeline;
    /** Total values in the trace. */
    uint64_t count = 0;

    // Lossy mode only.
    uint64_t interval_len = 0;
    double epsilon = 0.0;
    uint64_t chunk_count = 0;
    std::vector<IntervalRecord> records;
};

/**
 * Serialize and store the INFO stream.
 * @param store   destination container
 * @param codec   configured codec compressing the payload
 * @param version container format version to record (1..kContainerVersion)
 * @param mode    container mode
 * @param pipeline transform + codec parameters to persist
 * @param count   total values written
 * @param lossy   lossy parameters; required in lossy mode, else null
 * @param chunks_created number of chunks emitted (lossy mode)
 * @param records interval trace; required in lossy mode, else null
 * @throws util::Error on I/O failure, a bad version, or an over-long
 *         codec spec
 */
void writeContainerInfo(ChunkStore &store,
                        const comp::ConfiguredCodec &codec,
                        uint8_t version, Mode mode,
                        const LosslessParams &pipeline, uint64_t count,
                        const LossyParams *lossy, uint64_t chunks_created,
                        const std::vector<IntervalRecord> *records);

/**
 * Parse the INFO stream of @p store.
 * @throws util::Error on missing/corrupt/mismatched INFO data
 */
ContainerInfo readContainerInfo(ChunkStore &store);

/**
 * @return the codec *name* of @p spec, used as the chunk-file suffix
 * of directory containers. The spec is validated against the codec
 * registry first, so an unknown codec fails before any directory is
 * created on disk.
 * @throws util::Error on malformed specs or unknown codecs
 */
std::string containerSuffix(const std::string &spec);

/**
 * Auto-detect the chunk-file suffix of a directory container by
 * globbing for `INFO.<suffix>`. With several candidates (containers
 * sharing a directory), the one whose INFO-recorded codec name matches
 * its own suffix wins.
 * @throws util::Error when no unambiguous container is found
 */
std::string detectContainerSuffix(const std::string &dir);

} // namespace atc::core

#endif // ATC_ATC_INFO_HPP_
