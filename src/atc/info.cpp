#include "atc/info.hpp"

#include <bit>
#include <cstring>
#include <filesystem>

#include "compress/stream.hpp"
#include "util/status.hpp"

namespace atc::core {

namespace {

constexpr char kMagic[4] = {'A', 'T', 'C', 'T'};

void
writeString(util::ByteSink &sink, const std::string &s)
{
    ATC_CHECK(s.size() < 256, "codec spec too long for INFO preamble");
    sink.writeByte(static_cast<uint8_t>(s.size()));
    sink.write(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

std::string
readString(util::ByteSource &src)
{
    uint8_t len;
    src.readExact(&len, 1);
    std::string s(len, '\0');
    src.readExact(reinterpret_cast<uint8_t *>(s.data()), len);
    return s;
}

void
writeRecord(util::ByteSink &sink, const IntervalRecord &rec)
{
    sink.writeByte(static_cast<uint8_t>(rec.kind));
    util::writeVarint(sink, rec.chunk_id);
    util::writeVarint(sink, rec.length);
    if (rec.kind == IntervalRecord::Kind::Imitate) {
        sink.writeByte(rec.trans.plane_mask);
        for (int j = 0; j < 8; ++j) {
            if (rec.trans.plane_mask & (1u << j))
                sink.write(rec.trans.t[j].data(), 256);
        }
    }
}

IntervalRecord
readRecord(util::ByteSource &src)
{
    IntervalRecord rec;
    uint8_t kind;
    src.readExact(&kind, 1);
    ATC_CHECK(kind <= 1, "corrupt interval record");
    rec.kind = static_cast<IntervalRecord::Kind>(kind);
    rec.chunk_id = static_cast<uint32_t>(util::readVarint(src));
    rec.length = util::readVarint(src);
    if (rec.kind == IntervalRecord::Kind::Imitate) {
        src.readExact(&rec.trans.plane_mask, 1);
        for (int j = 0; j < 8; ++j) {
            if (rec.trans.plane_mask & (1u << j))
                src.readExact(rec.trans.t[j].data(), 256);
        }
    }
    return rec;
}

} // namespace

void
applyContainerVersion(uint8_t version, LosslessParams &pipeline)
{
    ATC_CHECK(version >= kMinContainerVersion &&
                  version <= kContainerVersion,
              "unsupported ATC container version " +
                  std::to_string(version));
    pipeline.frame_format = version >= 3 ? comp::FrameFormat::Seekable
                                         : comp::FrameFormat::Legacy;
    pipeline.crc_trailer = version >= 2;
}

void
writeContainerInfo(ChunkStore &store, const comp::ConfiguredCodec &codec,
                   uint8_t version, Mode mode,
                   const LosslessParams &pipeline, uint64_t count,
                   const LossyParams *lossy, uint64_t chunks_created,
                   const std::vector<IntervalRecord> *records)
{
    ATC_CHECK(version >= kMinContainerVersion &&
                  version <= kContainerVersion,
              "unsupported ATC container version " +
                  std::to_string(version));
    auto info = store.createInfo();

    // Uncompressed preamble. The canonical codec spec is persisted so a
    // reader reconstructs the exact codec configuration on open.
    info->write(reinterpret_cast<const uint8_t *>(kMagic), 4);
    info->writeByte(version);
    info->writeByte(static_cast<uint8_t>(mode));
    writeString(*info, codec.spec);

    // Compressed payload — always legacy-framed, whatever the chunk
    // streams use: it is tiny and read serially on open.
    comp::StreamCompressor payload(*codec.codec, *info,
                                   codec.blockOr(pipeline.codec_block),
                                   comp::FrameFormat::Legacy);
    // The mode is echoed inside the CRC-protected payload so that a
    // corrupted preamble cannot silently reinterpret the container.
    payload.writeByte(static_cast<uint8_t>(mode));
    payload.writeByte(static_cast<uint8_t>(pipeline.transform));
    util::writeVarint(payload, pipeline.buffer_addrs);
    util::writeVarint(payload, count);
    if (mode == Mode::Lossy) {
        ATC_ASSERT(lossy != nullptr && records != nullptr);
        util::writeVarint(payload, lossy->interval_len);
        util::writeLE<uint64_t>(
            payload, std::bit_cast<uint64_t>(lossy->epsilon));
        util::writeVarint(payload, chunks_created);
        util::writeVarint(payload, records->size());
        for (const IntervalRecord &rec : *records)
            writeRecord(payload, rec);
    }
    payload.finish();
    info->flush();
}

ContainerInfo
readContainerInfo(ChunkStore &store)
{
    auto info = store.openInfo();
    ContainerInfo out;

    char magic[4];
    info->readExact(reinterpret_cast<uint8_t *>(magic), 4);
    ATC_CHECK(std::memcmp(magic, kMagic, 4) == 0, "not an ATC container");
    uint8_t version;
    info->readExact(&version, 1);
    ATC_CHECK(version >= kMinContainerVersion &&
                  version <= kContainerVersion,
              "unsupported ATC container version " +
                  std::to_string(version));
    out.version = version;
    uint8_t mode;
    info->readExact(&mode, 1);
    ATC_CHECK(mode <= 1, "corrupt ATC container mode");
    out.mode = static_cast<Mode>(mode);
    out.codec_spec = readString(*info);

    auto cc = comp::CodecRegistry::instance().create(out.codec_spec);
    if (!cc.ok())
        util::raise("cannot reconstruct container codec: " +
                    cc.status().message());
    comp::ConfiguredCodec codec = cc.take();

    comp::StreamDecompressor payload(*codec.codec, *info,
                                     comp::FrameFormat::Legacy);
    uint8_t mode_echo;
    payload.readExact(&mode_echo, 1);
    ATC_CHECK(mode_echo == mode,
              "ATC container mode mismatch (corrupt preamble)");
    uint8_t transform;
    payload.readExact(&transform, 1);
    ATC_CHECK(transform <= 3, "corrupt ATC transform id");

    out.pipeline.transform = static_cast<Transform>(transform);
    out.pipeline.buffer_addrs =
        static_cast<size_t>(util::readVarint(payload));
    out.pipeline.codec = codec.spec;
    // The version decides how the chunk streams are framed, so every
    // consumer of this pipeline (serial, parallel, per-chunk lossy)
    // sees the right layout.
    applyContainerVersion(version, out.pipeline);
    out.count = util::readVarint(payload);

    if (out.mode == Mode::Lossless)
        return out;

    out.interval_len = util::readVarint(payload);
    out.epsilon = std::bit_cast<double>(util::readLE<uint64_t>(payload));
    out.chunk_count = util::readVarint(payload);
    uint64_t record_count = util::readVarint(payload);
    out.records.reserve(record_count);
    for (uint64_t i = 0; i < record_count; ++i) {
        out.records.push_back(readRecord(payload));
        ATC_CHECK(out.records.back().chunk_id < out.chunk_count,
                  "interval record references unknown chunk");
    }
    return out;
}

std::string
containerSuffix(const std::string &spec)
{
    auto parsed = comp::CodecSpec::parse(spec);
    if (!parsed.ok())
        util::raise(parsed.status().message());
    // Full registry construction, not just grammar: an unknown codec
    // or bad parameter must fail before the caller touches the disk.
    auto cc = comp::CodecRegistry::instance().create(parsed.value());
    if (!cc.ok())
        util::raise(cc.status().message());
    return parsed.value().name;
}

std::string
detectContainerSuffix(const std::string &dir)
{
    namespace fs = std::filesystem;

    // Every filesystem call goes through the error_code overloads so a
    // racing delete or permission change surfaces as util::Error, not
    // as an fs::filesystem_error escaping the Status boundary.
    std::vector<std::string> suffixes;
    std::error_code ec;
    fs::directory_iterator it(dir, ec), end;
    ATC_CHECK(!ec, "cannot read trace directory " + dir);
    for (; it != end; it.increment(ec)) {
        std::error_code entry_ec;
        if (!it->is_regular_file(entry_ec) || entry_ec)
            continue;
        std::string fn = it->path().filename().string();
        if (fn.rfind("INFO.", 0) == 0 && fn.size() > 5)
            suffixes.push_back(fn.substr(5));
    }
    // An increment error ends the loop with ec set (it becomes end()).
    ATC_CHECK(!ec, "cannot read trace directory " + dir);
    ATC_CHECK(!suffixes.empty(),
              "no INFO.<suffix> file in " + dir +
                  " (not an ATC container?)");
    if (suffixes.size() == 1)
        return suffixes.front();

    std::vector<std::string> matching;
    for (const std::string &suffix : suffixes) {
        try {
            util::FileSource info(dir + "/INFO." + suffix);
            char magic[4];
            info.readExact(reinterpret_cast<uint8_t *>(magic), 4);
            if (std::memcmp(magic, kMagic, 4) != 0)
                continue;
            uint8_t skip[2]; // version, mode
            info.readExact(skip, 2);
            auto parsed = comp::CodecSpec::parse(readString(info));
            if (parsed.ok() && parsed.value().name == suffix)
                matching.push_back(suffix);
        } catch (const util::Error &) {
            // Unreadable candidate; keep looking.
        }
    }
    ATC_CHECK(!matching.empty(),
              "no readable ATC container among the INFO.* files in " +
                  dir);
    ATC_CHECK(matching.size() == 1,
              "ambiguous container: several INFO.* files in " + dir +
                  "; pass an explicit suffix");
    return matching.front();
}

} // namespace atc::core
